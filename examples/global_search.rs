//! Global search over the continuous relaxation: CMA-ES with joint
//! guard-band co-optimization on the op-amp case study.
//!
//! ```text
//! cargo run --release --example global_search
//! ```
//!
//! The paper stages its two knobs: greedy backward elimination picks the
//! kept set first, then the guard band is tuned on the survivor.  The 0.11
//! relaxed-objective seam folds both into one continuous search space —
//! per-test membership weights plus one guard-band coordinate — and lets a
//! global optimizer trade eliminations against retest volume directly.
//! This example compacts the eleven-specification op-amp suite twice (the
//! staged greedy default, then CMA-ES in joint guard-band mode) and prints
//! the kept sets, the co-optimized band against the staged default, and the
//! deployed-tester errors.  The joint run pins its feasibility ceiling to
//! the greedy incumbent, so its deployed error is never worse.
//!
//! Population sizes honour `STC_SCALE` (e.g. `STC_SCALE=0.05` for a smoke
//! run).

use spec_test_compaction::prelude::*;

fn scaled(count: usize) -> usize {
    let scale = std::env::var("STC_SCALE")
        .ok()
        .and_then(|value| value.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.02, 1.0);
    ((count as f64 * scale) as usize).max(60)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = OpAmpDevice::paper_setup();
    let train = scaled(400);
    let test = scaled(200);
    eprintln!("simulating {train} training + {test} test op-amp instances ...");
    let pipeline = || {
        device
            .paper_pipeline()
            .monte_carlo(
                MonteCarloConfig::new(train)
                    .with_seed(2005)
                    .with_threads(8)
                    .with_calibration_quantiles(0.02, 0.98),
            )
            .test_instances(test)
            .compaction(CompactionConfig::paper_default().with_tolerance(0.02).with_threads(4))
    };

    // The staged default: greedy backward elimination, guard band fixed at
    // the configured paper fraction.
    let staged = pipeline().run()?;

    // The global run: CMA-ES over membership weights *and* the guard-band
    // coordinate.  Seeded and budget-aware like every bundled strategy.
    let joint = pipeline()
        .search(CmaEs::new(2005).with_joint_guard_band(JointGuardBand::paper_default()))
        .run()?;

    println!("run            kept tests                          band      deployed error");
    for report in [&staged, &joint] {
        println!(
            "{:<13}  {:<34}  {:>5.2}% {}  {:>10.2}%",
            report.search,
            format!("{:?}", report.kept()),
            report.guard_band.band_fraction * 100.0,
            if report.guard_band.co_optimized { "(joint) " } else { "(staged)" },
            report.deployed.prediction_error() * 100.0,
        );
    }

    match joint.compaction.co_optimized_guard_band {
        Some(fraction) => println!(
            "\njoint search co-optimized the guard band to {:.2}% \
             (staged default {:.2}%)",
            fraction * 100.0,
            staged.guard_band.band_fraction * 100.0,
        ),
        None => println!(
            "\njoint search kept the greedy incumbent: the staged {:.2}% band \
             was already optimal under the retest penalty",
            staged.guard_band.band_fraction * 100.0,
        ),
    }

    // The joint feasibility ceiling is pinned to the greedy incumbent, so
    // the deployed tester never ships a worse error than the staged run.
    let staged_error = staged.deployed.prediction_error();
    let joint_error = joint.deployed.prediction_error();
    assert!(
        joint_error <= staged_error + 1e-9,
        "joint deployed error {joint_error} exceeds staged {staged_error}"
    );
    println!(
        "deployed-tester error: joint {:.2}% <= staged {:.2}%",
        joint_error * 100.0,
        staged_error * 100.0
    );
    Ok(())
}
