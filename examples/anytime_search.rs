//! Budgeted, anytime search: stop the compaction at a training budget and
//! still ship the best frontier found so far.
//!
//! ```text
//! cargo run --release --example anytime_search
//! ```
//!
//! The greedy elimination retrains one classifier pair per examined
//! candidate, so wall-clock and training effort — not solution quality — is
//! what limits a production sweep.  The 0.6 `SearchBudget` is enforced
//! centrally by the evaluator, so *every* strategy is anytime: a truncated
//! run returns the best committed frontier with `BudgetStats::exhausted`
//! set, never an error.  This example sweeps the training budget on one
//! population (the quality-vs-budget curve), then runs the two stochastic
//! strategies — seeded simulated annealing and a genetic search whose
//! elitism pins the greedy incumbent — under the same configuration.

use spec_test_compaction::prelude::*;

fn main() -> Result<(), CompactionError> {
    // Six specs, strongly correlated: most of them are redundant.
    let device = SyntheticDevice::new(6, 1.8, 0.92);
    let pipeline = || {
        CompactionPipeline::for_device(&device)
            .monte_carlo(MonteCarloConfig::new(400).with_seed(2005))
            .test_instances(200)
            .compaction(CompactionConfig::paper_default().with_tolerance(0.1))
            .classifier(SvmBackend::paper_default())
    };

    // The quality-vs-budget curve: how much of the greedy answer each
    // training budget buys.
    let full = pipeline().run()?;
    println!("budget (trainings)   eliminated   cost reduction   exhausted");
    for budget in [1usize, 2, 4, 8, 16] {
        let report =
            pipeline().budget(SearchBudget::unlimited().with_max_trainings(budget)).run()?;
        assert!(report.budget().trainings <= budget, "budget {budget} exceeded");
        assert!(!report.kept().is_empty(), "a truncated run is still a valid result");
        println!(
            "{budget:>18}   {:>10}   {:>13.1}%   {}",
            report.eliminated().len(),
            100.0 * report.cost.reduction,
            report.budget().exhausted,
        );
    }
    println!(
        "{:>18}   {:>10}   {:>13.1}%   {}\n",
        "unlimited",
        full.eliminated().len(),
        100.0 * full.cost.reduction,
        full.budget().exhausted,
    );

    // A hard truncation still ships a deployable program and says so.
    let truncated = pipeline().budget(SearchBudget::unlimited().with_max_trainings(1)).run()?;
    assert!(truncated.budget().exhausted);
    assert_eq!(truncated.budget().provenance, FrontierProvenance::Truncated);
    println!("{}\n", truncated.summary());

    // The stochastic strategies under the same configuration.
    let annealing = pipeline()
        .search(
            SimulatedAnnealing::new(7)
                .with_schedule(AnnealingSchedule { steps: 60, ..AnnealingSchedule::default() }),
        )
        .run()?;
    let genetic =
        pipeline().search(GeneticSearch { seed: 7, population: 8, generations: 4 }).run()?;
    println!("strategy             eliminated   cost reduction   trainings   provenance");
    for report in [&full, &annealing, &genetic] {
        println!(
            "{:<19}  {:>10}   {:>13.1}%   {:>9}   {}",
            report.search,
            report.eliminated().len(),
            100.0 * report.cost.reduction,
            report.budget().trainings,
            report.budget().provenance,
        );
    }

    // Genetic elitism pins the greedy incumbent: never a worse saving than
    // greedy under the same (here unlimited) budget.
    assert!(
        genetic.cost.reduction >= full.cost.reduction - 1e-12,
        "genetic search must never finish worse than greedy \
         (genetic {} vs greedy {})",
        genetic.cost.reduction,
        full.cost.reduction,
    );
    println!("\ngenetic search matched or beat the greedy incumbent, as elitism guarantees");
    Ok(())
}
