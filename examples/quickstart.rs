//! Quick start: compact the test set of a synthetic device in a few seconds.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The synthetic device has six strongly correlated specifications, so several
//! of its tests are redundant by construction — exactly the situation the
//! paper's methodology exploits.

use spec_test_compaction::core::{
    generate_train_test, CompactionConfig, Compactor, MonteCarloConfig, SyntheticDevice,
    TestCostModel,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Monte-Carlo "simulation" of 600 training and 300 test instances.
    let device = SyntheticDevice::new(6, 1.8, 0.9);
    let config = MonteCarloConfig::new(600).with_seed(42);
    let (train, test) = generate_train_test(&device, &config, 300)?;
    println!(
        "population: {} training / {} test instances, training yield {:.1}%",
        train.len(),
        test.len(),
        train.yield_fraction() * 100.0
    );

    // 2. Greedy compaction with a 2 % prediction-error tolerance.
    let compactor = Compactor::new(train.clone(), test)?;
    let result = compactor.compact(&CompactionConfig::paper_default().with_tolerance(0.02))?;

    println!("\neliminated tests ({} of {}):", result.eliminated.len(), train.specs().len());
    for &index in &result.eliminated {
        println!("  - {}", train.specs().spec(index).name());
    }
    println!("kept tests:");
    for &index in &result.kept {
        println!("  - {}", train.specs().spec(index).name());
    }
    println!(
        "\nfinal prediction error: yield loss {:.2}%, defect escape {:.2}%, guard band {:.2}%",
        result.final_breakdown.yield_loss() * 100.0,
        result.final_breakdown.defect_escape() * 100.0,
        result.final_breakdown.guard_band_fraction() * 100.0
    );

    // 3. What the compaction is worth with a uniform per-test cost.
    let cost = TestCostModel::uniform(train.specs().len());
    println!("test-cost reduction: {:.0}%", cost.cost_reduction(&result.kept)? * 100.0);
    Ok(())
}
