//! Quick start: compact the test set of a synthetic device in a few seconds.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The synthetic device has six strongly correlated specifications, so several
//! of its tests are redundant by construction — exactly the situation the
//! paper's methodology exploits.  The whole flow is one staged pipeline.

use spec_test_compaction::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = SyntheticDevice::new(6, 1.8, 0.9);

    // Monte-Carlo simulation → greedy compaction at a 2 % error tolerance →
    // guard banding → tester program → cost accounting, in one run.
    let report = CompactionPipeline::for_device(&device)
        .monte_carlo(MonteCarloConfig::new(600).with_seed(42))
        .test_instances(300)
        .compaction(CompactionConfig::paper_default().with_tolerance(0.02))
        .classifier(SvmBackend::paper_default())
        .run()?;

    println!(
        "population: {} training / {} test instances, training yield {:.1}%",
        report.train_instances,
        report.test_instances,
        report.train_yield * 100.0
    );

    let names = device.spec_names();
    println!("\neliminated tests ({} of {}):", report.eliminated().len(), names.len());
    for &index in report.eliminated() {
        println!("  - {}", names[index]);
    }
    println!("kept tests:");
    for &index in report.kept() {
        println!("  - {}", names[index]);
    }
    println!(
        "\nfinal prediction error: yield loss {:.2}%, defect escape {:.2}%, guard band {:.2}%",
        report.final_breakdown().yield_loss() * 100.0,
        report.final_breakdown().defect_escape() * 100.0,
        report.final_breakdown().guard_band_fraction() * 100.0
    );
    println!("test-cost reduction: {:.0}%", report.cost.reduction * 100.0);
    println!("\n{}", report.summary());
    Ok(())
}
