//! Explores the guard-band width trade-off (paper Section 4.2): a wider band
//! moves borderline devices into a "retest" bin instead of misclassifying
//! them, at the cost of retesting more parts.
//!
//! ```text
//! cargo run --example guardband_tuning
//! ```

use spec_test_compaction::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = SyntheticDevice::new(8, 1.8, 0.85);
    let (train, test) =
        generate_train_test(&device, &MonteCarloConfig::new(800).with_seed(7), 400)?;
    let compactor = Compactor::new(train, test)?;
    let svm = SvmBackend::paper_default();
    // Drop the two most redundant specifications and study the band width.
    let kept: Vec<usize> = (0..8).filter(|&c| c != 6 && c != 7).collect();

    println!("guard band | yield loss | defect escape | devices in band");
    println!("-----------+------------+---------------+----------------");
    for width in [0.0, 0.01, 0.02, 0.05, 0.10, 0.15] {
        let config = GuardBandConfig::paper_default().with_guard_band(width)?;
        let (_, breakdown) = compactor.evaluate_kept_set_with(&svm, &kept, &config)?;
        println!(
            "   {:>5.1}%  |   {:>5.2}%   |    {:>5.2}%     |     {:>5.1}%",
            width * 100.0,
            breakdown.yield_loss() * 100.0,
            breakdown.defect_escape() * 100.0,
            breakdown.guard_band_fraction() * 100.0
        );
    }
    println!("\npick the narrowest band whose misclassification rate meets the quality target;");
    println!("devices in the band are retested with the full specification suite.");
    Ok(())
}
