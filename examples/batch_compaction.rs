//! Batched compaction across a device family: one pipeline configuration,
//! many devices, one report.
//!
//! ```text
//! cargo run --release --example batch_compaction
//! ```
//!
//! Sweeps four synthetic device variants (increasingly tight acceptance
//! limits) through the same ε-SVM compaction flow with a work-stealing
//! worker pool, then prints the per-device outcomes and the batch aggregate.
//! Running the batch twice demonstrates the shared Monte-Carlo population
//! cache: the second run reuses every simulated population.

use spec_test_compaction::prelude::*;

fn main() -> Result<(), CompactionError> {
    let variants: Vec<(String, SyntheticDevice)> = [1.2, 1.5, 1.8, 2.1]
        .iter()
        .map(|&limit| (format!("limit ±{limit}σ"), SyntheticDevice::new(6, limit, 0.9)))
        .collect();

    let mut batch = PipelineBatch::new()
        .monte_carlo(MonteCarloConfig::new(400).with_seed(2005))
        .test_instances(200)
        .compaction(CompactionConfig::paper_default().with_tolerance(0.05))
        .classifier(SvmBackend::paper_default())
        .batch_threads(4);
    for (label, device) in &variants {
        batch = batch.device_labelled(label.clone(), device);
    }

    let report = batch.run()?;
    for run in &report.runs {
        println!("{:<14} {}", run.label, run.report.summary());
    }
    println!("\n{}", report.summary());
    println!(
        "population cache: {} hits / {} misses",
        report.population_cache_hits, report.population_cache_misses
    );

    // Same batch again: every population comes from the shared cache now.
    let again = batch.run()?;
    println!(
        "second run:       {} hits / {} misses",
        again.population_cache_hits, again.population_cache_misses
    );
    Ok(())
}
