//! The four bundled search strategies side by side on one population.
//!
//! ```text
//! cargo run --release --example search_strategies
//! ```
//!
//! The greedy backward elimination of the paper commits to the *first*
//! acceptable elimination in examination order; the 0.5 `SearchStrategy`
//! seam makes the search procedure pluggable while every strategy shares
//! the same evaluation machinery (model cache, warm starts, speculative
//! threads).  This example runs a synthetic device with strongly correlated
//! specifications — so the *choice* of surviving tests is up to the
//! strategy — under a cost model where test 5 sits alone in an expensive
//! thermal insertion, and prints what each strategy keeps and what that
//! costs.  The functional examination order ranks the cheap tests first
//! (the natural "most likely redundant first" ranking an engineer would
//! write down), which makes count-greedy elimination strand the expensive
//! test as the survivor; cost-aware search finds a strictly cheaper kept
//! set on the same configuration.

use spec_test_compaction::prelude::*;

fn main() -> Result<(), CompactionError> {
    // Six specs, strongly correlated: most of them are redundant.
    let device = SyntheticDevice::new(6, 1.8, 0.92);

    // Tests 0..=4 share a cheap room-temperature insertion; test 5 needs an
    // expensive thermal soak on top of a pricey measurement.
    let cost = TestCostModel::new(
        vec![1.0, 1.0, 1.0, 1.0, 1.0, 10.0],
        vec![0, 0, 0, 0, 0, 1],
        vec![1.0, 25.0],
    )?;

    let pipeline = || {
        CompactionPipeline::for_device(&device)
            .monte_carlo(MonteCarloConfig::new(400).with_seed(2005))
            .test_instances(200)
            .compaction(
                CompactionConfig::paper_default()
                    .with_tolerance(0.1)
                    .with_order(EliminationOrder::Functional(vec![0, 1, 2, 3, 4, 5])),
            )
            .cost_model(cost.clone())
            .classifier(SvmBackend::paper_default())
    };

    let greedy = pipeline().run()?;
    let beam = pipeline().search(BeamSearch::new(4)).run()?;
    let forward = pipeline().search(ForwardSelection).run()?;
    let aware = pipeline().search(CostAwareGreedy).run()?;

    println!("strategy            kept            cost   cost reduction   prediction error");
    for report in [&greedy, &beam, &forward, &aware] {
        println!(
            "{:<18}  {:<14}  {:>5.1}   {:>13.1}%   {:>15.2}%",
            report.search,
            format!("{:?}", report.kept()),
            report.cost.compacted_cost,
            100.0 * report.cost.reduction,
            100.0 * report.final_breakdown().prediction_error(),
        );
    }

    let greedy_cost = cost.cost_of(greedy.kept())?;
    let aware_cost = cost.cost_of(aware.kept())?;
    assert!(
        aware_cost < greedy_cost,
        "cost-aware search must be strictly cheaper than greedy here \
         (aware {aware_cost} vs greedy {greedy_cost})"
    );
    println!(
        "\ncost-aware search saves {:.1} cost units over greedy elimination \
         ({:.1} vs {:.1})",
        greedy_cost - aware_cost,
        aware_cost,
        greedy_cost,
    );
    Ok(())
}
