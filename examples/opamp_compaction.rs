//! Compacts the eleven-specification test suite of the two-stage CMOS op-amp
//! (the paper's first case study) on a reduced population.
//!
//! ```text
//! cargo run --release --example opamp_compaction
//! ```
//!
//! Use `--release`: every instance is a transistor-level simulation (DC, AC
//! and transient analyses for all eleven specifications).

use spec_test_compaction::adapters::OpAmpDevice;
use spec_test_compaction::core::report::render_specification_table;
use spec_test_compaction::core::{
    generate_train_test, CompactionConfig, Compactor, MonteCarloConfig, TestCostModel,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = OpAmpDevice::paper_setup();
    let config = MonteCarloConfig::new(600)
        .with_seed(2005)
        .with_threads(8)
        .with_calibration_quantiles(0.02, 0.98);
    eprintln!("simulating 600 training + 300 test op-amp instances ...");
    let (train, test) = generate_train_test(&device, &config, 300)?;

    println!("calibrated acceptability ranges:\n");
    println!("{}", render_specification_table(train.specs()));
    println!(
        "training yield {:.1}%, test yield {:.1}%\n",
        train.yield_fraction() * 100.0,
        test.yield_fraction() * 100.0
    );

    let compactor = Compactor::new(train.clone(), test)?;
    let result = compactor.compact(&CompactionConfig::paper_default().with_tolerance(0.01))?;

    println!("compaction at 1% tolerance:");
    for step in &result.steps {
        println!(
            "  {:<22} {}  (yield loss {:.2}%, defect escape {:.2}%)",
            step.spec_name,
            if step.eliminated { "eliminated" } else { "kept      " },
            step.breakdown.yield_loss() * 100.0,
            step.breakdown.defect_escape() * 100.0
        );
    }
    println!(
        "\n{} of {} tests eliminated; remaining tests: {:?}",
        result.eliminated.len(),
        train.specs().len(),
        result.kept.iter().map(|&i| train.specs().spec(i).name()).collect::<Vec<_>>()
    );
    let cost = TestCostModel::uniform(train.specs().len());
    println!("test-cost reduction: {:.0}%", cost.cost_reduction(&result.kept)? * 100.0);
    Ok(())
}
