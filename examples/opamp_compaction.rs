//! Compacts the eleven-specification test suite of the two-stage CMOS op-amp
//! (the paper's first case study) on a reduced population.
//!
//! ```text
//! cargo run --release --example opamp_compaction
//! ```
//!
//! Use `--release`: every instance is a transistor-level simulation (DC, AC
//! and transient analyses for all eleven specifications).

use spec_test_compaction::core::report::render_specification_table;
use spec_test_compaction::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = OpAmpDevice::paper_setup();
    eprintln!("simulating 600 training + 300 test op-amp instances ...");
    let report = device
        .paper_pipeline()
        .monte_carlo(
            MonteCarloConfig::new(600)
                .with_seed(2005)
                .with_threads(8)
                .with_calibration_quantiles(0.02, 0.98),
        )
        .test_instances(300)
        .compaction(CompactionConfig::paper_default().with_tolerance(0.01).with_threads(4))
        .run()?;

    println!("calibrated acceptability ranges:\n");
    println!("{}", render_specification_table(report.tester.specs()));
    println!(
        "training yield {:.1}%, test yield {:.1}%\n",
        report.train_yield * 100.0,
        report.test_yield * 100.0
    );

    println!("compaction at 1% tolerance [{} backend]:", report.backend);
    for step in &report.compaction.steps {
        println!(
            "  {:<22} {}  (yield loss {:.2}%, defect escape {:.2}%)",
            step.spec_name,
            if step.eliminated { "eliminated" } else { "kept      " },
            step.breakdown.yield_loss() * 100.0,
            step.breakdown.defect_escape() * 100.0
        );
    }
    println!(
        "\n{} of 11 tests eliminated; remaining tests: {:?}",
        report.eliminated().len(),
        report.tester.kept_names()
    );
    println!("test-cost reduction: {:.0}%", report.cost.reduction * 100.0);
    Ok(())
}
