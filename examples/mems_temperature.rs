//! Predicts the hot and cold temperature-test outcomes of the MEMS
//! accelerometer from its room-temperature measurements (the paper's second
//! case study), eliminating the expensive thermal insertions.
//!
//! ```text
//! cargo run --release --example mems_temperature
//! ```

use spec_test_compaction::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = AccelerometerDevice::paper_setup();
    let config = MonteCarloConfig::new(800)
        .with_seed(2005)
        .with_threads(8)
        .with_calibration_quantiles(0.075, 0.925);
    eprintln!("simulating 800 training + 400 test accelerometer instances ...");
    let (train, test) = generate_train_test(&device, &config, 400)?;
    println!(
        "training yield {:.1}%, test yield {:.1}% over all 12 temperature tests\n",
        train.yield_fraction() * 100.0,
        test.yield_fraction() * 100.0
    );

    let compactor = Compactor::new(train, test)?;
    let svm = SvmBackend::paper_default();
    let guard_band = GuardBandConfig::paper_default();
    let cost_model = AccelerometerDevice::cost_model();

    let cold = AccelerometerDevice::temperature_group(TestTemperature::Cold);
    let hot = AccelerometerDevice::temperature_group(TestTemperature::Hot);
    let both: Vec<usize> = cold.iter().chain(hot.iter()).copied().collect();

    for (label, group) in [("cold (-40C)", &cold), ("hot (+80C)", &hot), ("both", &both)] {
        let breakdown = compactor.eliminate_group_with(&svm, group, &guard_band)?;
        let kept: Vec<usize> = (0..12).filter(|c| !group.contains(c)).collect();
        println!(
            "eliminate {label:<12}: defect escape {:.1}%, yield loss {:.1}%, guard band {:.1}%, cost saved {:.0}%",
            breakdown.defect_escape() * 100.0,
            breakdown.yield_loss() * 100.0,
            breakdown.guard_band_fraction() * 100.0,
            cost_model.cost_reduction(&kept)? * 100.0
        );
    }
    println!("\nthe hot and cold insertions can be dropped for a small, guard-banded error,");
    println!("cutting the thermal-soak test cost by more than half (paper Table 3).");

    // The same elimination driven by the staged pipeline: examine the
    // thermal tests in functional order and let the tolerance decide.  The
    // pipeline simulates its own population, so a reduced size (and a fresh
    // seed) keeps the demo from re-paying the full Monte-Carlo cost above.
    eprintln!("\nrunning the staged pipeline over the thermal tests ...");
    let report = device
        .paper_pipeline()
        .monte_carlo(
            MonteCarloConfig::new(400)
                .with_seed(2006)
                .with_threads(8)
                .with_calibration_quantiles(0.075, 0.925),
        )
        .test_instances(200)
        .compaction(
            CompactionConfig::paper_default()
                .with_tolerance(0.05)
                .with_order(EliminationOrder::Functional(both.clone()))
                .with_threads(4),
        )
        .run()?;
    println!("{}", report.summary());
    Ok(())
}
