//! Predicts the hot and cold temperature-test outcomes of the MEMS
//! accelerometer from its room-temperature measurements (the paper's second
//! case study), eliminating the expensive thermal insertions.
//!
//! ```text
//! cargo run --release --example mems_temperature
//! ```

use spec_test_compaction::adapters::AccelerometerDevice;
use spec_test_compaction::core::{
    generate_train_test, Compactor, GuardBandConfig, MonteCarloConfig,
};
use spec_test_compaction::mems::TestTemperature;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = AccelerometerDevice::paper_setup();
    let config = MonteCarloConfig::new(800)
        .with_seed(2005)
        .with_threads(8)
        .with_calibration_quantiles(0.075, 0.925);
    eprintln!("simulating 800 training + 400 test accelerometer instances ...");
    let (train, test) = generate_train_test(&device, &config, 400)?;
    println!(
        "training yield {:.1}%, test yield {:.1}% over all 12 temperature tests\n",
        train.yield_fraction() * 100.0,
        test.yield_fraction() * 100.0
    );

    let compactor = Compactor::new(train, test)?;
    let guard_band = GuardBandConfig::paper_default();
    let cost_model = AccelerometerDevice::cost_model();

    let cold = AccelerometerDevice::temperature_group(TestTemperature::Cold);
    let hot = AccelerometerDevice::temperature_group(TestTemperature::Hot);
    let both: Vec<usize> = cold.iter().chain(hot.iter()).copied().collect();

    for (label, group) in [("cold (-40C)", &cold), ("hot (+80C)", &hot), ("both", &both)] {
        let breakdown = compactor.eliminate_group(group, &guard_band)?;
        let kept: Vec<usize> = (0..12).filter(|c| !group.contains(c)).collect();
        println!(
            "eliminate {label:<12}: defect escape {:.1}%, yield loss {:.1}%, guard band {:.1}%, cost saved {:.0}%",
            breakdown.defect_escape() * 100.0,
            breakdown.yield_loss() * 100.0,
            breakdown.guard_band_fraction() * 100.0,
            cost_model.cost_reduction(&kept)? * 100.0
        );
    }
    Ok(())
}
