//! Compaction as a service: the paper's two case studies through the
//! `stc-serve` job queue.
//!
//! ```text
//! cargo run --release --example serve_compaction
//! ```
//!
//! Submits the op-amp and MEMS accelerometer batches as two jobs on a
//! two-worker [`CompactionService`], plus a third (synthetic) job that is
//! cancelled while still queued.  While the jobs run, the example polls
//! [`CompactionService::status`] and prints the streaming anytime view —
//! models trained and best elimination frontier so far, per shard — then
//! prints each final report and round-trips one through the versioned JSON
//! envelope.
//!
//! Population sizes honour `STC_SCALE` (e.g. `STC_SCALE=0.05` for a smoke
//! run).

use std::collections::HashSet;
use std::time::Duration;

use spec_test_compaction::adapters::AccelerometerDevice;
use stc_core::{CompactionConfig, MonteCarloConfig};
use stc_serve::{
    envelope, ClassifierSpec, CompactionService, DeviceSpec, JobId, JobSpec, JobStatus, ServeError,
};

fn scaled(count: usize) -> usize {
    let scale = std::env::var("STC_SCALE")
        .ok()
        .and_then(|value| value.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.02, 1.0);
    ((count as f64 * scale) as usize).max(40)
}

fn main() -> Result<(), ServeError> {
    let service = CompactionService::new(2);

    // Job 1: the op-amp case study (paper Section 5.1 settings, scaled).
    let mut opamp = JobSpec::new(
        vec![DeviceSpec::OpAmp],
        MonteCarloConfig::new(scaled(300)).with_seed(2005).with_calibration_quantiles(0.02, 0.98),
        CompactionConfig::paper_default().with_tolerance(0.02),
    );
    opamp.classifier = ClassifierSpec::Svm;

    // Job 2: the MEMS accelerometer with its thermal-insertion cost model.
    let mut mems = JobSpec::new(
        vec![DeviceSpec::MemsAccelerometer],
        MonteCarloConfig::new(scaled(300)).with_seed(2005).with_calibration_quantiles(0.075, 0.925),
        CompactionConfig::paper_default().with_tolerance(0.02),
    );
    mems.classifier = ClassifierSpec::Svm;
    mems.cost_model = Some(AccelerometerDevice::cost_model());

    // Job 3: a synthetic batch we change our mind about.
    let doomed_spec = JobSpec::new(
        vec![DeviceSpec::Synthetic { specs: 6, limit: 1.8, correlation: 0.9 }],
        MonteCarloConfig::new(scaled(300)).with_seed(7),
        CompactionConfig::paper_default().with_tolerance(0.05),
    );

    let opamp_id = service.submit(opamp)?;
    let mems_id = service.submit(mems)?;
    let doomed = service.submit(doomed_spec)?;
    println!("submitted {opamp_id}, {mems_id}, {doomed}");

    // Both workers are busy with the first two jobs, so the third is still
    // queued and cancelling it is guaranteed to never train a model.
    service.cancel(doomed)?;
    println!("cancelled {doomed} while queued\n");

    // Poll the running jobs and print the anytime progress stream.
    let mut pending: Vec<JobId> = vec![opamp_id, mems_id, doomed];
    let mut reported: HashSet<u64> = HashSet::new();
    while !pending.is_empty() {
        pending.retain(|&id| {
            let status = service.status(id).expect("job ids stay valid");
            match status {
                JobStatus::Queued => true,
                JobStatus::Running { progress } => {
                    for shard in &progress.shards {
                        if shard.started && !shard.finished {
                            println!(
                                "  {id} [{}] {} trainings, best frontier so far: {:?}",
                                shard.label, shard.trainings, shard.best_frontier
                            );
                        }
                    }
                    true
                }
                JobStatus::Done { report } => {
                    if reported.insert(id.as_u64()) {
                        println!("\n{id} done: {}\n", report.summary());
                        for run in &report.runs {
                            println!("  [{}] {}", run.label, run.report.summary());
                        }
                        println!();
                    }
                    false
                }
                JobStatus::Failed { error } => {
                    println!("{id} failed: {error}");
                    false
                }
                JobStatus::Cancelled => {
                    println!("{id} cancelled (never trained)");
                    false
                }
            }
        });
        std::thread::sleep(Duration::from_millis(150));
    }

    // Reports are wire-ready: round-trip the op-amp report through the
    // versioned JSON envelope.
    let status = service.await_result(opamp_id)?;
    let report = status.report().expect("op-amp job completed");
    let encoded = envelope::encode(report)?;
    let decoded: stc_core::BatchReport = envelope::decode(&encoded)?;
    assert_eq!(envelope::encode(&decoded)?, encoded);
    println!(
        "op-amp report JSON: {} bytes (schema v{}), round-trips byte-for-byte",
        encoded.len(),
        stc_serve::SCHEMA_VERSION
    );
    Ok(())
}
