//! Adaptive tester: drive the deployed program one measurement at a time.
//!
//! ```text
//! cargo run --example adaptive_tester
//! ```
//!
//! A production tester does not have to apply the whole kept set to every
//! device: measuring sequentially, a device that violates a kept
//! specification — or whose remaining measurements provably cannot change the
//! model's verdict — can leave the handler early.  This example compacts a
//! synthetic device, deploys the tester program as a staged [`TestPlan`]
//! ordered cheapest-first under a non-uniform cost model, steps a few devices
//! through [`SequentialSession`] by hand, and prices the whole held-out
//! population with [`SequentialStats`].

use spec_test_compaction::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = SyntheticDevice::new(6, 1.8, 0.9);
    let monte_carlo = MonteCarloConfig::new(600).with_seed(42);
    let (train, test) = generate_train_test(&device, &monte_carlo, 300)?;

    // Non-uniform costs: two insertions, the second expensive to open, with
    // rising per-test costs — the situation where test ordering matters.
    let tests = train.specs().len();
    let per_test: Vec<f64> = (0..tests).map(|i| 1.0 + i as f64).collect();
    let groups: Vec<usize> = (0..tests).map(|i| usize::from(i >= tests / 2)).collect();
    let cost_model = TestCostModel::new(per_test, groups, vec![2.0, 10.0])?;

    let report = CompactionPipeline::for_device(&device)
        .monte_carlo(monte_carlo)
        .compaction(CompactionConfig::paper_default().with_tolerance(0.02))
        .classifier(SvmBackend::paper_default())
        .cost_model(cost_model.clone())
        .run_with_population(train, test.clone())?;
    println!("{}\n", report.summary());

    // Stage the kept tests cheapest-first and walk a few devices through the
    // session by hand, printing each verdict as it settles.
    let program = &report.tester;
    let plan = TestPlan::cheapest_first(program, &cost_model)?;
    println!("kept tests {:?}, staged as {:?}", program.kept(), plan.stages());
    for row in 0..5.min(test.len()) {
        let mut session = plan.begin();
        let verdict = loop {
            let column = session.next_stage().expect("undecided session has a next stage");
            match session.measure(test.value(row, column))? {
                StepVerdict::Decided(verdict) => break verdict,
                StepVerdict::NeedMore { next } => {
                    print!("device {row}: measured test {column}, next {next}; ");
                }
            }
        };
        println!(
            "device {row}: {verdict:?} after {} of {} measurements",
            session.measured(),
            plan.len()
        );
    }

    // Price the whole held-out population.
    let stats = report.sequential.as_ref().expect("sequential deploy is on by default");
    println!(
        "\nsequential deploy over {} devices: expected cost {:.2} vs static {:.2} \
         ({:.1}% early exits, mean depth {:.2})",
        stats.devices,
        stats.expected_cost,
        stats.static_cost,
        stats.early_exit_fraction() * 100.0,
        stats.mean_depth
    );
    println!("decision-depth histogram: {:?}", stats.decision_depths);
    Ok(())
}
