//! Compares ad-hoc test dropping (industry practice the paper argues against)
//! with the statistical compaction of the paper on the same dropped tests.
//!
//! ```text
//! cargo run --example adhoc_vs_statistical
//! ```

use spec_test_compaction::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = SyntheticDevice::new(8, 1.8, 0.85);
    let (train, test) =
        generate_train_test(&device, &MonteCarloConfig::new(800).with_seed(17), 400)?;
    let compactor = Compactor::new(train.clone(), test.clone())?;
    let svm = SvmBackend::paper_default();
    let guard_band = GuardBandConfig::paper_default();

    println!("dropped tests | ad-hoc defect escape | statistical defect escape (+ guard band)");
    println!("--------------+----------------------+-----------------------------------------");
    for dropped_count in 1..=4usize {
        let dropped: Vec<usize> = (8 - dropped_count..8).collect();
        let adhoc = baseline::evaluate_adhoc(&test, &dropped)?;
        let statistical = compactor.eliminate_group_with(&svm, &dropped, &guard_band)?;
        println!(
            "      {dropped_count}       |        {:>5.2}%        |        {:>5.2}%  ({:>4.1}% in band)",
            adhoc.breakdown.defect_escape() * 100.0,
            statistical.defect_escape() * 100.0,
            statistical.guard_band_fraction() * 100.0
        );
    }
    println!("\nthe statistical model recovers most of the information of the dropped tests,");
    println!("while ad-hoc dropping ships every device that fails only a dropped test.");
    Ok(())
}
