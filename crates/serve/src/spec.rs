//! Serializable job specifications.
//!
//! A [`JobSpec`] is the wire-side description of one batch compaction job:
//! which devices to compact (bundled fixtures, synthetic models, or
//! pre-measured populations), which search strategy and classifier to run,
//! and every pipeline knob the [`stc_core::CompactionPipeline`] builder
//! exposes.  Specs are plain data — `spec -> JSON -> spec` round-trips
//! exactly — and resolve to live pipeline parts only inside the service
//! workers.

use std::sync::Arc;

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use spec_test_compaction::adapters::{AccelerometerDevice, OpAmpDevice};
use stc_core::search::{
    AnnealingSchedule, BeamSearch, CmaEs, CostAwareGreedy, ForwardSelection, GeneticSearch,
    GreedyBackward, JointGuardBand, ParticleSwarm, ScreeningConfig, SearchBudget, SearchStrategy,
    SimulatedAnnealing,
};
use stc_core::{
    ClassifierFactory, CompactionConfig, DeviceUnderTest, GridBackend, GuardBandConfig,
    MeasurementSet, MonteCarloConfig, SyntheticDevice, TestCostModel,
};
use stc_svm::SvmBackend;

use crate::error::ServeError;

/// One device entry of a batch job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DeviceSpec {
    /// The bundled two-stage CMOS op-amp fixture
    /// ([`OpAmpDevice::paper_setup`]).
    OpAmp,
    /// The bundled MEMS lateral comb accelerometer fixture
    /// ([`AccelerometerDevice::paper_setup`]).
    MemsAccelerometer,
    /// A synthetic device with correlated Gaussian measurements
    /// ([`SyntheticDevice::new`]).
    Synthetic {
        /// Number of specifications.
        specs: usize,
        /// Acceptability half-range of every specification.
        limit: f64,
        /// Pairwise correlation between measurements.
        correlation: f64,
    },
    /// A pre-measured population: the job skips Monte-Carlo simulation and
    /// feeds these sets straight into the compaction stages.
    Measured {
        /// Label identifying this entry in the batch report.
        label: String,
        /// Training population.
        train: MeasurementSet,
        /// Held-out population the final tester is evaluated on.
        test: MeasurementSet,
    },
}

/// A name-only [`DeviceUnderTest`] stub standing in for measured data: the
/// service runs measured entries through
/// [`stc_core::CompactionPipeline::run_with_population`], which never
/// simulates, so only [`DeviceUnderTest::name`] is ever consulted.
#[derive(Debug)]
pub(crate) struct MeasuredDevice {
    pub(crate) label: String,
}

impl DeviceUnderTest for MeasuredDevice {
    fn name(&self) -> &str {
        &self.label
    }

    fn spec_names(&self) -> Vec<String> {
        Vec::new()
    }

    fn spec_units(&self) -> Vec<String> {
        Vec::new()
    }

    fn simulate_instance(&self, _rng: &mut StdRng) -> Result<Vec<f64>, String> {
        Err(format!("measured device `{}` cannot be simulated", self.label))
    }
}

/// Simulatable devices a [`DeviceSpec`] can resolve to.
#[derive(Debug)]
pub(crate) enum ResolvedDevice {
    OpAmp(Box<OpAmpDevice>),
    Mems(Box<AccelerometerDevice>),
    Synthetic(SyntheticDevice),
}

impl ResolvedDevice {
    pub(crate) fn as_device(&self) -> &dyn DeviceUnderTest {
        match self {
            ResolvedDevice::OpAmp(device) => device.as_ref(),
            ResolvedDevice::Mems(device) => device.as_ref(),
            ResolvedDevice::Synthetic(device) => device,
        }
    }
}

impl DeviceSpec {
    /// Builds the simulatable device for this spec, or `None` for measured
    /// data (which bypasses simulation entirely).
    pub(crate) fn resolve(&self) -> Option<ResolvedDevice> {
        match self {
            DeviceSpec::OpAmp => Some(ResolvedDevice::OpAmp(Box::new(OpAmpDevice::paper_setup()))),
            DeviceSpec::MemsAccelerometer => {
                Some(ResolvedDevice::Mems(Box::new(AccelerometerDevice::paper_setup())))
            }
            DeviceSpec::Synthetic { specs, limit, correlation } => {
                Some(ResolvedDevice::Synthetic(SyntheticDevice::new(*specs, *limit, *correlation)))
            }
            DeviceSpec::Measured { .. } => None,
        }
    }
}

/// The search strategy a job runs, by name (resolved via
/// [`StrategySpec::build`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum StrategySpec {
    /// The paper's greedy backward elimination ([`GreedyBackward`]).
    #[default]
    Greedy,
    /// Beam search over elimination frontiers ([`BeamSearch`]).
    Beam {
        /// Number of frontiers kept per depth.
        width: usize,
    },
    /// Forward selection growing the kept set ([`ForwardSelection`]).
    ForwardSelection,
    /// Cost-weighted greedy elimination ([`CostAwareGreedy`]).
    CostAware,
    /// Seeded simulated annealing ([`SimulatedAnnealing`]).
    Annealing {
        /// RNG seed of the walk.
        seed: u64,
        /// Cooling schedule (defaults to [`AnnealingSchedule::default`]).
        #[serde(default)]
        schedule: AnnealingSchedule,
    },
    /// Seeded genetic search ([`GeneticSearch`]).
    Genetic {
        /// RNG seed of the evolution.
        seed: u64,
        /// Genomes per generation.
        population: usize,
        /// Bred generations after the initial scatter.
        generations: usize,
    },
    /// Seeded CMA-ES over the continuous relaxation ([`CmaEs`]).
    CmaEs {
        /// RNG seed of the sampled generations.
        seed: u64,
        /// Samples per generation.
        population: usize,
        /// Sampled generations after the greedy incumbent.
        generations: usize,
        /// Initial step size in the unit cube.
        sigma: f64,
        /// Joint guard-band co-optimization (`None` stages the configured
        /// band as usual).
        #[serde(default)]
        joint_guard_band: Option<JointGuardBand>,
    },
    /// Seeded particle-swarm optimization over the continuous relaxation
    /// ([`ParticleSwarm`]).
    ParticleSwarm {
        /// RNG seed of the swarm.
        seed: u64,
        /// Swarm size.
        particles: usize,
        /// Velocity/position update rounds.
        iterations: usize,
        /// Inertia weight of the velocity update.
        inertia: f64,
        /// Joint guard-band co-optimization (`None` stages the configured
        /// band as usual).
        #[serde(default)]
        joint_guard_band: Option<JointGuardBand>,
    },
}

impl StrategySpec {
    /// Instantiates the described [`SearchStrategy`].
    pub fn build(&self) -> Arc<dyn SearchStrategy> {
        match self {
            StrategySpec::Greedy => Arc::new(GreedyBackward),
            StrategySpec::Beam { width } => Arc::new(BeamSearch::new(*width)),
            StrategySpec::ForwardSelection => Arc::new(ForwardSelection),
            StrategySpec::CostAware => Arc::new(CostAwareGreedy),
            StrategySpec::Annealing { seed, schedule } => {
                Arc::new(SimulatedAnnealing::new(*seed).with_schedule(*schedule))
            }
            StrategySpec::Genetic { seed, population, generations } => Arc::new(GeneticSearch {
                seed: *seed,
                population: *population,
                generations: *generations,
            }),
            StrategySpec::CmaEs { seed, population, generations, sigma, joint_guard_band } => {
                Arc::new(CmaEs {
                    seed: *seed,
                    population: *population,
                    generations: *generations,
                    sigma: *sigma,
                    joint_guard_band: *joint_guard_band,
                })
            }
            StrategySpec::ParticleSwarm {
                seed,
                particles,
                iterations,
                inertia,
                joint_guard_band,
            } => Arc::new(ParticleSwarm {
                seed: *seed,
                particles: *particles,
                iterations: *iterations,
                inertia: *inertia,
                joint_guard_band: *joint_guard_band,
            }),
        }
    }
}

/// The classifier backend a job trains at every elimination step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClassifierSpec {
    /// The built-in per-spec grid model ([`GridBackend`]).
    #[default]
    Grid,
    /// The paper's ε-SVM backend ([`SvmBackend::paper_default`]).
    Svm,
}

impl ClassifierSpec {
    /// Instantiates the described [`ClassifierFactory`].
    pub fn build(&self) -> Arc<dyn ClassifierFactory> {
        match self {
            ClassifierSpec::Grid => Arc::new(GridBackend::default()),
            ClassifierSpec::Svm => Arc::new(SvmBackend::paper_default()),
        }
    }
}

/// A complete, serializable description of one batch compaction job.
///
/// The mandatory fields are the device list, the Monte-Carlo stage and the
/// compaction stage; everything else defaults to the corresponding
/// [`stc_core::CompactionPipeline`] default, so a minimal JSON spec is just
/// `{"devices": [...], "monte_carlo": {...}, "compaction": {...}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Devices to compact; each becomes one shard of the job.
    pub devices: Vec<DeviceSpec>,
    /// Monte-Carlo configuration shared by every simulated shard.
    pub monte_carlo: MonteCarloConfig,
    /// Held-out population size (defaults to half the training population).
    #[serde(default)]
    pub test_instances: Option<usize>,
    /// Compaction-stage configuration.
    pub compaction: CompactionConfig,
    /// Search strategy (defaults to the paper's greedy elimination).
    #[serde(default)]
    pub strategy: StrategySpec,
    /// Classifier backend (defaults to the grid model).
    #[serde(default)]
    pub classifier: ClassifierSpec,
    /// Guard-band override applied on top of `compaction`.
    #[serde(default)]
    pub guard_band: Option<GuardBandConfig>,
    /// Search-budget override applied on top of `compaction`.
    #[serde(default)]
    pub budget: Option<SearchBudget>,
    /// Screen-then-verify override applied on top of `compaction` (see
    /// [`stc_core::CompactionPipeline::screening`]).
    #[serde(default)]
    pub screening: Option<ScreeningConfig>,
    /// Test-cost model (defaults to uniform unit costs).
    #[serde(default)]
    pub cost_model: Option<TestCostModel>,
    /// Deploys lookup-table testers with this resolution instead of exact
    /// models.
    #[serde(default)]
    pub lookup_table: Option<usize>,
    /// Staged sequential deploy accounting (`None` keeps the pipeline
    /// default, which is enabled; `Some(false)` opts a job out — see
    /// [`stc_core::CompactionPipeline::sequential_deploy`]).
    #[serde(default)]
    pub sequential: Option<bool>,
    /// Worker threads the service spends on this job's shards (`0` means
    /// one).
    #[serde(default)]
    pub shard_threads: usize,
}

impl JobSpec {
    /// A spec with the mandatory stages set and every optional stage at its
    /// pipeline default.
    pub fn new(
        devices: Vec<DeviceSpec>,
        monte_carlo: MonteCarloConfig,
        compaction: CompactionConfig,
    ) -> Self {
        JobSpec {
            devices,
            monte_carlo,
            test_instances: None,
            compaction,
            strategy: StrategySpec::default(),
            classifier: ClassifierSpec::default(),
            guard_band: None,
            budget: None,
            screening: None,
            cost_model: None,
            lookup_table: None,
            sequential: None,
            shard_threads: 0,
        }
    }

    /// Checks the parts of a spec the service cannot discover lazily.
    ///
    /// # Errors
    ///
    /// Rejects an empty device list and measured entries with empty labels.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.devices.is_empty() {
            return Err(ServeError::InvalidSpec("a job needs at least one device".into()));
        }
        for device in &self.devices {
            if let DeviceSpec::Measured { label, .. } = device {
                if label.is_empty() {
                    return Err(ServeError::InvalidSpec(
                        "measured devices need a non-empty label".into(),
                    ));
                }
            }
        }
        Ok(())
    }
}
