//! # stc-serve
//!
//! Compaction-as-a-service on top of `stc-core`: a job queue that takes
//! serializable [`JobSpec`]s, shards each batch into per-device sub-jobs on
//! a bounded worker pool, streams anytime search progress while jobs run,
//! and returns [`stc_core::BatchReport`]s that survive a JSON round-trip.
//!
//! The crate has three layers:
//!
//! * [`json`] + [`envelope`] — a self-contained JSON codec for the vendored
//!   `serde` data model, plus the versioned
//!   `{"schema_version": N, "payload": ...}` wrapper every document ships
//!   in.  Unknown versions are rejected with
//!   [`ServeError::UnsupportedSchemaVersion`] *before* the payload is
//!   parsed.
//! * [`spec`] — the wire-side job description: devices (bundled fixtures,
//!   synthetic models, or pre-measured populations), search strategy,
//!   classifier backend and every pipeline knob, all plain serializable
//!   data.
//! * [`service`] — [`CompactionService`]: `submit` / `status` / `cancel` /
//!   `await_result` over a worker pool; running jobs expose
//!   [`JobStatus::Running`] with per-shard best-frontier-so-far snapshots
//!   fed by the `stc_core::search::ProgressObserver` seam.
//!
//! ## Quick start
//!
//! ```
//! use stc_serve::{
//!     envelope, CompactionService, DeviceSpec, JobSpec, JobStatus,
//! };
//! use stc_core::{CompactionConfig, MonteCarloConfig};
//!
//! # fn main() -> Result<(), stc_serve::ServeError> {
//! let service = CompactionService::new(1);
//! let spec = JobSpec::new(
//!     vec![DeviceSpec::Synthetic { specs: 4, limit: 1.8, correlation: 0.9 }],
//!     MonteCarloConfig::new(120).with_seed(7),
//!     CompactionConfig::paper_default().with_tolerance(0.05),
//! );
//! let id = service.submit(spec)?;
//! let status = service.await_result(id)?;
//! let report = status.report().expect("job completed");
//! println!("{}", envelope::encode(report)?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod envelope;
mod error;
pub mod json;
pub mod service;
pub mod spec;

pub use envelope::{Envelope, SCHEMA_VERSION};
pub use error::ServeError;
pub use service::{CompactionService, JobId, JobProgress, JobStatus, ShardProgress};
pub use spec::{ClassifierSpec, DeviceSpec, JobSpec, StrategySpec};
