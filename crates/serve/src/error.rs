//! Error type shared by the service, the envelope codec and the spec layer.

use std::fmt;

use crate::json::JsonError;
use stc_core::CompactionError;

/// Everything that can go wrong between a submitted job spec and its report.
#[derive(Debug)]
pub enum ServeError {
    /// JSON serialization or parsing failed.
    Json(JsonError),
    /// The envelope carries a schema version this build does not understand.
    UnsupportedSchemaVersion {
        /// Version found in the document.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// A job spec failed validation before it could be queued.
    InvalidSpec(String),
    /// The compaction flow itself failed inside a worker.
    Compaction(CompactionError),
    /// A [`JobId`](crate::service::JobId) that this service never issued.
    UnknownJob(u64),
    /// A job finished in the `Failed` state.
    JobFailed(String),
    /// A job was cancelled before it could produce a report.
    Cancelled,
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Json(error) => write!(f, "{error}"),
            ServeError::UnsupportedSchemaVersion { found, supported } => write!(
                f,
                "unsupported schema version {found} (this build reads version {supported})"
            ),
            ServeError::InvalidSpec(message) => write!(f, "invalid job spec: {message}"),
            ServeError::Compaction(error) => write!(f, "compaction failed: {error}"),
            ServeError::UnknownJob(id) => write!(f, "unknown job id {id}"),
            ServeError::JobFailed(message) => write!(f, "job failed: {message}"),
            ServeError::Cancelled => write!(f, "job was cancelled"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Json(error) => Some(error),
            ServeError::Compaction(error) => Some(error),
            _ => None,
        }
    }
}

impl From<JsonError> for ServeError {
    fn from(error: JsonError) -> Self {
        ServeError::Json(error)
    }
}

impl From<CompactionError> for ServeError {
    fn from(error: CompactionError) -> Self {
        ServeError::Compaction(error)
    }
}
