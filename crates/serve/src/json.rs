//! A self-contained JSON codec for the vendored `serde` data model.
//!
//! The workspace vendors a miniature `serde` (traits plus derive) but no
//! `serde_json`, so this module supplies the missing format layer:
//!
//! * [`to_string`] drives any [`serde::ser::Serialize`] value through a
//!   [`serde::ser::Serializer`] that writes compact JSON into a `String`,
//! * [`from_str`] parses JSON with a recursive-descent
//!   [`serde::de::Deserializer`] that feeds visitors through
//!   `deserialize_any`.
//!
//! Policy decisions, chosen to keep report round-trips loss-free:
//!
//! * **Non-finite floats are rejected** at serialization time (JSON has no
//!   `NaN`/`Infinity` literals, and silently writing `null` would corrupt a
//!   report on the way back in).  Finite floats are written with Rust's
//!   shortest round-trip `Display` formatting, so `value -> JSON -> value`
//!   is exact.
//! * **Strings** escape `"`, `\` and all control characters (`\u00XX`);
//!   parsing understands the full escape set including `\uXXXX` surrogate
//!   pairs.
//! * **Enums** use external tagging to match the derive: a unit variant is
//!   the bare string `"Name"`, every other variant is the single-key object
//!   `{"Name": ...}`.
//! * Parsing enforces a nesting **depth cap** so malformed input cannot
//!   overflow the stack.

use std::fmt;

use serde::de::{self, Deserialize, IgnoredAny, Visitor};
use serde::ser::{self, Serialize};

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 128;

/// Error raised by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    fn new(message: impl Into<String>) -> Self {
        JsonError { message: message.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

impl ser::Error for JsonError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        JsonError::new(msg.to_string())
    }
}

impl de::Error for JsonError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        JsonError::new(msg.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
///
/// Fails if the value contains a non-finite float ([`f64::NAN`],
/// [`f64::INFINITY`]) anywhere in its tree.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, JsonError> {
    let mut out = String::new();
    value.serialize(JsonSerializer { out: &mut out })?;
    Ok(out)
}

/// Parses a JSON string into any [`Deserialize`] type.
///
/// Rejects trailing non-whitespace after the top-level value.
pub fn from_str<'de, T: Deserialize<'de>>(input: &'de str) -> Result<T, JsonError> {
    let mut parser = Parser::new(input);
    let value = T::deserialize(&mut parser)?;
    parser.skip_whitespace();
    if parser.peek().is_some() {
        return Err(JsonError::new(format!("trailing characters at offset {}", parser.pos)));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, value: &str) {
    out.push('"');
    let mut start = 0;
    for (index, byte) in value.bytes().enumerate() {
        let escape: Option<&str> = match byte {
            b'"' => Some("\\\""),
            b'\\' => Some("\\\\"),
            b'\n' => Some("\\n"),
            b'\r' => Some("\\r"),
            b'\t' => Some("\\t"),
            0x08 => Some("\\b"),
            0x0c => Some("\\f"),
            0x00..=0x1f => None, // other control characters: \u00XX below
            _ => continue,
        };
        out.push_str(&value[start..index]);
        match escape {
            Some(text) => out.push_str(text),
            None => {
                out.push_str("\\u00");
                const HEX: &[u8; 16] = b"0123456789abcdef";
                out.push(HEX[(byte >> 4) as usize] as char);
                out.push(HEX[(byte & 0x0f) as usize] as char);
            }
        }
        start = index + 1;
    }
    out.push_str(&value[start..]);
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) -> Result<(), JsonError> {
    if !v.is_finite() {
        return Err(JsonError::new(format!(
            "cannot serialize non-finite float {v} (JSON has no NaN/Infinity literals)"
        )));
    }
    // Rust's `Display` for floats is the shortest representation that parses
    // back to the same bits, so round-trips are exact.
    out.push_str(&format!("{v}"));
    Ok(())
}

/// The serializer half of the codec; writes compact JSON into a `String`.
struct JsonSerializer<'o> {
    out: &'o mut String,
}

/// In-progress JSON array or object; tracks whether a comma is due and which
/// closing delimiters remain (a variant object closes with `]}`/`}}`).
struct Compound<'o> {
    out: &'o mut String,
    first: bool,
    close: &'static str,
}

impl Compound<'_> {
    fn comma(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
    }
}

impl<'o> ser::Serializer for JsonSerializer<'o> {
    type Ok = ();
    type Error = JsonError;
    type SerializeSeq = Compound<'o>;
    type SerializeMap = Compound<'o>;
    type SerializeStruct = Compound<'o>;
    type SerializeStructVariant = Compound<'o>;
    type SerializeTupleVariant = Compound<'o>;

    fn serialize_bool(self, v: bool) -> Result<(), JsonError> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), JsonError> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), JsonError> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), JsonError> {
        write_f64(self.out, v)
    }

    fn serialize_str(self, v: &str) -> Result<(), JsonError> {
        write_escaped(self.out, v);
        Ok(())
    }

    fn serialize_unit(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_none(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), JsonError> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result<(), JsonError> {
        write_escaped(self.out, variant);
        Ok(())
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.out.push('{');
        write_escaped(self.out, variant);
        self.out.push(':');
        value.serialize(JsonSerializer { out: self.out })?;
        self.out.push('}');
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'o>, JsonError> {
        self.out.push('[');
        Ok(Compound { out: self.out, first: true, close: "]" })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'o>, JsonError> {
        self.out.push('{');
        Ok(Compound { out: self.out, first: true, close: "}" })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'o>, JsonError> {
        self.out.push('{');
        Ok(Compound { out: self.out, first: true, close: "}" })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'o>, JsonError> {
        self.out.push('{');
        write_escaped(self.out, variant);
        self.out.push_str(":{");
        Ok(Compound { out: self.out, first: true, close: "}}" })
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'o>, JsonError> {
        self.out.push('{');
        write_escaped(self.out, variant);
        self.out.push_str(":[");
        Ok(Compound { out: self.out, first: true, close: "]}" })
    }
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        self.comma();
        value.serialize(JsonSerializer { out: self.out })
    }

    fn end(self) -> Result<(), JsonError> {
        self.out.push_str(self.close);
        Ok(())
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), JsonError> {
        self.comma();
        // JSON object keys must be strings; serialize the key on its own and
        // quote the rendition when it is not already a string literal.
        let mut rendered = String::new();
        key.serialize(JsonSerializer { out: &mut rendered })?;
        if rendered.starts_with('"') {
            self.out.push_str(&rendered);
        } else {
            write_escaped(self.out, &rendered);
        }
        self.out.push(':');
        value.serialize(JsonSerializer { out: self.out })
    }

    fn end(self) -> Result<(), JsonError> {
        self.out.push_str(self.close);
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.comma();
        write_escaped(self.out, key);
        self.out.push(':');
        value.serialize(JsonSerializer { out: self.out })
    }

    fn end(self) -> Result<(), JsonError> {
        self.out.push_str(self.close);
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }

    fn end(self) -> Result<(), JsonError> {
        self.out.push_str(self.close);
        Ok(())
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        self.comma();
        value.serialize(JsonSerializer { out: self.out })
    }

    fn end(self) -> Result<(), JsonError> {
        self.out.push_str(self.close);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Recursive-descent JSON parser; `&mut Parser` implements
/// [`serde::de::Deserializer`].
struct Parser<'de> {
    input: &'de str,
    pos: usize,
    depth: usize,
}

impl<'de> Parser<'de> {
    fn new(input: &'de str) -> Self {
        Parser { input, pos: 0, depth: 0 }
    }

    fn peek(&self) -> Option<u8> {
        self.input.as_bytes().get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let byte = self.peek()?;
        self.pos += 1;
        Some(byte)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError::new(format!("{} at offset {}", message.into(), self.pos))
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        self.skip_whitespace();
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`, found {}", byte as char, self.describe_next())))
        }
    }

    fn describe_next(&self) -> String {
        match self.peek() {
            Some(byte) => format!("`{}`", byte as char),
            None => "end of input".to_string(),
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), JsonError> {
        if self.input[self.pos..].starts_with(keyword) {
            self.pos += keyword.len();
            Ok(())
        } else {
            Err(self.error(format!("expected `{keyword}`")))
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    /// Parses a string literal, assuming the cursor sits on the opening `"`.
    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut value = String::new();
        let bytes = self.input.as_bytes();
        let mut start = self.pos;
        loop {
            match bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    value.push_str(&self.input[start..self.pos]);
                    self.pos += 1;
                    return Ok(value);
                }
                Some(b'\\') => {
                    value.push_str(&self.input[start..self.pos]);
                    self.pos += 1;
                    let escaped = match self.bump() {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'/') => '/',
                        Some(b'b') => '\u{8}',
                        Some(b'f') => '\u{c}',
                        Some(b'n') => '\n',
                        Some(b'r') => '\r',
                        Some(b't') => '\t',
                        Some(b'u') => self.parse_unicode_escape()?,
                        _ => return Err(self.error("invalid escape sequence")),
                    };
                    value.push(escaped);
                    start = self.pos;
                }
                Some(byte) if *byte < 0x20 => {
                    return Err(self.error("unescaped control character in string"));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        let digits =
            self.input.get(self.pos..end).ok_or_else(|| self.error("truncated \\u escape"))?;
        let code = u16::from_str_radix(digits, 16)
            .map_err(|_| self.error(format!("invalid \\u escape `{digits}`")))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.parse_hex4()?;
        if (0xd800..0xdc00).contains(&first) {
            // High surrogate: a low surrogate escape must follow.
            self.expect_keyword("\\u")
                .map_err(|_| self.error("unpaired surrogate in \\u escape"))?;
            let second = self.parse_hex4()?;
            if !(0xdc00..0xe000).contains(&second) {
                return Err(self.error("invalid low surrogate in \\u escape"));
            }
            let code = 0x10000 + ((u32::from(first) - 0xd800) << 10) + (u32::from(second) - 0xdc00);
            char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"))
        } else if (0xdc00..0xe000).contains(&first) {
            Err(self.error("unpaired low surrogate in \\u escape"))
        } else {
            char::from_u32(u32::from(first)).ok_or_else(|| self.error("invalid \\u escape"))
        }
    }

    /// Parses a number and dispatches to the visitor as `i64`, `u64` or
    /// `f64` — integers stay integers so `u64::MAX` survives a round-trip.
    fn parse_number<V: Visitor<'de>>(&mut self, visitor: V) -> Result<V::Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(byte) = self.peek() {
            match byte {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = &self.input[start..self.pos];
        if text.is_empty() || text == "-" {
            return Err(self.error("invalid number"));
        }
        if text == "-0" {
            // `-0` must stay a float: routing it through `visit_i64(0)`
            // would drop the sign bit.
            return visitor.visit_f64(-0.0);
        }
        if !float {
            if let Some(digits) = text.strip_prefix('-') {
                if digits.parse::<u64>().is_ok() {
                    if let Ok(value) = text.parse::<i64>() {
                        return visitor.visit_i64(value);
                    }
                }
            } else if let Ok(value) = text.parse::<u64>() {
                return visitor.visit_u64(value);
            }
        }
        let value: f64 =
            text.parse().map_err(|_| JsonError::new(format!("invalid number `{text}`")))?;
        if !value.is_finite() {
            return Err(JsonError::new(format!("number `{text}` overflows f64")));
        }
        visitor.visit_f64(value)
    }

    /// Consumes one complete JSON value without interpreting it.
    fn skip_value(&mut self) -> Result<(), JsonError> {
        IgnoredAny::deserialize(&mut *self).map(|_| ())
    }
}

/// Sequence access over `[...]`; drained to the closing bracket by the
/// deserializer even if the visitor stops early.
struct SeqFrame<'a, 'de> {
    parser: &'a mut Parser<'de>,
    first: bool,
    done: bool,
}

impl<'de> SeqFrame<'_, 'de> {
    /// Positions the cursor on the next element, or consumes `]` and
    /// reports the end.
    fn element_start(&mut self) -> Result<bool, JsonError> {
        if self.done {
            return Ok(false);
        }
        self.parser.skip_whitespace();
        if self.parser.peek() == Some(b']') {
            self.parser.pos += 1;
            self.done = true;
            return Ok(false);
        }
        if !self.first {
            self.parser.expect(b',')?;
            self.parser.skip_whitespace();
        }
        self.first = false;
        Ok(true)
    }

    fn drain(&mut self) -> Result<(), JsonError> {
        while self.element_start()? {
            self.parser.skip_value()?;
        }
        Ok(())
    }
}

impl<'de> de::SeqAccess<'de> for &mut SeqFrame<'_, 'de> {
    type Error = JsonError;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, JsonError> {
        if !self.element_start()? {
            return Ok(None);
        }
        T::deserialize(&mut *self.parser).map(Some)
    }
}

/// Map access over `{...}`; drained to the closing brace by the
/// deserializer even if the visitor stops early.
struct MapFrame<'a, 'de> {
    parser: &'a mut Parser<'de>,
    first: bool,
    done: bool,
    expect_value: bool,
}

impl<'de> MapFrame<'_, 'de> {
    /// Positions the cursor on the next key, or consumes `}` and reports
    /// the end.
    fn key_start(&mut self) -> Result<bool, JsonError> {
        if self.done {
            return Ok(false);
        }
        self.parser.skip_whitespace();
        if self.parser.peek() == Some(b'}') {
            self.parser.pos += 1;
            self.done = true;
            return Ok(false);
        }
        if !self.first {
            self.parser.expect(b',')?;
            self.parser.skip_whitespace();
        }
        self.first = false;
        Ok(true)
    }

    fn drain(&mut self) -> Result<(), JsonError> {
        if self.expect_value {
            self.expect_value = false;
            self.parser.expect(b':')?;
            self.parser.skip_value()?;
        }
        while self.key_start()? {
            self.parser.parse_string()?;
            self.parser.expect(b':')?;
            self.parser.skip_value()?;
        }
        Ok(())
    }
}

impl<'de> de::MapAccess<'de> for &mut MapFrame<'_, 'de> {
    type Error = JsonError;

    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, JsonError> {
        if self.expect_value {
            // The visitor skipped `next_value`; discard the pending value.
            self.expect_value = false;
            self.parser.expect(b':')?;
            self.parser.skip_value()?;
        }
        if !self.key_start()? {
            return Ok(None);
        }
        self.expect_value = true;
        K::deserialize(&mut *self.parser).map(Some)
    }

    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, JsonError> {
        if !self.expect_value {
            return Err(self.parser.error("map value requested before a key"));
        }
        self.expect_value = false;
        self.parser.expect(b':')?;
        V::deserialize(&mut *self.parser)
    }
}

/// Feeds an already-parsed variant tag to the derive's tag visitor.
struct TagDeserializer {
    tag: String,
}

impl<'de> de::Deserializer<'de> for TagDeserializer {
    type Error = JsonError;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        visitor.visit_string(self.tag)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        visitor.visit_some(self)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        _visitor: V,
    ) -> Result<V::Value, JsonError> {
        Err(JsonError::new("variant tag cannot itself be an enum"))
    }
}

/// Enum access for externally tagged values: either a bare `"Name"` string
/// (unit variants) or the single-key object `{"Name": content}`.
struct EnumFrame<'a, 'de> {
    parser: &'a mut Parser<'de>,
    tag: String,
    /// `true` when the tag came from a `{"Name": ...}` object whose content
    /// and closing `}` still need to be consumed.
    has_content: bool,
}

impl<'de> de::EnumAccess<'de> for EnumFrame<'_, 'de> {
    type Error = JsonError;
    type Variant = Self;

    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self), JsonError> {
        let tag = V::deserialize(TagDeserializer { tag: self.tag.clone() })?;
        Ok((tag, self))
    }
}

impl<'de> de::VariantAccess<'de> for EnumFrame<'_, 'de> {
    type Error = JsonError;

    fn unit_variant(self) -> Result<(), JsonError> {
        if self.has_content {
            // Tolerate `{"Name": null}` as a unit variant.
            self.parser.skip_value()?;
            self.parser.expect(b'}')?;
        }
        Ok(())
    }

    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, JsonError> {
        if !self.has_content {
            return Err(JsonError::new(format!(
                "variant `{}` expects a value: `{{\"{}\": ...}}`",
                self.tag, self.tag
            )));
        }
        let value = T::deserialize(&mut *self.parser)?;
        self.parser.expect(b'}')?;
        Ok(value)
    }

    fn tuple_variant<V: Visitor<'de>>(
        self,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, JsonError> {
        if !self.has_content {
            return Err(JsonError::new(format!(
                "variant `{}` expects an array: `{{\"{}\": [...]}}`",
                self.tag, self.tag
            )));
        }
        let value = {
            let content = &mut *self.parser;
            content.skip_whitespace();
            content.expect(b'[')?;
            content.enter()?;
            let mut frame = SeqFrame { parser: content, first: true, done: false };
            let value = visitor.visit_seq(&mut frame)?;
            frame.drain()?;
            value
        };
        self.parser.leave();
        self.parser.expect(b'}')?;
        Ok(value)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, JsonError> {
        if !self.has_content {
            return Err(JsonError::new(format!(
                "variant `{}` expects an object: `{{\"{}\": {{...}}}}`",
                self.tag, self.tag
            )));
        }
        let value = {
            let content = &mut *self.parser;
            content.skip_whitespace();
            content.expect(b'{')?;
            content.enter()?;
            let mut frame =
                MapFrame { parser: content, first: true, done: false, expect_value: false };
            let value = visitor.visit_map(&mut frame)?;
            frame.drain()?;
            value
        };
        self.parser.leave();
        self.parser.expect(b'}')?;
        Ok(value)
    }
}

impl<'de> de::Deserializer<'de> for &mut Parser<'de> {
    type Error = JsonError;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        self.skip_whitespace();
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => {
                self.expect_keyword("null")?;
                visitor.visit_unit()
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                visitor.visit_bool(true)
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                visitor.visit_bool(false)
            }
            Some(b'"') => {
                let value = self.parse_string()?;
                visitor.visit_string(value)
            }
            Some(b'[') => {
                self.pos += 1;
                self.enter()?;
                let mut frame = SeqFrame { parser: self, first: true, done: false };
                let value = visitor.visit_seq(&mut frame)?;
                frame.drain()?;
                frame.parser.leave();
                Ok(value)
            }
            Some(b'{') => {
                self.pos += 1;
                self.enter()?;
                let mut frame =
                    MapFrame { parser: self, first: true, done: false, expect_value: false };
                let value = visitor.visit_map(&mut frame)?;
                frame.drain()?;
                frame.parser.leave();
                Ok(value)
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(visitor),
            Some(byte) => Err(self.error(format!("unexpected character `{}`", byte as char))),
        }
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        self.skip_whitespace();
        if self.peek() == Some(b'n') {
            self.expect_keyword("null")?;
            visitor.visit_none()
        } else {
            visitor.visit_some(self)
        }
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, JsonError> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'"') => {
                let tag = self.parse_string()?;
                visitor.visit_enum(EnumFrame { parser: self, tag, has_content: false })
            }
            Some(b'{') => {
                self.pos += 1;
                self.enter()?;
                self.skip_whitespace();
                let tag = self.parse_string()?;
                self.expect(b':')?;
                self.skip_whitespace();
                let value =
                    visitor.visit_enum(EnumFrame { parser: self, tag, has_content: true })?;
                self.leave();
                Ok(value)
            }
            _ => Err(self.error(format!(
                "expected enum (string tag or single-key object), found {}",
                self.describe_next()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: f64,
        y: f64,
        label: String,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Empty,
        Circle(f64),
        Rect { w: f64, h: f64 },
        Pair(f64, f64),
    }

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&-42i64).unwrap(), "-42");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let gnarly = "a\"b\\c\nd\te\u{8}\u{c}\u{1}é€\u{10348}";
        let json = to_string(&gnarly.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), gnarly);
        // Surrogate-pair escapes decode too.
        assert_eq!(from_str::<String>(r#""𐍈""#).unwrap(), "\u{10348}");
        assert!(from_str::<String>(r#""\ud800""#).is_err());
    }

    #[test]
    fn structs_and_enums_round_trip() {
        let point = Point { x: 1.25, y: -0.5, label: "origin-ish".into() };
        let json = to_string(&point).unwrap();
        assert_eq!(json, r#"{"x":1.25,"y":-0.5,"label":"origin-ish"}"#);
        assert_eq!(from_str::<Point>(&json).unwrap(), point);

        for shape in [
            Shape::Empty,
            Shape::Circle(2.0),
            Shape::Rect { w: 3.0, h: 4.0 },
            Shape::Pair(1.0, 2.0),
        ] {
            let json = to_string(&shape).unwrap();
            assert_eq!(from_str::<Shape>(&json).unwrap(), shape);
        }
        assert_eq!(to_string(&Shape::Empty).unwrap(), r#""Empty""#);
        assert_eq!(to_string(&Shape::Circle(2.0)).unwrap(), r#"{"Circle":2}"#);
    }

    #[test]
    fn options_and_sequences_round_trip() {
        let values: Vec<Option<f64>> = vec![Some(1.0), None, Some(-2.5)];
        let json = to_string(&values).unwrap();
        assert_eq!(json, "[1,null,-2.5]");
        assert_eq!(from_str::<Vec<Option<f64>>>(&json).unwrap(), values);
    }

    #[test]
    fn non_finite_floats_are_rejected() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
        assert!(to_string(&f64::NEG_INFINITY).is_err());
    }

    #[test]
    fn unknown_fields_are_skipped() {
        let json = r#"{"x":1,"extra":{"deep":[1,2,{"a":"b"}]},"y":2,"label":"p"}"#;
        let point = from_str::<Point>(json).unwrap();
        assert_eq!(point, Point { x: 1.0, y: 2.0, label: "p".into() });
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<Vec<f64>>("[1,2").is_err());
        assert!(from_str::<Point>(r#"{"x":1}"#).is_err());
        assert!(from_str::<f64>("1.5 junk").is_err());
        let deep = "[".repeat(MAX_DEPTH + 1);
        assert!(from_str::<IgnoredAny>(&deep).is_err());
    }

    #[test]
    fn float_round_trip_is_exact() {
        for value in [0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -0.0, 6.02e23] {
            let json = to_string(&value).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), value.to_bits(), "{value} -> {json}");
        }
    }
}
