//! Versioned wire envelope.
//!
//! Every document stc-serve writes is wrapped as
//! `{"schema_version": N, "payload": ...}` so a report written today can be
//! refused — with a typed error instead of a field-mismatch puzzle — by a
//! future build whose schema moved on.  Decoding is two-pass: a cheap probe
//! reads only `schema_version` (ignoring the payload), and the full payload
//! is parsed only when the version matches [`SCHEMA_VERSION`].

use serde::{Deserialize, Serialize};

use crate::error::ServeError;
use crate::json;

/// The wire schema version this build reads and writes.
pub const SCHEMA_VERSION: u32 = 1;

/// The versioned wrapper around every serialized document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope<T> {
    /// Schema version of `payload`; see [`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// The wrapped document.
    pub payload: T,
}

/// Probe type for the first decoding pass: pulls out `schema_version` and
/// skips everything else, so version checks never depend on the payload
/// still being parseable.
#[derive(Deserialize)]
struct VersionProbe {
    schema_version: u32,
}

/// Serializes `payload` inside a version-1 envelope.
pub fn encode<T: Serialize>(payload: &T) -> Result<String, ServeError> {
    let envelope = Envelope { schema_version: SCHEMA_VERSION, payload };
    Ok(json::to_string(&envelope)?)
}

/// Decodes an enveloped document, rejecting unknown schema versions with
/// [`ServeError::UnsupportedSchemaVersion`] before touching the payload.
pub fn decode<T: for<'de> Deserialize<'de>>(input: &str) -> Result<T, ServeError> {
    let probe: VersionProbe = json::from_str(input)?;
    if probe.schema_version != SCHEMA_VERSION {
        return Err(ServeError::UnsupportedSchemaVersion {
            found: probe.schema_version,
            supported: SCHEMA_VERSION,
        });
    }
    let envelope: Envelope<T> = json::from_str(input)?;
    Ok(envelope.payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_the_envelope() {
        let encoded = encode(&vec![1.5f64, -2.0]).unwrap();
        assert_eq!(encoded, r#"{"schema_version":1,"payload":[1.5,-2]}"#);
        let decoded: Vec<f64> = decode(&encoded).unwrap();
        assert_eq!(decoded, vec![1.5, -2.0]);
    }

    #[test]
    fn rejects_unknown_schema_versions() {
        let error = decode::<Vec<f64>>(r#"{"schema_version":99,"payload":[]}"#).unwrap_err();
        match error {
            ServeError::UnsupportedSchemaVersion { found, supported } => {
                assert_eq!(found, 99);
                assert_eq!(supported, SCHEMA_VERSION);
            }
            other => panic!("expected UnsupportedSchemaVersion, got {other:?}"),
        }
    }

    #[test]
    fn version_check_ignores_payload_shape() {
        // The probe must not choke on a payload it cannot interpret.
        let error =
            decode::<Vec<f64>>(r#"{"payload":{"future":"shape"},"schema_version":2}"#).unwrap_err();
        assert!(matches!(error, ServeError::UnsupportedSchemaVersion { found: 2, .. }));
    }

    #[test]
    fn missing_version_is_an_error() {
        assert!(decode::<Vec<f64>>(r#"{"payload":[]}"#).is_err());
    }
}
