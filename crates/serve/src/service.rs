//! The compaction job queue.
//!
//! [`CompactionService`] owns a bounded pool of worker threads draining a
//! FIFO queue of [`JobSpec`]s.  Each job is sharded into one sub-job per
//! device; the shards share a single fresh [`PopulationCache`] and run on a
//! per-job work-stealing pool (`shard_threads` wide), so the assembled
//! [`BatchReport`] is *identical* — field for field, byte for byte once
//! serialized — to what a direct [`PipelineBatch::run`] over the same
//! devices would produce.
//!
//! While a job runs, a [`ProgressObserver`] per shard streams training
//! counts and committed frontiers into the job's [`JobProgress`], which
//! [`CompactionService::status`] exposes as [`JobStatus::Running`] — an
//! anytime view of the search: the best frontier so far, per device, long
//! before the job completes.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use serde::{Deserialize, Serialize};
use stc_core::pipeline::CompactionPipeline;
use stc_core::search::{FrontierSnapshot, ProgressObserver, TrainingEvent};
use stc_core::{
    BatchAggregate, BatchReport, BatchRun, CompactionError, PipelineBatch, PopulationCache,
};

use crate::error::ServeError;
use crate::spec::{DeviceSpec, JobSpec, MeasuredDevice};

/// Handle to a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JobId(u64);

impl JobId {
    /// Rebuilds a handle from its raw value (say, parsed from a CLI
    /// argument); only ids issued by the same service instance resolve.
    pub fn from_raw(id: u64) -> Self {
        JobId(id)
    }

    /// The raw numeric id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Live progress of one shard (one device) of a running job.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardProgress {
    /// The shard's batch label.
    pub label: String,
    /// Whether a worker has picked the shard up.
    pub started: bool,
    /// Whether the shard's pipeline has completed.
    pub finished: bool,
    /// Models trained so far (cumulative, from [`TrainingEvent`]).
    pub trainings: usize,
    /// SMO solver iterations spent so far.
    pub solver_iterations: usize,
    /// The best committed elimination frontier so far.
    pub best_frontier: Vec<usize>,
    /// Held-out prediction error of that frontier, when already scored.
    pub prediction_error: Option<f64>,
}

/// Live progress of a running job: one entry per shard, in device order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JobProgress {
    /// Per-shard progress, in the order the devices appear in the spec.
    pub shards: Vec<ShardProgress>,
}

impl JobProgress {
    /// Total tests eliminated across all best frontiers so far.
    pub fn eliminated_so_far(&self) -> usize {
        self.shards.iter().map(|shard| shard.best_frontier.len()).sum()
    }

    /// Total models trained across all shards so far.
    pub fn trainings_so_far(&self) -> usize {
        self.shards.iter().map(|shard| shard.trainings).sum()
    }
}

/// The externally visible lifecycle of a job.
//
// The `Done` report dwarfs the other variants, but the wire shape is pinned
// byte-for-byte by the round-trip suite and statuses are few and short-lived,
// so boxing the report buys nothing worth the format risk.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is running the job's shards.
    Running {
        /// Anytime progress snapshot.
        progress: JobProgress,
    },
    /// All shards completed; the report is final.
    Done {
        /// The assembled batch report.
        report: BatchReport,
    },
    /// A shard failed; the job stopped at the first error.
    Failed {
        /// Human-readable failure description.
        error: String,
    },
    /// Cancelled before completion (a job cancelled while queued never
    /// trains a model).
    Cancelled,
}

impl JobStatus {
    /// Whether the status is final ([`Done`](JobStatus::Done),
    /// [`Failed`](JobStatus::Failed) or [`Cancelled`](JobStatus::Cancelled)).
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobStatus::Done { .. } | JobStatus::Failed { .. } | JobStatus::Cancelled)
    }

    /// The completed report, when [`Done`](JobStatus::Done).
    pub fn report(&self) -> Option<&BatchReport> {
        match self {
            JobStatus::Done { report } => Some(report),
            _ => None,
        }
    }
}

/// Internal job state; [`JobStatus`] is composed from this plus the live
/// progress on demand.
#[allow(clippy::large_enum_variant)] // one entry per job; mirrors JobStatus
#[derive(Debug)]
enum JobState {
    Queued,
    Running,
    Done(BatchReport),
    Failed(String),
    Cancelled,
}

#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    state: JobState,
    progress: Arc<Mutex<JobProgress>>,
    cancelled: Arc<AtomicBool>,
}

#[derive(Debug)]
struct ServiceState {
    next_id: u64,
    queue: VecDeque<u64>,
    jobs: HashMap<u64, JobEntry>,
    shutdown: bool,
}

#[derive(Debug)]
struct ServiceShared {
    state: Mutex<ServiceState>,
    /// Wakes workers when work arrives or the service shuts down.
    work: Condvar,
    /// Wakes [`CompactionService::await_result`] when a job turns terminal.
    done: Condvar,
}

/// A bounded-worker compaction job queue; see the [module docs](self).
#[derive(Debug)]
pub struct CompactionService {
    shared: Arc<ServiceShared>,
    workers: Vec<JoinHandle<()>>,
}

impl CompactionService {
    /// Starts a service with `workers` job workers (clamped to at least
    /// one).  Each worker runs one job at a time; a job's shards additionally
    /// fan out over its own [`JobSpec::shard_threads`].
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(ServiceShared {
            state: Mutex::new(ServiceState {
                next_id: 0,
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        CompactionService { shared, workers }
    }

    /// Validates and enqueues a job, returning its handle immediately.
    ///
    /// # Errors
    ///
    /// Rejects invalid specs ([`JobSpec::validate`]) and submissions to a
    /// shutting-down service.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, ServeError> {
        spec.validate()?;
        let mut state = self.shared.state.lock().expect("service state poisoned");
        if state.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        let id = state.next_id;
        state.next_id += 1;
        state.jobs.insert(
            id,
            JobEntry {
                spec,
                state: JobState::Queued,
                progress: Arc::new(Mutex::new(JobProgress::default())),
                cancelled: Arc::new(AtomicBool::new(false)),
            },
        );
        state.queue.push_back(id);
        drop(state);
        self.shared.work.notify_one();
        Ok(JobId(id))
    }

    /// The job's current status; `Running` statuses carry a fresh progress
    /// snapshot.
    ///
    /// # Errors
    ///
    /// Fails on ids this service never issued.
    pub fn status(&self, id: JobId) -> Result<JobStatus, ServeError> {
        let state = self.shared.state.lock().expect("service state poisoned");
        let entry = state.jobs.get(&id.0).ok_or(ServeError::UnknownJob(id.0))?;
        Ok(compose_status(entry))
    }

    /// Requests cancellation.  A queued job is cancelled immediately and
    /// never trains; a running job stops at its next shard boundary.
    /// Returns `false` when the job had already finished.
    ///
    /// # Errors
    ///
    /// Fails on ids this service never issued.
    pub fn cancel(&self, id: JobId) -> Result<bool, ServeError> {
        let mut state = self.shared.state.lock().expect("service state poisoned");
        let entry = state.jobs.get_mut(&id.0).ok_or(ServeError::UnknownJob(id.0))?;
        match entry.state {
            JobState::Queued => {
                entry.state = JobState::Cancelled;
                entry.cancelled.store(true, Ordering::SeqCst);
                drop(state);
                self.shared.done.notify_all();
                Ok(true)
            }
            JobState::Running => {
                entry.cancelled.store(true, Ordering::SeqCst);
                Ok(true)
            }
            JobState::Done(_) | JobState::Failed(_) | JobState::Cancelled => Ok(false),
        }
    }

    /// Blocks until the job reaches a terminal status and returns it.
    ///
    /// # Errors
    ///
    /// Fails on ids this service never issued.
    pub fn await_result(&self, id: JobId) -> Result<JobStatus, ServeError> {
        let mut state = self.shared.state.lock().expect("service state poisoned");
        loop {
            let entry = state.jobs.get(&id.0).ok_or(ServeError::UnknownJob(id.0))?;
            let status = compose_status(entry);
            if status.is_terminal() {
                return Ok(status);
            }
            state = self.shared.done.wait(state).expect("service state poisoned");
        }
    }

    /// Convenience wrapper: submit one job, block for its report.
    ///
    /// # Errors
    ///
    /// Propagates submission errors; failed jobs surface as
    /// [`ServeError::JobFailed`], cancelled jobs as
    /// [`ServeError::Cancelled`].
    pub fn run_blocking(&self, spec: JobSpec) -> Result<BatchReport, ServeError> {
        let id = self.submit(spec)?;
        match self.await_result(id)? {
            JobStatus::Done { report } => Ok(report),
            JobStatus::Failed { error } => Err(ServeError::JobFailed(error)),
            JobStatus::Cancelled => Err(ServeError::Cancelled),
            status => unreachable!("await_result returned non-terminal status {status:?}"),
        }
    }
}

impl Drop for CompactionService {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("service state poisoned");
            state.shutdown = true;
            // Cancel whatever is still running so workers return promptly.
            for entry in state.jobs.values() {
                entry.cancelled.store(true, Ordering::SeqCst);
            }
        }
        self.shared.work.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn compose_status(entry: &JobEntry) -> JobStatus {
    match &entry.state {
        JobState::Queued => JobStatus::Queued,
        JobState::Running => JobStatus::Running {
            progress: entry.progress.lock().expect("progress poisoned").clone(),
        },
        JobState::Done(report) => JobStatus::Done { report: report.clone() },
        JobState::Failed(error) => JobStatus::Failed { error: error.clone() },
        JobState::Cancelled => JobStatus::Cancelled,
    }
}

fn worker_loop(shared: &ServiceShared) {
    loop {
        let claimed = {
            let mut state = shared.state.lock().expect("service state poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(id) = state.queue.pop_front() {
                    let entry = state.jobs.get_mut(&id).expect("queued job must exist");
                    // Cancelled while queued: skip without running anything.
                    if matches!(entry.state, JobState::Cancelled) {
                        continue;
                    }
                    entry.state = JobState::Running;
                    break Some((
                        id,
                        entry.spec.clone(),
                        Arc::clone(&entry.progress),
                        Arc::clone(&entry.cancelled),
                    ));
                }
                state = shared.work.wait(state).expect("service state poisoned");
            }
        };
        let Some((id, spec, progress, cancelled)) = claimed else { return };
        let outcome = run_job(&spec, &progress, &cancelled);
        {
            let mut state = shared.state.lock().expect("service state poisoned");
            let entry = state.jobs.get_mut(&id).expect("running job must exist");
            entry.state = match outcome {
                Ok(report) => JobState::Done(report),
                Err(JobError::Cancelled) => JobState::Cancelled,
                Err(JobError::Shard(error)) => JobState::Failed(error.to_string()),
            };
        }
        shared.done.notify_all();
    }
}

enum JobError {
    Cancelled,
    Shard(CompactionError),
}

/// Observer bridging one shard's search events into the job's progress.
#[derive(Debug)]
struct ShardObserver {
    index: usize,
    progress: Arc<Mutex<JobProgress>>,
}

impl ProgressObserver for ShardObserver {
    fn on_training(&self, event: &TrainingEvent) {
        let mut progress = self.progress.lock().expect("progress poisoned");
        let shard = &mut progress.shards[self.index];
        shard.trainings = event.trainings;
        shard.solver_iterations = event.solver_iterations;
    }

    fn on_frontier(&self, snapshot: &FrontierSnapshot) {
        let mut progress = self.progress.lock().expect("progress poisoned");
        let shard = &mut progress.shards[self.index];
        shard.best_frontier = snapshot.eliminated.clone();
        shard.prediction_error = snapshot.prediction_error;
    }
}

/// Runs every shard of one job over a shared population cache and assembles
/// the batch report ([`BatchAggregate::from_runs`] keeps the statistics
/// identical to a direct [`PipelineBatch::run`]).
fn run_job(
    spec: &JobSpec,
    progress: &Arc<Mutex<JobProgress>>,
    cancelled: &AtomicBool,
) -> Result<BatchReport, JobError> {
    let shard_count = spec.devices.len();
    let labels: Vec<String> = spec
        .devices
        .iter()
        .enumerate()
        .map(|(index, device)| match device {
            DeviceSpec::Measured { label, .. } => label.clone(),
            simulated => {
                let resolved = simulated.resolve().expect("simulated spec must resolve");
                format!("{}#{index}", resolved.as_device().name())
            }
        })
        .collect();
    {
        let mut snapshot = progress.lock().expect("progress poisoned");
        snapshot.shards = labels
            .iter()
            .map(|label| ShardProgress { label: label.clone(), ..ShardProgress::default() })
            .collect();
    }
    if cancelled.load(Ordering::SeqCst) {
        return Err(JobError::Cancelled);
    }

    let strategy = spec.strategy.build();
    let classifier = spec.classifier.build();
    let populations = Arc::new(PopulationCache::new());
    let threads = spec.shard_threads.clamp(1, shard_count.max(1));

    let next_shard = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Result<BatchRun, CompactionError>>>> =
        (0..shard_count).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if cancelled.load(Ordering::SeqCst) {
                    break;
                }
                let index = next_shard.fetch_add(1, Ordering::SeqCst);
                if index >= shard_count {
                    break;
                }
                {
                    let mut snapshot = progress.lock().expect("progress poisoned");
                    snapshot.shards[index].started = true;
                }
                let observer: Arc<dyn ProgressObserver> =
                    Arc::new(ShardObserver { index, progress: Arc::clone(progress) });
                let outcome = run_shard(
                    spec,
                    &spec.devices[index],
                    &labels[index],
                    &populations,
                    Arc::clone(&strategy),
                    Arc::clone(&classifier),
                    observer,
                );
                {
                    let mut snapshot = progress.lock().expect("progress poisoned");
                    snapshot.shards[index].finished = outcome.is_ok();
                }
                *results[index].lock().expect("shard result poisoned") = Some(outcome);
            });
        }
    });

    if cancelled.load(Ordering::SeqCst) {
        return Err(JobError::Cancelled);
    }
    let mut runs = Vec::with_capacity(shard_count);
    for cell in results {
        match cell.into_inner().expect("shard result poisoned") {
            Some(Ok(run)) => runs.push(run),
            // Report the lowest-index failure, like `PipelineBatch::run`.
            Some(Err(error)) => return Err(JobError::Shard(error)),
            None => return Err(JobError::Cancelled),
        }
    }
    let aggregate = BatchAggregate::from_runs(&runs);
    let population_cache = populations.stats();
    Ok(BatchReport {
        runs,
        aggregate,
        population_cache_hits: population_cache.hits,
        population_cache_misses: population_cache.misses,
    })
}

/// Runs one device shard: simulated devices go through a single-entry
/// [`PipelineBatch`] sharing the job's population cache, measured data goes
/// straight into [`CompactionPipeline::run_with_population`].
fn run_shard(
    spec: &JobSpec,
    device: &DeviceSpec,
    label: &str,
    populations: &Arc<PopulationCache>,
    strategy: Arc<dyn stc_core::SearchStrategy>,
    classifier: Arc<dyn stc_core::ClassifierFactory>,
    observer: Arc<dyn ProgressObserver>,
) -> Result<BatchRun, CompactionError> {
    if let DeviceSpec::Measured { label: measured_label, train, test } = device {
        let stub = MeasuredDevice { label: measured_label.clone() };
        let mut pipeline = CompactionPipeline::for_device(&stub)
            .compaction(spec.compaction.clone())
            .search_arc(strategy)
            .classifier_arc(classifier)
            .observer(observer);
        if let Some(guard_band) = spec.guard_band {
            pipeline = pipeline.guard_band(guard_band);
        }
        if let Some(budget) = spec.budget {
            pipeline = pipeline.budget(budget);
        }
        if let Some(screening) = spec.screening {
            pipeline = pipeline.screening(screening);
        }
        if let Some(cost_model) = &spec.cost_model {
            pipeline = pipeline.cost_model(cost_model.clone());
        }
        if let Some(cells) = spec.lookup_table {
            pipeline = pipeline.lookup_table(cells);
        }
        if let Some(sequential) = spec.sequential {
            pipeline = pipeline.sequential_deploy(sequential);
        }
        let report = pipeline.run_with_population(train.clone(), test.clone())?;
        return Ok(BatchRun { label: label.to_string(), report });
    }

    let resolved = device.resolve().expect("non-measured spec must resolve");
    let mut batch = PipelineBatch::new()
        .device_labelled(label, resolved.as_device())
        .monte_carlo(spec.monte_carlo)
        .compaction(spec.compaction.clone())
        .search_arc(strategy)
        .classifier_arc(classifier)
        .with_population_cache(Arc::clone(populations))
        .observer(observer);
    if let Some(instances) = spec.test_instances {
        batch = batch.test_instances(instances);
    }
    if let Some(guard_band) = spec.guard_band {
        batch = batch.guard_band(guard_band);
    }
    if let Some(budget) = spec.budget {
        batch = batch.budget(budget);
    }
    if let Some(screening) = spec.screening {
        batch = batch.screening(screening);
    }
    if let Some(cost_model) = &spec.cost_model {
        batch = batch.cost_model(cost_model.clone());
    }
    if let Some(cells) = spec.lookup_table {
        batch = batch.lookup_table(cells);
    }
    if let Some(sequential) = spec.sequential {
        batch = batch.sequential_deploy(sequential);
    }
    let report = batch.run()?;
    let run = report.runs.into_iter().next().expect("single-entry batch yields one run");
    Ok(run)
}
