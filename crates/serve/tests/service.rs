//! Service-level behaviour: shard/direct parity, cancellation semantics,
//! budget exhaustion, and streaming progress.

use stc_core::search::{CmaEs, JointGuardBand, SearchBudget};
use stc_core::{CompactionConfig, MonteCarloConfig, PipelineBatch, SyntheticDevice};
use stc_serve::{
    envelope, ClassifierSpec, CompactionService, DeviceSpec, JobSpec, JobStatus, ServeError,
    StrategySpec,
};

fn synthetic_pair_spec() -> JobSpec {
    JobSpec::new(
        vec![
            DeviceSpec::Synthetic { specs: 4, limit: 1.8, correlation: 0.9 },
            DeviceSpec::Synthetic { specs: 5, limit: 1.5, correlation: 0.8 },
        ],
        MonteCarloConfig::new(120).with_seed(42),
        CompactionConfig::paper_default().with_tolerance(0.1),
    )
}

/// The acceptance gate of the job layer: a sharded service job must produce
/// a report *byte-for-byte identical* (once serialized) to a direct
/// `PipelineBatch::run` over the same devices.
#[test]
fn sharded_job_matches_direct_batch_byte_for_byte() {
    let alpha = SyntheticDevice::new(4, 1.8, 0.9);
    let beta = SyntheticDevice::new(5, 1.5, 0.8);
    let direct = PipelineBatch::new()
        .device(&alpha)
        .device(&beta)
        .monte_carlo(MonteCarloConfig::new(120).with_seed(42))
        .compaction(CompactionConfig::paper_default().with_tolerance(0.1))
        .run()
        .expect("direct batch runs");

    let mut spec = synthetic_pair_spec();
    spec.shard_threads = 2;
    let service = CompactionService::new(2);
    let report = service.run_blocking(spec).expect("service job runs");

    let direct_json = envelope::encode(&direct).expect("direct encodes");
    let service_json = envelope::encode(&report).expect("service encodes");
    assert_eq!(direct_json, service_json);
}

/// Cancelling a queued job must transition it to `Cancelled` without ever
/// training a model: with a single worker busy on an earlier job, the
/// second submission is still queued when the cancel lands.
#[test]
fn cancelling_a_queued_job_never_trains() {
    let service = CompactionService::new(1);
    let mut slow = synthetic_pair_spec();
    // An SVM-backed job is slow enough that the worker is still on it when
    // the cancel below lands.
    slow.classifier = ClassifierSpec::Svm;
    slow.monte_carlo = MonteCarloConfig::new(200).with_seed(9);
    let running = service.submit(slow).expect("first job queues");

    let queued = service.submit(synthetic_pair_spec()).expect("second job queues");
    assert!(service.cancel(queued).expect("cancel reaches the job"));
    // The job is terminal immediately — no worker ever picked it up.
    assert!(matches!(service.status(queued).expect("status"), JobStatus::Cancelled));

    match service.await_result(queued).expect("await") {
        JobStatus::Cancelled => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // The first job is unaffected by its neighbour's cancellation.
    let first = service.await_result(running).expect("await first");
    assert!(first.report().is_some(), "first job should complete: {first:?}");
    // Cancelling a finished job reports `false`.
    assert!(!service.cancel(running).expect("cancel finished"));
}

/// A budget too small to finish the search must still produce `Done` — the
/// anytime contract — with the exhaustion recorded in the report, never a
/// `Failed` status.
#[test]
fn budget_exhausted_jobs_complete_as_done() {
    let mut spec = synthetic_pair_spec();
    spec.budget = Some(SearchBudget::unlimited().with_max_trainings(1));
    let service = CompactionService::new(1);
    let id = service.submit(spec).expect("job queues");
    let status = service.await_result(id).expect("await");
    let report = match status {
        JobStatus::Done { report } => report,
        other => panic!("budget exhaustion must not fail the job: {other:?}"),
    };
    assert_eq!(report.budget_exhausted_runs(), 2);
    for run in &report.runs {
        assert!(run.report.budget().exhausted, "run {} should be truncated", run.label);
    }
    assert!(report.summary().contains("search budget exhausted in 2 of 2 runs"));
}

/// While a job runs, `status` must expose at least one `Running` snapshot
/// whose best-frontier-so-far is non-empty — the streaming anytime view.
#[test]
fn running_jobs_stream_non_empty_frontiers() {
    let mut spec = synthetic_pair_spec();
    // SVM training makes each shard slow enough to observe mid-flight.
    spec.classifier = ClassifierSpec::Svm;
    spec.monte_carlo = MonteCarloConfig::new(200).with_seed(5);
    let service = CompactionService::new(1);
    let id = service.submit(spec).expect("job queues");

    let mut saw_running_frontier = false;
    let final_report = loop {
        match service.status(id).expect("status") {
            JobStatus::Queued => std::thread::yield_now(),
            JobStatus::Running { progress } => {
                if progress.eliminated_so_far() > 0 {
                    saw_running_frontier = true;
                }
                std::thread::yield_now();
            }
            JobStatus::Done { report } => break report,
            other => panic!("unexpected terminal status {other:?}"),
        }
    };
    assert!(
        saw_running_frontier,
        "never observed a Running snapshot with a non-empty best frontier"
    );
    assert!(final_report.aggregate.total_eliminated > 0);
    // The trainings ticker also streamed.
    match service.status(id).expect("status") {
        JobStatus::Done { report } => {
            assert_eq!(report.aggregate.devices, 2);
        }
        other => panic!("job regressed from Done: {other:?}"),
    }
}

#[test]
fn unknown_jobs_and_empty_specs_are_rejected() {
    let service = CompactionService::new(1);
    let spec =
        JobSpec::new(Vec::new(), MonteCarloConfig::new(10), CompactionConfig::paper_default());
    assert!(matches!(service.submit(spec), Err(ServeError::InvalidSpec(_))));

    let ok = service.submit(synthetic_pair_spec()).expect("valid spec queues");
    let _ = service.await_result(ok).expect("await");
    let bogus = stc_serve::JobId::from_raw(u64::MAX);
    assert!(matches!(service.status(bogus), Err(ServeError::UnknownJob(_))));
}

/// The relaxed global strategies run end to end through a serve job spec:
/// a CMA-ES job with joint guard-band co-optimization produces the same
/// report as a direct batch run with the equivalent strategy value.
#[test]
fn relaxed_strategy_jobs_match_direct_batches() {
    let mut spec = synthetic_pair_spec();
    spec.strategy = StrategySpec::CmaEs {
        seed: 11,
        population: 6,
        generations: 2,
        sigma: 0.3,
        joint_guard_band: Some(JointGuardBand::paper_default()),
    };
    let service = CompactionService::new(1);
    let report = service.run_blocking(spec).expect("cma-es job runs");
    assert_eq!(report.search_strategy(), "cma-es");

    let alpha = SyntheticDevice::new(4, 1.8, 0.9);
    let beta = SyntheticDevice::new(5, 1.5, 0.8);
    let direct = PipelineBatch::new()
        .device(&alpha)
        .device(&beta)
        .monte_carlo(MonteCarloConfig::new(120).with_seed(42))
        .compaction(CompactionConfig::paper_default().with_tolerance(0.1))
        .search(CmaEs {
            seed: 11,
            population: 6,
            generations: 2,
            sigma: 0.3,
            joint_guard_band: Some(JointGuardBand::paper_default()),
        })
        .run()
        .expect("direct batch runs");
    let direct_json = envelope::encode(&direct).expect("direct encodes");
    let service_json = envelope::encode(&report).expect("service encodes");
    assert_eq!(direct_json, service_json);
    let co_optimized =
        report.reports().filter(|run| run.compaction.co_optimized_guard_band.is_some()).count();
    assert_eq!(report.aggregate.co_optimized_bands, co_optimized);
}
