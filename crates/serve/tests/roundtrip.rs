//! Wire-format round-trip properties: every serialized type must survive
//! `value -> JSON -> value` (equality for `PartialEq` types) and
//! `JSON -> value -> JSON` (byte-for-byte reserialization for reports).

use std::time::Duration;

use proptest::prelude::*;
use stc_core::pipeline::CompactionPipeline;
use stc_core::search::{
    BeamSearch, FrontierSnapshot, JointGuardBand, ScreeningConfig, SearchBudget,
};
use stc_core::{
    CacheStats, CompactionConfig, EliminationOrder, GuardBandConfig, MeasurementSet,
    MonteCarloConfig, PipelineBatch, PipelineReport, Specification, SpecificationSet,
    SyntheticDevice, TestCostModel,
};
use stc_serve::{envelope, ClassifierSpec, DeviceSpec, JobSpec, ServeError, StrategySpec};

fn json_round_trip<T>(value: &T) -> T
where
    T: serde::ser::Serialize + for<'de> serde::de::Deserialize<'de>,
{
    let json = stc_serve::json::to_string(value).expect("serializes");
    let back: T = stc_serve::json::from_str(&json).expect("parses back");
    let json_again = stc_serve::json::to_string(&back).expect("reserializes");
    assert_eq!(json, json_again, "reserialization must be byte-identical");
    back
}

fn order_from(choice: usize, seed: u64, functional: Vec<usize>) -> EliminationOrder {
    match choice {
        0 => EliminationOrder::ByClassificationPower,
        1 => EliminationOrder::ByCorrelationClustering,
        2 => EliminationOrder::Random { seed },
        _ => EliminationOrder::Functional(functional),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn monte_carlo_config_round_trips(
        instances in 1usize..2000,
        seed in 0u64..u64::MAX,
        threads in 1usize..9,
        skip in 0usize..2,
        q_low in 0.0f64..0.2,
        q_high in 0.8f64..1.0,
    ) {
        let mut config = MonteCarloConfig::new(instances)
            .with_seed(seed)
            .with_threads(threads)
            .with_calibration_quantiles(q_low, q_high);
        config.skip_failures = skip == 1;
        prop_assert_eq!(json_round_trip(&config), config);
    }

    #[test]
    fn compaction_config_round_trips(
        tolerance in 0.0f64..0.5,
        order_choice in 0usize..4,
        order_seed in 0u64..1_000_000,
        functional in prop::collection::vec(0usize..12, 0..12),
        max_eliminated in 0usize..10,
        threads in 1usize..5,
        warm in 0usize..2,
        band in 0.0f64..0.2,
        trainings_cap in 1usize..500,
        landmarks in 1usize..64,
        shortlist in 1usize..16,
    ) {
        let mut config = CompactionConfig::paper_default()
            .with_tolerance(tolerance)
            .with_order(order_from(order_choice, order_seed, functional))
            .with_threads(threads)
            .with_warm_start(warm == 1)
            .with_guard_band(GuardBandConfig::paper_default().with_guard_band(band).unwrap())
            .with_budget(SearchBudget::unlimited().with_max_trainings(trainings_cap))
            .with_screening(ScreeningConfig::screened(landmarks, shortlist));
        if max_eliminated > 0 {
            config = config.with_max_eliminated(max_eliminated);
        }
        prop_assert_eq!(json_round_trip(&config), config);
    }

    #[test]
    fn search_budget_round_trips(
        trainings in 0usize..2,
        trainings_cap in 1usize..10_000,
        iterations in 0usize..2,
        iterations_cap in 1usize..1_000_000,
        deadline in 0usize..2,
        deadline_millis in 1u64..100_000,
    ) {
        let mut budget = SearchBudget::unlimited();
        if trainings == 1 {
            budget = budget.with_max_trainings(trainings_cap);
        }
        if iterations == 1 {
            budget = budget.with_max_solver_iterations(iterations_cap);
        }
        if deadline == 1 {
            budget = budget.with_deadline(Duration::from_millis(deadline_millis));
        }
        prop_assert_eq!(json_round_trip(&budget), budget);
    }

    #[test]
    fn cost_model_round_trips(
        per_test in prop::collection::vec(0.0f64..25.0, 1..8),
        insertion_cost in 0.0f64..40.0,
    ) {
        let tests = per_test.len();
        let model = TestCostModel::new(
            per_test,
            vec![0; tests],
            vec![insertion_cost],
        ).expect("valid cost model");
        prop_assert_eq!(json_round_trip(&model), model);
    }

    #[test]
    fn cache_stats_round_trip(hits in 0usize..10_000, misses in 0usize..10_000) {
        let stats = CacheStats { hits, misses };
        prop_assert_eq!(json_round_trip(&stats), stats);
    }

    #[test]
    fn job_spec_round_trips(
        instances in 20usize..400,
        seed in 0u64..1_000_000,
        tolerance in 0.01f64..0.3,
        strategy_choice in 0usize..8,
        classifier_choice in 0usize..2,
        shard_threads in 0usize..4,
        sequential_choice in 0usize..3,
        joint_choice in 0usize..2,
        joint_max in 0.05f64..0.4,
    ) {
        let joint_guard_band = (joint_choice == 1)
            .then(|| JointGuardBand::new(joint_max).expect("valid joint band"));
        let strategy = match strategy_choice {
            0 => StrategySpec::Greedy,
            1 => StrategySpec::Beam { width: 3 },
            2 => StrategySpec::ForwardSelection,
            3 => StrategySpec::CostAware,
            4 => StrategySpec::Annealing { seed, schedule: Default::default() },
            5 => StrategySpec::Genetic { seed, population: 8, generations: 4 },
            6 => StrategySpec::CmaEs {
                seed,
                population: 8,
                generations: 4,
                sigma: 0.3,
                joint_guard_band,
            },
            _ => StrategySpec::ParticleSwarm {
                seed,
                particles: 8,
                iterations: 4,
                inertia: 0.7,
                joint_guard_band,
            },
        };
        let mut spec = JobSpec::new(
            vec![
                DeviceSpec::OpAmp,
                DeviceSpec::Synthetic { specs: 5, limit: 1.5, correlation: 0.8 },
            ],
            MonteCarloConfig::new(instances).with_seed(seed),
            CompactionConfig::paper_default().with_tolerance(tolerance),
        );
        spec.strategy = strategy;
        spec.classifier =
            if classifier_choice == 0 { ClassifierSpec::Grid } else { ClassifierSpec::Svm };
        spec.budget = Some(SearchBudget::unlimited().with_max_trainings(50));
        spec.screening = Some(ScreeningConfig::screened(24, 3));
        spec.shard_threads = shard_threads;
        spec.sequential = match sequential_choice {
            0 => None,
            1 => Some(false),
            _ => Some(true),
        };
        prop_assert_eq!(json_round_trip(&spec), spec);
    }
}

/// A tiny deterministic pipeline report for the report round-trip tests.
fn tiny_report() -> PipelineReport {
    let device = SyntheticDevice::new(4, 1.8, 0.9);
    CompactionPipeline::for_device(&device)
        .monte_carlo(MonteCarloConfig::new(90).with_seed(11))
        .compaction(CompactionConfig::paper_default().with_tolerance(0.1))
        .run()
        .expect("tiny pipeline runs")
}

#[test]
fn pipeline_report_round_trips_byte_for_byte() {
    let report = tiny_report();
    assert!(report.sequential.is_some(), "sequential deploy stats ship by default");
    let back = json_round_trip(&report);
    assert_eq!(back.kept(), report.kept());
    assert_eq!(back.eliminated(), report.eliminated());
    assert_eq!(back.summary(), report.summary());
    assert_eq!(back.sequential, report.sequential);
}

#[test]
fn pre_0_9_job_specs_still_parse() {
    // A spec serialized before the `sequential` field existed must keep
    // parsing, with the field at its pipeline default (None = enabled).
    let spec = JobSpec::new(
        vec![DeviceSpec::OpAmp],
        MonteCarloConfig::new(50).with_seed(5),
        CompactionConfig::paper_default().with_tolerance(0.1),
    );
    let json = stc_serve::json::to_string(&spec).expect("serializes");
    let legacy = json.replacen(r#""sequential":null,"#, "", 1);
    assert_ne!(json, legacy, "the sequential field must be present to strip");
    let back: JobSpec = stc_serve::json::from_str(&legacy).expect("legacy spec parses");
    assert_eq!(back, spec);
}

#[test]
fn pre_0_10_job_specs_still_parse() {
    // A spec serialized before the `screening` field existed must keep
    // parsing, with the field at its pipeline default (None = inherit the
    // compaction config, which defaults to screening off).
    let spec = JobSpec::new(
        vec![DeviceSpec::OpAmp],
        MonteCarloConfig::new(50).with_seed(5),
        CompactionConfig::paper_default().with_tolerance(0.1),
    );
    let json = stc_serve::json::to_string(&spec).expect("serializes");
    let legacy = json.replacen(r#""screening":null,"#, "", 1);
    assert_ne!(json, legacy, "the screening field must be present to strip");
    let back: JobSpec = stc_serve::json::from_str(&legacy).expect("legacy spec parses");
    assert_eq!(back, spec);
    assert!(!back.compaction.screening.enabled, "screening defaults off");
}

#[test]
fn pre_0_11_relaxed_strategy_specs_still_parse() {
    // A relaxed-strategy spec written without the `joint_guard_band` field
    // (or serialized before it existed) must keep parsing, with joint
    // co-optimization off.
    let mut spec = JobSpec::new(
        vec![DeviceSpec::OpAmp],
        MonteCarloConfig::new(50).with_seed(5),
        CompactionConfig::paper_default().with_tolerance(0.1),
    );
    spec.strategy = StrategySpec::CmaEs {
        seed: 7,
        population: 8,
        generations: 4,
        sigma: 0.3,
        joint_guard_band: None,
    };
    let json = stc_serve::json::to_string(&spec).expect("serializes");
    let legacy = json.replacen(r#","joint_guard_band":null"#, "", 1);
    assert_ne!(json, legacy, "the joint_guard_band field must be present to strip");
    let back: JobSpec = stc_serve::json::from_str(&legacy).expect("legacy spec parses");
    assert_eq!(back, spec);
}

#[test]
fn batch_report_round_trips_byte_for_byte() {
    let alpha = SyntheticDevice::new(4, 1.8, 0.9);
    let beta = SyntheticDevice::new(3, 1.5, 0.7);
    let report = PipelineBatch::new()
        .device(&alpha)
        .device(&beta)
        .monte_carlo(MonteCarloConfig::new(80).with_seed(3))
        .compaction(CompactionConfig::paper_default().with_tolerance(0.1))
        .search(BeamSearch::new(2))
        .run()
        .expect("tiny batch runs");
    let back = json_round_trip(&report);
    assert_eq!(back.summary(), report.summary());
    assert_eq!(back.search_strategy(), "beam");
}

#[test]
fn enveloped_report_round_trips() {
    let report = tiny_report();
    let encoded = envelope::encode(&report).expect("encodes");
    let decoded: PipelineReport = envelope::decode(&encoded).expect("decodes");
    let encoded_again = envelope::encode(&decoded).expect("re-encodes");
    assert_eq!(encoded, encoded_again);
}

#[test]
fn measured_job_spec_round_trips() {
    let specs = SpecificationSet::new(vec![
        Specification::new("gain", "dB", 0.0, -1.0, 1.0).unwrap(),
        Specification::new("offset", "mV", 0.0, -2.0, 2.0).unwrap(),
    ])
    .unwrap();
    let rows = vec![vec![0.1, -0.4], vec![0.9, 1.8], vec![-0.7, 0.2], vec![2.0, 0.0]];
    let population = MeasurementSet::new(specs, rows).unwrap();
    let (train, test) = population.split_at(2);
    let spec = JobSpec::new(
        vec![DeviceSpec::Measured { label: "lot-7".into(), train, test }],
        MonteCarloConfig::new(1),
        CompactionConfig::paper_default(),
    );
    let back = json_round_trip(&spec);
    assert_eq!(back, spec);
}

#[test]
fn non_finite_floats_never_reach_the_wire() {
    let snapshot = FrontierSnapshot { eliminated: vec![1], prediction_error: Some(f64::NAN) };
    assert!(stc_serve::json::to_string(&snapshot).is_err());
    let infinite = FrontierSnapshot { eliminated: vec![2], prediction_error: Some(f64::INFINITY) };
    assert!(stc_serve::json::to_string(&infinite).is_err());
}

#[test]
fn invalid_cost_models_are_rejected_on_parse() {
    // A syntactically valid document whose payload violates the cost-model
    // invariants (negative cost) must fail through the validating
    // deserializer, not produce a corrupt model.
    let json = r#"{"per_test":[-1.0,2.0],"insertion_of_test":[0,0],"insertion_cost":[5.0]}"#;
    assert!(stc_serve::json::from_str::<TestCostModel>(json).is_err());
}

#[test]
fn unknown_schema_versions_are_rejected_with_a_typed_error() {
    let report = tiny_report();
    let encoded = envelope::encode(&report).expect("encodes");
    let bumped = encoded.replacen(r#""schema_version":1"#, r#""schema_version":2"#, 1);
    assert_ne!(encoded, bumped, "version literal must be present to bump");
    match envelope::decode::<PipelineReport>(&bumped) {
        Err(ServeError::UnsupportedSchemaVersion { found: 2, supported: 1 }) => {}
        other => panic!("expected UnsupportedSchemaVersion, got {other:?}"),
    }
}
