//! Benchmark of warm-started versus cold-started greedy elimination on the
//! op-amp case study — the hot path the 0.4 warm-start machinery targets.
//!
//! The greedy loop retrains an ε-SVM pair per examined candidate over the
//! same population; consecutive candidate kept sets differ by one
//! measurement column, so each training can start from the committed parent
//! kept set's projected dual solution instead of zero.  The benchmark runs
//! the identical compaction twice per configuration:
//!
//! * `cold` — `CompactionConfig::with_warm_start(false)`, the pre-0.4
//!   behaviour: every candidate trains from zero,
//! * `warm` — the 0.4 default: candidates warm-start from the parent model.
//!
//! Before timing, the harness asserts the tentpole contract on this
//! workload: the two runs produce **byte-identical kept and eliminated
//! sets** and the warm run performs **fewer total SMO iterations**; the
//! totals are printed so the saving is visible alongside the wall-clock
//! numbers.  `STC_SCALE` scales the population sizes as in the other
//! benches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spec_test_compaction::adapters::OpAmpDevice;
use stc_core::{
    generate_train_test, CompactionConfig, CompactionResult, Compactor, MonteCarloConfig,
};
use stc_svm::SvmBackend;

fn compactor() -> Compactor {
    let device = OpAmpDevice::paper_setup();
    let train_instances = stc_bench::scaled(150, 60);
    let monte_carlo = MonteCarloConfig::new(train_instances)
        .with_seed(404)
        .with_threads(stc_bench::threads())
        .with_calibration_quantiles(0.02, 0.98);
    let (train, test) =
        generate_train_test(&device, &monte_carlo, train_instances / 2).expect("op-amp MC runs");
    Compactor::new(train, test).expect("populations are valid")
}

fn run(compactor: &Compactor, tolerance: f64, warm_start: bool) -> CompactionResult {
    let config =
        CompactionConfig::paper_default().with_tolerance(tolerance).with_warm_start(warm_start);
    compactor.compact_with(&SvmBackend::paper_default(), &config).expect("compaction runs")
}

fn bench_warm_start(c: &mut Criterion) {
    let compactor = compactor();

    let mut group = c.benchmark_group("warm_start");
    group.sample_size(10);
    for tolerance in [0.05, 0.10] {
        let warm = run(&compactor, tolerance, true);
        let cold = run(&compactor, tolerance, false);
        // The tentpole contract on the benchmark workload itself: identical
        // kept/eliminated sets, strictly fewer solver iterations.  (Per-step
        // breakdown counts are not asserted — warm and cold runs converge to
        // KKT-equivalent models whose decisions may differ on a device
        // sitting within the solver tolerance of a boundary.)
        assert_eq!(warm.kept, cold.kept, "kept sets diverged at tolerance {tolerance}");
        assert_eq!(warm.eliminated, cold.eliminated);
        assert!(
            warm.warm_start.total_iterations() < cold.warm_start.total_iterations(),
            "warm start must save SMO iterations: warm {:?} vs cold {:?}",
            warm.warm_start,
            cold.warm_start
        );
        println!(
            "warm_start/tolerance-{tolerance}: kept {:?}, total SMO iterations \
             warm {} vs cold {} ({} warm-started of {} trainings)",
            warm.kept,
            warm.warm_start.total_iterations(),
            cold.warm_start.total_iterations(),
            warm.warm_start.warm_trainings,
            warm.warm_start.warm_trainings + warm.warm_start.cold_trainings,
        );

        group.bench_with_input(
            BenchmarkId::new("greedy-elimination-cold", tolerance),
            &tolerance,
            |b, &tolerance| b.iter(|| run(&compactor, tolerance, false)),
        );
        group.bench_with_input(
            BenchmarkId::new("greedy-elimination-warm", tolerance),
            &tolerance,
            |b, &tolerance| b.iter(|| run(&compactor, tolerance, true)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_warm_start);
criterion_main!(benches);
