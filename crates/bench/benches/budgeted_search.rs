//! Benchmark of budgeted anytime search on the op-amp pipeline — the
//! quality-vs-budget curve, plus wall time per budget point and for the two
//! stochastic strategies.
//!
//! The 0.6 `SearchBudget` is enforced centrally by the `CandidateEvaluator`,
//! so a budgeted run pays for exactly the trainings it admits and a
//! truncated search still returns its best committed frontier.  Before
//! timing, the harness sweeps the training budget over the paper's greedy
//! elimination and prints how much of the unbudgeted answer each budget
//! buys (eliminated tests, cost reduction, solver iterations, exhaustion),
//! then does the same for seeded simulated annealing and the
//! incumbent-pinned genetic search.  `STC_SCALE` scales the population
//! sizes as in the other benches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spec_test_compaction::adapters::OpAmpDevice;
use stc_core::search::{
    GeneticSearch, GreedyBackward, SearchBudget, SearchStrategy, SimulatedAnnealing,
};
use stc_core::{
    generate_train_test, CompactionConfig, CompactionResult, Compactor, MonteCarloConfig,
    TestCostModel,
};
use stc_svm::SvmBackend;

fn compactor() -> Compactor {
    let device = OpAmpDevice::paper_setup();
    let train_instances = stc_bench::scaled(150, 60);
    let monte_carlo = MonteCarloConfig::new(train_instances)
        .with_seed(404)
        .with_threads(stc_bench::threads())
        .with_calibration_quantiles(0.02, 0.98);
    let (train, test) =
        generate_train_test(&device, &monte_carlo, train_instances / 2).expect("op-amp MC runs");
    Compactor::new(train, test).expect("populations are valid")
}

/// The op-amp cost model of the `search_strategies` bench: DC specs are
/// cheap, AC specs need a network analyser, transient specs are the most
/// expensive insertion.
fn opamp_costs(spec_count: usize) -> TestCostModel {
    let per_test: Vec<f64> = (0..spec_count).map(|i| 1.0 + (i % 3) as f64).collect();
    let insertion_of_test: Vec<usize> = (0..spec_count).map(|i| i * 3 / spec_count).collect();
    TestCostModel::new(per_test, insertion_of_test, vec![2.0, 5.0, 12.0])
        .expect("cost model is valid")
}

fn run(
    compactor: &Compactor,
    strategy: &dyn SearchStrategy,
    cost: &TestCostModel,
    budget: SearchBudget,
) -> CompactionResult {
    let config = CompactionConfig::paper_default().with_tolerance(0.05).with_budget(budget);
    compactor
        .compact_with_strategy(&SvmBackend::paper_default(), &config, strategy, Some(cost))
        .expect("a budgeted compaction never errors")
}

fn describe(label: &str, cost: &TestCostModel, result: &CompactionResult) {
    println!(
        "budgeted_search/{label}: eliminated {} (cost reduction {:.1}%), \
         {} trainings / {} solver iterations, exhausted {}, {} frontier",
        result.eliminated.len(),
        100.0 * result.cost_reduction_ratio(cost).expect("kept set is valid"),
        result.budget.trainings,
        result.budget.solver_iterations,
        result.budget.exhausted,
        result.budget.provenance,
    );
}

fn bench_budgeted_search(c: &mut Criterion) {
    let compactor = compactor();
    let cost = opamp_costs(compactor.training().specs().len());

    // The quality-vs-budget curve on the greedy default.
    let unbudgeted = run(&compactor, &GreedyBackward, &cost, SearchBudget::unlimited());
    let budgets: [(&str, SearchBudget); 4] = [
        ("greedy/2-trainings", SearchBudget::unlimited().with_max_trainings(2)),
        ("greedy/5-trainings", SearchBudget::unlimited().with_max_trainings(5)),
        ("greedy/10-trainings", SearchBudget::unlimited().with_max_trainings(10)),
        ("greedy/unlimited", SearchBudget::unlimited()),
    ];
    for (label, budget) in &budgets {
        let result = run(&compactor, &GreedyBackward, &cost, *budget);
        if let Some(max) = budget.max_trainings {
            assert!(result.budget.trainings <= max, "budget must cap trainings");
            assert!(
                result.eliminated.len() <= unbudgeted.eliminated.len(),
                "a truncated run never eliminates more than the full run"
            );
        }
        describe(label, &cost, &result);
    }
    let annealing = SimulatedAnnealing::new(404);
    let genetic = GeneticSearch { seed: 404, population: 8, generations: 4 };
    describe(
        "simulated-annealing",
        &cost,
        &run(&compactor, &annealing, &cost, SearchBudget::unlimited()),
    );
    describe("genetic", &cost, &run(&compactor, &genetic, &cost, SearchBudget::unlimited()));

    let mut group = c.benchmark_group("budgeted_search");
    group.sample_size(10);
    for (label, budget) in budgets {
        group.bench_with_input(BenchmarkId::new("op-amp", label), &(), |b, ()| {
            b.iter(|| run(&compactor, &GreedyBackward, &cost, budget));
        });
    }
    group.bench_with_input(BenchmarkId::new("op-amp", "simulated-annealing"), &(), |b, ()| {
        b.iter(|| run(&compactor, &annealing, &cost, SearchBudget::unlimited()));
    });
    group.bench_with_input(BenchmarkId::new("op-amp", "genetic"), &(), |b, ()| {
        b.iter(|| run(&compactor, &genetic, &cost, SearchBudget::unlimited()));
    });
    group.finish();
}

criterion_group!(benches, bench_budgeted_search);
criterion_main!(benches);
