//! Microbenchmark of the staged sequential tester against one-shot
//! classification on a deployed program: the per-device decision loop is the
//! production hot path of a deployed compacted test set, and the sequential
//! session must stay cheap enough that its early exits translate into
//! wall-clock savings on the handler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stc_core::pipeline::CompactionPipeline;
use stc_core::tester::{StepVerdict, TestPlan};
use stc_core::{
    generate_train_test, CompactionConfig, MonteCarloConfig, Prediction, SequentialStats,
    SyntheticDevice, TestCostModel,
};
use stc_svm::SvmBackend;

fn bench_sequential_tester(c: &mut Criterion) {
    let device = SyntheticDevice::new(6, 1.8, 0.9);
    let monte_carlo = MonteCarloConfig::new(300).with_seed(7);
    let (train, test) = generate_train_test(&device, &monte_carlo, 150).expect("population");
    let report = CompactionPipeline::for_device(&device)
        .monte_carlo(monte_carlo)
        .compaction(CompactionConfig::paper_default().with_tolerance(0.03))
        .classifier(SvmBackend::paper_default())
        .run_with_population(train, test.clone())
        .expect("pipeline runs");
    let program = &report.tester;
    let cost_model = TestCostModel::uniform(test.specs().len());

    let mut group = c.benchmark_group("sequential_tester");
    group.sample_size(20);

    group.bench_with_input(BenchmarkId::new("deploy", "one_shot"), &(), |b, ()| {
        b.iter(|| {
            let mut bad = 0usize;
            for row in 0..test.len() {
                let kept: Vec<f64> =
                    program.kept().iter().map(|&column| test.value(row, column)).collect();
                if program.classify(&kept).expect("classifies") == Prediction::Bad {
                    bad += 1;
                }
            }
            bad
        })
    });

    group.bench_with_input(BenchmarkId::new("deploy", "sequential"), &(), |b, ()| {
        let plan = TestPlan::cheapest_first(program, &cost_model).expect("plan stages");
        b.iter(|| {
            let mut bad = 0usize;
            for row in 0..test.len() {
                let mut session = plan.begin();
                loop {
                    let column = session.next_stage().expect("undecided session");
                    match session.measure(test.value(row, column)).expect("measures") {
                        StepVerdict::Decided(verdict) => {
                            if verdict == Prediction::Bad {
                                bad += 1;
                            }
                            break;
                        }
                        StepVerdict::NeedMore { .. } => {}
                    }
                }
            }
            bad
        })
    });

    group.bench_with_input(BenchmarkId::new("deploy", "stats_collect"), &(), |b, ()| {
        let plan = TestPlan::cheapest_first(program, &cost_model).expect("plan stages");
        b.iter(|| SequentialStats::collect(&plan, &cost_model, &test).expect("stats collect"))
    });

    group.finish();
}

criterion_group!(benches, bench_sequential_tester);
criterion_main!(benches);
