//! End-to-end benchmark of `CompactionPipeline::run` on the synthetic
//! device, for both bundled classifier backends — the baseline for future
//! performance work on the pipeline hot path.
//!
//! The `svm-4-threads` row measures speculative candidate evaluation.  On
//! this small synthetic workload the speculation *loses* (acceptances
//! discard most of the batch and thread spawn dominates the ~ms trainings);
//! it pays off when training is expensive and rejections dominate.  Keeping
//! the row in the baseline makes that trade-off visible to future perf work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stc_core::classifier::GridBackend;
use stc_core::pipeline::CompactionPipeline;
use stc_core::{CompactionConfig, MonteCarloConfig, SyntheticDevice};
use stc_svm::SvmBackend;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    let device = SyntheticDevice::new(6, 1.8, 0.9);
    let pipeline = |threads: usize| {
        CompactionPipeline::for_device(&device)
            .monte_carlo(MonteCarloConfig::new(300).with_seed(7))
            .test_instances(150)
            .compaction(
                CompactionConfig::paper_default().with_tolerance(0.03).with_threads(threads),
            )
    };

    group.bench_with_input(BenchmarkId::new("run_end_to_end", "grid"), &(), |b, ()| {
        b.iter(|| pipeline(1).classifier(GridBackend::default()).run().expect("pipeline runs"));
    });

    group.bench_with_input(BenchmarkId::new("run_end_to_end", "svm"), &(), |b, ()| {
        b.iter(|| {
            pipeline(1).classifier(SvmBackend::paper_default()).run().expect("pipeline runs")
        });
    });

    group.bench_with_input(BenchmarkId::new("run_end_to_end", "svm-4-threads"), &(), |b, ()| {
        b.iter(|| {
            pipeline(4).classifier(SvmBackend::paper_default()).run().expect("pipeline runs")
        });
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
