//! Benchmark of the four bundled search strategies on the op-amp pipeline —
//! wall time and total SMO iterations per strategy.
//!
//! The 0.5 `SearchStrategy` seam splits the search procedure from the
//! evaluation machinery (model cache, warm starts, speculative threads), so
//! the strategies differ only in *which* kept sets they ask the shared
//! `CandidateEvaluator` to train:
//!
//! * `greedy-backward` — the paper's Figure 2 loop (the 0.4 baseline),
//! * `beam-3` — keeps the 3 best frontiers per depth,
//! * `forward-selection` — grows the kept set from the empty set,
//! * `cost-aware-greedy` — maximises cost saving per unit error under the
//!   op-amp's insertion cost model.
//!
//! Before timing, the harness runs each strategy once and prints its kept
//! set, solver-iteration total and model-cache counters, so the search-cost
//! trade-off is visible alongside the wall-clock numbers.  It also asserts
//! the seam contract on this workload: a width-1 beam reproduces the greedy
//! loop byte for byte.  `STC_SCALE` scales the population sizes as in the
//! other benches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spec_test_compaction::adapters::OpAmpDevice;
use stc_core::search::{
    BeamSearch, CostAwareGreedy, ForwardSelection, GreedyBackward, SearchStrategy,
};
use stc_core::{
    generate_train_test, CompactionConfig, CompactionResult, Compactor, MonteCarloConfig,
    TestCostModel,
};
use stc_svm::SvmBackend;

fn compactor() -> Compactor {
    let device = OpAmpDevice::paper_setup();
    let train_instances = stc_bench::scaled(150, 60);
    let monte_carlo = MonteCarloConfig::new(train_instances)
        .with_seed(404)
        .with_threads(stc_bench::threads())
        .with_calibration_quantiles(0.02, 0.98);
    let (train, test) =
        generate_train_test(&device, &monte_carlo, train_instances / 2).expect("op-amp MC runs");
    Compactor::new(train, test).expect("populations are valid")
}

/// A plausible cost model for the op-amp's 11 specifications: DC specs are
/// cheap, AC specs need a network analyser, transient specs are the most
/// expensive insertion.
fn opamp_costs(spec_count: usize) -> TestCostModel {
    let per_test: Vec<f64> = (0..spec_count).map(|i| 1.0 + (i % 3) as f64).collect();
    let insertion_of_test: Vec<usize> = (0..spec_count).map(|i| i * 3 / spec_count).collect();
    TestCostModel::new(per_test, insertion_of_test, vec![2.0, 5.0, 12.0])
        .expect("cost model is valid")
}

fn run(
    compactor: &Compactor,
    strategy: &dyn SearchStrategy,
    cost: &TestCostModel,
) -> CompactionResult {
    let config = CompactionConfig::paper_default().with_tolerance(0.05);
    compactor
        .compact_with_strategy(&SvmBackend::paper_default(), &config, strategy, Some(cost))
        .expect("compaction runs")
}

fn bench_search_strategies(c: &mut Criterion) {
    let compactor = compactor();
    let cost = opamp_costs(compactor.training().specs().len());

    // Seam contract on the benchmark workload: a width-1 beam IS greedy.
    let greedy = run(&compactor, &GreedyBackward, &cost);
    let beam_one = run(&compactor, &BeamSearch::new(1), &cost);
    assert_eq!(greedy, beam_one, "width-1 beam must reproduce the greedy loop");

    let strategies: [(&str, &dyn SearchStrategy); 4] = [
        ("greedy-backward", &GreedyBackward),
        ("beam-3", &BeamSearch { width: 3 }),
        ("forward-selection", &ForwardSelection),
        ("cost-aware-greedy", &CostAwareGreedy),
    ];

    let mut group = c.benchmark_group("search_strategies");
    group.sample_size(10);
    for (label, strategy) in strategies {
        let result = run(&compactor, strategy, &cost);
        println!(
            "search_strategies/{label}: kept {:?} (cost {:.1}, reduction {:.1}%), \
             {} SMO iterations ({} warm / {} cold trainings), cache {} hits / {} misses",
            result.kept,
            cost.cost_of(&result.kept).expect("kept set is valid"),
            100.0 * result.cost_reduction_ratio(&cost).expect("kept set is valid"),
            result.warm_start.total_iterations(),
            result.warm_start.warm_trainings,
            result.warm_start.cold_trainings,
            result.cache.hits,
            result.cache.misses,
        );
        group.bench_with_input(BenchmarkId::new("op-amp", label), &(), |b, ()| {
            b.iter(|| run(&compactor, strategy, &cost));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search_strategies);
criterion_main!(benches);
