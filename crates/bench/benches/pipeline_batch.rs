//! Benchmark of `PipelineBatch` against independent sequential
//! `CompactionPipeline::run` calls over the same eight op-amp populations.
//!
//! Monte-Carlo generation (transistor-level simulation) dominates the
//! end-to-end flow, which is exactly the seam the batch layer exploits:
//!
//! * `sequential-8` — the pre-batch baseline: eight pipelines run one after
//!   another, each paying full population generation and the greedy loop.
//! * `batch-8-workers` — the same eight pipelines through
//!   `PipelineBatch::run` with eight work-stealing workers and a *fresh*
//!   population cache per iteration: both sides pay generation, so the
//!   delta is the worker pool (parity on a single-core host, ~min(8, cores)×
//!   where cores exist).
//! * `batch-8-workers-warm` — one population cache shared across iterations:
//!   generation is paid once and every later run reuses the `Arc`-shared
//!   columnar populations, leaving only the (model-cached) greedy loop.
//!   This row beats `sequential-8` on any hardware.
//!
//! `STC_SCALE` scales the population sizes as in the other benches.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spec_test_compaction::adapters::OpAmpDevice;
use stc_core::batch::{PipelineBatch, PopulationCache};
use stc_core::pipeline::CompactionPipeline;
use stc_core::{CompactionConfig, MonteCarloConfig, SyntheticDevice};
use stc_svm::SvmBackend;

const DEVICES: usize = 8;

fn train_instances() -> usize {
    stc_bench::scaled(40, 10)
}

fn config() -> CompactionConfig {
    CompactionConfig::paper_default().with_tolerance(0.05)
}

fn monte_carlo(index: usize) -> MonteCarloConfig {
    MonteCarloConfig::new(train_instances())
        .with_seed(7 + index as u64)
        .with_calibration_quantiles(0.02, 0.98)
}

fn opamp_batch<'d>(
    device: &'d OpAmpDevice,
    cache: Option<Arc<PopulationCache>>,
) -> PipelineBatch<'d> {
    let mut batch = PipelineBatch::new()
        .monte_carlo(monte_carlo(0))
        .test_instances(train_instances() / 2)
        .compaction(config())
        .classifier(SvmBackend::paper_default())
        .batch_threads(DEVICES);
    if let Some(cache) = cache {
        batch = batch.with_population_cache(cache);
    }
    for index in 0..DEVICES {
        batch = batch.device_seeded(device, 7 + index as u64);
    }
    batch
}

fn bench_pipeline_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_batch");
    group.sample_size(3);

    let device = OpAmpDevice::paper_setup();

    group.bench_with_input(BenchmarkId::new("run", "sequential-8"), &(), |b, ()| {
        b.iter(|| {
            (0..DEVICES)
                .map(|index| {
                    CompactionPipeline::for_device(&device)
                        .monte_carlo(monte_carlo(index))
                        .test_instances(train_instances() / 2)
                        .compaction(config())
                        .classifier(SvmBackend::paper_default())
                        .run()
                        .expect("pipeline runs")
                })
                .collect::<Vec<_>>()
        });
    });

    group.bench_with_input(BenchmarkId::new("run", "batch-8-workers"), &(), |b, ()| {
        b.iter(|| opamp_batch(&device, None).run().expect("batch runs"));
    });

    let warm = Arc::new(PopulationCache::new());
    group.bench_with_input(BenchmarkId::new("run", "batch-8-workers-warm"), &(), |b, ()| {
        b.iter(|| opamp_batch(&device, Some(Arc::clone(&warm))).run().expect("batch runs"));
    });

    // A cheap-generation control: on the synthetic device the greedy loop
    // dominates instead, so this row isolates worker-pool overhead.
    let synthetic: Vec<SyntheticDevice> =
        (0..DEVICES).map(|i| SyntheticDevice::new(4 + i % 3, 1.8, 0.9)).collect();
    group.bench_with_input(BenchmarkId::new("run", "synthetic-batch-8"), &(), |b, ()| {
        b.iter(|| {
            let mut batch = PipelineBatch::new()
                .monte_carlo(MonteCarloConfig::new(250).with_seed(7))
                .test_instances(125)
                .compaction(CompactionConfig::paper_default().with_tolerance(0.03))
                .classifier(SvmBackend::paper_default())
                .batch_threads(DEVICES);
            for device in &synthetic {
                batch = batch.device(device);
            }
            batch.run().expect("batch runs")
        });
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline_batch);
criterion_main!(benches);
