//! Benchmark of screened versus exact candidate evaluation on the op-amp
//! case study — the hot path the 0.10 Nyström screen targets.
//!
//! The greedy loop examines a speculative batch of candidate kept sets per
//! round; without screening every candidate trains an exact ε-SVM pair.
//! With [`ScreeningConfig`](stc_core::search::ScreeningConfig) enabled the
//! batch is first scored by a Nyström low-rank model (one landmark-sized
//! solve instead of a full SMO run) and only the shortlist trains exactly.
//! The benchmark runs the identical compaction twice per configuration:
//!
//! * `exact` — screening disabled, the pre-0.10 behaviour,
//! * `screened` — the Nyström screen on, shortlist smaller than the batch.
//!
//! Before timing, the harness asserts the tentpole contract on this
//! workload: both runs produce **byte-identical kept and eliminated sets**
//! and the screened run performs **fewer exact trainings**; the totals are
//! printed so the saving is visible alongside the wall-clock numbers.
//! `STC_SCALE` scales the population sizes as in the other benches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spec_test_compaction::adapters::OpAmpDevice;
use stc_core::search::ScreeningConfig;
use stc_core::{
    generate_train_test, CompactionConfig, CompactionResult, Compactor, EliminationOrder,
    MonteCarloConfig,
};
use stc_svm::SvmBackend;

fn compactor() -> Compactor {
    let device = OpAmpDevice::paper_setup();
    let train_instances = stc_bench::scaled(150, 60);
    let monte_carlo = MonteCarloConfig::new(train_instances)
        .with_seed(404)
        .with_threads(stc_bench::threads())
        .with_calibration_quantiles(0.02, 0.98);
    let (train, test) =
        generate_train_test(&device, &monte_carlo, train_instances / 2).expect("op-amp MC runs");
    Compactor::new(train, test).expect("populations are valid")
}

fn run(compactor: &Compactor, screening: ScreeningConfig) -> CompactionResult {
    // Examine the three step-response specs on three worker threads: the
    // speculative batch (= thread count) must exceed the shortlist for the
    // screen to engage.
    let config = CompactionConfig::paper_default()
        .with_tolerance(0.10)
        .with_order(EliminationOrder::Functional(vec![4, 6, 5]))
        .with_threads(3)
        .with_screening(screening);
    compactor.compact_with(&SvmBackend::paper_default(), &config).expect("compaction runs")
}

fn bench_screened_search(c: &mut Criterion) {
    let compactor = compactor();
    let screening = ScreeningConfig::screened(32, 1);

    let exact = run(&compactor, ScreeningConfig::default());
    let screened = run(&compactor, screening);
    // The tentpole contract on the benchmark workload itself: identical
    // kept/eliminated sets, strictly fewer exact trainings.  (Steps are not
    // compared — screened rejections log no step by design.)
    assert_eq!(screened.kept, exact.kept, "kept sets diverged under screening");
    assert_eq!(screened.eliminated, exact.eliminated);
    assert!(
        screened.budget.trainings < exact.budget.trainings,
        "the screen must save exact trainings: screened {:?} vs exact {:?}",
        screened.budget,
        exact.budget,
    );
    println!(
        "screened_search: kept {:?}, exact trainings {} vs {} ({} screened over {} batches, \
         {} verified exactly)",
        screened.kept,
        screened.budget.trainings,
        exact.budget.trainings,
        screened.screening.screened,
        screened.screening.batches,
        screened.screening.verified,
    );

    let mut group = c.benchmark_group("screened_search");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("greedy-elimination", "exact"),
        &ScreeningConfig::default(),
        |b, &screening| b.iter(|| run(&compactor, screening)),
    );
    group.bench_with_input(
        BenchmarkId::new("greedy-elimination", "screened"),
        &screening,
        |b, &screening| b.iter(|| run(&compactor, screening)),
    );
    group.finish();
}

criterion_group!(benches, bench_screened_search);
criterion_main!(benches);
