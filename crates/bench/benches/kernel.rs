//! Microbenchmark of RBF kernel-row assembly — the SMO hot path the 0.8
//! kernel engine optimizes.
//!
//! Three variants assemble the same batch of kernel rows at a
//! `scaled(10_000)`-device population with 24 features:
//!
//! * `naive` — per-element `Kernel::eval` over gathered feature rows, the
//!   pre-0.8 `SvcQ::row` behaviour (`KernelPath::Naive`),
//! * `blocked` — columnar dot rows with precomputed squared norms
//!   (`KernelPath::Blocked`, the default),
//! * `banked` — blocked assembly seeded from a parent kept set's
//!   `DotRowBank`, the incremental candidate-row path of the greedy loop.
//!
//! Each iteration constructs a fresh engine so every row is a first-touch
//! assembly (the engine memoizes rows it has already built).  `STC_SCALE`
//! shrinks the population for CI smoke runs (`--test`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stc_bench::trajectory::measure_kernel;
use stc_svm::{Dataset, DotRowBank, Kernel, KernelEngine, KernelPath};

const DIMENSION: usize = 24;

/// Deterministic timing dataset shaped like the one `measure_kernel` uses:
/// the parent carries one extra column so the bank variant adjusts rows by a
/// genuine dropped column.
fn populations(samples: usize) -> (Dataset, Dataset) {
    let mut state = 0x0DDB1A5E5BAD5EEDu64;
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    };
    let columns: Vec<Vec<f64>> =
        (0..DIMENSION + 1).map(|_| (0..samples).map(|_| next()).collect()).collect();
    let column_refs: Vec<&[f64]> = columns.iter().map(Vec::as_slice).collect();
    let labels: Vec<f64> = (0..samples).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    let parent = Dataset::from_columns(&column_refs, &labels).expect("parent dataset is valid");
    let kept: Vec<usize> = (0..DIMENSION).collect();
    let child = parent.select_columns(&kept).expect("child projection is valid");
    (parent, child)
}

fn assemble(data: &Dataset, path: KernelPath, bank: Option<&DotRowBank>, rows: usize) -> f64 {
    let engine = KernelEngine::with_bank(data, Kernel::rbf(1.0), path, bank);
    let mut out = vec![0.0; data.len()];
    let mut checksum = 0.0;
    for i in 0..rows {
        engine.kernel_row(i, &mut out);
        checksum += out[i];
    }
    checksum
}

fn bench_kernel(c: &mut Criterion) {
    let samples = stc_bench::scaled(10_000, 500);
    let rows = samples.min(96);
    let (parent, child) = populations(samples);

    // The bank the greedy loop would hand a candidate: the parent engine's
    // recorded rows over the superset kept set.
    let parent_engine = KernelEngine::new(&parent, Kernel::rbf(1.0), KernelPath::Blocked);
    let mut out = vec![0.0; parent.len()];
    for i in 0..rows {
        parent_engine.kernel_row(i, &mut out);
    }
    let bank = parent_engine.into_bank();

    let mut group = c.benchmark_group("kernel");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("rbf-rows-naive", samples), &samples, |b, _| {
        b.iter(|| assemble(&child, KernelPath::Naive, None, rows))
    });
    group.bench_with_input(BenchmarkId::new("rbf-rows-blocked", samples), &samples, |b, _| {
        b.iter(|| assemble(&child, KernelPath::Blocked, None, rows))
    });
    group.bench_with_input(BenchmarkId::new("rbf-rows-banked", samples), &samples, |b, _| {
        b.iter(|| assemble(&child, KernelPath::Blocked, Some(&bank), rows))
    });
    group.finish();

    // One-shot summary with the same harness the `trajectory --kernel` bin
    // uses, so the speedup is visible next to the criterion numbers.
    let report = measure_kernel(&[samples], DIMENSION);
    let timing = &report.timings[0];
    println!(
        "kernel/{samples}: naive {:.0} ns/row, blocked {:.0} ns/row ({:.2}x), \
         banked {:.0} ns/row ({:.2}x)",
        timing.naive_ns_per_row,
        timing.blocked_ns_per_row,
        timing.blocked_speedup,
        timing.banked_ns_per_row,
        timing.banked_speedup,
    );
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
