//! # stc-bench
//!
//! Experiment harness reproducing every table and figure of the DATE 2005
//! paper, plus the ablations listed in DESIGN.md.
//!
//! Each experiment is exposed as a library function (so the Criterion benches
//! and the integration tests can exercise it at reduced scale) and as a
//! binary that prints the same rows/series the paper reports:
//!
//! ```text
//! cargo run --release -p stc-bench --bin table1
//! cargo run --release -p stc-bench --bin figure5
//! cargo run --release -p stc-bench --bin figure6
//! cargo run --release -p stc-bench --bin table2
//! cargo run --release -p stc-bench --bin table3
//! cargo run --release -p stc-bench --bin ablations
//! ```
//!
//! The `STC_SCALE` environment variable scales the population sizes
//! (1.0 = the paper's instance counts; 0.2 = a quick smoke run).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod populations;
pub mod trajectory;

/// Population scale factor read from `STC_SCALE` (default 1.0, clamped to
/// `[0.02, 1.0]`).
pub fn scale() -> f64 {
    std::env::var("STC_SCALE")
        .ok()
        .and_then(|value| value.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.02, 1.0)
}

/// Worker threads used for Monte-Carlo simulation (defaults to the number of
/// available CPUs, capped at 16).
pub fn threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16)
}

/// Scales an instance count, keeping at least `minimum`.
pub fn scaled(count: usize, minimum: usize) -> usize {
    ((count as f64 * scale()) as usize).max(minimum)
}
