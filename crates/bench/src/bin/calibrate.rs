//! Range-calibration helper: sweeps the quantiles used to derive the
//! acceptability ranges and prints the resulting population yields, so the
//! defaults in `stc_bench::populations` can be pinned to the paper's reported
//! yields (op-amp 75.4 % / 84.8 %, accelerometer 77.4 % / 79.3 %).

use spec_test_compaction::adapters::{AccelerometerDevice, OpAmpDevice};
use stc_bench::{scaled, threads};
use stc_core::{generate_train_test, DeviceUnderTest, MonteCarloConfig};

fn sweep(device: &dyn DeviceUnderTest, label: &str, train_n: usize, test_n: usize, tails: &[f64]) {
    println!("{label}: {train_n} train / {test_n} test instances");
    for &tail in tails {
        let config = MonteCarloConfig::new(train_n)
            .with_seed(2005)
            .with_threads(threads())
            .with_calibration_quantiles(tail, 1.0 - tail);
        let (train, test) =
            generate_train_test(device, &config, test_n).expect("generation succeeds");
        println!(
            "  tail {:>5.3}: training yield {:>5.1}%, test yield {:>5.1}%",
            tail,
            train.yield_fraction() * 100.0,
            test.yield_fraction() * 100.0
        );
    }
}

fn main() {
    let opamp = OpAmpDevice::paper_setup();
    sweep(
        &opamp,
        "op-amp",
        scaled(2000, 300),
        scaled(1000, 150),
        &[0.005, 0.01, 0.014, 0.02, 0.03],
    );
    let mems = AccelerometerDevice::paper_setup();
    sweep(
        &mems,
        "accelerometer",
        scaled(1000, 300),
        scaled(1000, 300),
        &[0.02, 0.04, 0.06, 0.08, 0.10],
    );
}
