//! Regenerates Table 2: accelerometer specifications, ranges and yields.
//!
//! Paper scale is 1000 training + 1000 test instances.

use stc_bench::{populations, scaled, threads};

fn main() {
    let train_instances = scaled(1000, 200);
    let test_instances = scaled(1000, 200);
    eprintln!(
        "building accelerometer population: {train_instances} training + {test_instances} test instances"
    );
    let (train, test) =
        populations::mems_population(train_instances, test_instances, 2005, threads());
    println!("{}", stc_bench::experiments::table2(&train, &test));
}
