//! JSON-in / JSON-out job runner for the `stc-serve` layer.
//!
//! ```text
//! jobs <jobspec.json>              # run, write enveloped report to stdout
//! jobs <jobspec.json> --out <path> # run, write the report to a file
//! jobs --emit-sample <path>        # write a sample enveloped JobSpec
//! ```
//!
//! Input and output are both wrapped in the versioned
//! `{"schema_version": N, "payload": ...}` envelope; a document with an
//! unknown version is rejected before the payload is parsed.  The sample
//! spec is deterministic (fixed seeds, single-threaded stages, grid
//! classifier), so running it twice — or on two machines — produces
//! byte-identical reports; CI pins `BENCH_pipeline.json` to exactly that.

use std::process::ExitCode;

use stc_core::BatchReport;
use stc_serve::{envelope, CompactionService, DeviceSpec, JobSpec};

fn sample_spec() -> JobSpec {
    let mut spec = JobSpec::new(
        vec![
            DeviceSpec::Synthetic { specs: 4, limit: 1.8, correlation: 0.9 },
            DeviceSpec::Synthetic { specs: 5, limit: 1.5, correlation: 0.8 },
        ],
        stc_core::MonteCarloConfig::new(120).with_seed(42),
        stc_core::CompactionConfig::paper_default().with_tolerance(0.1),
    );
    spec.shard_threads = 2;
    spec
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag, path] if flag == "--emit-sample" => {
            let encoded = envelope::encode(&sample_spec()).map_err(|error| error.to_string())?;
            std::fs::write(path, encoded + "\n")
                .map_err(|error| format!("cannot write {path}: {error}"))?;
            eprintln!("wrote sample job spec to {path}");
            Ok(())
        }
        [spec_path, rest @ ..] => {
            let out = match rest {
                [] => None,
                [flag, path] if flag == "--out" => Some(path.clone()),
                _ => return Err(usage()),
            };
            let text = std::fs::read_to_string(spec_path)
                .map_err(|error| format!("cannot read {spec_path}: {error}"))?;
            let spec: JobSpec = envelope::decode(&text).map_err(|error| error.to_string())?;
            let service = CompactionService::new(1);
            let report: BatchReport =
                service.run_blocking(spec).map_err(|error| error.to_string())?;
            eprintln!("{}", report.summary());
            let encoded = envelope::encode(&report).map_err(|error| error.to_string())?;
            match out {
                Some(path) => std::fs::write(&path, encoded + "\n")
                    .map_err(|error| format!("cannot write {path}: {error}"))?,
                None => println!("{encoded}"),
            }
            Ok(())
        }
        _ => Err(usage()),
    }
}

fn usage() -> String {
    "usage: jobs <jobspec.json> [--out <report.json>] | jobs --emit-sample <path>".to_string()
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
