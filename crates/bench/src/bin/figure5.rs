//! Regenerates Figure 5: yield loss, defect escape and guard-band population
//! as op-amp specification tests are cumulatively eliminated.

use stc_bench::{populations, scaled, threads};
use stc_core::GuardBandConfig;

fn main() {
    let train_instances = scaled(5000, 200);
    let test_instances = scaled(1000, 100);
    eprintln!(
        "building op-amp population: {train_instances} training + {test_instances} test instances"
    );
    let (train, test) =
        populations::opamp_population(train_instances, test_instances, 2005, threads());
    let (_, rendered) =
        stc_bench::experiments::figure5(&train, &test, &GuardBandConfig::paper_default());
    println!("{rendered}");
}
