//! Runs the ablation studies listed in DESIGN.md:
//!
//! * A — classification versus regression modelling (Section 4.1),
//! * B — guard-band width trade-off (Section 4.2),
//! * C — elimination-order strategies (Section 3.2),
//! * D — grid-based training-data compression (Section 4.3),
//! * baseline — ad-hoc compaction versus the statistical model.

use stc_bench::experiments::{self, opamp_spec};
use stc_bench::{populations, scaled, threads};
use stc_core::GuardBandConfig;

fn main() {
    let train_instances = scaled(2000, 300);
    let test_instances = scaled(1000, 150);
    eprintln!(
        "building op-amp population: {train_instances} training + {test_instances} test instances"
    );
    let (train, test) =
        populations::opamp_population(train_instances, test_instances, 2005, threads());
    let guard_band = GuardBandConfig::paper_default();

    let (_, _, ablation_a) = experiments::ablation_classification_vs_regression(
        &train,
        &test,
        opamp_spec::BANDWIDTH_3DB,
        &guard_band,
    );
    println!("{ablation_a}");

    println!(
        "{}",
        experiments::ablation_guardband(
            &train,
            &test,
            &[opamp_spec::BANDWIDTH_3DB, opamp_spec::RISE_TIME],
            &[0.0, 0.02, 0.05, 0.10, 0.15],
        )
    );

    println!("{}", experiments::ablation_ordering(&train, &test, 0.01, &guard_band));

    println!(
        "{}",
        experiments::ablation_grid(
            &train,
            &test,
            &[opamp_spec::BANDWIDTH_3DB],
            &[4, 8, 16],
            &guard_band,
        )
    );

    println!(
        "{}",
        experiments::ablation_adhoc(
            &train,
            &test,
            &[opamp_spec::BANDWIDTH_3DB, opamp_spec::RISE_TIME, opamp_spec::SETTLING_TIME],
            &guard_band,
        )
    );
}
