//! Regenerates Table 1: op-amp specifications, ranges and population yields.
//!
//! Paper scale is 5000 training + 1000 test instances; set `STC_SCALE` to run
//! a reduced population.

use stc_bench::{populations, scaled, threads};

fn main() {
    let train_instances = scaled(5000, 200);
    let test_instances = scaled(1000, 100);
    eprintln!(
        "building op-amp population: {train_instances} training + {test_instances} test instances"
    );
    let (train, test) =
        populations::opamp_population(train_instances, test_instances, 2005, threads());
    println!("{}", stc_bench::experiments::table1(&train, &test));
}
