//! Emits and checks the kernel-engine performance trajectory files.
//!
//! ```text
//! trajectory --emit <path>          # deterministic solver counters
//! trajectory --kernel <path> [n..]  # wall-clock kernel timings (default
//!                                   # sizes 2000 10000, 24 features)
//! trajectory --check <path>         # decode + validate either report
//! ```
//!
//! Output is wrapped in the versioned `{"schema_version": N, "payload": ...}`
//! `stc-serve` envelope.  `--emit` is byte-deterministic across machines
//! (CI diffs it against `crates/bench/snapshots/BENCH_trajectory.json`);
//! `--kernel` measures wall time and is therefore only structure-checked on
//! CI, with the committed `BENCH_kernel.json` as the reference measurement.

use std::process::ExitCode;

use stc_bench::trajectory::{collect_trajectory, measure_kernel, KernelReport, TrajectoryReport};
use stc_serve::envelope;

fn write_enveloped<T: serde::Serialize>(report: &T, path: &str) -> Result<(), String> {
    let encoded = envelope::encode(report).map_err(|error| error.to_string())?;
    std::fs::write(path, encoded + "\n").map_err(|error| format!("cannot write {path}: {error}"))
}

/// Checks a decoded trajectory or kernel report, whichever the file holds.
fn check(path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|error| format!("cannot read {path}: {error}"))?;
    if let Ok(report) = envelope::decode::<TrajectoryReport>(&text) {
        report.validate()?;
        eprintln!("{path}: valid trajectory report ({} points)", report.points.len());
        return Ok(());
    }
    let report: KernelReport = envelope::decode(&text).map_err(|error| error.to_string())?;
    report.validate()?;
    for timing in &report.timings {
        eprintln!(
            "{path}: {} devices x {} features: naive {:.0} ns/row, blocked {:.0} ns/row \
             ({:.2}x), banked {:.0} ns/row ({:.2}x)",
            timing.samples,
            timing.dimension,
            timing.naive_ns_per_row,
            timing.blocked_ns_per_row,
            timing.blocked_speedup,
            timing.banked_ns_per_row,
            timing.banked_speedup,
        );
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag, path] if flag == "--emit" => {
            let report = collect_trajectory();
            write_enveloped(&report, path)?;
            eprintln!("wrote {} trajectory points to {path}", report.points.len());
            Ok(())
        }
        [flag, path, sizes @ ..] if flag == "--kernel" => {
            let sizes: Vec<usize> = if sizes.is_empty() {
                vec![2_000, 10_000]
            } else {
                sizes
                    .iter()
                    .map(|s| s.parse().map_err(|_| format!("bad size {s}")))
                    .collect::<Result<_, _>>()?
            };
            let report = measure_kernel(&sizes, 24);
            write_enveloped(&report, path)?;
            check(path)
        }
        [flag, path] if flag == "--check" => check(path),
        _ => Err("usage: trajectory --emit <path> | --kernel <path> [sizes..] | --check <path>"
            .to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
