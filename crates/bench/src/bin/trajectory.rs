//! Emits and checks the performance trajectory files.
//!
//! ```text
//! trajectory --emit <path>            # deterministic solver counters
//! trajectory --sequential <path>      # deterministic sequential-deploy stats
//! trajectory --screening <path>       # deterministic screen-then-verify
//!                                     # counters (exact-paired workloads)
//! trajectory --kernel <path> [n..]    # wall-clock kernel timings (default
//!                                     # sizes 2000 10000, 24 features)
//! trajectory --batch <path> [t..]     # wall-clock pipeline-batch timings
//!                                     # (default thread counts 1 4)
//! trajectory --search <path>          # wall-clock search-stack timings
//! trajectory --check <path>           # decode + validate any report
//! ```
//!
//! Output is wrapped in the versioned `{"schema_version": N, "payload": ...}`
//! `stc-serve` envelope.  `--emit`, `--sequential` and `--screening` are
//! byte-deterministic across machines (CI diffs them against
//! `crates/bench/snapshots/BENCH_trajectory.json`, `BENCH_sequential.json`
//! and `BENCH_screening.json`); `--kernel`, `--batch` and `--search` measure
//! wall time and are therefore only structure-checked on CI, with the
//! committed `BENCH_kernel.json`, `BENCH_batch.json` and `BENCH_search.json`
//! as the reference measurements.

use std::process::ExitCode;

use stc_bench::trajectory::{
    collect_screening, collect_sequential, collect_trajectory, measure_batch, measure_kernel,
    measure_search, BatchTimingReport, KernelReport, ScreeningReport, SearchTimingReport,
    SequentialReport, TrajectoryReport,
};
use stc_serve::envelope;

fn write_enveloped<T: serde::Serialize>(report: &T, path: &str) -> Result<(), String> {
    let encoded = envelope::encode(report).map_err(|error| error.to_string())?;
    std::fs::write(path, encoded + "\n").map_err(|error| format!("cannot write {path}: {error}"))
}

/// Checks a decoded report, whichever of the six kinds the file holds.
fn check(path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|error| format!("cannot read {path}: {error}"))?;
    if let Ok(report) = envelope::decode::<TrajectoryReport>(&text) {
        report.validate()?;
        eprintln!("{path}: valid trajectory report ({} points)", report.points.len());
        return Ok(());
    }
    if let Ok(report) = envelope::decode::<SequentialReport>(&text) {
        report.validate()?;
        for point in &report.points {
            eprintln!(
                "{path}: {} specs x {} devices [{}]: expected cost {:.3} vs static {:.3} \
                 ({} early exits)",
                point.specs,
                point.test_devices,
                point.cost_model,
                point.expected_cost,
                point.static_cost,
                point.early_exits,
            );
        }
        return Ok(());
    }
    if let Ok(report) = envelope::decode::<ScreeningReport>(&text) {
        report.validate()?;
        for point in &report.points {
            eprintln!(
                "{path}: {} x {} devices [{}]: {} screened, {} verified over {} batches, \
                 {} exact trainings saved ({} -> {}), kept sets identical",
                point.device,
                point.train_devices,
                point.strategy,
                point.screened,
                point.verified,
                point.batches,
                point.trainings_saved,
                point.exact_trainings,
                point.screened_trainings,
            );
        }
        return Ok(());
    }
    if let Ok(report) = envelope::decode::<SearchTimingReport>(&text) {
        report.validate()?;
        for timing in &report.timings {
            eprintln!(
                "{path}: {} ({} specs x {} devices): {:.0} ms, {} trainings / {} iterations",
                timing.scenario,
                timing.specs,
                timing.train_devices,
                timing.total_ms,
                timing.trainings,
                timing.solver_iterations,
            );
        }
        return Ok(());
    }
    if let Ok(report) = envelope::decode::<BatchTimingReport>(&text) {
        report.validate()?;
        for timing in &report.timings {
            eprintln!(
                "{path}: {} devices x {} instances on {} thread(s): {:.0} ms total, \
                 {:.0} ms/device",
                timing.devices,
                timing.train_devices,
                timing.batch_threads,
                timing.total_ms,
                timing.ms_per_device,
            );
        }
        return Ok(());
    }
    let report: KernelReport = envelope::decode(&text).map_err(|error| error.to_string())?;
    report.validate()?;
    for timing in &report.timings {
        eprintln!(
            "{path}: {} devices x {} features: naive {:.0} ns/row, blocked {:.0} ns/row \
             ({:.2}x), banked {:.0} ns/row ({:.2}x)",
            timing.samples,
            timing.dimension,
            timing.naive_ns_per_row,
            timing.blocked_ns_per_row,
            timing.blocked_speedup,
            timing.banked_ns_per_row,
            timing.banked_speedup,
        );
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag, path] if flag == "--emit" => {
            let report = collect_trajectory();
            write_enveloped(&report, path)?;
            eprintln!("wrote {} trajectory points to {path}", report.points.len());
            Ok(())
        }
        [flag, path] if flag == "--sequential" => {
            let report = collect_sequential();
            write_enveloped(&report, path)?;
            eprintln!("wrote {} sequential points to {path}", report.points.len());
            Ok(())
        }
        [flag, path] if flag == "--screening" => {
            let report = collect_screening();
            report.validate()?;
            write_enveloped(&report, path)?;
            eprintln!("wrote {} screening points to {path}", report.points.len());
            Ok(())
        }
        [flag, path] if flag == "--search" => {
            let report = measure_search(300, 150);
            write_enveloped(&report, path)?;
            check(path)
        }
        [flag, path, sizes @ ..] if flag == "--kernel" => {
            let sizes: Vec<usize> = if sizes.is_empty() {
                vec![2_000, 10_000]
            } else {
                sizes
                    .iter()
                    .map(|s| s.parse().map_err(|_| format!("bad size {s}")))
                    .collect::<Result<_, _>>()?
            };
            let report = measure_kernel(&sizes, 24);
            write_enveloped(&report, path)?;
            check(path)
        }
        [flag, path, threads @ ..] if flag == "--batch" => {
            let threads: Vec<usize> = if threads.is_empty() {
                vec![1, 4]
            } else {
                threads
                    .iter()
                    .map(|t| t.parse().map_err(|_| format!("bad thread count {t}")))
                    .collect::<Result<_, _>>()?
            };
            let report = measure_batch(6, 200, &threads);
            write_enveloped(&report, path)?;
            check(path)
        }
        [flag, path] if flag == "--check" => check(path),
        _ => Err("usage: trajectory --emit <path> | --sequential <path> | \
                  --screening <path> | --kernel <path> [sizes..] | \
                  --batch <path> [threads..] | --search <path> | --check <path>"
            .to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
