//! Regenerates Figure 6: error versus number of training instances with the
//! 3-dB-bandwidth test eliminated.

use stc_bench::{populations, scaled, threads};
use stc_core::GuardBandConfig;

fn main() {
    let train_instances = scaled(5000, 500);
    let test_instances = scaled(1000, 100);
    eprintln!(
        "building op-amp population: {train_instances} training + {test_instances} test instances"
    );
    let (train, test) =
        populations::opamp_population(train_instances, test_instances, 2005, threads());
    let sizes: Vec<usize> = [250, 500, 1000, 2000, 3000, 4000, 5000]
        .iter()
        .map(|&n: &usize| n.min(train.len()))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let (_, rendered) =
        stc_bench::experiments::figure6(&train, &test, &sizes, &GuardBandConfig::paper_default());
    println!("{rendered}");
}
