//! Regenerates Table 3: eliminating the accelerometer hot/cold temperature
//! insertions and predicting their outcomes from room-temperature tests.

use stc_bench::{populations, scaled, threads};
use stc_core::GuardBandConfig;

fn main() {
    let train_instances = scaled(1000, 200);
    let test_instances = scaled(1000, 200);
    eprintln!(
        "building accelerometer population: {train_instances} training + {test_instances} test instances"
    );
    let (train, test) =
        populations::mems_population(train_instances, test_instances, 2005, threads());
    let (_, rendered) =
        stc_bench::experiments::table3(&train, &test, &GuardBandConfig::paper_default());
    println!("{rendered}");
}
