//! Shared Monte-Carlo populations for the experiments.
//!
//! Building the op-amp population is the expensive part of every experiment
//! (thousands of transistor-level simulations), so the harness builds it once
//! per process and shares it behind a lock.

use std::sync::Mutex;

use spec_test_compaction::adapters::{AccelerometerDevice, OpAmpDevice};
use stc_core::{generate_train_test, MeasurementSet, MonteCarloConfig};

/// Quantiles used to calibrate the op-amp acceptability ranges so the
/// training yield lands near the paper's 75.4 %
/// (calibrated with the `calibrate` binary: 2 % tails give 75.5 % training yield).
const OPAMP_QUANTILES: (f64, f64) = (0.02, 0.98);

/// Quantiles used to calibrate the accelerometer ranges so the training yield
/// lands near the paper's 77.4 % (the 12 temperature tests are strongly correlated,
/// so the per-spec tails must be much wider than 1/12th of the target).
const MEMS_QUANTILES: (f64, f64) = (0.075, 0.925);

/// Cache key: (train instances, test instances, seed).
type PopulationKey = (usize, usize, u64);
type PopulationCache = Mutex<Option<(PopulationKey, (MeasurementSet, MeasurementSet))>>;

static OPAMP_CACHE: PopulationCache = Mutex::new(None);
static MEMS_CACHE: PopulationCache = Mutex::new(None);

/// Builds (or returns the cached) op-amp training/test population.
///
/// # Panics
///
/// Panics if the Monte-Carlo generation fails, which indicates a broken
/// simulator rather than a recoverable condition in an experiment harness.
pub fn opamp_population(
    train_instances: usize,
    test_instances: usize,
    seed: u64,
    threads: usize,
) -> (MeasurementSet, MeasurementSet) {
    let key = (train_instances, test_instances, seed);
    let mut cache = OPAMP_CACHE.lock().expect("population cache poisoned");
    if let Some((cached_key, population)) = cache.as_ref() {
        if *cached_key == key {
            return population.clone();
        }
    }
    let device = OpAmpDevice::paper_setup();
    let config = MonteCarloConfig::new(train_instances)
        .with_seed(seed)
        .with_threads(threads)
        .with_calibration_quantiles(OPAMP_QUANTILES.0, OPAMP_QUANTILES.1);
    let population = generate_train_test(&device, &config, test_instances)
        .expect("op-amp population generation failed");
    *cache = Some((key, population.clone()));
    population
}

/// Builds (or returns the cached) accelerometer training/test population with
/// all twelve temperature tests.
///
/// # Panics
///
/// Panics if the Monte-Carlo generation fails.
pub fn mems_population(
    train_instances: usize,
    test_instances: usize,
    seed: u64,
    threads: usize,
) -> (MeasurementSet, MeasurementSet) {
    let key = (train_instances, test_instances, seed);
    let mut cache = MEMS_CACHE.lock().expect("population cache poisoned");
    if let Some((cached_key, population)) = cache.as_ref() {
        if *cached_key == key {
            return population.clone();
        }
    }
    let device = AccelerometerDevice::paper_setup();
    let config = MonteCarloConfig::new(train_instances)
        .with_seed(seed)
        .with_threads(threads)
        .with_calibration_quantiles(MEMS_QUANTILES.0, MEMS_QUANTILES.1);
    let population = generate_train_test(&device, &config, test_instances)
        .expect("accelerometer population generation failed");
    *cache = Some((key, population.clone()));
    population
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opamp_population_is_cached_and_labelled() {
        let (train, test) = opamp_population(40, 20, 11, 4);
        assert_eq!(train.len(), 40);
        assert_eq!(test.len(), 20);
        assert_eq!(train.specs().len(), 11);
        // Second call with the same key returns the cached population.
        let (train2, _) = opamp_population(40, 20, 11, 4);
        assert_eq!(train.row_values(0), train2.row_values(0));
    }

    #[test]
    fn mems_population_has_twelve_tests() {
        let (train, test) = mems_population(60, 30, 13, 4);
        assert_eq!(train.specs().len(), 12);
        assert_eq!(test.specs().len(), 12);
        let yield_fraction = train.yield_fraction();
        assert!(yield_fraction > 0.3 && yield_fraction < 1.0, "yield {yield_fraction}");
    }
}
