//! The experiments of the paper, one function per table/figure plus the
//! ablations described in DESIGN.md.

use spec_test_compaction::adapters::AccelerometerDevice;
use stc_core::report::{percent, render_breakdown, render_specification_table, render_table};
use stc_core::{
    baseline, gridmodel, CompactionConfig, CompactionStep, Compactor, EliminationOrder,
    ErrorBreakdown, GuardBandConfig, MeasurementSet, Prediction,
};
use stc_mems::TestTemperature;
use stc_svm::{Kernel, SvmBackend, Svr, SvrParams};

/// The classifier backend the paper's tables are produced with: the ε-SVM,
/// configured from the guard-band settings of each experiment.
fn svm(guard_band: &GuardBandConfig) -> SvmBackend {
    SvmBackend::from_guard_band(guard_band)
}

/// Indices of the eleven op-amp specifications in measurement order
/// (see `OpAmpMeasurements::names`).
pub mod opamp_spec {
    /// Open-loop DC gain.
    pub const GAIN: usize = 0;
    /// -3 dB bandwidth.
    pub const BANDWIDTH_3DB: usize = 1;
    /// Unity-gain frequency.
    pub const UNITY_GAIN_FREQUENCY: usize = 2;
    /// Slew rate.
    pub const SLEW_RATE: usize = 3;
    /// Rise time.
    pub const RISE_TIME: usize = 4;
    /// Overshoot.
    pub const OVERSHOOT: usize = 5;
    /// Settling time.
    pub const SETTLING_TIME: usize = 6;
    /// Quiescent current.
    pub const QUIESCENT_CURRENT: usize = 7;
    /// Common-mode gain.
    pub const COMMON_MODE_GAIN: usize = 8;
    /// Power-supply gain.
    pub const POWER_SUPPLY_GAIN: usize = 9;
    /// Short-circuit current.
    pub const SHORT_CIRCUIT_CURRENT: usize = 10;
}

/// The functional elimination order used for the Figure 5 sweep: the
/// time/frequency-domain specifications that all derive from the dominant
/// pole and the output stage are examined first, the first-order
/// specifications (gain, slew rate, quiescent current) are kept to the end.
pub fn opamp_functional_order() -> Vec<usize> {
    vec![
        opamp_spec::RISE_TIME,
        opamp_spec::SETTLING_TIME,
        opamp_spec::OVERSHOOT,
        opamp_spec::BANDWIDTH_3DB,
        opamp_spec::UNITY_GAIN_FREQUENCY,
        opamp_spec::POWER_SUPPLY_GAIN,
        opamp_spec::SHORT_CIRCUIT_CURRENT,
        opamp_spec::COMMON_MODE_GAIN,
    ]
}

/// **Table 1** — the op-amp specification table (name, unit, nominal, range)
/// together with the training/test yields the ranges imply.
pub fn table1(train: &MeasurementSet, test: &MeasurementSet) -> String {
    let mut out = String::new();
    out.push_str("Table 1: operational-amplifier specifications and acceptability ranges\n\n");
    out.push_str(&render_specification_table(train.specs()));
    out.push_str(&format!(
        "\nTraining yield: {}   (paper: 75.4%)\nTest yield:     {}   (paper: 84.8%)\n",
        percent(train.yield_fraction()),
        percent(test.yield_fraction()),
    ));
    out
}

/// **Figure 5** — yield loss, defect escape and guard-band population as the
/// specification tests are cumulatively eliminated in the functional order.
///
/// Returns the per-step breakdowns together with the rendered table.
///
/// # Panics
///
/// Panics if the sweep cannot be evaluated (broken population).
pub fn figure5(
    train: &MeasurementSet,
    test: &MeasurementSet,
    guard_band: &GuardBandConfig,
) -> (Vec<CompactionStep>, String) {
    let compactor = Compactor::new(train.clone(), test.clone()).expect("populations are valid");
    let steps = compactor
        .elimination_sweep_with(&svm(guard_band), &opamp_functional_order(), guard_band)
        .expect("elimination sweep failed");
    let header = vec![
        "Eliminated test (cumulative)".to_string(),
        "Yield loss".to_string(),
        "Defect escape".to_string(),
        "In guard band".to_string(),
    ];
    let rows: Vec<Vec<String>> = steps
        .iter()
        .map(|step| {
            vec![
                step.spec_name.clone(),
                percent(step.breakdown.yield_loss()),
                percent(step.breakdown.defect_escape()),
                percent(step.breakdown.guard_band_fraction()),
            ]
        })
        .collect();
    let mut out = String::new();
    out.push_str("Figure 5: error versus cumulatively eliminated op-amp tests\n\n");
    out.push_str(&render_table(&header, &rows));
    (steps, out)
}

/// **Figure 6** — yield loss, defect escape and guard-band population versus
/// the number of training instances, with the 3-dB-bandwidth test eliminated.
///
/// Returns `(training-set sizes, breakdowns, rendered table)`.
///
/// # Panics
///
/// Panics if a model cannot be trained for one of the sizes.
pub fn figure6(
    train: &MeasurementSet,
    test: &MeasurementSet,
    sizes: &[usize],
    guard_band: &GuardBandConfig,
) -> (Vec<ErrorBreakdown>, String) {
    let compactor = Compactor::new(train.clone(), test.clone()).expect("populations are valid");
    let breakdowns: Vec<ErrorBreakdown> = sizes
        .iter()
        .map(|&size| {
            compactor
                .eliminate_single_with(
                    &svm(guard_band),
                    opamp_spec::BANDWIDTH_3DB,
                    size,
                    guard_band,
                )
                .expect("single-spec elimination failed")
        })
        .collect();
    let header = vec![
        "Training instances".to_string(),
        "Yield loss".to_string(),
        "Defect escape".to_string(),
        "In guard band".to_string(),
    ];
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .zip(breakdowns.iter())
        .map(|(&size, b)| {
            vec![
                size.to_string(),
                percent(b.yield_loss()),
                percent(b.defect_escape()),
                percent(b.guard_band_fraction()),
            ]
        })
        .collect();
    let mut out = String::new();
    out.push_str(
        "Figure 6: error versus number of training instances (3-dB bandwidth eliminated)\n\n",
    );
    out.push_str(&render_table(&header, &rows));
    (breakdowns, out)
}

/// **Table 2** — the accelerometer specification table (room-temperature
/// columns) together with the training/test yields over all twelve tests.
pub fn table2(train: &MeasurementSet, test: &MeasurementSet) -> String {
    let mut out = String::new();
    out.push_str("Table 2: MEMS accelerometer specifications and acceptability ranges\n\n");
    out.push_str(&render_specification_table(train.specs()));
    out.push_str(&format!(
        "\nTraining yield: {}   (paper: 77.4%)\nTest yield:     {}   (paper: 79.3%)\n",
        percent(train.yield_fraction()),
        percent(test.yield_fraction()),
    ));
    out
}

/// **Table 3** — defect escape, yield loss and guard-band population when the
/// cold (-40 °C), hot (+80 °C) or both temperature insertions are eliminated
/// and their outcomes are predicted from the remaining measurements.
///
/// Returns the three breakdowns (cold, hot, both) and the rendered table,
/// including the test-cost reduction the compaction buys.
///
/// # Panics
///
/// Panics if a group elimination cannot be evaluated.
pub fn table3(
    train: &MeasurementSet,
    test: &MeasurementSet,
    guard_band: &GuardBandConfig,
) -> (Vec<ErrorBreakdown>, String) {
    let compactor = Compactor::new(train.clone(), test.clone()).expect("populations are valid");
    let cold = AccelerometerDevice::temperature_group(TestTemperature::Cold);
    let hot = AccelerometerDevice::temperature_group(TestTemperature::Hot);
    let both: Vec<usize> = cold.iter().chain(hot.iter()).copied().collect();
    let cases = [("-40", cold.clone()), ("80", hot.clone()), ("Both", both.clone())];
    let cost_model = AccelerometerDevice::cost_model();

    let mut breakdowns = Vec::new();
    let header = vec![
        "Eliminated test".to_string(),
        "Defect escape (%)".to_string(),
        "Yield loss (%)".to_string(),
        "Predictions in guard band (%)".to_string(),
        "Test-cost reduction".to_string(),
    ];
    let mut rows = Vec::new();
    for (label, group) in &cases {
        let breakdown = compactor
            .eliminate_group_with(&svm(guard_band), group, guard_band)
            .expect("temperature-group elimination failed");
        let kept: Vec<usize> = (0..12).filter(|c| !group.contains(c)).collect();
        let reduction = cost_model.cost_reduction(&kept).expect("kept set is valid");
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", breakdown.defect_escape() * 100.0),
            format!("{:.1}", breakdown.yield_loss() * 100.0),
            format!("{:.1}", breakdown.guard_band_fraction() * 100.0),
            percent(reduction),
        ]);
        breakdowns.push(breakdown);
    }
    let mut out = String::new();
    out.push_str("Table 3: eliminating the accelerometer temperature insertions\n\n");
    out.push_str(&render_table(&header, &rows));
    out.push_str("\n(paper: DE 0.1/0.1/0.2 %, YL 0.0/0.1/0.1 %, guard band 2.6/5.8/8.4 %;\n");
    out.push_str(" eliminating both insertions reduces test cost by more than half)\n");
    (breakdowns, out)
}

/// **Ablation A (Section 4.1)** — classification versus regression modelling:
/// predict the overall outcome with the guard-banded SVC (the paper's choice)
/// versus predicting the *value* of the eliminated specification with an
/// ε-SVR and checking it against the range.
///
/// Returns `(classification error, regression error, rendered summary)`.
///
/// # Panics
///
/// Panics if either model cannot be trained.
pub fn ablation_classification_vs_regression(
    train: &MeasurementSet,
    test: &MeasurementSet,
    eliminated: usize,
    guard_band: &GuardBandConfig,
) -> (f64, f64, String) {
    let compactor = Compactor::new(train.clone(), test.clone()).expect("populations are valid");
    let kept: Vec<usize> = (0..train.specs().len()).filter(|&c| c != eliminated).collect();

    // Classification path (the paper's method).
    let (_, classification) = compactor
        .evaluate_kept_set_with(&svm(guard_band), &kept, guard_band)
        .expect("classification model trains");

    // Regression path: fit the eliminated specification from the kept ones,
    // then apply the original range to the predicted value.
    let rows: Vec<Vec<f64>> = (0..train.len()).map(|i| train.features(i, &kept)).collect();
    let targets: Vec<f64> = (0..train.len())
        .map(|i| train.specs().spec(eliminated).normalize(train.value(i, eliminated)))
        .collect();
    let regression_data = stc_svm::Dataset::from_rows(&rows, &targets).expect("finite features");
    let svr = Svr::train(
        &regression_data,
        &SvrParams::new().with_c(10.0).with_epsilon(0.02).with_kernel(Kernel::rbf(1.0)),
    )
    .expect("regression model trains");
    let mut regression = ErrorBreakdown::default();
    for i in 0..test.len() {
        let truth = test.label(i);
        let kept_pass = kept.iter().all(|&c| test.specs().spec(c).passes(test.value(i, c)));
        let predicted_normalised = svr.predict(&test.features(i, &kept));
        let predicted_pass = (0.0..=1.0).contains(&predicted_normalised);
        let prediction =
            if kept_pass && predicted_pass { Prediction::Good } else { Prediction::Bad };
        regression.record(truth, prediction);
    }

    let spec_name = train.specs().spec(eliminated).name().to_string();
    let mut out = String::new();
    out.push_str(&format!(
        "Ablation A: classification vs regression when eliminating '{spec_name}'\n\n"
    ));
    out.push_str(&render_breakdown("  classification (paper)", &classification));
    out.push('\n');
    out.push_str(&render_breakdown("  regression (alternate)", &regression));
    out.push('\n');
    (classification.prediction_error(), regression.prediction_error(), out)
}

/// **Ablation B (Section 4.2)** — guard-band width trade-off: prediction
/// error versus the fraction of devices parked in the guard band.
///
/// # Panics
///
/// Panics if a model cannot be trained for one of the widths.
pub fn ablation_guardband(
    train: &MeasurementSet,
    test: &MeasurementSet,
    eliminated: &[usize],
    widths: &[f64],
) -> String {
    let compactor = Compactor::new(train.clone(), test.clone()).expect("populations are valid");
    let kept: Vec<usize> = (0..train.specs().len()).filter(|c| !eliminated.contains(c)).collect();
    let header = vec![
        "Guard band".to_string(),
        "Yield loss".to_string(),
        "Defect escape".to_string(),
        "In guard band".to_string(),
    ];
    let rows: Vec<Vec<String>> = widths
        .iter()
        .map(|&width| {
            let config =
                GuardBandConfig::paper_default().with_guard_band(width).expect("finite width");
            let (_, breakdown) = compactor
                .evaluate_kept_set_with(&svm(&config), &kept, &config)
                .expect("guard-band model trains");
            vec![
                percent(width),
                percent(breakdown.yield_loss()),
                percent(breakdown.defect_escape()),
                percent(breakdown.guard_band_fraction()),
            ]
        })
        .collect();
    let mut out = String::new();
    out.push_str("Ablation B: guard-band width trade-off\n\n");
    out.push_str(&render_table(&header, &rows));
    out
}

/// **Ablation C (Section 3.2)** — elimination-order strategies compared at a
/// fixed error tolerance.
///
/// # Panics
///
/// Panics if a compaction run fails.
pub fn ablation_ordering(
    train: &MeasurementSet,
    test: &MeasurementSet,
    tolerance: f64,
    guard_band: &GuardBandConfig,
) -> String {
    let compactor = Compactor::new(train.clone(), test.clone()).expect("populations are valid");
    let strategies: Vec<(&str, EliminationOrder)> = vec![
        ("functional", EliminationOrder::Functional(opamp_functional_order())),
        ("classification power", EliminationOrder::ByClassificationPower),
        ("correlation clustering", EliminationOrder::ByCorrelationClustering),
        ("random (seed 1)", EliminationOrder::Random { seed: 1 }),
    ];
    let header = vec![
        "Ordering".to_string(),
        "Tests eliminated".to_string(),
        "Final yield loss".to_string(),
        "Final defect escape".to_string(),
    ];
    let rows: Vec<Vec<String>> = strategies
        .into_iter()
        .map(|(label, order)| {
            let config = CompactionConfig::paper_default()
                .with_tolerance(tolerance)
                .with_order(order)
                .with_guard_band(*guard_band);
            let result =
                compactor.compact_with(&svm(guard_band), &config).expect("compaction run failed");
            vec![
                label.to_string(),
                format!("{} of {}", result.eliminated.len(), train.specs().len()),
                percent(result.final_breakdown.yield_loss()),
                percent(result.final_breakdown.defect_escape()),
            ]
        })
        .collect();
    let mut out = String::new();
    out.push_str(&format!(
        "Ablation C: elimination-order strategies (tolerance {})\n\n",
        percent(tolerance)
    ));
    out.push_str(&render_table(&header, &rows));
    out
}

/// **Ablation D (Section 4.3)** — grid-based training-data compression:
/// compressed set size and resulting model error versus grid resolution.
///
/// # Panics
///
/// Panics if compression or training fails.
pub fn ablation_grid(
    train: &MeasurementSet,
    test: &MeasurementSet,
    eliminated: &[usize],
    resolutions: &[usize],
    guard_band: &GuardBandConfig,
) -> String {
    let kept: Vec<usize> = (0..train.specs().len()).filter(|c| !eliminated.contains(c)).collect();
    let header = vec![
        "Grid cells/dim".to_string(),
        "Training instances".to_string(),
        "Yield loss".to_string(),
        "Defect escape".to_string(),
    ];
    let mut rows = Vec::new();
    // Reference: no compression.
    let reference = Compactor::new(train.clone(), test.clone())
        .and_then(|c| c.evaluate_kept_set_with(&svm(guard_band), &kept, guard_band).map(|(_, b)| b))
        .expect("reference model trains");
    rows.push(vec![
        "none".to_string(),
        train.len().to_string(),
        percent(reference.yield_loss()),
        percent(reference.defect_escape()),
    ]);
    for &resolution in resolutions {
        let compressed =
            gridmodel::compress_training_data(train, resolution).expect("compression succeeds");
        let compactor =
            Compactor::new(compressed.clone(), test.clone()).expect("populations are valid");
        let (_, breakdown) = compactor
            .evaluate_kept_set_with(&svm(guard_band), &kept, guard_band)
            .expect("compressed model trains");
        rows.push(vec![
            resolution.to_string(),
            compressed.len().to_string(),
            percent(breakdown.yield_loss()),
            percent(breakdown.defect_escape()),
        ]);
    }
    let mut out = String::new();
    out.push_str("Ablation D: grid-based training-data compression\n\n");
    out.push_str(&render_table(&header, &rows));
    out
}

/// **Baseline** — ad-hoc compaction versus the statistical model on the same
/// dropped-test set.
///
/// # Panics
///
/// Panics if either evaluation fails.
pub fn ablation_adhoc(
    train: &MeasurementSet,
    test: &MeasurementSet,
    dropped: &[usize],
    guard_band: &GuardBandConfig,
) -> String {
    let compactor = Compactor::new(train.clone(), test.clone()).expect("populations are valid");
    let statistical = compactor
        .eliminate_group_with(&svm(guard_band), dropped, guard_band)
        .expect("statistical model trains");
    let adhoc = baseline::evaluate_adhoc(test, dropped).expect("ad-hoc evaluation succeeds");
    let names: Vec<&str> = dropped.iter().map(|&c| train.specs().spec(c).name()).collect();
    let mut out = String::new();
    out.push_str(&format!(
        "Baseline: dropping {:?} without vs with a statistical model\n\n",
        names
    ));
    out.push_str(&render_breakdown("  ad-hoc (no model)  ", &adhoc.breakdown));
    out.push('\n');
    out.push_str(&render_breakdown("  statistical (paper)", &statistical));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stc_core::{generate_train_test, MonteCarloConfig, SyntheticDevice};

    /// The experiment plumbing is exercised on a synthetic population so the
    /// unit tests stay fast; the real op-amp/MEMS runs happen in the bin
    /// targets and integration tests.
    fn synthetic_population() -> (MeasurementSet, MeasurementSet) {
        let device = SyntheticDevice::new(11, 1.8, 0.9);
        generate_train_test(&device, &MonteCarloConfig::new(300).with_seed(3), 150).unwrap()
    }

    fn synthetic_mems_population() -> (MeasurementSet, MeasurementSet) {
        let device = SyntheticDevice::new(12, 1.8, 0.9);
        generate_train_test(&device, &MonteCarloConfig::new(300).with_seed(4), 150).unwrap()
    }

    #[test]
    fn functional_order_addresses_valid_specs() {
        let order = opamp_functional_order();
        assert!(order.iter().all(|&i| i < 11));
        assert_eq!(order.len(), 8);
    }

    #[test]
    fn table_and_figure_renderers_produce_output() {
        let (train, test) = synthetic_population();
        let guard_band = GuardBandConfig::paper_default();
        assert!(table1(&train, &test).contains("Training yield"));
        let (steps, fig5) = figure5(&train, &test, &guard_band);
        assert_eq!(steps.len(), 8);
        assert!(fig5.contains("Figure 5"));
        let (breakdowns, fig6) = figure6(&train, &test, &[100, 300], &guard_band);
        assert_eq!(breakdowns.len(), 2);
        assert!(fig6.contains("Training instances"));
    }

    #[test]
    fn table3_and_cost_reduction_render() {
        let (train, test) = synthetic_mems_population();
        let guard_band = GuardBandConfig::paper_default();
        let (breakdowns, rendered) = table3(&train, &test, &guard_band);
        assert_eq!(breakdowns.len(), 3);
        assert!(rendered.contains("Table 3"));
        assert!(rendered.contains("Test-cost reduction"));
        assert!(table2(&train, &test).contains("Training yield"));
    }

    #[test]
    fn ablations_render() {
        let (train, test) = synthetic_population();
        let guard_band = GuardBandConfig::paper_default();
        let (class_error, reg_error, summary) =
            ablation_classification_vs_regression(&train, &test, 1, &guard_band);
        assert!(summary.contains("classification"));
        assert!(class_error >= 0.0 && reg_error >= 0.0);
        assert!(ablation_guardband(&train, &test, &[1], &[0.02, 0.05]).contains("Guard band"));
        assert!(ablation_adhoc(&train, &test, &[1], &guard_band).contains("ad-hoc"));
        assert!(ablation_grid(&train, &test, &[1], &[8], &guard_band).contains("Grid cells/dim"));
    }
}
