//! Machine-readable performance trajectories for the compaction stack.
//!
//! Six reports, two gating disciplines:
//!
//! * [`TrajectoryReport`] — **deterministic solver counters** (trainings,
//!   SMO iterations, warm-start and cache statistics) for a fixed compaction
//!   workload across population scales and search strategies.  Every field
//!   is an exact integer or a literal configuration constant, so the
//!   enveloped JSON is byte-identical across machines and CI *diffs* the
//!   regenerated file against the committed
//!   `crates/bench/snapshots/BENCH_trajectory.json`, exactly like
//!   `BENCH_pipeline.json`.
//! * [`SequentialReport`] — **deterministic sequential-deploy accounting**
//!   (stage orders, decision-depth histograms, expected versus static cost)
//!   for fixed pipelines under uniform and non-uniform cost models.  The
//!   whole stack is deterministic, so the committed
//!   `BENCH_sequential.json` is byte-diffed like the trajectory.
//! * [`KernelReport`] — **wall-clock timings** of naive versus blocked
//!   versus bank-seeded RBF kernel-row assembly.  Timings are machine
//!   dependent, so the committed `BENCH_kernel.json` records the reference
//!   measurement and CI regenerates a fresh copy and *validates its
//!   structure* ([`KernelReport::validate`]) instead of byte-diffing it.
//! * [`BatchTimingReport`] — **wall-clock timings** of the `pipeline_batch`
//!   workload across worker-thread counts, gated like the kernel report
//!   (`BENCH_batch.json` is the reference measurement, CI regenerates and
//!   structure-checks).
//! * [`SearchTimingReport`] — **wall-clock timings** of the search stack
//!   (full pipeline, warm-started greedy, the bundled non-greedy strategies
//!   and a budget-truncated run), gated like the kernel report
//!   (`BENCH_search.json` is the reference, CI regenerates and
//!   structure-checks).
//! * [`ScreeningReport`] — **deterministic screen-then-verify counters**
//!   (candidates screened, verified and agreed, exact trainings saved) for
//!   fixed workloads with the 0.10 Nyström screen on, including the paper's
//!   op-amp at 10^4 simulated devices.  Every run is paired with the exact
//!   path and the kept/eliminated sets are asserted byte-identical, so the
//!   committed `BENCH_screening.json` is byte-diffed like the trajectory.
//!
//! All files are wrapped in the versioned `stc-serve` envelope
//! (`{"schema_version": 1, "payload": ...}`), produced and checked by the
//! `trajectory` binary.

use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use spec_test_compaction::adapters::OpAmpDevice;
use stc_core::pipeline::{CompactionPipeline, PipelineReport};
use stc_core::search::{
    BeamSearch, CmaEs, CostAwareGreedy, ForwardSelection, GeneticSearch, GreedyBackward,
    ParticleSwarm, ScreeningConfig, SearchBudget, SearchStrategy,
};
use stc_core::{
    generate_train_test, CompactionConfig, CompactionResult, Compactor, DeviceUnderTest,
    MonteCarloConfig, PipelineBatch, SyntheticDevice, TestCostModel,
};
use stc_svm::{Dataset, Kernel, KernelEngine, KernelPath, SvmBackend};

/// Deterministic counters for one `(population, strategy)` compaction run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// Training population size (devices).
    pub train_devices: usize,
    /// Held-out population size (devices).
    pub test_devices: usize,
    /// Specification count of the synthetic device.
    pub specs: usize,
    /// Search strategy that produced this point.
    pub strategy: String,
    /// Error tolerance the run was configured with.
    pub tolerance: f64,
    /// Kept specification indices.
    pub kept: Vec<usize>,
    /// Eliminated specification indices, in elimination order.
    pub eliminated: Vec<usize>,
    /// Total classifier trainings charged to the run.
    pub trainings: usize,
    /// Total SMO iterations across all trainings.
    pub solver_iterations: usize,
    /// Trainings that warm-started from a parent model.
    pub warm_trainings: usize,
    /// Trainings that started cold.
    pub cold_trainings: usize,
    /// SMO iterations spent by warm-started trainings.
    pub warm_iterations: usize,
    /// SMO iterations spent by cold trainings.
    pub cold_iterations: usize,
    /// Model-cache hits observed by the evaluator.
    pub cache_hits: usize,
    /// Model-cache misses observed by the evaluator.
    pub cache_misses: usize,
}

impl TrajectoryPoint {
    fn from_result(
        train_devices: usize,
        test_devices: usize,
        specs: usize,
        strategy: &str,
        tolerance: f64,
        result: &CompactionResult,
    ) -> Self {
        TrajectoryPoint {
            train_devices,
            test_devices,
            specs,
            strategy: strategy.to_string(),
            tolerance,
            kept: result.kept.clone(),
            eliminated: result.eliminated.clone(),
            trainings: result.budget.trainings,
            solver_iterations: result.budget.solver_iterations,
            warm_trainings: result.warm_start.warm_trainings,
            cold_trainings: result.warm_start.cold_trainings,
            warm_iterations: result.warm_start.warm_iterations,
            cold_iterations: result.warm_start.cold_iterations,
            cache_hits: result.cache.hits,
            cache_misses: result.cache.misses,
        }
    }
}

/// The deterministic performance trajectory of the ε-SVM compaction stack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryReport {
    /// One point per `(population, strategy)` pair, in workload order.
    pub points: Vec<TrajectoryPoint>,
}

impl TrajectoryReport {
    /// Structural sanity of a decoded report (used by `trajectory --check`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.points.is_empty() {
            return Err("trajectory has no points".to_string());
        }
        for (i, point) in self.points.iter().enumerate() {
            if point.kept.is_empty() {
                return Err(format!("point {i}: kept set is empty"));
            }
            if point.kept.len() + point.eliminated.len() != point.specs {
                return Err(format!("point {i}: kept + eliminated != specs"));
            }
            if point.trainings == 0 || point.solver_iterations == 0 {
                return Err(format!("point {i}: no solver work recorded"));
            }
            if point.warm_trainings + point.cold_trainings != point.trainings {
                return Err(format!("point {i}: warm + cold trainings != trainings"));
            }
        }
        Ok(())
    }
}

/// The fixed workload behind [`TrajectoryReport`]: two synthetic populations
/// (fixed seeds, sizes independent of `STC_SCALE`), each compacted with the
/// greedy loop and every bundled search strategy on the paper's ε-SVM
/// backend.  Pure integer counters out of a deterministic stack: running
/// this twice — or on two machines — produces byte-identical reports.
///
/// # Panics
///
/// Panics if a population cannot be generated or a compaction fails (both
/// indicate a broken build, not bad input).
pub fn collect_trajectory() -> TrajectoryReport {
    let backend = SvmBackend::paper_default();
    let tolerance = 0.05;
    let mut points = Vec::new();
    for (specs, train_devices, test_devices, seed) in [(5, 300, 150, 31u64), (6, 400, 200, 7)] {
        let device = SyntheticDevice::new(specs, 1.8, 0.92);
        let monte_carlo = MonteCarloConfig::new(train_devices).with_seed(seed);
        let (train, test) =
            generate_train_test(&device, &monte_carlo, test_devices).expect("population generates");
        let compactor = Compactor::new(train, test).expect("populations are valid");
        let config = CompactionConfig::paper_default().with_tolerance(tolerance);

        let greedy = compactor.compact_with(&backend, &config).expect("greedy compaction runs");
        points.push(TrajectoryPoint::from_result(
            train_devices,
            test_devices,
            specs,
            "greedy",
            tolerance,
            &greedy,
        ));

        let strategies: [&dyn SearchStrategy; 3] =
            [&BeamSearch::new(2), &ForwardSelection, &CostAwareGreedy];
        for strategy in strategies {
            let result = compactor
                .compact_with_strategy(&backend, &config, strategy, None)
                .expect("strategy compaction runs");
            points.push(TrajectoryPoint::from_result(
                train_devices,
                test_devices,
                specs,
                strategy.name(),
                tolerance,
                &result,
            ));
        }
    }
    TrajectoryReport { points }
}

/// Deterministic sequential-deploy accounting for one `(population, cost
/// model)` pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequentialPoint {
    /// Specification count of the synthetic device.
    pub specs: usize,
    /// Training population size (devices).
    pub train_devices: usize,
    /// Held-out population size (devices).
    pub test_devices: usize,
    /// Error tolerance the run was configured with.
    pub tolerance: f64,
    /// `"uniform"` or `"grouped"` — the cost model driving the stage order.
    pub cost_model: String,
    /// Kept specification indices.
    pub kept: Vec<usize>,
    /// Cheapest-first stage order the deploy ran.
    pub stage_order: Vec<usize>,
    /// Devices that exited before the final stage.
    pub early_exits: usize,
    /// `decision_depths[d]` devices decided after `d + 1` measurements.
    pub decision_depths: Vec<usize>,
    /// Mean decision depth (measurements per device).
    pub mean_depth: f64,
    /// Expected cost per device of the sequential deploy.
    pub expected_cost: f64,
    /// Cost of measuring the whole kept set up front.
    pub static_cost: f64,
}

/// The deterministic sequential-deploy trajectory (byte-diffed on CI).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequentialReport {
    /// One point per `(population, cost model)` pair, in workload order.
    pub points: Vec<SequentialPoint>,
}

impl SequentialReport {
    /// Structural sanity of a decoded report (used by `trajectory --check`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.points.is_empty() {
            return Err("sequential report has no points".to_string());
        }
        for (i, point) in self.points.iter().enumerate() {
            if point.kept.is_empty() {
                return Err(format!("point {i}: kept set is empty"));
            }
            let mut staged = point.stage_order.clone();
            let mut kept = point.kept.clone();
            staged.sort_unstable();
            kept.sort_unstable();
            if staged != kept {
                return Err(format!("point {i}: stage order is not a permutation of kept"));
            }
            let decided: usize = point.decision_depths.iter().sum();
            if decided != point.test_devices {
                return Err(format!("point {i}: decision depths do not cover the population"));
            }
            if point.early_exits > point.test_devices {
                return Err(format!("point {i}: more early exits than devices"));
            }
            if point.expected_cost > point.static_cost + 1e-9 {
                return Err(format!(
                    "point {i}: expected cost {} exceeds static cost {}",
                    point.expected_cost, point.static_cost
                ));
            }
        }
        Ok(())
    }
}

/// A non-uniform cost model over `tests` specifications: rising per-test
/// costs split across two insertions, the second expensive to open.
fn grouped_cost_model(tests: usize) -> TestCostModel {
    let per_test: Vec<f64> = (0..tests).map(|i| 1.0 + i as f64).collect();
    let groups: Vec<usize> = (0..tests).map(|i| usize::from(i >= tests / 2)).collect();
    TestCostModel::new(per_test, groups, vec![2.0, 10.0]).expect("grouped cost model is valid")
}

/// The fixed workload behind [`SequentialReport`]: the trajectory's two
/// synthetic populations, each compacted once on the ε-SVM backend and
/// deployed sequentially under a uniform and a grouped cost model.
/// Eliminations are capped so the deployed plans keep several stages — a
/// single-stage plan cannot exit early and prices nothing.  The whole stack
/// — simulation, training, staging, cost accounting — is deterministic, so
/// the report is byte-identical across machines.
///
/// # Panics
///
/// Panics if a pipeline run fails (a broken build, not bad input).
pub fn collect_sequential() -> SequentialReport {
    let tolerance = 0.05;
    let mut points = Vec::new();
    for (specs, train_devices, test_devices, seed) in [(5, 300, 150, 31u64), (6, 400, 200, 7)] {
        let device = SyntheticDevice::new(specs, 1.8, 0.92);
        for (name, cost_model) in
            [("uniform", TestCostModel::uniform(specs)), ("grouped", grouped_cost_model(specs))]
        {
            let report = CompactionPipeline::for_device(&device)
                .monte_carlo(MonteCarloConfig::new(train_devices).with_seed(seed))
                .test_instances(test_devices)
                .compaction(
                    CompactionConfig::paper_default()
                        .with_tolerance(tolerance)
                        .with_max_eliminated(2),
                )
                .classifier(SvmBackend::paper_default())
                .cost_model(cost_model)
                .run()
                .expect("sequential workload pipeline runs");
            let stats = report.sequential.as_ref().expect("sequential deploy is on by default");
            points.push(SequentialPoint {
                specs,
                train_devices,
                test_devices,
                tolerance,
                cost_model: name.to_string(),
                kept: report.compaction.kept.clone(),
                stage_order: stats.stage_order.clone(),
                early_exits: stats.early_exits,
                decision_depths: stats.decision_depths.clone(),
                mean_depth: stats.mean_depth,
                expected_cost: stats.expected_cost,
                static_cost: stats.static_cost,
            });
        }
    }
    SequentialReport { points }
}

/// Wall-clock timing of one `pipeline_batch` workload configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchTiming {
    /// Batch entries (devices).
    pub devices: usize,
    /// Training population per entry.
    pub train_devices: usize,
    /// Worker threads running whole pipelines concurrently.
    pub batch_threads: usize,
    /// Total wall time of the batch run, in milliseconds.
    pub total_ms: f64,
    /// `total_ms / devices`.
    pub ms_per_device: f64,
}

/// Wall-clock `pipeline_batch` measurements (machine dependent; CI validates
/// structure, not bytes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchTimingReport {
    /// One timing per thread count, in measurement order.
    pub timings: Vec<BatchTiming>,
}

impl BatchTimingReport {
    /// Structural sanity of a decoded report (used by `trajectory --check`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.timings.is_empty() {
            return Err("batch timing report has no timings".to_string());
        }
        for (i, timing) in self.timings.iter().enumerate() {
            if timing.devices == 0 || timing.batch_threads == 0 {
                return Err(format!("timing {i}: empty workload"));
            }
            for (name, value) in
                [("total_ms", timing.total_ms), ("ms_per_device", timing.ms_per_device)]
            {
                if !(value.is_finite() && value > 0.0) {
                    return Err(format!("timing {i}: {name} = {value} is not positive"));
                }
            }
        }
        Ok(())
    }
}

/// Times the `pipeline_batch` bench workload — a family of synthetic devices
/// compacted on the grid backend with shared population caching — once per
/// entry of `threads`.
///
/// # Panics
///
/// Panics if a batch run fails (a broken build, not bad input).
pub fn measure_batch(devices: usize, train_devices: usize, threads: &[usize]) -> BatchTimingReport {
    let family: Vec<SyntheticDevice> =
        (0..devices).map(|i| SyntheticDevice::new(4 + i % 3, 1.8, 0.9)).collect();
    let timings = threads
        .iter()
        .map(|&batch_threads| {
            let mut batch = PipelineBatch::new()
                .monte_carlo(MonteCarloConfig::new(train_devices).with_seed(23))
                .compaction(CompactionConfig::paper_default().with_tolerance(0.05))
                .batch_threads(batch_threads);
            for device in &family {
                batch = batch.device(device);
            }
            let start = Instant::now();
            let report = batch.run().expect("batch workload runs");
            let total_ms = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(report.runs.len(), devices);
            BatchTiming {
                devices,
                train_devices,
                batch_threads,
                total_ms,
                ms_per_device: total_ms / devices as f64,
            }
        })
        .collect();
    BatchTimingReport { timings }
}

/// Wall-clock timing of RBF kernel-row assembly at one population size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelTiming {
    /// Devices (rows) in the dataset.
    pub samples: usize,
    /// Feature columns.
    pub dimension: usize,
    /// Kernel rows assembled per timed pass.
    pub rows_assembled: usize,
    /// Nanoseconds per row, naive per-element `Kernel::eval` assembly.
    pub naive_ns_per_row: f64,
    /// Nanoseconds per row, blocked columnar assembly with precomputed norms.
    pub blocked_ns_per_row: f64,
    /// Nanoseconds per row when seeded from a parent's [`stc_svm::DotRowBank`].
    pub banked_ns_per_row: f64,
    /// `naive_ns_per_row / blocked_ns_per_row`.
    pub blocked_speedup: f64,
    /// `naive_ns_per_row / banked_ns_per_row`.
    pub banked_speedup: f64,
    /// Largest `|blocked - naive|` kernel-row entry seen while timing.
    pub max_abs_row_difference: f64,
}

/// Wall-clock kernel-engine measurements (machine dependent; CI validates
/// structure, not bytes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelReport {
    /// One timing per measured population size, ascending.
    pub timings: Vec<KernelTiming>,
}

impl KernelReport {
    /// Structural sanity of a decoded report (used by `trajectory --check`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.timings.is_empty() {
            return Err("kernel report has no timings".to_string());
        }
        for (i, timing) in self.timings.iter().enumerate() {
            for (name, value) in [
                ("naive_ns_per_row", timing.naive_ns_per_row),
                ("blocked_ns_per_row", timing.blocked_ns_per_row),
                ("banked_ns_per_row", timing.banked_ns_per_row),
                ("blocked_speedup", timing.blocked_speedup),
                ("banked_speedup", timing.banked_speedup),
            ] {
                if !(value.is_finite() && value > 0.0) {
                    return Err(format!("timing {i}: {name} = {value} is not positive"));
                }
            }
            if timing.rows_assembled == 0 {
                return Err(format!("timing {i}: no rows assembled"));
            }
            if timing.max_abs_row_difference > 1e-12 {
                return Err(format!(
                    "timing {i}: blocked rows diverge from naive by {}",
                    timing.max_abs_row_difference
                ));
            }
        }
        Ok(())
    }
}

/// Deterministic pseudo-random dataset for the kernel timings: `samples`
/// devices over `dimension` correlated features, values in roughly `[0, 1]`
/// (the compaction pipeline feeds the engine normalized measurements).
fn timing_dataset(samples: usize, dimension: usize) -> Dataset {
    let mut state = 0x5DEECE66Du64;
    let mut next = move || {
        // SplitMix64: cheap, dependency-free, stable across platforms.
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    };
    let columns: Vec<Vec<f64>> = (0..dimension)
        .map(|c| {
            let offset = c as f64 / dimension as f64;
            (0..samples).map(|_| 0.8 * next() + 0.2 * offset).collect()
        })
        .collect();
    let column_refs: Vec<&[f64]> = columns.iter().map(Vec::as_slice).collect();
    let labels: Vec<f64> = (0..samples).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    Dataset::from_columns(&column_refs, &labels).expect("timing dataset is valid")
}

/// Assembles `rows` kernel rows on a fresh engine and returns the elapsed
/// nanoseconds per row plus a checksum defeating dead-code elimination.
fn time_assembly(
    data: &Dataset,
    path: KernelPath,
    bank: Option<&stc_svm::DotRowBank>,
    rows: usize,
    out: &mut [f64],
) -> (f64, f64) {
    let start = Instant::now();
    let engine = KernelEngine::with_bank(data, Kernel::rbf(1.0), path, bank);
    let mut checksum = 0.0;
    for i in 0..rows {
        engine.kernel_row(i, out);
        checksum += out[i];
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    (elapsed / rows as f64, checksum)
}

/// Times naive versus blocked versus bank-seeded RBF row assembly at each of
/// `sizes` (devices), `dimension` features.  The bank variant reproduces the
/// greedy loop's shape: the parent dataset has one extra column, its engine
/// records the same rows, and the child adjusts them by the dropped column.
pub fn measure_kernel(sizes: &[usize], dimension: usize) -> KernelReport {
    let timings = sizes
        .iter()
        .map(|&samples| {
            let parent = timing_dataset(samples, dimension + 1);
            let kept: Vec<usize> = (0..dimension).collect();
            let child = parent.select_columns(&kept).expect("child projection is valid");
            let rows = samples.min(96);
            let mut out = vec![0.0; samples];

            // Warm-up pass (page in the columns), then one timed pass each.
            let _ = time_assembly(&child, KernelPath::Blocked, None, rows, &mut out);
            let (naive_ns_per_row, _) =
                time_assembly(&child, KernelPath::Naive, None, rows, &mut out);
            let (blocked_ns_per_row, _) =
                time_assembly(&child, KernelPath::Blocked, None, rows, &mut out);

            let parent_engine = KernelEngine::new(&parent, Kernel::rbf(1.0), KernelPath::Blocked);
            for i in 0..rows {
                parent_engine.kernel_row(i, &mut out);
            }
            let bank = parent_engine.into_bank();
            let (banked_ns_per_row, _) =
                time_assembly(&child, KernelPath::Blocked, Some(&bank), rows, &mut out);

            let max_abs_row_difference = max_row_difference(&child, rows);
            KernelTiming {
                samples,
                dimension,
                rows_assembled: rows,
                naive_ns_per_row,
                blocked_ns_per_row,
                banked_ns_per_row,
                blocked_speedup: naive_ns_per_row / blocked_ns_per_row,
                banked_speedup: naive_ns_per_row / banked_ns_per_row,
                max_abs_row_difference,
            }
        })
        .collect();
    KernelReport { timings }
}

fn max_row_difference(data: &Dataset, rows: usize) -> f64 {
    let blocked = KernelEngine::new(data, Kernel::rbf(1.0), KernelPath::Blocked);
    let naive = KernelEngine::new(data, Kernel::rbf(1.0), KernelPath::Naive);
    let mut fast = vec![0.0; data.len()];
    let mut reference = vec![0.0; data.len()];
    let mut max = 0.0f64;
    for i in 0..rows {
        blocked.kernel_row(i, &mut fast);
        naive.kernel_row(i, &mut reference);
        for (a, b) in fast.iter().zip(reference.iter()) {
            max = max.max((a - b).abs());
        }
    }
    max
}

/// Wall-clock timing of one search-stack scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchTiming {
    /// Scenario name — one of [`SearchTimingReport::SCENARIOS`].
    pub scenario: String,
    /// Specification count of the synthetic device.
    pub specs: usize,
    /// Training population size (devices).
    pub train_devices: usize,
    /// Held-out population size (devices).
    pub test_devices: usize,
    /// Total wall time of the scenario, in milliseconds.
    pub total_ms: f64,
    /// Classifier trainings charged to the scenario's runs.
    pub trainings: usize,
    /// SMO iterations across all of the scenario's trainings.
    pub solver_iterations: usize,
}

/// Wall-clock search-stack measurements (machine dependent; CI validates
/// structure, not bytes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchTimingReport {
    /// One timing per scenario, in measurement order.
    pub timings: Vec<SearchTiming>,
}

impl SearchTimingReport {
    /// Scenarios every valid report must cover, mirroring the criterion
    /// benches of the same names.
    pub const SCENARIOS: [&'static str; 4] =
        ["pipeline", "warm_start", "search_strategies", "budgeted_search"];

    /// Per-strategy series rows every valid report must additionally cover:
    /// the `search_strategies` aggregate stays for continuity, but each
    /// bundled non-greedy strategy also records its own wall-time row, so a
    /// new strategy lands as a new series instead of disappearing into the
    /// sum.
    pub const STRATEGY_SERIES: [&'static str; 6] = [
        "strategy:beam",
        "strategy:forward-selection",
        "strategy:cost-aware-greedy",
        "strategy:genetic",
        "strategy:cma-es",
        "strategy:particle-swarm",
    ];

    /// Structural sanity of a decoded report (used by `trajectory --check`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.timings.is_empty() {
            return Err("search timing report has no timings".to_string());
        }
        for required in Self::SCENARIOS.iter().chain(Self::STRATEGY_SERIES.iter()) {
            if !self.timings.iter().any(|timing| &timing.scenario == required) {
                return Err(format!("search timing report misses scenario {required}"));
            }
        }
        for (i, timing) in self.timings.iter().enumerate() {
            if timing.specs == 0 || timing.train_devices == 0 || timing.test_devices == 0 {
                return Err(format!("timing {i}: empty workload"));
            }
            if !(timing.total_ms.is_finite() && timing.total_ms > 0.0) {
                return Err(format!("timing {i}: total_ms = {} is not positive", timing.total_ms));
            }
            if timing.trainings == 0 || timing.solver_iterations == 0 {
                return Err(format!("timing {i}: no solver work recorded"));
            }
        }
        Ok(())
    }
}

/// Times the search stack end to end on one synthetic population: the full
/// staged pipeline, the warm-started greedy loop, the bundled non-greedy
/// strategies (one `strategy:<name>` series row each, plus the historical
/// `search_strategies` aggregate of the first three), and a
/// budget-truncated greedy run.  The aggregate scenario names mirror the
/// criterion benches (`pipeline`, `warm_start`, `search_strategies`,
/// `budgeted_search`) so the two views of the same hot paths line up.
///
/// # Panics
///
/// Panics if a population cannot be generated or a compaction fails (both
/// indicate a broken build, not bad input).
pub fn measure_search(train_devices: usize, test_devices: usize) -> SearchTimingReport {
    let specs = 6;
    let tolerance = 0.05;
    let device = SyntheticDevice::new(specs, 1.8, 0.92);
    let monte_carlo = MonteCarloConfig::new(train_devices).with_seed(19);
    let pipeline_scenario = |scenario: &str, config: CompactionConfig| {
        let start = Instant::now();
        let report = CompactionPipeline::for_device(&device)
            .monte_carlo(monte_carlo)
            .test_instances(test_devices)
            .compaction(config)
            .classifier(SvmBackend::paper_default())
            .run()
            .expect("search timing pipeline runs");
        SearchTiming {
            scenario: scenario.to_string(),
            specs,
            train_devices,
            test_devices,
            total_ms: start.elapsed().as_secs_f64() * 1e3,
            trainings: report.compaction.budget.trainings,
            solver_iterations: report.compaction.budget.solver_iterations,
        }
    };
    let base = CompactionConfig::paper_default().with_tolerance(tolerance);
    let mut timings = vec![
        pipeline_scenario("pipeline", base.clone()),
        pipeline_scenario("warm_start", base.clone().with_warm_start(true)),
        pipeline_scenario(
            "budgeted_search",
            base.clone().with_budget(SearchBudget::unlimited().with_max_trainings(12)),
        ),
    ];

    let (train, test) =
        generate_train_test(&device, &monte_carlo, test_devices).expect("population generates");
    let compactor = Compactor::new(train, test).expect("populations are valid");
    let backend = SvmBackend::paper_default();
    // Each bundled non-greedy strategy gets its own wall-time series row
    // (`strategy:<name>`); the first three also feed the historical
    // `search_strategies` aggregate.
    let cma = CmaEs { population: 8, generations: 6, ..CmaEs::new(11) };
    let swarm = ParticleSwarm { particles: 8, iterations: 6, ..ParticleSwarm::new(11) };
    let series: [&dyn SearchStrategy; 6] = [
        &BeamSearch::new(2),
        &ForwardSelection,
        &CostAwareGreedy,
        &GeneticSearch::new(11),
        &cma,
        &swarm,
    ];
    let mut aggregate_ms = 0.0;
    let mut aggregate_trainings = 0;
    let mut aggregate_iterations = 0;
    for (index, strategy) in series.iter().enumerate() {
        let start = Instant::now();
        let result = compactor
            .compact_with_strategy(&backend, &base, *strategy, None)
            .expect("strategy compaction runs");
        let total_ms = start.elapsed().as_secs_f64() * 1e3;
        if index < 3 {
            aggregate_ms += total_ms;
            aggregate_trainings += result.budget.trainings;
            aggregate_iterations += result.budget.solver_iterations;
        }
        timings.push(SearchTiming {
            scenario: format!("strategy:{}", strategy.name()),
            specs,
            train_devices,
            test_devices,
            total_ms,
            trainings: result.budget.trainings,
            solver_iterations: result.budget.solver_iterations,
        });
    }
    timings.push(SearchTiming {
        scenario: "search_strategies".to_string(),
        specs,
        train_devices,
        test_devices,
        total_ms: aggregate_ms,
        trainings: aggregate_trainings,
        solver_iterations: aggregate_iterations,
    });
    SearchTimingReport { timings }
}

/// Deterministic screen-then-verify counters for one `(device, strategy)`
/// workload, paired with the exact run of the same workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScreeningPoint {
    /// Device label (`"opamp"`, `"synthetic-6"`, ...).
    pub device: String,
    /// Search strategy that produced this point.
    pub strategy: String,
    /// Specification count of the device.
    pub specs: usize,
    /// Training population size (devices).
    pub train_devices: usize,
    /// Held-out population size (devices).
    pub test_devices: usize,
    /// Nyström landmarks the screen trained with.
    pub landmarks: usize,
    /// Screened candidates promoted to exact verification per batch.
    pub shortlist: usize,
    /// Kept specification indices of the screened run.
    pub kept: Vec<usize>,
    /// Eliminated specification indices of the screened run, in order.
    pub eliminated: Vec<usize>,
    /// Whether the screened kept set is byte-identical to the exact run's.
    pub kept_identical: bool,
    /// Whether the screened elimination order is byte-identical to the
    /// exact run's.
    pub eliminated_identical: bool,
    /// Exact trainings charged to the unscreened run.
    pub exact_trainings: usize,
    /// Exact trainings charged to the screened run.
    pub screened_trainings: usize,
    /// `exact_trainings - screened_trainings`.
    pub trainings_saved: usize,
    /// Candidates scored by the low-rank screen.
    pub screened: usize,
    /// Screened candidates promoted to exact verification.
    pub verified: usize,
    /// Batches where the screen's top-ranked candidate matched the exact
    /// winner.
    pub agreed: usize,
    /// Candidate batches the screen was active on.
    pub batches: usize,
}

/// The deterministic screen-then-verify trajectory (byte-diffed on CI).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScreeningReport {
    /// One point per `(device, strategy)` workload, in workload order.
    pub points: Vec<ScreeningPoint>,
}

impl ScreeningReport {
    /// Structural sanity of a decoded report (used by `trajectory --check`).
    /// The exactness contract — screened kept/eliminated sets byte-identical
    /// to the exact path, with strictly fewer exact trainings — is part of
    /// validity, so a regression fails the check, not just the byte diff.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.points.is_empty() {
            return Err("screening report has no points".to_string());
        }
        for (i, point) in self.points.iter().enumerate() {
            if point.kept.is_empty() {
                return Err(format!("point {i}: kept set is empty"));
            }
            if point.kept.len() + point.eliminated.len() != point.specs {
                return Err(format!("point {i}: kept + eliminated != specs"));
            }
            if !(point.kept_identical && point.eliminated_identical) {
                return Err(format!("point {i}: screened run diverged from the exact run"));
            }
            if point.screened_trainings + point.trainings_saved != point.exact_trainings {
                return Err(format!("point {i}: training ledger does not balance"));
            }
            if point.trainings_saved == 0 {
                return Err(format!("point {i}: the screen saved no exact trainings"));
            }
            if point.batches == 0 || point.screened == 0 {
                return Err(format!("point {i}: the screen never activated"));
            }
            if point.verified > point.screened || point.agreed > point.batches {
                return Err(format!("point {i}: inconsistent screen counters"));
            }
        }
        Ok(())
    }
}

/// Runs one workload twice — exact, then screened — and folds both into a
/// [`ScreeningPoint`].
#[allow(clippy::too_many_arguments)]
fn screened_pair(
    device: &dyn DeviceUnderTest,
    device_label: &str,
    monte_carlo: &MonteCarloConfig,
    train_devices: usize,
    test_devices: usize,
    config: &CompactionConfig,
    strategy_label: &str,
    strategy: Arc<dyn SearchStrategy>,
    screening: ScreeningConfig,
) -> ScreeningPoint {
    let run = |screen: Option<ScreeningConfig>| -> PipelineReport {
        let mut pipeline = CompactionPipeline::for_device(device)
            .monte_carlo(*monte_carlo)
            .test_instances(test_devices)
            .compaction(config.clone())
            .classifier(SvmBackend::paper_default())
            .search_arc(Arc::clone(&strategy));
        if let Some(screen) = screen {
            pipeline = pipeline.screening(screen);
        }
        pipeline.run().expect("screening workload pipeline runs")
    };
    let exact = run(None);
    let screened = run(Some(screening));
    eprintln!(
        "screening workload {device_label}/{strategy_label}: exact {} vs screened {} trainings",
        exact.compaction.budget.trainings, screened.compaction.budget.trainings,
    );
    let stats = &screened.compaction.screening;
    let exact_trainings = exact.compaction.budget.trainings;
    let screened_trainings = screened.compaction.budget.trainings;
    ScreeningPoint {
        device: device_label.to_string(),
        strategy: strategy_label.to_string(),
        specs: screened.compaction.kept.len() + screened.compaction.eliminated.len(),
        train_devices,
        test_devices,
        landmarks: screening.landmarks,
        shortlist: screening.shortlist,
        kept: screened.compaction.kept.clone(),
        eliminated: screened.compaction.eliminated.clone(),
        kept_identical: screened.compaction.kept == exact.compaction.kept,
        eliminated_identical: screened.compaction.eliminated == exact.compaction.eliminated,
        exact_trainings,
        screened_trainings,
        trainings_saved: exact_trainings.saturating_sub(screened_trainings),
        screened: stats.screened,
        verified: stats.verified,
        agreed: stats.agreed,
        batches: stats.batches,
    }
}

/// The fixed workload behind [`ScreeningReport`]: a synthetic population
/// compacted with the greedy loop and a beam search, plus the paper's
/// two-stage op-amp at production scale — 10^4 simulated devices — all on
/// the ε-SVM backend with the 0.10 Nyström screen on.  Each workload also
/// runs the exact path so the point pins byte-identical kept/eliminated
/// sets next to the exact trainings the screen saved.  Sizes are fixed
/// (independent of `STC_SCALE`) and every counter is a deterministic
/// integer, so the report is byte-identical across machines.
///
/// # Panics
///
/// Panics if a pipeline run fails (a broken build, not bad input).
pub fn collect_screening() -> ScreeningReport {
    let mut points = Vec::new();

    let device = SyntheticDevice::new(6, 1.8, 0.92);
    let monte_carlo = MonteCarloConfig::new(400).with_seed(7);
    // Greedy examines `threads` candidates per speculative batch, so the
    // thread count must exceed the shortlist for the screen to activate.
    let config = CompactionConfig::paper_default().with_tolerance(0.05).with_threads(4);
    let screening = ScreeningConfig::screened(32, 3);
    let strategies: [(&str, Arc<dyn SearchStrategy>); 2] =
        [("greedy", Arc::new(GreedyBackward)), ("beam-2", Arc::new(BeamSearch::new(2)))];
    for (name, strategy) in strategies {
        points.push(screened_pair(
            &device,
            "synthetic-6",
            &monte_carlo,
            400,
            200,
            &config,
            name,
            strategy,
            screening,
        ));
    }

    let opamp = OpAmpDevice::paper_setup();
    let monte_carlo =
        MonteCarloConfig::new(10_000).with_seed(2005).with_calibration_quantiles(0.02, 0.98);
    let config = CompactionConfig::paper_default()
        .with_tolerance(0.05)
        .with_max_eliminated(2)
        .with_threads(4);
    points.push(screened_pair(
        &opamp,
        "opamp",
        &monte_carlo,
        10_000,
        5_000,
        &config,
        "greedy",
        Arc::new(GreedyBackward),
        ScreeningConfig::screened(64, 2),
    ));

    ScreeningReport { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_measurement_is_structurally_valid_at_small_scale() {
        let report = measure_kernel(&[64, 128], 8);
        report.validate().expect("small-scale kernel report validates");
        assert_eq!(report.timings.len(), 2);
        assert!(report.timings[0].samples < report.timings[1].samples);
    }

    #[test]
    fn batch_measurement_is_structurally_valid_at_small_scale() {
        let report = measure_batch(2, 60, &[1, 2]);
        report.validate().expect("small-scale batch report validates");
        assert_eq!(report.timings.len(), 2);
        assert_eq!(report.timings[0].batch_threads, 1);
        assert_eq!(report.timings[1].batch_threads, 2);
    }

    #[test]
    fn search_measurement_is_structurally_valid_at_small_scale() {
        let report = measure_search(80, 40);
        report.validate().expect("small-scale search report validates");
        assert_eq!(
            report.timings.len(),
            SearchTimingReport::SCENARIOS.len() + SearchTimingReport::STRATEGY_SERIES.len()
        );
    }

    #[test]
    fn search_validation_requires_every_scenario_and_series_row() {
        let report = measure_search(80, 40);
        let mut missing = report.clone();
        missing.timings.retain(|timing| timing.scenario != "warm_start");
        assert!(missing.validate().is_err());
        let mut no_series = report.clone();
        no_series.timings.retain(|timing| timing.scenario != "strategy:cma-es");
        assert!(no_series.validate().is_err());
        let mut stalled = report;
        stalled.timings[0].total_ms = 0.0;
        assert!(stalled.validate().is_err());
    }

    #[test]
    fn screening_validation_rejects_divergence_and_no_savings() {
        let mut report = ScreeningReport {
            points: vec![ScreeningPoint {
                device: "synthetic-6".to_string(),
                strategy: "greedy".to_string(),
                specs: 6,
                train_devices: 400,
                test_devices: 200,
                landmarks: 32,
                shortlist: 3,
                kept: vec![0, 2, 4, 5],
                eliminated: vec![3, 1],
                kept_identical: true,
                eliminated_identical: true,
                exact_trainings: 20,
                screened_trainings: 12,
                trainings_saved: 8,
                screened: 11,
                verified: 6,
                agreed: 2,
                batches: 2,
            }],
        };
        report.validate().expect("consistent point validates");
        report.points[0].kept_identical = false;
        assert!(report.validate().is_err());
        report.points[0].kept_identical = true;
        report.points[0].trainings_saved = 0;
        assert!(report.validate().is_err());
        report.points[0].trainings_saved = 8;
        report.points[0].screened_trainings = 13;
        assert!(report.validate().is_err());
        assert!(ScreeningReport { points: vec![] }.validate().is_err());
    }

    #[test]
    fn sequential_validation_rejects_inconsistent_points() {
        let mut report = SequentialReport {
            points: vec![SequentialPoint {
                specs: 4,
                train_devices: 100,
                test_devices: 50,
                tolerance: 0.05,
                cost_model: "uniform".to_string(),
                kept: vec![0, 2],
                stage_order: vec![2, 0],
                early_exits: 5,
                decision_depths: vec![5, 45],
                mean_depth: 1.9,
                expected_cost: 1.9,
                static_cost: 2.0,
            }],
        };
        report.validate().expect("consistent point validates");
        report.points[0].stage_order = vec![2, 1];
        assert!(report.validate().is_err());
        report.points[0].stage_order = vec![2, 0];
        report.points[0].decision_depths = vec![5, 40];
        assert!(report.validate().is_err());
        report.points[0].decision_depths = vec![5, 45];
        report.points[0].expected_cost = 2.5;
        assert!(report.validate().is_err());
        assert!(SequentialReport { points: vec![] }.validate().is_err());
    }

    #[test]
    fn trajectory_validation_rejects_inconsistent_points() {
        let mut report = TrajectoryReport {
            points: vec![TrajectoryPoint {
                train_devices: 10,
                test_devices: 5,
                specs: 3,
                strategy: "greedy".to_string(),
                tolerance: 0.05,
                kept: vec![0, 1],
                eliminated: vec![2],
                trainings: 4,
                solver_iterations: 100,
                warm_trainings: 3,
                cold_trainings: 1,
                warm_iterations: 60,
                cold_iterations: 40,
                cache_hits: 0,
                cache_misses: 4,
            }],
        };
        report.validate().expect("consistent point validates");
        report.points[0].warm_trainings = 4;
        assert!(report.validate().is_err());
        assert!(TrajectoryReport { points: vec![] }.validate().is_err());
    }
}
