//! # stc-mems
//!
//! Lumped-parameter behavioural model of a lateral comb-drive MEMS
//! accelerometer, used as the substitute for the CMU NODAS component library
//! in the reproduction of *"Specification Test Compaction for Analog Circuits
//! and MEMS"* (DATE 2005).
//!
//! The model reduces the layout geometry ([`AccelerometerGeometry`]) and
//! material properties ([`Material`]) to a second-order spring–mass–damper
//! system ([`lumped`]) with a capacitive readout, and measures the four
//! Table 2 specifications (scale factor, peak frequency, quality factor and
//! 3-dB bandwidth) at the three test temperatures of the paper
//! ([`TestTemperature`]): -40 °C, 27 °C and +80 °C.  Temperature is modelled
//! as chip shrinkage/expansion that moves the anchors, exactly as described
//! in Section 5.2 of the paper.
//!
//! ## Example
//!
//! ```
//! use stc_mems::{Accelerometer, MemsVariation, TestTemperature};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), stc_mems::MemsError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let nominal = Accelerometer::nominal();
//! let instance = MemsVariation::paper_default().perturb(&nominal, &mut rng);
//! let hot = instance.measure(TestTemperature::Hot)?;
//! assert!(hot.quality_factor > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accelerometer;
mod error;
mod geometry;
mod material;
mod temperature;
mod variation;

pub mod lumped;

pub use accelerometer::{Accelerometer, AccelerometerMeasurements};
pub use error::MemsError;
pub use geometry::AccelerometerGeometry;
pub use lumped::LumpedModel;
pub use material::Material;
pub use temperature::TestTemperature;
pub use variation::MemsVariation;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, MemsError>;
