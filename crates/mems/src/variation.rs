//! Process variation for accelerometer Monte-Carlo instances.
//!
//! The paper generates instances "by adding variations to the accelerometer
//! component lengths, widths and relative angles" (Section 5.2).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::accelerometer::Accelerometer;

/// Perturbation model for the accelerometer geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemsVariation {
    /// Relative half-width of the uniform variation applied to lengths and
    /// widths (0.05 = ±5 %).
    pub dimension_spread: f64,
    /// Absolute half-width (radians) of the uniform variation applied to the
    /// flexure angle.
    pub angle_spread: f64,
}

impl MemsVariation {
    /// The variation used for the paper's accelerometer study: ±5 % on every
    /// length/width and ±20 mrad of flexure misalignment.
    pub fn paper_default() -> Self {
        MemsVariation { dimension_spread: 0.05, angle_spread: 0.02 }
    }

    /// Draws one perturbed device from the nominal design.
    pub fn perturb<R: Rng>(&self, nominal: &Accelerometer, rng: &mut R) -> Accelerometer {
        let mut geometry = *nominal.geometry();
        for (name, value) in nominal.geometry().varying_fields() {
            let factor = rng.gen_range(1.0 - self.dimension_spread..=1.0 + self.dimension_spread);
            geometry.set_varying_field(name, value * factor);
        }
        geometry.flexure_angle = nominal.geometry().flexure_angle
            + rng.gen_range(-self.angle_spread..=self.angle_spread);
        nominal.with_geometry(geometry)
    }

    /// Convenience helper drawing `count` perturbed devices.
    pub fn sample<R: Rng>(
        &self,
        nominal: &Accelerometer,
        count: usize,
        rng: &mut R,
    ) -> Vec<Accelerometer> {
        (0..count).map(|_| self.perturb(nominal, rng)).collect()
    }
}

impl Default for MemsVariation {
    fn default() -> Self {
        MemsVariation::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temperature::TestTemperature;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perturbation_stays_in_band_and_changes_geometry() {
        let variation = MemsVariation::paper_default();
        let nominal = Accelerometer::nominal();
        let mut rng = StdRng::seed_from_u64(5);
        let device = variation.perturb(&nominal, &mut rng);
        let g = device.geometry();
        let n = nominal.geometry();
        assert_ne!(g, n);
        assert!((g.beam_length / n.beam_length - 1.0).abs() <= 0.05 + 1e-12);
        assert!(g.flexure_angle.abs() <= 0.02 + 1e-12);
    }

    #[test]
    fn most_perturbed_devices_still_measure() {
        let variation = MemsVariation::paper_default();
        let nominal = Accelerometer::nominal();
        let mut rng = StdRng::seed_from_u64(9);
        let devices = variation.sample(&nominal, 200, &mut rng);
        let ok = devices.iter().filter(|d| d.measure(TestTemperature::Room).is_ok()).count();
        assert_eq!(ok, 200, "every mildly perturbed device should still evaluate");
    }

    #[test]
    fn population_spreads_the_specifications() {
        let variation = MemsVariation::paper_default();
        let nominal = Accelerometer::nominal();
        let mut rng = StdRng::seed_from_u64(11);
        let values: Vec<f64> = variation
            .sample(&nominal, 100, &mut rng)
            .iter()
            .map(|d| d.measure(TestTemperature::Room).unwrap().peak_frequency)
            .collect();
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(max / min > 1.05, "population should spread: {min}..{max}");
    }
}
