//! Material and ambient properties used by the accelerometer model.

use serde::{Deserialize, Serialize};

/// Mechanical properties of the structural layer (polysilicon by default)
/// and of the surrounding gas.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Material {
    /// Young's modulus in pascals.
    pub youngs_modulus: f64,
    /// Density in kg/m³.
    pub density: f64,
    /// Linear thermal-expansion coefficient of the structural layer (1/K).
    pub thermal_expansion: f64,
    /// Linear thermal-expansion coefficient of the substrate (1/K); the
    /// mismatch with the structural layer is what moves the anchors when the
    /// chip heats or cools (paper Section 5.2).
    pub substrate_expansion: f64,
    /// Temperature coefficient of Young's modulus (1/K, negative: silicon
    /// softens when heated).
    pub modulus_temperature_coefficient: f64,
    /// Gas (air) dynamic viscosity at the reference temperature, Pa·s.
    pub gas_viscosity: f64,
}

impl Material {
    /// CMU-MEMS-style polysilicon over a silicon substrate in air.
    pub fn polysilicon() -> Self {
        Material {
            youngs_modulus: 160e9,
            density: 2_330.0,
            thermal_expansion: 2.6e-6,
            substrate_expansion: 3.2e-6,
            modulus_temperature_coefficient: -60e-6,
            gas_viscosity: 1.82e-5,
        }
    }

    /// Young's modulus at `delta_t` kelvin away from the reference
    /// temperature.
    pub fn youngs_modulus_at(&self, delta_t: f64) -> f64 {
        self.youngs_modulus * (1.0 + self.modulus_temperature_coefficient * delta_t)
    }

    /// Gas viscosity at `delta_t` kelvin away from the reference temperature
    /// (Sutherland-like power law around 300 K).
    pub fn gas_viscosity_at(&self, delta_t: f64) -> f64 {
        let t = 300.0 + delta_t;
        self.gas_viscosity * (t / 300.0).powf(0.7)
    }

    /// Differential expansion strain between substrate and structural layer
    /// for a temperature offset `delta_t` (positive strain pulls the anchors
    /// away from the proof mass when the chip heats up).
    pub fn mismatch_strain(&self, delta_t: f64) -> f64 {
        (self.substrate_expansion - self.thermal_expansion) * delta_t
    }
}

impl Default for Material {
    fn default() -> Self {
        Material::polysilicon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polysilicon_has_expected_magnitudes() {
        let m = Material::polysilicon();
        assert!(m.youngs_modulus > 1e11);
        assert!(m.density > 2_000.0 && m.density < 3_000.0);
        assert!(m.gas_viscosity > 1e-5 && m.gas_viscosity < 3e-5);
    }

    #[test]
    fn modulus_softens_when_heated() {
        let m = Material::polysilicon();
        assert!(m.youngs_modulus_at(80.0) < m.youngs_modulus);
        assert!(m.youngs_modulus_at(-40.0) > m.youngs_modulus);
    }

    #[test]
    fn viscosity_increases_with_temperature() {
        let m = Material::polysilicon();
        assert!(m.gas_viscosity_at(53.0) > m.gas_viscosity_at(0.0));
        assert!(m.gas_viscosity_at(-67.0) < m.gas_viscosity_at(0.0));
    }

    #[test]
    fn mismatch_strain_is_signed_with_temperature() {
        let m = Material::polysilicon();
        assert!(m.mismatch_strain(53.0) > 0.0);
        assert!(m.mismatch_strain(-67.0) < 0.0);
        assert_eq!(m.mismatch_strain(0.0), 0.0);
    }
}
