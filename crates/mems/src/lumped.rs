//! Reduction of the accelerometer layout to a lumped spring–mass–damper model.
//!
//! This is the behavioural-model substitute for the NODAS component library
//! used by the paper: each physical effect (flexure bending, comb sensing,
//! film damping, thermal anchor motion) is reduced to its standard lumped
//! expression, so the device is ultimately a second-order system whose
//! coefficients depend on geometry, material and temperature.

use serde::{Deserialize, Serialize};

use crate::geometry::AccelerometerGeometry;
use crate::material::Material;
use crate::{MemsError, Result};

/// Permittivity of free space (F/m).
const EPSILON_0: f64 = 8.854e-12;

/// Calibration constant absorbing higher-order gas-film effects that the
/// simple Couette/squeeze expressions underestimate; chosen so the nominal
/// device has a quality factor near the centre of the paper's Table 2 range.
const DAMPING_FIT: f64 = 8.3;

/// Fraction of the substrate/structural-layer mismatch strain that is
/// transferred into axial load on the flexures (the anchors sit on a frame
/// that absorbs part of the motion).
const ANCHOR_STRAIN_TRANSFER: f64 = 0.6;

/// Lumped second-order model of the accelerometer at one temperature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LumpedModel {
    /// Moving mass in kilograms.
    pub mass: f64,
    /// Suspension stiffness along the sense axis in newtons per metre.
    pub stiffness: f64,
    /// Viscous damping coefficient in newton-seconds per metre.
    pub damping: f64,
    /// Rest sense capacitance in farads.
    pub sense_capacitance: f64,
    /// Capacitance gradient dC/dx in farads per metre.
    pub capacitance_gradient: f64,
}

impl LumpedModel {
    /// Undamped natural frequency in hertz.
    pub fn natural_frequency(&self) -> f64 {
        (self.stiffness / self.mass).sqrt() / std::f64::consts::TAU
    }

    /// Quality factor `sqrt(k m) / b`.
    pub fn quality_factor(&self) -> f64 {
        (self.stiffness * self.mass).sqrt() / self.damping
    }

    /// Static displacement per unit acceleration (m per m/s²).
    pub fn static_compliance(&self) -> f64 {
        self.mass / self.stiffness
    }
}

/// Derives the lumped model from geometry and material at a temperature
/// offset `delta_t` (kelvin) from the room-temperature reference.
///
/// The temperature enters in four ways, mirroring the paper's description of
/// the effect as "chip shrinkage or expansion" that moves the anchors:
///
/// 1. the substrate/structural-layer expansion mismatch puts the flexures
///    under axial load, stress-stiffening (hot) or stress-softening (cold)
///    the suspension,
/// 2. Young's modulus drifts with temperature,
/// 3. the gas viscosity (and with it the damping) follows a power law in the
///    absolute temperature,
/// 4. the comb gaps dilate slightly, changing the sense capacitance.
///
/// # Errors
///
/// Returns [`MemsError::InvalidParameter`] for invalid geometry and
/// [`MemsError::NonPhysical`] when variation plus temperature drives the
/// stiffness or damping non-positive.
pub fn derive_lumped_model(
    geometry: &AccelerometerGeometry,
    material: &Material,
    delta_t: f64,
) -> Result<LumpedModel> {
    geometry.validate()?;

    // --- Mass: plate plus movable fingers plus one third of the beams. -----
    let plate_volume = geometry.plate_length * geometry.plate_width * geometry.thickness;
    let finger_volume = geometry.finger_count as f64
        * geometry.finger_length
        * geometry.finger_width
        * geometry.thickness;
    let beam_volume = geometry.beam_count as f64
        * geometry.beam_length
        * geometry.beam_width
        * geometry.thickness;
    let mass = material.density * (plate_volume + finger_volume + beam_volume / 3.0);

    // --- Stiffness: guided-end beams in parallel, with angular misalignment
    //     projecting the bending stiffness onto the sense axis. -------------
    let youngs = material.youngs_modulus_at(delta_t);
    let inertia = geometry.thickness * geometry.beam_width.powi(3) / 12.0;
    let bending = 12.0 * youngs * inertia / geometry.beam_length.powi(3);
    let alignment = geometry.flexure_angle.cos().powi(2);
    let mut stiffness = geometry.beam_count as f64 * bending * alignment;

    // Stress stiffening from the anchor motion: axial strain eps loads each
    // beam with N = E A eps; the lateral stiffness of a guided beam changes by
    // ~(6/5) N / L, i.e. by a factor (1 + (1/10) eps (L/w)^2) relative to pure
    // bending.
    let strain = ANCHOR_STRAIN_TRANSFER * material.mismatch_strain(delta_t);
    let slenderness = geometry.beam_length / geometry.beam_width;
    stiffness *= 1.0 + 0.1 * strain * slenderness * slenderness;
    if !(stiffness > 0.0) {
        return Err(MemsError::NonPhysical { quantity: "stiffness", value: stiffness });
    }

    // --- Damping: Couette film under the plate plus squeeze film in the
    //     comb gaps, scaled by the fitted film constant. --------------------
    let viscosity = material.gas_viscosity_at(delta_t);
    let couette = viscosity * geometry.plate_length * geometry.plate_width / geometry.substrate_gap;
    let squeeze = viscosity
        * geometry.finger_count as f64
        * geometry.finger_overlap
        * geometry.thickness.powi(3)
        / geometry.finger_gap.powi(3);
    let damping = DAMPING_FIT * (couette + squeeze);
    if !(damping > 0.0) {
        return Err(MemsError::NonPhysical { quantity: "damping", value: damping });
    }

    // --- Capacitive sense: parallel-plate combs on both sides of each
    //     finger; the gap dilates with the substrate expansion. -------------
    let gap = geometry.finger_gap * (1.0 + material.substrate_expansion * delta_t);
    let overlap_area = geometry.finger_overlap * geometry.thickness * geometry.flexure_angle.cos();
    let sense_capacitance = 2.0 * geometry.finger_count as f64 * EPSILON_0 * overlap_area / gap;
    let capacitance_gradient = sense_capacitance / gap;

    Ok(LumpedModel { mass, stiffness, damping, sense_capacitance, capacitance_gradient })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> LumpedModel {
        derive_lumped_model(&AccelerometerGeometry::nominal(), &Material::polysilicon(), 0.0)
            .unwrap()
    }

    #[test]
    fn nominal_model_is_in_the_papers_spec_ranges() {
        let model = nominal();
        // Table 2: peak frequency 4–6.2 kHz, quality factor 1–2.8.
        let fn_hz = model.natural_frequency();
        assert!(fn_hz > 4_000.0 && fn_hz < 6_500.0, "natural frequency {fn_hz}");
        let q = model.quality_factor();
        assert!(q > 1.0 && q < 2.8, "quality factor {q}");
        assert!(model.mass > 1e-10 && model.mass < 1e-8, "mass {}", model.mass);
        assert!(model.stiffness > 0.1 && model.stiffness < 10.0, "k {}", model.stiffness);
        assert!(model.sense_capacitance > 1e-14, "C {}", model.sense_capacitance);
    }

    #[test]
    fn longer_beams_soften_the_suspension() {
        let mut soft_geometry = AccelerometerGeometry::nominal();
        soft_geometry.beam_length *= 1.2;
        let soft = derive_lumped_model(&soft_geometry, &Material::polysilicon(), 0.0).unwrap();
        assert!(soft.stiffness < nominal().stiffness);
        assert!(soft.natural_frequency() < nominal().natural_frequency());
    }

    #[test]
    fn heating_stiffens_and_damps_this_design() {
        let material = Material::polysilicon();
        let geometry = AccelerometerGeometry::nominal();
        let room = derive_lumped_model(&geometry, &material, 0.0).unwrap();
        let hot = derive_lumped_model(&geometry, &material, 53.0).unwrap();
        let cold = derive_lumped_model(&geometry, &material, -67.0).unwrap();
        // Substrate expands faster than polysilicon => tension when hot.
        assert!(hot.stiffness > room.stiffness);
        assert!(cold.stiffness < room.stiffness);
        assert!(hot.damping > room.damping);
        assert!(cold.damping < room.damping);
        // The shift is a clearly measurable few percent, not a numerical blip.
        assert!(hot.stiffness / room.stiffness > 1.02);
        assert!(cold.stiffness / room.stiffness < 0.98);
    }

    #[test]
    fn angular_misalignment_reduces_stiffness_and_capacitance() {
        let mut tilted_geometry = AccelerometerGeometry::nominal();
        tilted_geometry.flexure_angle = 0.2;
        let tilted = derive_lumped_model(&tilted_geometry, &Material::polysilicon(), 0.0).unwrap();
        assert!(tilted.stiffness < nominal().stiffness);
        assert!(tilted.sense_capacitance < nominal().sense_capacitance);
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        let mut geometry = AccelerometerGeometry::nominal();
        geometry.beam_width = 0.0;
        assert!(derive_lumped_model(&geometry, &Material::polysilicon(), 0.0).is_err());
    }

    #[test]
    fn extreme_cold_cannot_produce_negative_stiffness_silently() {
        // A pathologically slender beam under strong compression buckles; the
        // model reports it as a non-physical stiffness instead of returning a
        // negative value.
        let mut geometry = AccelerometerGeometry::nominal();
        geometry.beam_width = 0.4e-6;
        geometry.beam_length = 500e-6;
        let result = derive_lumped_model(&geometry, &Material::polysilicon(), -400.0);
        match result {
            Err(MemsError::NonPhysical { quantity, .. }) => assert_eq!(quantity, "stiffness"),
            Ok(model) => assert!(model.stiffness > 0.0),
            Err(other) => panic!("unexpected error {other}"),
        }
    }
}
