//! Layout geometry of the surface-micromachined accelerometer.

use serde::{Deserialize, Serialize};

use crate::{MemsError, Result};

/// Geometric description of the accelerometer (all lengths in metres, angles
/// in radians).
///
/// The device is a conventional lateral comb accelerometer: a rectangular
/// proof-mass plate suspended by four folded-flexure beams anchored to the
/// substrate, with interdigitated comb fingers for capacitive position
/// sensing.  These are exactly the quantities the paper perturbs to create
/// Monte-Carlo instances ("component lengths, widths and relative angles",
/// Section 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccelerometerGeometry {
    /// Proof-mass plate edge length along the sense axis.
    pub plate_length: f64,
    /// Proof-mass plate edge length across the sense axis.
    pub plate_width: f64,
    /// Structural-layer thickness.
    pub thickness: f64,
    /// Suspension beam length (one beam of the folded flexure).
    pub beam_length: f64,
    /// Suspension beam width.
    pub beam_width: f64,
    /// Number of suspension beams (4 for the classic folded flexure).
    pub beam_count: usize,
    /// Angular misalignment of the flexures relative to the sense axis.
    pub flexure_angle: f64,
    /// Number of movable comb fingers.
    pub finger_count: usize,
    /// Comb finger length.
    pub finger_length: f64,
    /// Comb finger width.
    pub finger_width: f64,
    /// Comb finger overlap with the stator fingers.
    pub finger_overlap: f64,
    /// Lateral gap between rotor and stator fingers.
    pub finger_gap: f64,
    /// Vertical gap between the proof mass and the substrate.
    pub substrate_gap: f64,
}

impl AccelerometerGeometry {
    /// Nominal geometry of the CMU-style accelerometer used in the paper's
    /// second case study (sized so the nominal specifications fall inside the
    /// Table 2 acceptance ranges).
    pub fn nominal() -> Self {
        AccelerometerGeometry {
            plate_length: 400e-6,
            plate_width: 400e-6,
            thickness: 2.0e-6,
            beam_length: 230e-6,
            beam_width: 2.0e-6,
            beam_count: 4,
            flexure_angle: 0.0,
            finger_count: 42,
            finger_length: 120e-6,
            finger_width: 2.0e-6,
            finger_overlap: 100e-6,
            finger_gap: 1.5e-6,
            substrate_gap: 2.0e-6,
        }
    }

    /// Validates that every dimension is physically meaningful.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError::InvalidParameter`] naming the first bad field.
    pub fn validate(&self) -> Result<()> {
        let positive = [
            ("plate_length", self.plate_length),
            ("plate_width", self.plate_width),
            ("thickness", self.thickness),
            ("beam_length", self.beam_length),
            ("beam_width", self.beam_width),
            ("finger_length", self.finger_length),
            ("finger_width", self.finger_width),
            ("finger_overlap", self.finger_overlap),
            ("finger_gap", self.finger_gap),
            ("substrate_gap", self.substrate_gap),
        ];
        for (parameter, value) in positive {
            if !(value > 0.0) || !value.is_finite() {
                return Err(MemsError::InvalidParameter { parameter, value });
            }
        }
        if self.beam_count == 0 {
            return Err(MemsError::InvalidParameter { parameter: "beam_count", value: 0.0 });
        }
        if self.finger_count == 0 {
            return Err(MemsError::InvalidParameter { parameter: "finger_count", value: 0.0 });
        }
        if self.flexure_angle.abs() > 0.5 {
            return Err(MemsError::InvalidParameter {
                parameter: "flexure_angle",
                value: self.flexure_angle,
            });
        }
        if self.finger_overlap > self.finger_length {
            return Err(MemsError::InvalidParameter {
                parameter: "finger_overlap",
                value: self.finger_overlap,
            });
        }
        Ok(())
    }

    /// The continuously-varying fields as `(name, value)` pairs, used by the
    /// process-variation machinery (counts are not perturbed).
    pub fn varying_fields(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("plate_length", self.plate_length),
            ("plate_width", self.plate_width),
            ("thickness", self.thickness),
            ("beam_length", self.beam_length),
            ("beam_width", self.beam_width),
            ("finger_length", self.finger_length),
            ("finger_width", self.finger_width),
            ("finger_overlap", self.finger_overlap),
            ("finger_gap", self.finger_gap),
            ("substrate_gap", self.substrate_gap),
        ]
    }

    /// Sets a varying field by name (inverse of
    /// [`AccelerometerGeometry::varying_fields`]).
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a varying field.
    pub fn set_varying_field(&mut self, name: &str, value: f64) {
        match name {
            "plate_length" => self.plate_length = value,
            "plate_width" => self.plate_width = value,
            "thickness" => self.thickness = value,
            "beam_length" => self.beam_length = value,
            "beam_width" => self.beam_width = value,
            "finger_length" => self.finger_length = value,
            "finger_width" => self.finger_width = value,
            "finger_overlap" => self.finger_overlap = value,
            "finger_gap" => self.finger_gap = value,
            "substrate_gap" => self.substrate_gap = value,
            other => panic!("unknown accelerometer geometry field {other}"),
        }
    }
}

impl Default for AccelerometerGeometry {
    fn default() -> Self {
        AccelerometerGeometry::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_geometry_is_valid() {
        assert!(AccelerometerGeometry::nominal().validate().is_ok());
    }

    #[test]
    fn negative_or_zero_dimensions_are_rejected() {
        let mut g = AccelerometerGeometry::nominal();
        g.beam_length = 0.0;
        assert!(matches!(
            g.validate(),
            Err(MemsError::InvalidParameter { parameter: "beam_length", .. })
        ));
        let mut g = AccelerometerGeometry::nominal();
        g.finger_gap = -1e-6;
        assert!(g.validate().is_err());
        let mut g = AccelerometerGeometry::nominal();
        g.beam_count = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn excessive_angle_and_overlap_are_rejected() {
        let mut g = AccelerometerGeometry::nominal();
        g.flexure_angle = 1.0;
        assert!(g.validate().is_err());
        let mut g = AccelerometerGeometry::nominal();
        g.finger_overlap = g.finger_length * 2.0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn varying_fields_round_trip() {
        let mut g = AccelerometerGeometry::nominal();
        let fields = g.varying_fields();
        assert_eq!(fields.len(), 10);
        for (name, value) in fields {
            g.set_varying_field(name, value * 1.5);
        }
        assert!(
            (g.plate_length / AccelerometerGeometry::nominal().plate_length - 1.5).abs() < 1e-12
        );
    }

    #[test]
    #[should_panic(expected = "unknown accelerometer geometry field")]
    fn unknown_field_panics() {
        AccelerometerGeometry::nominal().set_varying_field("bogus", 1.0);
    }
}
