//! Error type for MEMS model construction and evaluation.

use std::error::Error;
use std::fmt;

/// Errors produced while building or evaluating the accelerometer model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MemsError {
    /// A geometric or material parameter was outside its physical domain.
    InvalidParameter {
        /// Parameter name.
        parameter: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// A derived quantity (mass, stiffness, damping) became non-physical,
    /// usually because process variation drove the geometry out of range.
    NonPhysical {
        /// Which derived quantity failed.
        quantity: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A frequency-response measurement could not be extracted.
    MeasurementFailed {
        /// Name of the measurement.
        measurement: &'static str,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for MemsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemsError::InvalidParameter { parameter, value } => {
                write!(f, "invalid {parameter} = {value}")
            }
            MemsError::NonPhysical { quantity, value } => {
                write!(f, "derived {quantity} is non-physical ({value})")
            }
            MemsError::MeasurementFailed { measurement, reason } => {
                write!(f, "measurement {measurement} failed: {reason}")
            }
        }
    }
}

impl Error for MemsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MemsError::InvalidParameter { parameter: "beam_length", value: -1.0 };
        assert!(e.to_string().contains("beam_length"));
        let e = MemsError::NonPhysical { quantity: "stiffness", value: 0.0 };
        assert!(e.to_string().contains("stiffness"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemsError>();
    }
}
