//! The accelerometer device model and its specification measurements.

use serde::{Deserialize, Serialize};

use crate::geometry::AccelerometerGeometry;
use crate::lumped::{derive_lumped_model, LumpedModel};
use crate::material::Material;
use crate::temperature::TestTemperature;
use crate::{MemsError, Result};

/// Standard gravity used to express the scale factor per g.
const STANDARD_GRAVITY: f64 = 9.80665;

/// The four specifications of Table 2, measured at one temperature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccelerometerMeasurements {
    /// Capacitive readout scale factor in millivolts per g.
    pub scale_factor: f64,
    /// Frequency of the resonant peak of the acceleration response, in kHz
    /// (0 when the device is overdamped and has no peak).
    pub peak_frequency: f64,
    /// Mechanical quality factor (dimensionless).
    pub quality_factor: f64,
    /// -3 dB bandwidth of the acceleration response, in kHz.
    pub bandwidth_3db: f64,
}

impl AccelerometerMeasurements {
    /// The measurements as a vector in the canonical Table 2 order.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![self.scale_factor, self.peak_frequency, self.quality_factor, self.bandwidth_3db]
    }

    /// Names of the four specifications in the same order as
    /// [`AccelerometerMeasurements::to_vec`].
    pub fn names() -> &'static [&'static str] {
        &["scale factor", "peak frequency", "quality factor", "3-dB bandwidth"]
    }

    /// Units of the four specifications.
    pub fn units() -> &'static [&'static str] {
        &["mV/g", "kHz", "-", "kHz"]
    }
}

/// A lateral comb-drive MEMS accelerometer with a capacitive readout.
///
/// # Example
///
/// ```
/// use stc_mems::{Accelerometer, TestTemperature};
///
/// # fn main() -> Result<(), stc_mems::MemsError> {
/// let device = Accelerometer::nominal();
/// let room = device.measure(TestTemperature::Room)?;
/// assert!(room.peak_frequency > 4.0 && room.peak_frequency < 6.2);
/// let hot = device.measure(TestTemperature::Hot)?;
/// assert_ne!(room.peak_frequency, hot.peak_frequency);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Accelerometer {
    geometry: AccelerometerGeometry,
    material: Material,
    /// Readout-chain gain from relative capacitance change to output volts
    /// (chopper-stabilised capacitive readout amplifier).
    readout_gain: f64,
}

impl Accelerometer {
    /// Creates an accelerometer from explicit geometry, material and readout
    /// gain.
    pub fn new(geometry: AccelerometerGeometry, material: Material, readout_gain: f64) -> Self {
        Accelerometer { geometry, material, readout_gain }
    }

    /// The nominal design used in the paper's second case study.
    pub fn nominal() -> Self {
        Accelerometer {
            geometry: AccelerometerGeometry::nominal(),
            material: Material::polysilicon(),
            readout_gain: 5.0,
        }
    }

    /// Returns a copy with different geometry (used by process variation).
    pub fn with_geometry(&self, geometry: AccelerometerGeometry) -> Self {
        Accelerometer { geometry, ..*self }
    }

    /// The device geometry.
    pub fn geometry(&self) -> &AccelerometerGeometry {
        &self.geometry
    }

    /// The structural material.
    pub fn material(&self) -> &Material {
        &self.material
    }

    /// The lumped spring–mass–damper model at a test temperature.
    ///
    /// # Errors
    ///
    /// Propagates geometry-validation and non-physical-model errors from
    /// [`derive_lumped_model`].
    pub fn lumped_model(&self, temperature: TestTemperature) -> Result<LumpedModel> {
        derive_lumped_model(&self.geometry, &self.material, temperature.delta_from_room())
    }

    /// Measures the four Table 2 specifications at one test temperature.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError::NonPhysical`] when process variation drives the
    /// mechanical model out of its valid domain and
    /// [`MemsError::MeasurementFailed`] when the frequency response is too
    /// degenerate to characterise.
    pub fn measure(&self, temperature: TestTemperature) -> Result<AccelerometerMeasurements> {
        let model = self.lumped_model(temperature)?;
        let natural_frequency = model.natural_frequency();
        let quality_factor = model.quality_factor();
        if !natural_frequency.is_finite() || !quality_factor.is_finite() {
            return Err(MemsError::MeasurementFailed {
                measurement: "frequency_response",
                reason: "natural frequency or quality factor is not finite".to_string(),
            });
        }

        // Second-order acceleration-to-displacement response
        //   H(j w) = (1/wn^2) / (1 - u + j u / Q),  u = (w/wn)^2.
        // Peak frequency (0 if the response is overdamped and peak-free).
        let peak_frequency = if quality_factor > std::f64::consts::FRAC_1_SQRT_2 {
            natural_frequency * (1.0 - 1.0 / (2.0 * quality_factor * quality_factor)).sqrt()
        } else {
            0.0
        };

        // -3 dB bandwidth of the low-pass response (closed form).
        let inv_q2 = 1.0 / (quality_factor * quality_factor);
        let u = (2.0 - inv_q2 + ((2.0 - inv_q2).powi(2) + 4.0).sqrt()) / 2.0;
        let bandwidth_3db = natural_frequency * u.sqrt();

        // Scale factor: static displacement per g converted to a differential
        // capacitance change and then to the readout output voltage.
        let displacement_per_g = model.static_compliance() * STANDARD_GRAVITY;
        let relative_capacitance_change =
            model.capacitance_gradient * displacement_per_g / model.sense_capacitance;
        let scale_factor = self.readout_gain * relative_capacitance_change * 1e3;

        Ok(AccelerometerMeasurements {
            scale_factor,
            peak_frequency: peak_frequency / 1e3,
            quality_factor,
            bandwidth_3db: bandwidth_3db / 1e3,
        })
    }

    /// Measures the device at every insertion (cold, room, hot) and returns
    /// the twelve values in the order
    /// `[cold spec1..4, room spec1..4, hot spec1..4]`.
    ///
    /// # Errors
    ///
    /// Propagates the first measurement failure.
    pub fn measure_all_temperatures(&self) -> Result<Vec<f64>> {
        let mut values = Vec::with_capacity(12);
        for temperature in TestTemperature::all() {
            values.extend(self.measure(temperature)?.to_vec());
        }
        Ok(values)
    }
}

impl Default for Accelerometer {
    fn default() -> Self {
        Accelerometer::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_measurements_fall_in_table2_ranges() {
        let m = Accelerometer::nominal().measure(TestTemperature::Room).unwrap();
        assert!(m.peak_frequency > 4.0 && m.peak_frequency < 6.2, "peak {}", m.peak_frequency);
        assert!(m.quality_factor > 1.0 && m.quality_factor < 2.8, "Q {}", m.quality_factor);
        assert!(m.bandwidth_3db > 2.0 && m.bandwidth_3db < 3.8 * 3.0, "bw {}", m.bandwidth_3db);
        assert!(m.scale_factor > 0.1 && m.scale_factor < 1000.0, "sf {}", m.scale_factor);
    }

    #[test]
    fn temperature_shifts_every_specification() {
        let device = Accelerometer::nominal();
        let room = device.measure(TestTemperature::Room).unwrap();
        let hot = device.measure(TestTemperature::Hot).unwrap();
        let cold = device.measure(TestTemperature::Cold).unwrap();
        // Hot: tensioned (stiffer) suspension => lower compliance => lower
        // scale factor; more viscous gas => lower Q.  Cold is the opposite.
        assert!(hot.scale_factor < room.scale_factor);
        assert!(cold.scale_factor > room.scale_factor);
        assert!(hot.quality_factor < room.quality_factor);
        assert!(cold.quality_factor > room.quality_factor);
        // Every spec shifts measurably with temperature, but the device is
        // still recognisably the same part (the shifts stay within 20 %) —
        // this correlation is what makes the temperature tests predictable
        // from the room-temperature measurements.
        for (h, (r, c)) in hot.to_vec().iter().zip(room.to_vec().iter().zip(cold.to_vec().iter())) {
            assert_ne!(h, r);
            assert_ne!(c, r);
            assert!((h / r - 1.0).abs() < 0.2, "hot shift too large: {h} vs {r}");
            assert!((c / r - 1.0).abs() < 0.2, "cold shift too large: {c} vs {r}");
        }
    }

    #[test]
    fn measure_all_temperatures_orders_cold_room_hot() {
        let device = Accelerometer::nominal();
        let all = device.measure_all_temperatures().unwrap();
        assert_eq!(all.len(), 12);
        let cold = device.measure(TestTemperature::Cold).unwrap().to_vec();
        let room = device.measure(TestTemperature::Room).unwrap().to_vec();
        let hot = device.measure(TestTemperature::Hot).unwrap().to_vec();
        assert_eq!(&all[0..4], cold.as_slice());
        assert_eq!(&all[4..8], room.as_slice());
        assert_eq!(&all[8..12], hot.as_slice());
    }

    #[test]
    fn overdamped_variant_reports_zero_peak_frequency() {
        // Shrink the finger gap drastically: squeeze-film damping explodes and
        // the response loses its resonant peak.
        let mut geometry = AccelerometerGeometry::nominal();
        geometry.finger_gap = 0.4e-6;
        let device = Accelerometer::nominal().with_geometry(geometry);
        let m = device.measure(TestTemperature::Room).unwrap();
        assert!(m.quality_factor < std::f64::consts::FRAC_1_SQRT_2);
        assert_eq!(m.peak_frequency, 0.0);
        assert!(m.bandwidth_3db > 0.0);
    }

    #[test]
    fn invalid_geometry_propagates_as_error() {
        let mut geometry = AccelerometerGeometry::nominal();
        geometry.beam_length = -1.0;
        let device = Accelerometer::nominal().with_geometry(geometry);
        assert!(device.measure(TestTemperature::Room).is_err());
    }

    #[test]
    fn names_units_and_vector_are_consistent() {
        let m = Accelerometer::nominal().measure(TestTemperature::Room).unwrap();
        assert_eq!(m.to_vec().len(), AccelerometerMeasurements::names().len());
        assert_eq!(
            AccelerometerMeasurements::names().len(),
            AccelerometerMeasurements::units().len()
        );
    }
}
