//! Test-insertion temperatures.

use serde::{Deserialize, Serialize};

/// The three temperatures at which the paper tests the accelerometer
/// (Section 5.2): hot and cold insertions are expensive because the chip must
/// soak to a steady-state temperature, which is exactly the cost the
/// compaction flow removes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TestTemperature {
    /// -40 °C cold insertion.
    Cold,
    /// 27 °C room-temperature insertion.
    Room,
    /// +80 °C hot insertion.
    Hot,
}

impl TestTemperature {
    /// All three insertions in the order cold, room, hot.
    pub fn all() -> [TestTemperature; 3] {
        [TestTemperature::Cold, TestTemperature::Room, TestTemperature::Hot]
    }

    /// Chip temperature in degrees Celsius.
    pub fn celsius(self) -> f64 {
        match self {
            TestTemperature::Cold => -40.0,
            TestTemperature::Room => 27.0,
            TestTemperature::Hot => 80.0,
        }
    }

    /// Offset from the room-temperature reference in kelvin.
    pub fn delta_from_room(self) -> f64 {
        self.celsius() - TestTemperature::Room.celsius()
    }

    /// Short label used in reports ("-40C", "27C", "80C").
    pub fn label(self) -> &'static str {
        match self {
            TestTemperature::Cold => "-40C",
            TestTemperature::Room => "27C",
            TestTemperature::Hot => "80C",
        }
    }

    /// Relative cost of applying one specification test at this temperature,
    /// normalised to a room-temperature test.  Temperature insertions need a
    /// thermal soak, which the paper reports as dominating test cost ("this
    /// level of compaction would reduce test cost by more than half").
    pub fn relative_test_cost(self) -> f64 {
        match self {
            TestTemperature::Room => 1.0,
            TestTemperature::Hot => 2.5,
            TestTemperature::Cold => 3.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperatures_match_the_paper() {
        assert_eq!(TestTemperature::Cold.celsius(), -40.0);
        assert_eq!(TestTemperature::Room.celsius(), 27.0);
        assert_eq!(TestTemperature::Hot.celsius(), 80.0);
        assert_eq!(TestTemperature::Room.delta_from_room(), 0.0);
        assert_eq!(TestTemperature::Hot.delta_from_room(), 53.0);
        assert_eq!(TestTemperature::Cold.delta_from_room(), -67.0);
    }

    #[test]
    fn labels_and_costs_are_consistent() {
        for t in TestTemperature::all() {
            assert!(!t.label().is_empty());
            assert!(t.relative_test_cost() >= 1.0);
        }
        assert!(
            TestTemperature::Cold.relative_test_cost() > TestTemperature::Room.relative_test_cost()
        );
    }
}
