//! Frequency-response measurements used by the specification tests.

use crate::ac::AcSweep;
use crate::netlist::NodeId;
use crate::{CircuitError, Result};

/// Low-frequency (first sweep point) magnitude of a node, the usual estimate
/// of DC gain when the sweep starts well below the first pole.
pub fn dc_gain(sweep: &AcSweep, node: NodeId) -> f64 {
    sweep.phasor(node, 0).norm()
}

/// Interpolated frequency at which the magnitude response of `node` falls to
/// `1/sqrt(2)` of its low-frequency value (the -3 dB bandwidth).
///
/// # Errors
///
/// Returns [`CircuitError::MeasurementFailed`] when the response never drops
/// below the -3 dB level inside the sweep.
pub fn bandwidth_3db(sweep: &AcSweep, node: NodeId) -> Result<f64> {
    let magnitudes = sweep.magnitude(node);
    let reference = magnitudes[0];
    let target = reference * std::f64::consts::FRAC_1_SQRT_2;
    crossing_frequency(sweep.frequencies(), &magnitudes, target).ok_or_else(|| {
        CircuitError::MeasurementFailed {
            measurement: "bandwidth_3db",
            reason: "response never drops 3 dB below its low-frequency value".to_string(),
        }
    })
}

/// Interpolated frequency at which the magnitude response of `node` crosses
/// unity (the unity-gain frequency of an open-loop amplifier response).
///
/// # Errors
///
/// Returns [`CircuitError::MeasurementFailed`] when the response never crosses
/// 1.0 inside the sweep (for example because the amplifier gain is below one
/// everywhere).
pub fn unity_gain_frequency(sweep: &AcSweep, node: NodeId) -> Result<f64> {
    let magnitudes = sweep.magnitude(node);
    if magnitudes[0] <= 1.0 {
        return Err(CircuitError::MeasurementFailed {
            measurement: "unity_gain_frequency",
            reason: "low-frequency gain is already below unity".to_string(),
        });
    }
    crossing_frequency(sweep.frequencies(), &magnitudes, 1.0).ok_or_else(|| {
        CircuitError::MeasurementFailed {
            measurement: "unity_gain_frequency",
            reason: "gain never falls to unity inside the sweep".to_string(),
        }
    })
}

/// Phase margin in degrees: `180° + phase` at the unity-gain frequency.
///
/// # Errors
///
/// Propagates the unity-gain-crossing error from [`unity_gain_frequency`].
pub fn phase_margin(sweep: &AcSweep, node: NodeId) -> Result<f64> {
    let f_unity = unity_gain_frequency(sweep, node)?;
    // Interpolate the phase at f_unity.
    let freqs = sweep.frequencies();
    let phases = sweep.phase(node);
    let mut phase_at_unity = phases[phases.len() - 1];
    for i in 1..freqs.len() {
        if freqs[i] >= f_unity {
            let f0 = freqs[i - 1];
            let f1 = freqs[i];
            let fraction = if f1 > f0 { (f_unity - f0) / (f1 - f0) } else { 0.0 };
            phase_at_unity = phases[i - 1] + fraction * (phases[i] - phases[i - 1]);
            break;
        }
    }
    Ok(180.0 + phase_at_unity.to_degrees())
}

/// Frequency of the largest magnitude in the sweep (resonant peak).
pub fn peak_frequency(sweep: &AcSweep, node: NodeId) -> f64 {
    let magnitudes = sweep.magnitude(node);
    let mut best = 0usize;
    for i in 1..magnitudes.len() {
        if magnitudes[i] > magnitudes[best] {
            best = i;
        }
    }
    sweep.frequencies()[best]
}

/// Quality factor estimated from the resonant peak: `f_peak / (f_hi - f_lo)`
/// where `f_lo`/`f_hi` are the half-power frequencies either side of the peak.
///
/// # Errors
///
/// Returns [`CircuitError::MeasurementFailed`] if the half-power points do not
/// lie inside the sweep (peak too close to the edges).
pub fn quality_factor(sweep: &AcSweep, node: NodeId) -> Result<f64> {
    let magnitudes = sweep.magnitude(node);
    let freqs = sweep.frequencies();
    let mut peak = 0usize;
    for i in 1..magnitudes.len() {
        if magnitudes[i] > magnitudes[peak] {
            peak = i;
        }
    }
    let half_power = magnitudes[peak] * std::f64::consts::FRAC_1_SQRT_2;
    // Walk left and right from the peak to the half-power crossings.
    let mut f_lo = None;
    for i in (1..=peak).rev() {
        if magnitudes[i - 1] <= half_power && magnitudes[i] >= half_power {
            f_lo =
                interpolate(freqs[i - 1], freqs[i], magnitudes[i - 1], magnitudes[i], half_power);
            break;
        }
    }
    let mut f_hi = None;
    for i in peak..magnitudes.len() - 1 {
        if magnitudes[i] >= half_power && magnitudes[i + 1] <= half_power {
            f_hi =
                interpolate(freqs[i], freqs[i + 1], magnitudes[i], magnitudes[i + 1], half_power);
            break;
        }
    }
    match (f_lo, f_hi) {
        (Some(lo), Some(hi)) if hi > lo => Ok(freqs[peak] / (hi - lo)),
        _ => Err(CircuitError::MeasurementFailed {
            measurement: "quality_factor",
            reason: "half-power points not bracketed by the sweep".to_string(),
        }),
    }
}

fn interpolate(f0: f64, f1: f64, m0: f64, m1: f64, target: f64) -> Option<f64> {
    if (m1 - m0).abs() < f64::EPSILON {
        return Some(f1);
    }
    let fraction = (target - m0) / (m1 - m0);
    if (0.0..=1.0).contains(&fraction) {
        Some(f0 + fraction * (f1 - f0))
    } else {
        None
    }
}

/// First frequency (descending search from the low end) at which `values`
/// crosses `target` downward, linearly interpolated; `None` if it never does.
fn crossing_frequency(frequencies: &[f64], values: &[f64], target: f64) -> Option<f64> {
    for i in 1..values.len() {
        if values[i - 1] >= target && values[i] < target {
            return interpolate(
                frequencies[i - 1],
                frequencies[i],
                values[i - 1],
                values[i],
                target,
            );
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ac::{ac_analysis, log_frequency_sweep};
    use crate::dc::dc_operating_point;
    use crate::elements::SourceWaveform;
    use crate::netlist::Circuit;

    /// Behavioural single-pole amplifier: gain 1000, pole at 1 kHz.
    fn single_pole_amplifier() -> (Circuit, NodeId) {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vx = c.node("vx");
        let vout = c.node("vout");
        c.ac_voltage_source("V1", vin, Circuit::ground(), SourceWaveform::dc(0.0), 1.0).unwrap();
        // Transconductance into an RC load: gain = gm * R = 1000, pole = 1/(2*pi*R*C).
        c.vccs("G1", Circuit::ground(), vx, vin, Circuit::ground(), 1.0).unwrap();
        c.resistor("R1", vx, Circuit::ground(), 1_000.0).unwrap();
        c.capacitor("C1", vx, Circuit::ground(), 159.154943e-9).unwrap();
        c.vcvs("E1", vout, Circuit::ground(), vx, Circuit::ground(), 1.0).unwrap();
        (c, vout)
    }

    #[test]
    fn single_pole_gain_bandwidth_and_unity_crossing() {
        let (c, vout) = single_pole_amplifier();
        let op = dc_operating_point(&c).unwrap();
        let sweep = ac_analysis(&c, &op, &log_frequency_sweep(1.0, 100e6, 401)).unwrap();
        let gain = dc_gain(&sweep, vout);
        assert!((gain - 1000.0).abs() / 1000.0 < 0.01, "gain {gain}");
        let bw = bandwidth_3db(&sweep, vout).unwrap();
        assert!((bw / 1_000.0 - 1.0).abs() < 0.05, "bandwidth {bw}");
        let fu = unity_gain_frequency(&sweep, vout).unwrap();
        // Gain-bandwidth product: fu ≈ gain * pole = 1 MHz.
        assert!((fu / 1e6 - 1.0).abs() < 0.05, "unity-gain frequency {fu}");
        let pm = phase_margin(&sweep, vout).unwrap();
        assert!(pm > 85.0 && pm <= 95.0, "phase margin {pm}");
    }

    #[test]
    fn resonant_peak_and_quality_factor_of_rlc() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let mid = c.node("mid");
        let vout = c.node("vout");
        c.ac_voltage_source("V1", vin, Circuit::ground(), SourceWaveform::dc(0.0), 1.0).unwrap();
        c.resistor("R1", vin, mid, 10.0).unwrap();
        c.inductor("L1", mid, vout, 1e-3).unwrap();
        c.capacitor("C1", vout, Circuit::ground(), 1e-6).unwrap();
        let op = dc_operating_point(&c).unwrap();
        let sweep = ac_analysis(&c, &op, &log_frequency_sweep(100.0, 100_000.0, 801)).unwrap();
        let f_peak = peak_frequency(&sweep, vout);
        assert!((f_peak / 5_033.0 - 1.0).abs() < 0.05, "peak {f_peak}");
        let q = quality_factor(&sweep, vout).unwrap();
        // Q = (1/R) sqrt(L/C) ≈ 3.16.
        assert!((q / 3.16 - 1.0).abs() < 0.15, "Q {q}");
    }

    #[test]
    fn measurements_fail_gracefully_when_out_of_range() {
        let (c, vout) = single_pole_amplifier();
        let op = dc_operating_point(&c).unwrap();
        // A sweep entirely inside the passband never reaches -3 dB or unity.
        let sweep = ac_analysis(&c, &op, &log_frequency_sweep(1.0, 10.0, 11)).unwrap();
        assert!(bandwidth_3db(&sweep, vout).is_err());
        assert!(unity_gain_frequency(&sweep, vout).is_err());
    }
}
