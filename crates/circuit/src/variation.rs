//! Process-variation models for Monte-Carlo data generation.
//!
//! The paper generates training instances "by randomly altering the MOSFET
//! lengths and widths and capacitor values within ±x % of their nominal
//! values" (Section 5.1).  [`VariationModel`] reproduces that scheme and also
//! offers a Gaussian alternative for sensitivity studies.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::devices::opamp::OpAmpParams;

/// Distribution used to perturb each geometric parameter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum VariationModel {
    /// Uniform multiplicative variation: each parameter is scaled by a factor
    /// drawn uniformly from `[1 - spread, 1 + spread]`.
    Uniform {
        /// Half-width of the relative variation (0.1 = ±10 %).
        spread: f64,
    },
    /// Gaussian multiplicative variation with relative standard deviation
    /// `sigma`, truncated at ±4σ to avoid non-physical negative geometry.
    Gaussian {
        /// Relative standard deviation of the scale factor.
        sigma: f64,
    },
}

impl VariationModel {
    /// The ±10 % uniform model used for the op-amp study in the paper.
    pub fn paper_default() -> Self {
        VariationModel::Uniform { spread: 0.10 }
    }

    /// Draws one multiplicative perturbation factor.
    pub fn draw_factor<R: Rng>(&self, rng: &mut R) -> f64 {
        match *self {
            VariationModel::Uniform { spread } => rng.gen_range(1.0 - spread..=1.0 + spread),
            VariationModel::Gaussian { sigma } => {
                // Box-Muller transform; truncate to keep geometry positive.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                1.0 + sigma * z.clamp(-4.0, 4.0)
            }
        }
    }

    /// Applies independent perturbations to every geometric parameter of an
    /// op-amp (transistor widths/lengths and both capacitors), matching the
    /// paper's Monte-Carlo setup.
    pub fn perturb_opamp<R: Rng>(&self, nominal: &OpAmpParams, rng: &mut R) -> OpAmpParams {
        let mut perturbed = *nominal;
        for (name, value) in nominal.geometry_fields() {
            perturbed.set_geometry_field(name, value * self.draw_factor(rng));
        }
        perturbed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_factors_stay_in_band() {
        let model = VariationModel::Uniform { spread: 0.1 };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = model.draw_factor(&mut rng);
            assert!((0.9..=1.1).contains(&f));
        }
    }

    #[test]
    fn gaussian_factors_have_requested_spread() {
        let model = VariationModel::Gaussian { sigma: 0.05 };
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..5000).map(|_| model.draw_factor(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.05).abs() < 0.01, "sd {}", var.sqrt());
        assert!(samples.iter().all(|f| *f > 0.0));
    }

    #[test]
    fn perturbation_changes_geometry_but_not_models() {
        let model = VariationModel::paper_default();
        let mut rng = StdRng::seed_from_u64(3);
        let nominal = OpAmpParams::nominal();
        let perturbed = model.perturb_opamp(&nominal, &mut rng);
        assert_ne!(perturbed.w_diff, nominal.w_diff);
        assert_ne!(perturbed.load_capacitance, nominal.load_capacitance);
        assert!((perturbed.w_diff / nominal.w_diff - 1.0).abs() <= 0.1 + 1e-12);
        // Electrical model cards and bias are not part of geometric variation.
        assert_eq!(perturbed.nmos, nominal.nmos);
        assert_eq!(perturbed.bias_current, nominal.bias_current);
        assert_eq!(perturbed.supply, nominal.supply);
    }

    #[test]
    fn different_seeds_give_different_instances() {
        let model = VariationModel::paper_default();
        let nominal = OpAmpParams::nominal();
        let a = model.perturb_opamp(&nominal, &mut StdRng::seed_from_u64(10));
        let b = model.perturb_opamp(&nominal, &mut StdRng::seed_from_u64(11));
        assert_ne!(a, b);
    }
}
