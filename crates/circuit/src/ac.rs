//! Small-signal AC analysis.

use crate::dc::DcSolution;
use crate::linalg::{solve_complex, Complex};
use crate::mna::{assemble_ac, MnaLayout};
use crate::netlist::{Circuit, NodeId};
use crate::{CircuitError, Result};

/// Result of an AC frequency sweep: one complex solution vector per frequency.
#[derive(Debug, Clone)]
pub struct AcSweep {
    layout: MnaLayout,
    frequencies: Vec<f64>,
    solutions: Vec<Vec<Complex>>,
}

impl AcSweep {
    /// The swept frequencies in hertz.
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// Complex node voltage at sweep point `index`.
    pub fn phasor(&self, node: NodeId, index: usize) -> Complex {
        self.layout.voltage_complex(&self.solutions[index], node)
    }

    /// Magnitude response of a node over the whole sweep.
    pub fn magnitude(&self, node: NodeId) -> Vec<f64> {
        (0..self.frequencies.len()).map(|i| self.phasor(node, i).norm()).collect()
    }

    /// Phase response (radians) of a node over the whole sweep.
    pub fn phase(&self, node: NodeId) -> Vec<f64> {
        (0..self.frequencies.len()).map(|i| self.phasor(node, i).arg()).collect()
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        self.frequencies.len()
    }

    /// Whether the sweep contains no points.
    pub fn is_empty(&self) -> bool {
        self.frequencies.is_empty()
    }
}

/// Generates `points` logarithmically spaced frequencies between `start` and
/// `stop` (inclusive), the usual grid for Bode-style sweeps.
///
/// # Panics
///
/// Panics if `start` or `stop` are non-positive or `points < 2`.
pub fn log_frequency_sweep(start: f64, stop: f64, points: usize) -> Vec<f64> {
    assert!(start > 0.0 && stop > start, "invalid frequency range");
    assert!(points >= 2, "need at least two sweep points");
    let log_start = start.log10();
    let log_stop = stop.log10();
    (0..points)
        .map(|i| {
            let frac = i as f64 / (points - 1) as f64;
            10f64.powf(log_start + frac * (log_stop - log_start))
        })
        .collect()
}

/// Runs an AC analysis at the given frequencies, linearising the circuit
/// around the DC operating point `op`.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidAnalysis`] for an empty frequency list or
/// non-positive frequencies, and propagates matrix errors from the solver.
pub fn ac_analysis(circuit: &Circuit, op: &DcSolution, frequencies: &[f64]) -> Result<AcSweep> {
    if frequencies.is_empty() {
        return Err(CircuitError::InvalidAnalysis {
            reason: "AC sweep needs at least one frequency".to_string(),
        });
    }
    if frequencies.iter().any(|&f| !(f > 0.0) || !f.is_finite()) {
        return Err(CircuitError::InvalidAnalysis {
            reason: "AC sweep frequencies must be positive and finite".to_string(),
        });
    }
    let layout = MnaLayout::new(circuit);
    if layout.size() != op.layout().size() {
        return Err(CircuitError::InvalidAnalysis {
            reason: "operating point does not match circuit".to_string(),
        });
    }
    let mut solutions = Vec::with_capacity(frequencies.len());
    for &frequency in frequencies {
        let omega = std::f64::consts::TAU * frequency;
        let (a, b) = assemble_ac(circuit, &layout, op.solution_vector(), omega);
        solutions.push(solve_complex(a, b)?);
    }
    Ok(AcSweep { layout, frequencies: frequencies.to_vec(), solutions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::dc_operating_point;
    use crate::elements::SourceWaveform;

    fn rc_low_pass() -> (Circuit, NodeId) {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vout = c.node("vout");
        c.ac_voltage_source("V1", vin, Circuit::ground(), SourceWaveform::dc(0.0), 1.0).unwrap();
        c.resistor("R1", vin, vout, 1_000.0).unwrap();
        c.capacitor("C1", vout, Circuit::ground(), 159.154943e-9).unwrap(); // fc = 1 kHz
        (c, vout)
    }

    #[test]
    fn low_pass_corner_and_rolloff() {
        let (c, vout) = rc_low_pass();
        let op = dc_operating_point(&c).unwrap();
        let freqs = [10.0, 1_000.0, 100_000.0];
        let sweep = ac_analysis(&c, &op, &freqs).unwrap();
        let mag = sweep.magnitude(vout);
        assert!((mag[0] - 1.0).abs() < 1e-3, "passband {mag:?}");
        assert!((mag[1] - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-2, "corner {mag:?}");
        assert!(mag[2] < 0.02, "stopband {mag:?}");
        // Phase approaches -90° far above the corner.
        let phase = sweep.phase(vout);
        assert!(phase[2] < -1.4, "phase {phase:?}");
    }

    #[test]
    fn lc_resonance_peaks_at_resonant_frequency() {
        // Series RLC driven by 1 V AC, output across the capacitor.
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let mid = c.node("mid");
        let vout = c.node("vout");
        c.ac_voltage_source("V1", vin, Circuit::ground(), SourceWaveform::dc(0.0), 1.0).unwrap();
        c.resistor("R1", vin, mid, 10.0).unwrap();
        c.inductor("L1", mid, vout, 1e-3).unwrap();
        c.capacitor("C1", vout, Circuit::ground(), 1e-6).unwrap();
        let op = dc_operating_point(&c).unwrap();
        // f0 = 1/(2 pi sqrt(LC)) ≈ 5.03 kHz; Q = sqrt(L/C)/R ≈ 3.16.
        let sweep = ac_analysis(&c, &op, &log_frequency_sweep(100.0, 100_000.0, 201)).unwrap();
        let mag = sweep.magnitude(vout);
        let (peak_index, peak) =
            mag.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap();
        let f_peak = sweep.frequencies()[peak_index];
        assert!((f_peak / 5_033.0 - 1.0).abs() < 0.1, "peak at {f_peak}");
        assert!(*peak > 2.0 && *peak < 4.0, "Q-limited peak {peak}");
    }

    #[test]
    fn invalid_sweeps_are_rejected() {
        let (c, _) = rc_low_pass();
        let op = dc_operating_point(&c).unwrap();
        assert!(ac_analysis(&c, &op, &[]).is_err());
        assert!(ac_analysis(&c, &op, &[-1.0]).is_err());
        assert!(ac_analysis(&c, &op, &[0.0]).is_err());
    }

    #[test]
    fn log_sweep_is_monotonic_and_hits_endpoints() {
        let f = log_frequency_sweep(1.0, 1e6, 61);
        assert_eq!(f.len(), 61);
        assert!((f[0] - 1.0).abs() < 1e-12);
        assert!((f[60] - 1e6).abs() < 1e-6);
        assert!(f.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    #[should_panic(expected = "invalid frequency range")]
    fn log_sweep_rejects_bad_range() {
        log_frequency_sweep(10.0, 1.0, 10);
    }
}
