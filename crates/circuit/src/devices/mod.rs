//! Ready-made device-under-test circuits.
//!
//! The paper's first case study is an operational amplifier whose eleven
//! specifications are measured by Spectre simulation.  [`opamp`] provides a
//! transistor-level two-stage CMOS op-amp together with the testbench circuits
//! and measurement routines for every specification in Table 1.

pub mod opamp;

pub use opamp::{OpAmp, OpAmpMeasurements, OpAmpParams};
