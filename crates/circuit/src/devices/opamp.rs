//! Two-stage Miller-compensated CMOS operational amplifier.
//!
//! The topology is the classic Allen–Holberg two-stage op-amp: an NMOS
//! differential pair with PMOS current-mirror load, an NMOS tail current
//! source biased by a diode-connected mirror, and a PMOS common-source second
//! stage with an NMOS current-sink load, Miller compensation capacitor `Cc`
//! and an external load capacitor `CL`.
//!
//! Eleven specification measurements (matching Table 1 of the paper) are
//! provided; each builds the appropriate testbench around the amplifier core
//! and runs DC, AC or transient analysis with the simulator in this crate.

use serde::{Deserialize, Serialize};

use crate::ac::{ac_analysis, log_frequency_sweep};
use crate::dc::{dc_operating_point, DcSolution};
use crate::elements::{MosfetModel, MosfetPolarity, SourceWaveform};
use crate::measure;
use crate::netlist::{Circuit, NodeId};
use crate::transient::{transient_analysis_from, TransientParams};
use crate::Result;

/// Very large inductance used to close the DC feedback loop while leaving the
/// loop open for AC analysis (standard "big-L" open-loop testbench trick).
const FEEDBACK_INDUCTANCE: f64 = 1e9;
/// Very large capacitance used to couple the AC stimulus into the loop while
/// blocking DC.
const COUPLING_CAPACITANCE: f64 = 1e9;

/// Geometry and bias parameters of the op-amp.
///
/// All transistor geometries are in metres; the defaults are a textbook
/// 0.5 µm-class sizing.  Monte-Carlo process variation perturbs these fields
/// (see [`crate::variation`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpAmpParams {
    /// Differential-pair width (M1, M2).
    pub w_diff: f64,
    /// Differential-pair length (M1, M2).
    pub l_diff: f64,
    /// Mirror-load width (M3, M4).
    pub w_load: f64,
    /// Mirror-load length (M3, M4).
    pub l_load: f64,
    /// Tail/bias-mirror width (M5, M8).
    pub w_tail: f64,
    /// Tail/bias-mirror length (M5, M8).
    pub l_tail: f64,
    /// Second-stage driver width (M6).
    pub w_driver: f64,
    /// Second-stage driver length (M6).
    pub l_driver: f64,
    /// Second-stage sink width (M7).
    pub w_sink: f64,
    /// Second-stage sink length (M7).
    pub l_sink: f64,
    /// Miller compensation capacitance in farads.
    pub compensation_capacitance: f64,
    /// Load capacitance in farads.
    pub load_capacitance: f64,
    /// Bias reference current in amperes.
    pub bias_current: f64,
    /// Positive/negative supply magnitude in volts (`VDD = +supply`, `VSS = -supply`).
    pub supply: f64,
    /// NMOS model card.
    pub nmos: MosfetModel,
    /// PMOS model card.
    pub pmos: MosfetModel,
}

impl OpAmpParams {
    /// Textbook nominal sizing (0.5 µm models, ±2.5 V supplies, 30 µA bias,
    /// 3 pF Miller capacitor, 10 pF load).
    pub fn nominal() -> Self {
        OpAmpParams {
            w_diff: 3.0e-6,
            l_diff: 1.0e-6,
            w_load: 15.0e-6,
            l_load: 1.0e-6,
            w_tail: 4.5e-6,
            l_tail: 1.0e-6,
            w_driver: 94.0e-6,
            l_driver: 1.0e-6,
            w_sink: 14.0e-6,
            l_sink: 1.0e-6,
            compensation_capacitance: 3e-12,
            load_capacitance: 10e-12,
            bias_current: 30e-6,
            supply: 2.5,
            nmos: MosfetModel::nmos_default(),
            pmos: MosfetModel::pmos_default(),
        }
    }

    /// The geometry fields as a mutable list of `(name, value)` pairs,
    /// used by the process-variation machinery.
    pub fn geometry_fields(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("w_diff", self.w_diff),
            ("l_diff", self.l_diff),
            ("w_load", self.w_load),
            ("l_load", self.l_load),
            ("w_tail", self.w_tail),
            ("l_tail", self.l_tail),
            ("w_driver", self.w_driver),
            ("l_driver", self.l_driver),
            ("w_sink", self.w_sink),
            ("l_sink", self.l_sink),
            ("compensation_capacitance", self.compensation_capacitance),
            ("load_capacitance", self.load_capacitance),
        ]
    }

    /// Sets a geometry field by name (inverse of [`OpAmpParams::geometry_fields`]).
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a geometry field.
    pub fn set_geometry_field(&mut self, name: &str, value: f64) {
        match name {
            "w_diff" => self.w_diff = value,
            "l_diff" => self.l_diff = value,
            "w_load" => self.w_load = value,
            "l_load" => self.l_load = value,
            "w_tail" => self.w_tail = value,
            "l_tail" => self.l_tail = value,
            "w_driver" => self.w_driver = value,
            "l_driver" => self.l_driver = value,
            "w_sink" => self.w_sink = value,
            "l_sink" => self.l_sink = value,
            "compensation_capacitance" => self.compensation_capacitance = value,
            "load_capacitance" => self.load_capacitance = value,
            other => panic!("unknown op-amp geometry field {other}"),
        }
    }
}

impl Default for OpAmpParams {
    fn default() -> Self {
        OpAmpParams::nominal()
    }
}

/// The eleven specification measurements of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpAmpMeasurements {
    /// Open-loop DC gain (V/V).
    pub gain: f64,
    /// Open-loop -3 dB bandwidth (Hz).
    pub bandwidth_3db: f64,
    /// Unity-gain frequency (Hz).
    pub unity_gain_frequency: f64,
    /// Slew rate (V/µs).
    pub slew_rate: f64,
    /// Small-signal 10–90 % rise time (µs).
    pub rise_time: f64,
    /// Small-signal step overshoot (fraction of the step).
    pub overshoot: f64,
    /// 1 % settling time (µs).
    pub settling_time: f64,
    /// Quiescent supply current (µA).
    pub quiescent_current: f64,
    /// Common-mode gain (V/V).
    pub common_mode_gain: f64,
    /// Power-supply gain from VDD to the output (V/V).
    pub power_supply_gain: f64,
    /// Output short-circuit current (µA).
    pub short_circuit_current: f64,
}

impl OpAmpMeasurements {
    /// The measurements as a vector in the canonical Table 1 order.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.gain,
            self.bandwidth_3db,
            self.unity_gain_frequency,
            self.slew_rate,
            self.rise_time,
            self.overshoot,
            self.settling_time,
            self.quiescent_current,
            self.common_mode_gain,
            self.power_supply_gain,
            self.short_circuit_current,
        ]
    }

    /// Names of the eleven specifications in the same order as
    /// [`OpAmpMeasurements::to_vec`].
    pub fn names() -> &'static [&'static str] {
        &[
            "gain",
            "3-dB bandwidth",
            "unity gain frequency",
            "slew rate",
            "rise time",
            "overshoot",
            "settling time",
            "quiescent current",
            "common mode gain",
            "power supply gain",
            "short circuit current",
        ]
    }

    /// Units of the eleven specifications, matching Table 1 of the paper.
    pub fn units() -> &'static [&'static str] {
        &["V/V", "Hz", "MHz", "V/us", "us", "%", "us", "uA", "V/V", "V/V", "uA"]
    }
}

/// Internal node bundle shared by the testbench builders.
struct CoreNodes {
    inp: NodeId,
    inn: NodeId,
    out: NodeId,
}

/// A two-stage CMOS operational amplifier with its measurement testbenches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpAmp {
    params: OpAmpParams,
}

impl OpAmp {
    /// Creates an op-amp with the given parameters.
    pub fn new(params: OpAmpParams) -> Self {
        OpAmp { params }
    }

    /// The parameters this instance was built with.
    pub fn params(&self) -> &OpAmpParams {
        &self.params
    }

    /// Instantiates the amplifier core into `circuit`.
    ///
    /// Creates the supply sources (`VDD = +supply`, `VSS = -supply`) and all
    /// transistors; returns the node bundle used by the testbenches.
    fn build_core(&self, circuit: &mut Circuit) -> Result<CoreNodes> {
        let p = &self.params;
        let gnd = Circuit::ground();
        let vdd = circuit.node("vdd");
        let vss = circuit.node("vss");
        let inp = circuit.node("inp");
        let inn = circuit.node("inn");
        let out = circuit.node("out");
        let n1 = circuit.node("n1");
        let n2 = circuit.node("n2");
        let ntail = circuit.node("ntail");
        let nbias = circuit.node("nbias");

        circuit.voltage_source("VDD", vdd, gnd, SourceWaveform::dc(p.supply))?;
        circuit.voltage_source("VSS", vss, gnd, SourceWaveform::dc(-p.supply))?;

        // Bias chain: Iref from VDD into the diode-connected M8.
        circuit.current_source("IBIAS", vdd, nbias, SourceWaveform::dc(p.bias_current))?;
        circuit.mosfet(
            "M8",
            nbias,
            nbias,
            vss,
            MosfetPolarity::Nmos,
            p.nmos,
            p.w_tail,
            p.l_tail,
        )?;

        // First stage: NMOS differential pair with PMOS mirror load.
        circuit.mosfet("M1", n1, inn, ntail, MosfetPolarity::Nmos, p.nmos, p.w_diff, p.l_diff)?;
        circuit.mosfet("M2", n2, inp, ntail, MosfetPolarity::Nmos, p.nmos, p.w_diff, p.l_diff)?;
        circuit.mosfet("M3", n1, n1, vdd, MosfetPolarity::Pmos, p.pmos, p.w_load, p.l_load)?;
        circuit.mosfet("M4", n2, n1, vdd, MosfetPolarity::Pmos, p.pmos, p.w_load, p.l_load)?;
        circuit.mosfet(
            "M5",
            ntail,
            nbias,
            vss,
            MosfetPolarity::Nmos,
            p.nmos,
            p.w_tail,
            p.l_tail,
        )?;

        // Second stage: PMOS common source with NMOS current-sink load.
        circuit.mosfet("M6", out, n2, vdd, MosfetPolarity::Pmos, p.pmos, p.w_driver, p.l_driver)?;
        circuit.mosfet("M7", out, nbias, vss, MosfetPolarity::Nmos, p.nmos, p.w_sink, p.l_sink)?;

        // Compensation and load.
        circuit.capacitor("CC", n2, out, p.compensation_capacitance)?;
        circuit.capacitor("CL", out, gnd, p.load_capacitance)?;

        Ok(CoreNodes { inp, inn, out })
    }

    /// Open-loop AC testbench: DC unity feedback through a huge inductor, AC
    /// drive into the inverting input through a huge capacitor.
    ///
    /// `drive_both_inputs` additionally couples the stimulus to the
    /// non-inverting input, turning the differential measurement into a
    /// common-mode measurement.
    fn ac_testbench(&self, drive_both_inputs: bool) -> Result<(Circuit, NodeId)> {
        let mut circuit = Circuit::new();
        let nodes = self.build_core(&mut circuit)?;
        let gnd = Circuit::ground();
        let vsrc = circuit.node("vac");
        circuit.ac_voltage_source("VAC", vsrc, gnd, SourceWaveform::dc(0.0), 1.0)?;
        circuit.inductor("LFB", nodes.out, nodes.inn, FEEDBACK_INDUCTANCE)?;
        circuit.capacitor("CAC", vsrc, nodes.inn, COUPLING_CAPACITANCE)?;
        if drive_both_inputs {
            circuit.capacitor("CACP", vsrc, nodes.inp, COUPLING_CAPACITANCE)?;
            // Keep a DC path on the non-inverting input.
            circuit.resistor("RCM", nodes.inp, gnd, 1e9)?;
        } else {
            circuit.voltage_source("VINP", nodes.inp, gnd, SourceWaveform::dc(0.0))?;
        }
        Ok((circuit, nodes.out))
    }

    /// Unity-gain buffer testbench (output tied to the inverting input) with
    /// the non-inverting input driven by `input`; `ac_on_supply` adds a 1 V AC
    /// stimulus in series with VDD for the power-supply-gain measurement.
    fn buffer_testbench(
        &self,
        input: SourceWaveform,
        ac_on_supply: bool,
    ) -> Result<(Circuit, CoreNodes)> {
        let mut circuit = Circuit::new();
        let nodes = self.build_core(&mut circuit)?;
        let gnd = Circuit::ground();
        circuit.voltage_source("VIN", nodes.inp, gnd, input)?;
        // Close the loop with an ideal short (0 V source) so the output branch
        // current is also observable if needed.
        circuit.voltage_source("VFB", nodes.out, nodes.inn, SourceWaveform::dc(0.0))?;
        if ac_on_supply {
            // Replace nothing: stack an AC source in series with VDD by
            // inserting it between the ideal supply and the core supply node is
            // not possible after the fact, so instead add the AC magnitude to
            // the existing VDD source.
            let index = circuit.find_element("VDD").expect("core always instantiates VDD");
            if let Some(crate::elements::Element::VoltageSource { ac_magnitude, .. }) =
                circuit_elements_mut(&mut circuit).get_mut(index)
            {
                *ac_magnitude = 1.0;
            }
        }
        Ok((circuit, nodes))
    }

    /// Measures every Table 1 specification of this op-amp instance.
    ///
    /// # Errors
    ///
    /// Propagates simulator convergence errors and measurement-extraction
    /// failures (for example if a badly perturbed instance has no unity-gain
    /// crossing); the Monte-Carlo driver treats such instances as gross
    /// failures.
    pub fn measure(&self) -> Result<OpAmpMeasurements> {
        // --- Open-loop differential response -----------------------------
        let (ol_circuit, ol_out) = self.ac_testbench(false)?;
        let ol_op = dc_operating_point(&ol_circuit)?;
        let frequencies = log_frequency_sweep(1.0, 1e9, 121);
        let ol_sweep = ac_analysis(&ol_circuit, &ol_op, &frequencies)?;
        let gain = measure::dc_gain(&ol_sweep, ol_out);
        let bandwidth_3db = measure::bandwidth_3db(&ol_sweep, ol_out)?;
        let unity_gain_frequency = measure::unity_gain_frequency(&ol_sweep, ol_out)?;

        // --- Common-mode response -----------------------------------------
        let (cm_circuit, cm_out) = self.ac_testbench(true)?;
        let cm_op = dc_operating_point(&cm_circuit)?;
        let cm_sweep = ac_analysis(&cm_circuit, &cm_op, &[10.0])?;
        let common_mode_gain = measure::dc_gain(&cm_sweep, cm_out);

        // --- Power-supply gain ---------------------------------------------
        let (ps_circuit, ps_nodes) = self.buffer_testbench(SourceWaveform::dc(0.0), true)?;
        let ps_op = dc_operating_point(&ps_circuit)?;
        let ps_sweep = ac_analysis(&ps_circuit, &ps_op, &[10.0])?;
        let power_supply_gain = measure::dc_gain(&ps_sweep, ps_nodes.out);

        // --- Quiescent current ----------------------------------------------
        let quiescent_current = self.quiescent_current(&ps_circuit, &ps_op)?;

        // --- Small-signal step response (rise, overshoot, settling) ---------
        let small_step = SourceWaveform::step(0.0, 0.2, 0.2e-6);
        let (step_circuit, step_nodes) = self.buffer_testbench(small_step, false)?;
        let step_op = dc_operating_point(&step_circuit)?;
        let step_result = transient_analysis_from(
            &step_circuit,
            &TransientParams::new(6e-6, 4e-9),
            Some(&step_op),
        )?;
        let step_wave = step_result.waveform(step_nodes.out);
        let rise_time = step_wave.rise_time()? * 1e6;
        let overshoot = step_wave.overshoot() * 100.0;
        let settling_time = step_wave.settling_time(0.01)? * 1e6;

        // --- Slew rate -------------------------------------------------------
        let large_step = SourceWaveform::step(-1.0, 1.0, 0.2e-6);
        let (slew_circuit, slew_nodes) = self.buffer_testbench(large_step, false)?;
        let slew_op = dc_operating_point(&slew_circuit)?;
        let slew_result = transient_analysis_from(
            &slew_circuit,
            &TransientParams::new(6e-6, 4e-9),
            Some(&slew_op),
        )?;
        let slew_rate = slew_result.waveform(slew_nodes.out).max_slope() / 1e6;

        // --- Short-circuit current -------------------------------------------
        let short_circuit_current = self.short_circuit_current()?;

        Ok(OpAmpMeasurements {
            gain,
            bandwidth_3db,
            unity_gain_frequency,
            slew_rate,
            rise_time,
            overshoot,
            settling_time,
            quiescent_current,
            common_mode_gain,
            power_supply_gain,
            short_circuit_current,
        })
    }

    /// Quiescent current drawn from the positive supply (µA).
    fn quiescent_current(&self, circuit: &Circuit, op: &DcSolution) -> Result<f64> {
        let vdd_index = circuit.find_element("VDD").expect("core always instantiates VDD");
        let current =
            op.branch_current(vdd_index).expect("voltage sources always carry a branch current");
        // The branch current flows from the + terminal through the source, so
        // a sourcing supply sees a negative branch current.
        Ok(current.abs() * 1e6)
    }

    /// Output short-circuit current with the input driven 1 V positive (µA).
    fn short_circuit_current(&self) -> Result<f64> {
        let mut circuit = Circuit::new();
        let nodes = self.build_core(&mut circuit)?;
        let gnd = Circuit::ground();
        circuit.voltage_source("VIN", nodes.inp, gnd, SourceWaveform::dc(1.0))?;
        // Feedback wants the output to follow the input but the output is
        // clamped to ground through an ammeter, so the stage sources its
        // maximum current.
        circuit.voltage_source("VFB", nodes.out, nodes.inn, SourceWaveform::dc(0.0))?;
        let ammeter = circuit.voltage_source("VSHORT", nodes.out, gnd, SourceWaveform::dc(0.0))?;
        let op = dc_operating_point(&circuit)?;
        let current =
            op.branch_current(ammeter).expect("voltage sources always carry a branch current");
        Ok(current.abs() * 1e6)
    }
}

impl Default for OpAmp {
    fn default() -> Self {
        OpAmp::new(OpAmpParams::nominal())
    }
}

/// Internal helper granting mutable access to a circuit's element list.
///
/// Only used to flip the AC magnitude of the already-instantiated supply
/// source; kept private so the netlist's invariants stay encapsulated.
fn circuit_elements_mut(circuit: &mut Circuit) -> &mut Vec<crate::elements::Element> {
    // Safety/encapsulation note: `Circuit` exposes no public mutator for
    // existing elements, so this module-level helper is implemented through a
    // crate-internal accessor.
    circuit.elements_mut()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_opamp_measures_plausible_values() {
        let opamp = OpAmp::default();
        let m = opamp.measure().expect("nominal op-amp must simulate cleanly");
        assert!(m.gain > 500.0 && m.gain < 1e5, "gain {}", m.gain);
        assert!(m.bandwidth_3db > 100.0 && m.bandwidth_3db < 1e6, "bw {}", m.bandwidth_3db);
        assert!(
            m.unity_gain_frequency > 1e5 && m.unity_gain_frequency < 1e8,
            "fu {}",
            m.unity_gain_frequency
        );
        assert!(m.unity_gain_frequency > m.bandwidth_3db);
        assert!(m.slew_rate > 1.0 && m.slew_rate < 100.0, "slew {}", m.slew_rate);
        assert!(m.rise_time > 0.001 && m.rise_time < 5.0, "rise {}", m.rise_time);
        assert!(m.overshoot >= 0.0 && m.overshoot < 80.0, "overshoot {}", m.overshoot);
        assert!(m.settling_time > 0.0 && m.settling_time < 6.0, "settling {}", m.settling_time);
        assert!(
            m.quiescent_current > 10.0 && m.quiescent_current < 2000.0,
            "iq {}",
            m.quiescent_current
        );
        assert!(m.common_mode_gain < m.gain, "cm gain {}", m.common_mode_gain);
        assert!(m.power_supply_gain < m.gain, "ps gain {}", m.power_supply_gain);
        assert!(
            m.short_circuit_current > 10.0 && m.short_circuit_current < 1e5,
            "isc {}",
            m.short_circuit_current
        );
    }

    #[test]
    fn measurement_vector_matches_field_order() {
        let m = OpAmpMeasurements {
            gain: 1.0,
            bandwidth_3db: 2.0,
            unity_gain_frequency: 3.0,
            slew_rate: 4.0,
            rise_time: 5.0,
            overshoot: 6.0,
            settling_time: 7.0,
            quiescent_current: 8.0,
            common_mode_gain: 9.0,
            power_supply_gain: 10.0,
            short_circuit_current: 11.0,
        };
        assert_eq!(m.to_vec(), (1..=11).map(f64::from).collect::<Vec<_>>());
        assert_eq!(OpAmpMeasurements::names().len(), 11);
        assert_eq!(OpAmpMeasurements::units().len(), 11);
    }

    #[test]
    fn geometry_fields_round_trip() {
        let mut params = OpAmpParams::nominal();
        let fields = params.geometry_fields();
        assert_eq!(fields.len(), 12);
        for (name, value) in fields {
            params.set_geometry_field(name, value * 2.0);
        }
        assert_eq!(params.w_diff, 2.0 * OpAmpParams::nominal().w_diff);
        assert_eq!(params.load_capacitance, 2.0 * OpAmpParams::nominal().load_capacitance);
    }

    #[test]
    #[should_panic(expected = "unknown op-amp geometry field")]
    fn unknown_geometry_field_panics() {
        OpAmpParams::nominal().set_geometry_field("bogus", 1.0);
    }
}
