//! Fixed-step transient analysis.

use crate::dc::{dc_operating_point, newton_solve, DcSolution};
use crate::elements::Element;
use crate::mna::{AssemblyOptions, DynamicState, IntegrationMethod, MnaLayout};
use crate::netlist::{Circuit, NodeId};
use crate::waveform::Waveform;
use crate::{CircuitError, Result};

/// Parameters of a transient run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientParams {
    /// Simulation stop time in seconds.
    pub stop_time: f64,
    /// Fixed time step in seconds.
    pub time_step: f64,
    /// Integration method (trapezoidal by default).
    pub method: IntegrationMethod,
}

impl TransientParams {
    /// Creates parameters with the trapezoidal integration method.
    pub fn new(stop_time: f64, time_step: f64) -> Self {
        TransientParams { stop_time, time_step, method: IntegrationMethod::Trapezoidal }
    }

    /// Switches to backward Euler (more damped, unconditionally smooth).
    pub fn with_backward_euler(mut self) -> Self {
        self.method = IntegrationMethod::BackwardEuler;
        self
    }
}

/// Result of a transient analysis.
#[derive(Debug, Clone)]
pub struct TransientResult {
    layout: MnaLayout,
    times: Vec<f64>,
    solutions: Vec<Vec<f64>>,
}

impl TransientResult {
    /// Simulated time points in seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of accepted time points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Voltage of `node` at time-point index `index`.
    pub fn voltage(&self, node: NodeId, index: usize) -> f64 {
        self.layout.voltage(&self.solutions[index], node)
    }

    /// Full waveform of a node voltage.
    pub fn waveform(&self, node: NodeId) -> Waveform {
        let values = (0..self.len()).map(|i| self.voltage(node, i)).collect();
        Waveform::new(self.times.clone(), values)
    }

    /// Branch current of element `element_index` at time-point `index`
    /// (only for elements carrying a branch unknown).
    pub fn branch_current(&self, element_index: usize, index: usize) -> Option<f64> {
        self.layout.branch_row(element_index).map(|row| self.solutions[index][row])
    }
}

/// Runs a fixed-step transient analysis.
///
/// The initial condition is the DC operating point with every source at its
/// `t = 0` value.  The first step uses backward Euler (no history is available
/// for the trapezoidal rule); subsequent steps use the configured method.  If
/// a Newton solve fails at some time point, the step is retried with backward
/// Euler and half the step size before giving up.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidAnalysis`] for non-positive step or stop
/// times and propagates DC/Newton failures.
///
/// # Example
///
/// ```
/// use stc_circuit::{transient_analysis, Circuit, SourceWaveform, TransientParams};
///
/// # fn main() -> Result<(), stc_circuit::CircuitError> {
/// // RC charging curve: v(t) = 1 - exp(-t/RC), RC = 1 ms.
/// let mut circuit = Circuit::new();
/// let vin = circuit.node("vin");
/// let vout = circuit.node("vout");
/// circuit.voltage_source("V1", vin, Circuit::ground(), SourceWaveform::step(0.0, 1.0, 0.0))?;
/// circuit.resistor("R1", vin, vout, 1_000.0)?;
/// circuit.capacitor("C1", vout, Circuit::ground(), 1e-6)?;
/// let result = transient_analysis(&circuit, &TransientParams::new(5e-3, 5e-6))?;
/// let wave = result.waveform(vout);
/// assert!((wave.final_value() - 1.0).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn transient_analysis(circuit: &Circuit, params: &TransientParams) -> Result<TransientResult> {
    transient_analysis_from(circuit, params, None)
}

/// Same as [`transient_analysis`] but starting from a caller-supplied DC
/// operating point (which must belong to the same circuit).
///
/// # Errors
///
/// See [`transient_analysis`].
pub fn transient_analysis_from(
    circuit: &Circuit,
    params: &TransientParams,
    initial: Option<&DcSolution>,
) -> Result<TransientResult> {
    if !(params.time_step > 0.0) || !(params.stop_time > params.time_step) {
        return Err(CircuitError::InvalidAnalysis {
            reason: format!(
                "transient needs 0 < time_step ({}) < stop_time ({})",
                params.time_step, params.stop_time
            ),
        });
    }
    let layout = MnaLayout::new(circuit);
    let op;
    let initial_x: &[f64] = match initial {
        Some(solution) if solution.layout().size() == layout.size() => solution.solution_vector(),
        _ => {
            op = dc_operating_point(circuit)?;
            op.solution_vector()
        }
    };

    let element_count = circuit.elements().len();
    let mut state =
        DynamicState { x: initial_x.to_vec(), capacitor_currents: vec![0.0; element_count] };
    let mut times = vec![0.0];
    let mut solutions = vec![state.x.clone()];

    let mut time = 0.0;
    let mut first_step = true;
    while time < params.stop_time - 0.5 * params.time_step {
        let h = params.time_step;
        let t_new = time + h;
        let method = if first_step { IntegrationMethod::BackwardEuler } else { params.method };
        let x_new = step(circuit, &layout, &state, t_new, h, method).or_else(|_| {
            // Retry with the more robust combination: backward Euler and
            // two half-steps.
            let half = h / 2.0;
            let x_mid = step(
                circuit,
                &layout,
                &state,
                time + half,
                half,
                IntegrationMethod::BackwardEuler,
            )?;
            let mid_state = advance_state(
                circuit,
                &layout,
                &state,
                x_mid,
                half,
                IntegrationMethod::BackwardEuler,
            );
            step(circuit, &layout, &mid_state, t_new, half, IntegrationMethod::BackwardEuler)
        })?;
        state = advance_state(circuit, &layout, &state, x_new, h, method);
        times.push(t_new);
        solutions.push(state.x.clone());
        time = t_new;
        first_step = false;
    }
    Ok(TransientResult { layout, times, solutions })
}

/// Solves one time step and returns the new solution vector.
fn step(
    circuit: &Circuit,
    layout: &MnaLayout,
    state: &DynamicState,
    t_new: f64,
    h: f64,
    method: IntegrationMethod,
) -> Result<Vec<f64>> {
    let options =
        AssemblyOptions { gmin: 1e-12, source_scale: 1.0, time_step: Some((t_new, h, method)) };
    newton_solve(circuit, layout, &state.x, Some(state), &options)
}

/// Computes the dynamic state (capacitor currents) after an accepted step.
fn advance_state(
    circuit: &Circuit,
    layout: &MnaLayout,
    previous: &DynamicState,
    x_new: Vec<f64>,
    h: f64,
    method: IntegrationMethod,
) -> DynamicState {
    let mut capacitor_currents = previous.capacitor_currents.clone();
    for (index, element) in circuit.elements().iter().enumerate() {
        if let Element::Capacitor { a, b, capacitance, .. } = element {
            let v_new = layout.voltage(&x_new, *a) - layout.voltage(&x_new, *b);
            let v_old = layout.voltage(&previous.x, *a) - layout.voltage(&previous.x, *b);
            capacitor_currents[index] = match method {
                IntegrationMethod::BackwardEuler => capacitance / h * (v_new - v_old),
                IntegrationMethod::Trapezoidal => {
                    2.0 * capacitance / h * (v_new - v_old) - previous.capacitor_currents[index]
                }
            };
        }
    }
    DynamicState { x: x_new, capacitor_currents }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::SourceWaveform;

    #[test]
    fn rc_step_response_matches_analytic_solution() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vout = c.node("vout");
        c.voltage_source("V1", vin, Circuit::ground(), SourceWaveform::step(0.0, 1.0, 0.0))
            .unwrap();
        c.resistor("R1", vin, vout, 1_000.0).unwrap();
        c.capacitor("C1", vout, Circuit::ground(), 1e-6).unwrap();
        let result = transient_analysis(&c, &TransientParams::new(5e-3, 2e-6)).unwrap();
        let wave = result.waveform(vout);
        // Compare against 1 - exp(-t/RC) at a few points.
        for &t in &[0.5e-3, 1e-3, 2e-3] {
            let expected = 1.0 - (-t / 1e-3_f64).exp();
            assert!(
                (wave.value_at(t) - expected).abs() < 0.01,
                "t={t}: {} vs {expected}",
                wave.value_at(t)
            );
        }
    }

    #[test]
    fn rlc_step_rings_with_expected_overshoot() {
        // Series RLC: R = 50, L = 1 mH, C = 1 µF -> zeta ≈ 0.79 overshoot small;
        // use R = 10 for zeta ≈ 0.158 -> overshoot ≈ exp(-pi*z/sqrt(1-z^2)) ≈ 0.60.
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let mid = c.node("mid");
        let vout = c.node("vout");
        c.voltage_source("V1", vin, Circuit::ground(), SourceWaveform::step(0.0, 1.0, 0.0))
            .unwrap();
        c.resistor("R1", vin, mid, 10.0).unwrap();
        c.inductor("L1", mid, vout, 1e-3).unwrap();
        c.capacitor("C1", vout, Circuit::ground(), 1e-6).unwrap();
        let result = transient_analysis(&c, &TransientParams::new(3e-3, 1e-6)).unwrap();
        let wave = result.waveform(vout);
        let zeta = 10.0 / 2.0 * (1e-6f64 / 1e-3).sqrt();
        let expected = (-std::f64::consts::PI * zeta / (1.0 - zeta * zeta).sqrt()).exp();
        let measured = wave.overshoot();
        assert!((measured - expected).abs() < 0.08, "overshoot {measured} vs analytic {expected}");
    }

    #[test]
    fn backward_euler_damps_more_than_trapezoidal() {
        let build = || {
            let mut c = Circuit::new();
            let vin = c.node("vin");
            let mid = c.node("mid");
            let vout = c.node("vout");
            c.voltage_source("V1", vin, Circuit::ground(), SourceWaveform::step(0.0, 1.0, 0.0))
                .unwrap();
            c.resistor("R1", vin, mid, 10.0).unwrap();
            c.inductor("L1", mid, vout, 1e-3).unwrap();
            c.capacitor("C1", vout, Circuit::ground(), 1e-6).unwrap();
            c
        };
        let trap = transient_analysis(&build(), &TransientParams::new(2e-3, 2e-6)).unwrap();
        let be =
            transient_analysis(&build(), &TransientParams::new(2e-3, 2e-6).with_backward_euler())
                .unwrap();
        let vout = build().find_node("vout").unwrap();
        assert!(trap.waveform(vout).overshoot() > be.waveform(vout).overshoot());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.voltage_source("V1", a, Circuit::ground(), SourceWaveform::dc(1.0)).unwrap();
        c.resistor("R1", a, Circuit::ground(), 1.0).unwrap();
        assert!(transient_analysis(&c, &TransientParams::new(0.0, 1e-6)).is_err());
        assert!(transient_analysis(&c, &TransientParams::new(1e-3, 0.0)).is_err());
        assert!(transient_analysis(&c, &TransientParams::new(1e-6, 1e-3)).is_err());
    }

    #[test]
    fn sine_source_propagates_through_resistor() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vout = c.node("vout");
        c.voltage_source("V1", vin, Circuit::ground(), SourceWaveform::sine(0.0, 1.0, 1_000.0))
            .unwrap();
        c.resistor("R1", vin, vout, 1_000.0).unwrap();
        c.resistor("R2", vout, Circuit::ground(), 1_000.0).unwrap();
        let result = transient_analysis(&c, &TransientParams::new(2e-3, 5e-6)).unwrap();
        let wave = result.waveform(vout);
        // Half-amplitude divider of a 1 V sine.
        assert!((wave.max_value() - 0.5).abs() < 0.02, "max {}", wave.max_value());
        assert!((wave.min_value() + 0.5).abs() < 0.02, "min {}", wave.min_value());
    }
}
