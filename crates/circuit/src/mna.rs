//! Modified nodal analysis (MNA) assembly.
//!
//! The unknown vector `x` contains the voltages of every non-ground node
//! followed by one branch current per element that requires it (voltage
//! sources, inductors, VCVS).  The assembler produces `A x = b` systems for
//! DC / transient Newton iterations (real) and for AC small-signal analysis
//! (complex).

use crate::elements::{mosfet, Element};
use crate::linalg::{Complex, Matrix};
use crate::netlist::{Circuit, NodeId};

/// Time-integration scheme used by the transient analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrationMethod {
    /// First-order backward Euler (used for the first step and as a fallback).
    BackwardEuler,
    /// Second-order trapezoidal rule (default; preserves ringing/overshoot).
    Trapezoidal,
}

/// Mapping from circuit nodes/elements to rows of the MNA system.
#[derive(Debug, Clone)]
pub struct MnaLayout {
    node_count: usize,
    branch_index: Vec<Option<usize>>,
    size: usize,
}

impl MnaLayout {
    /// Builds the layout for a circuit.
    pub fn new(circuit: &Circuit) -> Self {
        let node_count = circuit.node_count();
        let mut branch_index = vec![None; circuit.elements().len()];
        let mut next = node_count - 1;
        for (index, element) in circuit.elements().iter().enumerate() {
            if element.needs_branch_current() {
                branch_index[index] = Some(next);
                next += 1;
            }
        }
        MnaLayout { node_count, branch_index, size: next }
    }

    /// Number of unknowns.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Row/column of a node, or `None` for ground.
    pub fn node_row(&self, node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    /// Row/column of an element's branch current (if it has one).
    pub fn branch_row(&self, element_index: usize) -> Option<usize> {
        self.branch_index.get(element_index).copied().flatten()
    }

    /// Voltage of `node` in the solution vector `x` (0 for ground).
    pub fn voltage(&self, x: &[f64], node: NodeId) -> f64 {
        match self.node_row(node) {
            Some(row) => x[row],
            None => 0.0,
        }
    }

    /// Complex voltage of `node` in an AC solution vector.
    pub fn voltage_complex(&self, x: &[Complex], node: NodeId) -> Complex {
        match self.node_row(node) {
            Some(row) => x[row],
            None => Complex::zero(),
        }
    }

    /// Number of circuit nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_count
    }
}

/// State carried between transient time points.
#[derive(Debug, Clone)]
pub struct DynamicState {
    /// Solution vector at the previous accepted time point.
    pub x: Vec<f64>,
    /// Capacitor currents at the previous time point, indexed by element.
    pub capacitor_currents: Vec<f64>,
}

/// Options controlling one real-valued assembly.
#[derive(Debug, Clone, Copy)]
pub struct AssemblyOptions {
    /// Conductance added from every non-ground node to ground
    /// (gmin stepping uses large values; the final solve uses `1e-12`).
    pub gmin: f64,
    /// Multiplier applied to every independent source (source stepping).
    pub source_scale: f64,
    /// For transient assemblies: the new time point, the step size and the
    /// integration method.  `None` selects DC assembly.
    pub time_step: Option<(f64, f64, IntegrationMethod)>,
}

impl Default for AssemblyOptions {
    fn default() -> Self {
        AssemblyOptions { gmin: 1e-12, source_scale: 1.0, time_step: None }
    }
}

/// Real stamps accumulator with ground-row elision.
struct RealStamps {
    a: Matrix<f64>,
    b: Vec<f64>,
}

impl RealStamps {
    fn new(size: usize) -> Self {
        RealStamps { a: Matrix::zeros(size), b: vec![0.0; size] }
    }

    fn add_a(&mut self, row: Option<usize>, col: Option<usize>, value: f64) {
        if let (Some(r), Some(c)) = (row, col) {
            self.a.add(r, c, value);
        }
    }

    fn add_b(&mut self, row: Option<usize>, value: f64) {
        if let Some(r) = row {
            self.b[r] += value;
        }
    }

    /// Conductance `g` between nodes `a` and `b`.
    fn conductance(&mut self, ra: Option<usize>, rb: Option<usize>, g: f64) {
        self.add_a(ra, ra, g);
        self.add_a(rb, rb, g);
        self.add_a(ra, rb, -g);
        self.add_a(rb, ra, -g);
    }
}

/// Assembles the real MNA system for a DC or transient Newton iteration,
/// linearised around the iterate `x_guess`.
pub fn assemble_real(
    circuit: &Circuit,
    layout: &MnaLayout,
    x_guess: &[f64],
    dynamic: Option<&DynamicState>,
    options: &AssemblyOptions,
) -> (Matrix<f64>, Vec<f64>) {
    let mut stamps = RealStamps::new(layout.size());

    // gmin from every node to ground keeps floating nodes and cut-off devices
    // from producing a singular Jacobian.
    for node in 1..layout.node_count() {
        let row = layout.node_row(NodeId(node));
        stamps.add_a(row, row, options.gmin);
    }

    for (index, element) in circuit.elements().iter().enumerate() {
        match element {
            Element::Resistor { a, b, resistance, .. } => {
                let g = 1.0 / resistance;
                stamps.conductance(layout.node_row(*a), layout.node_row(*b), g);
            }
            Element::Capacitor { a, b, capacitance, .. } => {
                if let Some((_, h, method)) = options.time_step {
                    let dynamic = dynamic.expect("transient assembly requires dynamic state");
                    let ra = layout.node_row(*a);
                    let rb = layout.node_row(*b);
                    let v_prev = layout.voltage(&dynamic.x, *a) - layout.voltage(&dynamic.x, *b);
                    let i_prev = dynamic.capacitor_currents[index];
                    let (geq, irhs) = match method {
                        IntegrationMethod::BackwardEuler => {
                            let geq = capacitance / h;
                            (geq, geq * v_prev)
                        }
                        IntegrationMethod::Trapezoidal => {
                            let geq = 2.0 * capacitance / h;
                            (geq, geq * v_prev + i_prev)
                        }
                    };
                    stamps.conductance(ra, rb, geq);
                    stamps.add_b(ra, irhs);
                    stamps.add_b(rb, -irhs);
                }
                // DC: a capacitor is an open circuit — no stamp.
            }
            Element::Inductor { a, b, inductance, .. } => {
                let ra = layout.node_row(*a);
                let rb = layout.node_row(*b);
                let br = layout.branch_row(index);
                // KCL coupling: branch current leaves `a`, enters `b`.
                stamps.add_a(ra, br, 1.0);
                stamps.add_a(rb, br, -1.0);
                // Branch equation.
                stamps.add_a(br, ra, 1.0);
                stamps.add_a(br, rb, -1.0);
                match options.time_step {
                    None => {
                        // DC: v_a - v_b = 0 (ideal short); nothing else to add.
                    }
                    Some((_, h, method)) => {
                        let dynamic = dynamic.expect("transient assembly requires dynamic state");
                        let br_row = br.expect("inductor always has a branch row");
                        let i_prev = dynamic.x[br_row];
                        match method {
                            IntegrationMethod::BackwardEuler => {
                                // v - (L/h)(i - i_prev) = 0
                                let leq = inductance / h;
                                stamps.add_a(br, br, -leq);
                                stamps.add_b(br, -leq * i_prev);
                            }
                            IntegrationMethod::Trapezoidal => {
                                // v + v_prev = (2L/h)(i - i_prev)
                                let leq = 2.0 * inductance / h;
                                let v_prev =
                                    layout.voltage(&dynamic.x, *a) - layout.voltage(&dynamic.x, *b);
                                stamps.add_a(br, br, -leq);
                                stamps.add_b(br, -leq * i_prev + v_prev);
                                // Move the +v_prev term to the RHS with a sign
                                // flip: row reads v_new - leq*i_new = -leq*i_prev - v_prev.
                                stamps.add_b(br, -2.0 * v_prev);
                            }
                        }
                    }
                }
            }
            Element::VoltageSource { pos, neg, waveform, .. } => {
                let rp = layout.node_row(*pos);
                let rn = layout.node_row(*neg);
                let br = layout.branch_row(index);
                stamps.add_a(rp, br, 1.0);
                stamps.add_a(rn, br, -1.0);
                stamps.add_a(br, rp, 1.0);
                stamps.add_a(br, rn, -1.0);
                let value = match options.time_step {
                    None => waveform.dc_value(),
                    Some((t, _, _)) => waveform.value_at(t),
                };
                stamps.add_b(br, value * options.source_scale);
            }
            Element::CurrentSource { pos, neg, waveform, .. } => {
                let value = match options.time_step {
                    None => waveform.dc_value(),
                    Some((t, _, _)) => waveform.value_at(t),
                } * options.source_scale;
                // Current flows from `pos` through the source to `neg`.
                stamps.add_b(layout.node_row(*pos), -value);
                stamps.add_b(layout.node_row(*neg), value);
            }
            Element::Vcvs { out_pos, out_neg, in_pos, in_neg, gain, .. } => {
                let rop = layout.node_row(*out_pos);
                let ron = layout.node_row(*out_neg);
                let rip = layout.node_row(*in_pos);
                let rin = layout.node_row(*in_neg);
                let br = layout.branch_row(index);
                stamps.add_a(rop, br, 1.0);
                stamps.add_a(ron, br, -1.0);
                stamps.add_a(br, rop, 1.0);
                stamps.add_a(br, ron, -1.0);
                stamps.add_a(br, rip, -gain);
                stamps.add_a(br, rin, *gain);
            }
            Element::Vccs { out_pos, out_neg, in_pos, in_neg, transconductance, .. } => {
                let rop = layout.node_row(*out_pos);
                let ron = layout.node_row(*out_neg);
                let rip = layout.node_row(*in_pos);
                let rin = layout.node_row(*in_neg);
                let gm = *transconductance;
                stamps.add_a(rop, rip, gm);
                stamps.add_a(rop, rin, -gm);
                stamps.add_a(ron, rip, -gm);
                stamps.add_a(ron, rin, gm);
            }
            Element::Diode { anode, cathode, model, .. } => {
                let ra = layout.node_row(*anode);
                let rc = layout.node_row(*cathode);
                let v = layout.voltage(x_guess, *anode) - layout.voltage(x_guess, *cathode);
                let (current, conductance) = model.evaluate(v);
                let ieq = current - conductance * v;
                stamps.conductance(ra, rc, conductance);
                stamps.add_b(ra, -ieq);
                stamps.add_b(rc, ieq);
            }
            Element::Mosfet { drain, gate, source, polarity, model, width, length, .. } => {
                let rd = layout.node_row(*drain);
                let rg = layout.node_row(*gate);
                let rs = layout.node_row(*source);
                let vg = layout.voltage(x_guess, *gate);
                let vd = layout.voltage(x_guess, *drain);
                let vs = layout.voltage(x_guess, *source);
                let op = mosfet::linearize(model, *polarity, *width, *length, vg, vd, vs);
                // Linearised drain current:
                //   ids ≈ ids0 + d_vg (Vg - vg) + d_vd (Vd - vd) + d_vs (Vs - vs)
                // KCL: ids leaves the drain node and enters the source node.
                let ieq = op.ids - op.d_vg * vg - op.d_vd * vd - op.d_vs * vs;
                stamps.add_a(rd, rg, op.d_vg);
                stamps.add_a(rd, rd, op.d_vd);
                stamps.add_a(rd, rs, op.d_vs);
                stamps.add_a(rs, rg, -op.d_vg);
                stamps.add_a(rs, rd, -op.d_vd);
                stamps.add_a(rs, rs, -op.d_vs);
                stamps.add_b(rd, -ieq);
                stamps.add_b(rs, ieq);
            }
        }
    }
    (stamps.a, stamps.b)
}

/// Complex stamps accumulator with ground-row elision.
struct ComplexStamps {
    a: Matrix<Complex>,
    b: Vec<Complex>,
}

impl ComplexStamps {
    fn new(size: usize) -> Self {
        ComplexStamps { a: Matrix::zeros(size), b: vec![Complex::zero(); size] }
    }

    fn add_a(&mut self, row: Option<usize>, col: Option<usize>, value: Complex) {
        if let (Some(r), Some(c)) = (row, col) {
            self.a.add(r, c, value);
        }
    }

    fn add_b(&mut self, row: Option<usize>, value: Complex) {
        if let Some(r) = row {
            self.b[r] += value;
        }
    }

    fn admittance(&mut self, ra: Option<usize>, rb: Option<usize>, y: Complex) {
        self.add_a(ra, ra, y);
        self.add_a(rb, rb, y);
        self.add_a(ra, rb, -y);
        self.add_a(rb, ra, -y);
    }
}

/// Assembles the complex small-signal MNA system at angular frequency `omega`,
/// linearising nonlinear devices around the DC operating point `op_x`.
pub fn assemble_ac(
    circuit: &Circuit,
    layout: &MnaLayout,
    op_x: &[f64],
    omega: f64,
) -> (Matrix<Complex>, Vec<Complex>) {
    let mut stamps = ComplexStamps::new(layout.size());
    let gmin = Complex::real(1e-12);
    for node in 1..layout.node_count() {
        let row = layout.node_row(NodeId(node));
        stamps.add_a(row, row, gmin);
    }

    for (index, element) in circuit.elements().iter().enumerate() {
        match element {
            Element::Resistor { a, b, resistance, .. } => {
                stamps.admittance(
                    layout.node_row(*a),
                    layout.node_row(*b),
                    Complex::real(1.0 / resistance),
                );
            }
            Element::Capacitor { a, b, capacitance, .. } => {
                stamps.admittance(
                    layout.node_row(*a),
                    layout.node_row(*b),
                    Complex::new(0.0, omega * capacitance),
                );
            }
            Element::Inductor { a, b, inductance, .. } => {
                let ra = layout.node_row(*a);
                let rb = layout.node_row(*b);
                let br = layout.branch_row(index);
                stamps.add_a(ra, br, Complex::one());
                stamps.add_a(rb, br, -Complex::one());
                stamps.add_a(br, ra, Complex::one());
                stamps.add_a(br, rb, -Complex::one());
                stamps.add_a(br, br, Complex::new(0.0, -omega * inductance));
            }
            Element::VoltageSource { pos, neg, ac_magnitude, .. } => {
                let rp = layout.node_row(*pos);
                let rn = layout.node_row(*neg);
                let br = layout.branch_row(index);
                stamps.add_a(rp, br, Complex::one());
                stamps.add_a(rn, br, -Complex::one());
                stamps.add_a(br, rp, Complex::one());
                stamps.add_a(br, rn, -Complex::one());
                stamps.add_b(br, Complex::real(*ac_magnitude));
            }
            Element::CurrentSource { pos, neg, ac_magnitude, .. } => {
                stamps.add_b(layout.node_row(*pos), Complex::real(-ac_magnitude));
                stamps.add_b(layout.node_row(*neg), Complex::real(*ac_magnitude));
            }
            Element::Vcvs { out_pos, out_neg, in_pos, in_neg, gain, .. } => {
                let rop = layout.node_row(*out_pos);
                let ron = layout.node_row(*out_neg);
                let rip = layout.node_row(*in_pos);
                let rin = layout.node_row(*in_neg);
                let br = layout.branch_row(index);
                stamps.add_a(rop, br, Complex::one());
                stamps.add_a(ron, br, -Complex::one());
                stamps.add_a(br, rop, Complex::one());
                stamps.add_a(br, ron, -Complex::one());
                stamps.add_a(br, rip, Complex::real(-gain));
                stamps.add_a(br, rin, Complex::real(*gain));
            }
            Element::Vccs { out_pos, out_neg, in_pos, in_neg, transconductance, .. } => {
                let rop = layout.node_row(*out_pos);
                let ron = layout.node_row(*out_neg);
                let rip = layout.node_row(*in_pos);
                let rin = layout.node_row(*in_neg);
                let gm = Complex::real(*transconductance);
                stamps.add_a(rop, rip, gm);
                stamps.add_a(rop, rin, -gm);
                stamps.add_a(ron, rip, -gm);
                stamps.add_a(ron, rin, gm);
            }
            Element::Diode { anode, cathode, model, .. } => {
                let v = layout.voltage(op_x, *anode) - layout.voltage(op_x, *cathode);
                let (_, conductance) = model.evaluate(v);
                stamps.admittance(
                    layout.node_row(*anode),
                    layout.node_row(*cathode),
                    Complex::real(conductance),
                );
            }
            Element::Mosfet { drain, gate, source, polarity, model, width, length, .. } => {
                let rd = layout.node_row(*drain);
                let rg = layout.node_row(*gate);
                let rs = layout.node_row(*source);
                let vg = layout.voltage(op_x, *gate);
                let vd = layout.voltage(op_x, *drain);
                let vs = layout.voltage(op_x, *source);
                let op = mosfet::linearize(model, *polarity, *width, *length, vg, vd, vs);
                stamps.add_a(rd, rg, Complex::real(op.d_vg));
                stamps.add_a(rd, rd, Complex::real(op.d_vd));
                stamps.add_a(rd, rs, Complex::real(op.d_vs));
                stamps.add_a(rs, rg, Complex::real(-op.d_vg));
                stamps.add_a(rs, rd, Complex::real(-op.d_vd));
                stamps.add_a(rs, rs, Complex::real(-op.d_vs));
            }
        }
    }
    (stamps.a, stamps.b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::SourceWaveform;
    use crate::linalg::solve_real;

    #[test]
    fn layout_assigns_branches_after_nodes() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.voltage_source("V1", a, Circuit::ground(), SourceWaveform::dc(1.0)).unwrap();
        c.resistor("R1", a, b, 1.0).unwrap();
        c.inductor("L1", b, Circuit::ground(), 1e-3).unwrap();
        let layout = MnaLayout::new(&c);
        assert_eq!(layout.size(), 2 + 2);
        assert_eq!(layout.node_row(Circuit::ground()), None);
        assert_eq!(layout.node_row(a), Some(0));
        assert_eq!(layout.branch_row(0), Some(2));
        assert_eq!(layout.branch_row(1), None);
        assert_eq!(layout.branch_row(2), Some(3));
    }

    #[test]
    fn divider_assembly_solves_to_half_supply() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vout = c.node("vout");
        c.voltage_source("V1", vin, Circuit::ground(), SourceWaveform::dc(2.0)).unwrap();
        c.resistor("R1", vin, vout, 1000.0).unwrap();
        c.resistor("R2", vout, Circuit::ground(), 1000.0).unwrap();
        let layout = MnaLayout::new(&c);
        let x0 = vec![0.0; layout.size()];
        let (a, b) = assemble_real(&c, &layout, &x0, None, &AssemblyOptions::default());
        let x = solve_real(a, b).unwrap();
        assert!((layout.voltage(&x, vin) - 2.0).abs() < 1e-9);
        assert!((layout.voltage(&x, vout) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn current_source_direction_follows_spice_convention() {
        // 1 A flowing from ground through the source into node `a`
        // (source written as pos=ground? no: pos=a, neg=ground means current
        // leaves node a). Check the polarity explicitly with a 1 Ω resistor.
        let mut c = Circuit::new();
        let a = c.node("a");
        c.current_source("I1", a, Circuit::ground(), SourceWaveform::dc(1.0)).unwrap();
        c.resistor("R1", a, Circuit::ground(), 1.0).unwrap();
        let layout = MnaLayout::new(&c);
        let x0 = vec![0.0; layout.size()];
        let (m, b) = assemble_real(&c, &layout, &x0, None, &AssemblyOptions::default());
        let x = solve_real(m, b).unwrap();
        // Current leaves node a through the source => node a is pulled low.
        assert!((layout.voltage(&x, a) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn ac_assembly_produces_rc_low_pass_response() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vout = c.node("vout");
        c.ac_voltage_source("V1", vin, Circuit::ground(), SourceWaveform::dc(0.0), 1.0).unwrap();
        c.resistor("R1", vin, vout, 1000.0).unwrap();
        c.capacitor("C1", vout, Circuit::ground(), 1e-6).unwrap();
        let layout = MnaLayout::new(&c);
        let op = vec![0.0; layout.size()];
        // At the corner frequency w = 1/RC the magnitude is 1/sqrt(2).
        let omega = 1.0 / (1000.0 * 1e-6);
        let (a, b) = assemble_ac(&c, &layout, &op, omega);
        let x = crate::linalg::solve_complex(a, b).unwrap();
        let gain = layout.voltage_complex(&x, vout).norm();
        assert!((gain - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3, "gain {gain}");
    }
}
