//! Circuit (netlist) construction.

use serde::{Deserialize, Serialize};

use crate::elements::{DiodeModel, Element, MosfetModel, MosfetPolarity, SourceWaveform};
use crate::{CircuitError, Result};

/// Identifier of a circuit node.  Node `0` is always ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The ground (reference) node.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index of the node.
    pub fn index(self) -> usize {
        self.0
    }

    /// Whether this is the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// A flat netlist: named nodes plus a list of [`Element`]s.
///
/// # Example
///
/// Build a resistive divider and check the node count:
///
/// ```
/// use stc_circuit::{Circuit, SourceWaveform};
///
/// # fn main() -> Result<(), stc_circuit::CircuitError> {
/// let mut circuit = Circuit::new();
/// let vin = circuit.node("vin");
/// let vout = circuit.node("vout");
/// circuit.voltage_source("V1", vin, Circuit::ground(), SourceWaveform::dc(5.0))?;
/// circuit.resistor("R1", vin, vout, 1_000.0)?;
/// circuit.resistor("R2", vout, Circuit::ground(), 1_000.0)?;
/// assert_eq!(circuit.node_count(), 3); // ground, vin, vout
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    node_names: Vec<String>,
    elements: Vec<Element>,
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Circuit { node_names: vec!["0".to_string()], elements: Vec::new() }
    }

    /// The ground node.
    pub fn ground() -> NodeId {
        NodeId::GROUND
    }

    /// Returns the node with the given name, creating it if necessary.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(index) = self.node_names.iter().position(|n| n == name) {
            NodeId(index)
        } else {
            self.node_names.push(name.to_string());
            NodeId(self.node_names.len() - 1)
        }
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_names.iter().position(|n| n == name).map(NodeId)
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    /// Total number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// All elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Crate-internal mutable access to the element list (used by device
    /// builders that need to retarget an already-instantiated source, for
    /// example to add an AC stimulus to a supply).
    pub(crate) fn elements_mut(&mut self) -> &mut Vec<Element> {
        &mut self.elements
    }

    /// Finds an element index by instance name.
    pub fn find_element(&self, name: &str) -> Option<usize> {
        self.elements.iter().position(|e| e.name() == name)
    }

    /// Whether the circuit contains any nonlinear element.
    pub fn is_nonlinear(&self) -> bool {
        self.elements.iter().any(Element::is_nonlinear)
    }

    fn check_node(&self, node: NodeId) -> Result<()> {
        if node.0 >= self.node_names.len() {
            Err(CircuitError::UnknownNode { node: node.0, node_count: self.node_names.len() })
        } else {
            Ok(())
        }
    }

    fn check_positive(&self, name: &str, parameter: &'static str, value: f64) -> Result<()> {
        if value > 0.0 && value.is_finite() {
            Ok(())
        } else {
            Err(CircuitError::InvalidParameter { element: name.to_string(), parameter, value })
        }
    }

    fn push(&mut self, element: Element) -> Result<usize> {
        for node in element.nodes() {
            self.check_node(node)?;
        }
        self.elements.push(element);
        Ok(self.elements.len() - 1)
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown nodes or a non-positive resistance.
    pub fn resistor(&mut self, name: &str, a: NodeId, b: NodeId, resistance: f64) -> Result<usize> {
        self.check_positive(name, "resistance", resistance)?;
        self.push(Element::Resistor { name: name.to_string(), a, b, resistance })
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown nodes or a non-positive capacitance.
    pub fn capacitor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        capacitance: f64,
    ) -> Result<usize> {
        self.check_positive(name, "capacitance", capacitance)?;
        self.push(Element::Capacitor { name: name.to_string(), a, b, capacitance })
    }

    /// Adds an inductor.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown nodes or a non-positive inductance.
    pub fn inductor(&mut self, name: &str, a: NodeId, b: NodeId, inductance: f64) -> Result<usize> {
        self.check_positive(name, "inductance", inductance)?;
        self.push(Element::Inductor { name: name.to_string(), a, b, inductance })
    }

    /// Adds an independent voltage source with no AC component.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown nodes.
    pub fn voltage_source(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        waveform: SourceWaveform,
    ) -> Result<usize> {
        self.push(Element::VoltageSource {
            name: name.to_string(),
            pos,
            neg,
            waveform,
            ac_magnitude: 0.0,
        })
    }

    /// Adds an independent voltage source that also acts as the AC stimulus
    /// with the given small-signal magnitude.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown nodes.
    pub fn ac_voltage_source(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        waveform: SourceWaveform,
        ac_magnitude: f64,
    ) -> Result<usize> {
        self.push(Element::VoltageSource {
            name: name.to_string(),
            pos,
            neg,
            waveform,
            ac_magnitude,
        })
    }

    /// Adds an independent current source (current flows from `pos` through
    /// the source to `neg`).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown nodes.
    pub fn current_source(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        waveform: SourceWaveform,
    ) -> Result<usize> {
        self.push(Element::CurrentSource {
            name: name.to_string(),
            pos,
            neg,
            waveform,
            ac_magnitude: 0.0,
        })
    }

    /// Adds a voltage-controlled voltage source.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown nodes.
    pub fn vcvs(
        &mut self,
        name: &str,
        out_pos: NodeId,
        out_neg: NodeId,
        in_pos: NodeId,
        in_neg: NodeId,
        gain: f64,
    ) -> Result<usize> {
        self.push(Element::Vcvs { name: name.to_string(), out_pos, out_neg, in_pos, in_neg, gain })
    }

    /// Adds a voltage-controlled current source.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown nodes.
    pub fn vccs(
        &mut self,
        name: &str,
        out_pos: NodeId,
        out_neg: NodeId,
        in_pos: NodeId,
        in_neg: NodeId,
        transconductance: f64,
    ) -> Result<usize> {
        self.push(Element::Vccs {
            name: name.to_string(),
            out_pos,
            out_neg,
            in_pos,
            in_neg,
            transconductance,
        })
    }

    /// Adds a junction diode.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown nodes.
    pub fn diode(
        &mut self,
        name: &str,
        anode: NodeId,
        cathode: NodeId,
        model: DiodeModel,
    ) -> Result<usize> {
        self.push(Element::Diode { name: name.to_string(), anode, cathode, model })
    }

    /// Adds a MOSFET.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown nodes or non-positive geometry.
    #[allow(clippy::too_many_arguments)]
    pub fn mosfet(
        &mut self,
        name: &str,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        polarity: MosfetPolarity,
        model: MosfetModel,
        width: f64,
        length: f64,
    ) -> Result<usize> {
        self.check_positive(name, "width", width)?;
        self.check_positive(name, "length", length)?;
        self.push(Element::Mosfet {
            name: name.to_string(),
            drain,
            gate,
            source,
            polarity,
            model,
            width,
            length,
        })
    }
}

impl Default for Circuit {
    fn default() -> Self {
        Circuit::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_deduplicated_by_name() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("a");
        assert_eq!(a, a2);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.find_node("a"), Some(a));
        assert_eq!(c.find_node("zz"), None);
        assert!(Circuit::ground().is_ground());
        assert!(!a.is_ground());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        assert!(c.resistor("R1", a, Circuit::ground(), -5.0).is_err());
        assert!(c.capacitor("C1", a, Circuit::ground(), 0.0).is_err());
        assert!(c.inductor("L1", a, Circuit::ground(), f64::NAN).is_err());
        assert!(c
            .mosfet(
                "M1",
                a,
                a,
                Circuit::ground(),
                MosfetPolarity::Nmos,
                MosfetModel::nmos_default(),
                0.0,
                1e-6
            )
            .is_err());
    }

    #[test]
    fn unknown_nodes_are_rejected() {
        let mut c = Circuit::new();
        let bogus = NodeId(17);
        assert!(matches!(
            c.resistor("R1", bogus, Circuit::ground(), 1.0),
            Err(CircuitError::UnknownNode { node: 17, .. })
        ));
    }

    #[test]
    fn elements_are_recorded_and_searchable() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::ground(), 10.0).unwrap();
        c.diode("D1", a, Circuit::ground(), DiodeModel::silicon()).unwrap();
        assert_eq!(c.elements().len(), 2);
        assert_eq!(c.find_element("D1"), Some(1));
        assert_eq!(c.find_element("Q9"), None);
        assert!(c.is_nonlinear());
    }
}
