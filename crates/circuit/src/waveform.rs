//! Time-domain waveforms and the measurements the specification tests need.

use serde::{Deserialize, Serialize};

use crate::{CircuitError, Result};

/// A sampled time-domain signal.
///
/// # Example
///
/// ```
/// use stc_circuit::Waveform;
///
/// let w = Waveform::new(
///     (0..=100).map(|i| i as f64 * 1e-6).collect(),
///     (0..=100).map(|i| if i < 10 { 0.0 } else { 1.0 }).collect(),
/// );
/// assert_eq!(w.final_value(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Waveform {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl Waveform {
    /// Creates a waveform from parallel time/value vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths or are empty.
    pub fn new(times: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(times.len(), values.len(), "times and values must have equal length");
        assert!(!times.is_empty(), "waveform must contain at least one sample");
        Waveform { times, values }
    }

    /// Sample times in seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the waveform is empty (never true for constructed waveforms).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// First sampled value.
    pub fn initial_value(&self) -> f64 {
        self.values[0]
    }

    /// Last sampled value (used as the settled steady-state value).
    pub fn final_value(&self) -> f64 {
        *self.values.last().expect("waveform is never empty")
    }

    /// Largest sampled value.
    pub fn max_value(&self) -> f64 {
        self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest sampled value.
    pub fn min_value(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Linear interpolation of the value at time `t` (clamped to the range).
    pub fn value_at(&self, t: f64) -> f64 {
        if t <= self.times[0] {
            return self.values[0];
        }
        if t >= *self.times.last().expect("non-empty") {
            return self.final_value();
        }
        for i in 1..self.times.len() {
            if t <= self.times[i] {
                let t0 = self.times[i - 1];
                let t1 = self.times[i];
                let v0 = self.values[i - 1];
                let v1 = self.values[i];
                if t1 - t0 <= 0.0 {
                    return v1;
                }
                return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
            }
        }
        self.final_value()
    }

    /// First time at which the waveform crosses `threshold` going in the
    /// direction of the final value, using linear interpolation.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::MeasurementFailed`] if the waveform never
    /// crosses the threshold.
    pub fn first_crossing(&self, threshold: f64) -> Result<f64> {
        let rising = self.final_value() >= self.initial_value();
        for i in 1..self.len() {
            let (v0, v1) = (self.values[i - 1], self.values[i]);
            let crossed = if rising {
                v0 < threshold && v1 >= threshold
            } else {
                v0 > threshold && v1 <= threshold
            };
            if crossed {
                let t0 = self.times[i - 1];
                let t1 = self.times[i];
                if (v1 - v0).abs() < f64::EPSILON {
                    return Ok(t1);
                }
                return Ok(t0 + (threshold - v0) / (v1 - v0) * (t1 - t0));
            }
        }
        Err(CircuitError::MeasurementFailed {
            measurement: "first_crossing",
            reason: format!("waveform never crosses {threshold}"),
        })
    }

    /// 10 %–90 % rise time of a step response.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::MeasurementFailed`] if the waveform does not
    /// traverse both thresholds.
    pub fn rise_time(&self) -> Result<f64> {
        let initial = self.initial_value();
        let final_value = self.final_value();
        let swing = final_value - initial;
        if swing.abs() < 1e-15 {
            return Err(CircuitError::MeasurementFailed {
                measurement: "rise_time",
                reason: "waveform has no net transition".to_string(),
            });
        }
        let t10 = self.first_crossing(initial + 0.1 * swing)?;
        let t90 = self.first_crossing(initial + 0.9 * swing)?;
        Ok((t90 - t10).abs())
    }

    /// Overshoot of a step response as a fraction of the final swing
    /// (0 when the response never exceeds its settled value).
    pub fn overshoot(&self) -> f64 {
        let initial = self.initial_value();
        let final_value = self.final_value();
        let swing = final_value - initial;
        if swing.abs() < 1e-15 {
            return 0.0;
        }
        if swing > 0.0 {
            ((self.max_value() - final_value) / swing).max(0.0)
        } else {
            ((final_value - self.min_value()) / -swing).max(0.0)
        }
    }

    /// Time after which the waveform stays within `tolerance` (fraction of the
    /// final swing) of its final value, measured from the first sample.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::MeasurementFailed`] if the waveform has no net
    /// transition to settle toward.
    pub fn settling_time(&self, tolerance: f64) -> Result<f64> {
        let initial = self.initial_value();
        let final_value = self.final_value();
        let swing = (final_value - initial).abs();
        if swing < 1e-15 {
            return Err(CircuitError::MeasurementFailed {
                measurement: "settling_time",
                reason: "waveform has no net transition".to_string(),
            });
        }
        let band = tolerance * swing;
        let mut settled_at = self.times[0];
        let mut settled = true;
        for i in 0..self.len() {
            if (self.values[i] - final_value).abs() > band {
                settled = false;
            } else if !settled {
                settled = true;
                settled_at = self.times[i];
            }
        }
        Ok(settled_at - self.times[0])
    }

    /// Maximum absolute slope of the waveform (V/s), the slew-rate estimator.
    pub fn max_slope(&self) -> f64 {
        let mut slope = 0.0f64;
        for i in 1..self.len() {
            let dt = self.times[i] - self.times[i - 1];
            if dt > 0.0 {
                slope = slope.max(((self.values[i] - self.values[i - 1]) / dt).abs());
            }
        }
        slope
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Analytic step response of a second-order system with damping `zeta`;
    /// its peak overshoot is exp(-pi*zeta/sqrt(1-zeta^2)).
    fn second_order_step(zeta: f64, wn: f64, n: usize, t_stop: f64) -> Waveform {
        let root = (1.0 - zeta * zeta).sqrt();
        let wd = wn * root;
        let times: Vec<f64> = (0..n).map(|i| t_stop * i as f64 / (n - 1) as f64).collect();
        let values = times
            .iter()
            .map(|&t| {
                1.0 - (-zeta * wn * t).exp() * ((wd * t).cos() + (zeta / root) * (wd * t).sin())
            })
            .collect();
        Waveform::new(times, values)
    }

    #[test]
    fn rise_time_of_first_order_step() {
        // v(t) = 1 - exp(-t/tau): rise time = tau * ln(9) ≈ 2.197 tau.
        let tau = 1e-3;
        let times: Vec<f64> = (0..2000).map(|i| i as f64 * 5e-6).collect();
        let values: Vec<f64> = times.iter().map(|&t| 1.0 - (-t / tau).exp()).collect();
        let w = Waveform::new(times, values);
        let tr = w.rise_time().unwrap();
        assert!((tr / (tau * 9f64.ln()) - 1.0).abs() < 0.02, "rise time {tr}");
        assert!(w.overshoot() < 1e-6);
    }

    #[test]
    fn overshoot_of_underdamped_second_order_step() {
        let zeta = 0.2;
        let w = second_order_step(zeta, 2.0 * std::f64::consts::PI * 1000.0, 4000, 10e-3);
        let expected = (-std::f64::consts::PI * zeta / (1.0 - zeta * zeta).sqrt()).exp();
        let measured = w.overshoot();
        assert!((measured - expected).abs() < 0.05, "overshoot {measured} vs {expected}");
    }

    #[test]
    fn settling_time_increases_with_tighter_tolerance() {
        let w = second_order_step(0.3, 2.0 * std::f64::consts::PI * 1000.0, 4000, 10e-3);
        let loose = w.settling_time(0.05).unwrap();
        let tight = w.settling_time(0.01).unwrap();
        assert!(tight >= loose);
        assert!(loose > 0.0);
    }

    #[test]
    fn max_slope_of_a_ramp() {
        let times: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let values: Vec<f64> = times.iter().map(|&t| 2.0 * t).collect();
        let w = Waveform::new(times, values);
        assert!((w.max_slope() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn value_at_interpolates_and_clamps() {
        let w = Waveform::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 20.0]);
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(0.5), 5.0);
        assert_eq!(w.value_at(5.0), 20.0);
        assert_eq!(w.initial_value(), 0.0);
        assert_eq!(w.final_value(), 20.0);
        assert_eq!(w.max_value(), 20.0);
        assert_eq!(w.min_value(), 0.0);
    }

    #[test]
    fn missing_crossing_is_an_error() {
        let w = Waveform::new(vec![0.0, 1.0], vec![0.0, 0.5]);
        assert!(w.first_crossing(2.0).is_err());
        let flat = Waveform::new(vec![0.0, 1.0], vec![1.0, 1.0]);
        assert!(flat.rise_time().is_err());
        assert!(flat.settling_time(0.01).is_err());
        assert_eq!(flat.overshoot(), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = Waveform::new(vec![0.0, 1.0], vec![0.0]);
    }
}
