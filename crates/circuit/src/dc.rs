//! DC operating-point analysis (Newton–Raphson with gmin and source stepping).

use crate::linalg::solve_real;
use crate::mna::{assemble_real, AssemblyOptions, DynamicState, MnaLayout};
use crate::netlist::{Circuit, NodeId};
use crate::{CircuitError, Result};

/// Maximum Newton iterations per solve attempt.
const MAX_NEWTON_ITERATIONS: usize = 300;
/// Largest node-voltage update applied in one Newton step (volts).
const VOLTAGE_STEP_LIMIT: f64 = 0.5;
/// Absolute convergence tolerance on node voltages (volts).
const ABSTOL: f64 = 1e-9;
/// Relative convergence tolerance on node voltages.
const RELTOL: f64 = 1e-6;

/// Result of a DC operating-point analysis.
#[derive(Debug, Clone)]
pub struct DcSolution {
    layout: MnaLayout,
    x: Vec<f64>,
}

impl DcSolution {
    pub(crate) fn new(layout: MnaLayout, x: Vec<f64>) -> Self {
        DcSolution { layout, x }
    }

    /// Voltage of a node (0 for ground).
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.layout.voltage(&self.x, node)
    }

    /// Current through an element that carries a branch unknown
    /// (voltage sources, inductors, VCVS), by element index.
    ///
    /// The current flows from the element's positive/first terminal through
    /// the element to its negative/second terminal.
    pub fn branch_current(&self, element_index: usize) -> Option<f64> {
        self.layout.branch_row(element_index).map(|row| self.x[row])
    }

    /// The raw solution vector (node voltages then branch currents).
    pub fn solution_vector(&self) -> &[f64] {
        &self.x
    }

    /// The MNA layout used to interpret [`DcSolution::solution_vector`].
    pub fn layout(&self) -> &MnaLayout {
        &self.layout
    }
}

/// Runs one Newton–Raphson solve from the initial guess `x0`.
pub(crate) fn newton_solve(
    circuit: &Circuit,
    layout: &MnaLayout,
    x0: &[f64],
    dynamic: Option<&DynamicState>,
    options: &AssemblyOptions,
) -> Result<Vec<f64>> {
    let mut x = x0.to_vec();
    let node_rows = layout.node_count() - 1;
    let analysis = if options.time_step.is_some() { "transient" } else { "dc" };
    for _iteration in 0..MAX_NEWTON_ITERATIONS {
        let (a, b) = assemble_real(circuit, layout, &x, dynamic, options);
        let x_new = solve_real(a, b)?;
        // Largest node-voltage change decides convergence and damping; branch
        // currents follow the voltages.
        let mut max_delta = 0.0f64;
        for row in 0..node_rows {
            max_delta = max_delta.max((x_new[row] - x[row]).abs());
        }
        let converged = (0..node_rows)
            .all(|row| (x_new[row] - x[row]).abs() <= ABSTOL + RELTOL * x_new[row].abs());
        if max_delta > VOLTAGE_STEP_LIMIT {
            let scale = VOLTAGE_STEP_LIMIT / max_delta;
            for row in 0..x.len() {
                x[row] += (x_new[row] - x[row]) * scale;
            }
        } else {
            x = x_new;
        }
        if converged {
            return Ok(x);
        }
    }
    Err(CircuitError::NoConvergence { analysis, iterations: MAX_NEWTON_ITERATIONS })
}

/// Computes the DC operating point of a circuit.
///
/// Linear circuits are solved directly; nonlinear circuits use Newton–Raphson
/// and fall back to gmin stepping and then source stepping when the plain
/// iteration fails to converge.
///
/// # Errors
///
/// Returns [`CircuitError::EmptyCircuit`] for circuits without elements,
/// [`CircuitError::SingularMatrix`] for structurally defective netlists and
/// [`CircuitError::NoConvergence`] when all continuation strategies fail.
///
/// # Example
///
/// ```
/// use stc_circuit::{dc_operating_point, Circuit, SourceWaveform};
///
/// # fn main() -> Result<(), stc_circuit::CircuitError> {
/// let mut circuit = Circuit::new();
/// let vin = circuit.node("vin");
/// let vout = circuit.node("vout");
/// circuit.voltage_source("V1", vin, Circuit::ground(), SourceWaveform::dc(2.0))?;
/// circuit.resistor("R1", vin, vout, 1_000.0)?;
/// circuit.resistor("R2", vout, Circuit::ground(), 3_000.0)?;
/// let op = dc_operating_point(&circuit)?;
/// assert!((op.voltage(vout) - 1.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn dc_operating_point(circuit: &Circuit) -> Result<DcSolution> {
    dc_operating_point_from(circuit, None)
}

/// Same as [`dc_operating_point`] but starting Newton from a caller-provided
/// initial guess (for example the solution of a nearby circuit variant, which
/// greatly speeds up Monte-Carlo sweeps).
///
/// # Errors
///
/// See [`dc_operating_point`].
pub fn dc_operating_point_from(
    circuit: &Circuit,
    initial_guess: Option<&[f64]>,
) -> Result<DcSolution> {
    if circuit.elements().is_empty() || circuit.node_count() < 2 {
        return Err(CircuitError::EmptyCircuit);
    }
    let layout = MnaLayout::new(circuit);
    let x0 = match initial_guess {
        Some(guess) if guess.len() == layout.size() => guess.to_vec(),
        _ => vec![0.0; layout.size()],
    };

    // 1. Plain Newton.
    let options = AssemblyOptions::default();
    if let Ok(x) = newton_solve(circuit, &layout, &x0, None, &options) {
        return Ok(DcSolution::new(layout, x));
    }

    // 2. gmin stepping: start with a heavily damped circuit and relax.
    let mut x = x0.clone();
    let mut gmin_ok = true;
    for exponent in [-3.0f64, -4.0, -5.0, -6.0, -7.0, -8.0, -9.0, -10.0, -11.0, -12.0] {
        let options = AssemblyOptions { gmin: 10f64.powf(exponent), ..AssemblyOptions::default() };
        match newton_solve(circuit, &layout, &x, None, &options) {
            Ok(next) => x = next,
            Err(_) => {
                gmin_ok = false;
                break;
            }
        }
    }
    if gmin_ok {
        return Ok(DcSolution::new(layout, x));
    }

    // 3. Source stepping: ramp all independent sources from 10 % to 100 %.
    let mut x = x0;
    for step in 1..=10 {
        let options =
            AssemblyOptions { source_scale: step as f64 / 10.0, ..AssemblyOptions::default() };
        x = newton_solve(circuit, &layout, &x, None, &options)?;
    }
    Ok(DcSolution::new(layout, x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::{DiodeModel, MosfetModel, MosfetPolarity, SourceWaveform};

    #[test]
    fn empty_circuit_is_rejected() {
        let c = Circuit::new();
        assert!(matches!(dc_operating_point(&c), Err(CircuitError::EmptyCircuit)));
    }

    #[test]
    fn voltage_divider() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vout = c.node("vout");
        c.voltage_source("V1", vin, Circuit::ground(), SourceWaveform::dc(10.0)).unwrap();
        c.resistor("R1", vin, vout, 7000.0).unwrap();
        c.resistor("R2", vout, Circuit::ground(), 3000.0).unwrap();
        let op = dc_operating_point(&c).unwrap();
        assert!((op.voltage(vout) - 3.0).abs() < 1e-6);
        // Supply current = 10 V / 10 kΩ = 1 mA, flowing out of the + terminal
        // through the external circuit, i.e. -1 mA through the source branch.
        let i = op.branch_current(0).unwrap();
        assert!((i + 1e-3).abs() < 1e-9, "source current {i}");
    }

    #[test]
    fn diode_drop_is_about_point_six_volts() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vd = c.node("vd");
        c.voltage_source("V1", vin, Circuit::ground(), SourceWaveform::dc(5.0)).unwrap();
        c.resistor("R1", vin, vd, 4700.0).unwrap();
        c.diode("D1", vd, Circuit::ground(), DiodeModel::silicon()).unwrap();
        let op = dc_operating_point(&c).unwrap();
        let v = op.voltage(vd);
        assert!(v > 0.5 && v < 0.75, "diode voltage {v}");
    }

    #[test]
    fn nmos_source_follower_tracks_gate_minus_threshold() {
        // Gate at 2.5 V, drain at 5 V, source through 10 kΩ to ground:
        // the source settles near Vg - Vth - Vov.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let gate = c.node("gate");
        let src = c.node("src");
        c.voltage_source("VDD", vdd, Circuit::ground(), SourceWaveform::dc(5.0)).unwrap();
        c.voltage_source("VG", gate, Circuit::ground(), SourceWaveform::dc(2.5)).unwrap();
        c.mosfet(
            "M1",
            vdd,
            gate,
            src,
            MosfetPolarity::Nmos,
            MosfetModel::nmos_default(),
            50e-6,
            1e-6,
        )
        .unwrap();
        c.resistor("RS", src, Circuit::ground(), 10_000.0).unwrap();
        let op = dc_operating_point(&c).unwrap();
        let vs = op.voltage(src);
        assert!(vs > 1.4 && vs < 1.9, "source voltage {vs}");
    }

    #[test]
    fn nmos_inverter_output_swings_low_when_input_high() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("vin");
        let vout = c.node("vout");
        c.voltage_source("VDD", vdd, Circuit::ground(), SourceWaveform::dc(5.0)).unwrap();
        c.voltage_source("VIN", vin, Circuit::ground(), SourceWaveform::dc(5.0)).unwrap();
        c.resistor("RD", vdd, vout, 10_000.0).unwrap();
        c.mosfet(
            "M1",
            vout,
            vin,
            Circuit::ground(),
            MosfetPolarity::Nmos,
            MosfetModel::nmos_default(),
            20e-6,
            1e-6,
        )
        .unwrap();
        let op = dc_operating_point(&c).unwrap();
        assert!(op.voltage(vout) < 0.5, "inverter output {}", op.voltage(vout));
    }

    #[test]
    fn floating_node_reports_singular_or_resolves_via_gmin() {
        // A node connected only through a capacitor has no DC path; the gmin
        // conductance keeps the matrix solvable and pins it near ground.
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.voltage_source("V1", a, Circuit::ground(), SourceWaveform::dc(1.0)).unwrap();
        c.capacitor("C1", a, b, 1e-9).unwrap();
        let op = dc_operating_point(&c).unwrap();
        assert!(op.voltage(b).abs() < 1e-6);
    }

    #[test]
    fn warm_start_matches_cold_start() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vd = c.node("vd");
        c.voltage_source("V1", vin, Circuit::ground(), SourceWaveform::dc(3.0)).unwrap();
        c.resistor("R1", vin, vd, 1000.0).unwrap();
        c.diode("D1", vd, Circuit::ground(), DiodeModel::silicon()).unwrap();
        let cold = dc_operating_point(&c).unwrap();
        let warm = dc_operating_point_from(&c, Some(cold.solution_vector())).unwrap();
        assert!((cold.voltage(vd) - warm.voltage(vd)).abs() < 1e-9);
    }
}
