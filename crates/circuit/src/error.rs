//! Error type for circuit construction and simulation.

use std::error::Error;
use std::fmt;

/// Errors produced while building netlists or running analyses.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A node index referenced by an element does not exist in the circuit.
    UnknownNode {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the circuit.
        node_count: usize,
    },
    /// An element parameter was outside its physical domain.
    InvalidParameter {
        /// Element name.
        element: String,
        /// Parameter name.
        parameter: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// The MNA matrix was singular (for example a floating node or a loop of
    /// ideal voltage sources).
    SingularMatrix {
        /// Index of the pivot that vanished.
        pivot: usize,
    },
    /// Newton–Raphson failed to converge even with gmin and source stepping.
    NoConvergence {
        /// Analysis that failed ("dc", "transient", …).
        analysis: &'static str,
        /// Iterations performed in the last attempt.
        iterations: usize,
    },
    /// An analysis was asked to do something impossible
    /// (for example a transient with a non-positive time step).
    InvalidAnalysis {
        /// Human-readable reason.
        reason: String,
    },
    /// A waveform measurement could not be extracted
    /// (for example the waveform never crosses the requested threshold).
    MeasurementFailed {
        /// Name of the measurement ("rise_time", "unity_gain_frequency", …).
        measurement: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// The circuit has no elements or no non-ground nodes.
    EmptyCircuit,
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::UnknownNode { node, node_count } => {
                write!(f, "node {node} does not exist (circuit has {node_count} nodes)")
            }
            CircuitError::InvalidParameter { element, parameter, value } => {
                write!(f, "element {element}: invalid {parameter} = {value}")
            }
            CircuitError::SingularMatrix { pivot } => {
                write!(f, "singular MNA matrix at pivot {pivot} (floating node or source loop)")
            }
            CircuitError::NoConvergence { analysis, iterations } => {
                write!(f, "{analysis} analysis did not converge after {iterations} iterations")
            }
            CircuitError::InvalidAnalysis { reason } => write!(f, "invalid analysis: {reason}"),
            CircuitError::MeasurementFailed { measurement, reason } => {
                write!(f, "measurement {measurement} failed: {reason}")
            }
            CircuitError::EmptyCircuit => write!(f, "circuit has no elements"),
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CircuitError::UnknownNode { node: 7, node_count: 3 };
        assert!(e.to_string().contains('7'));
        let e = CircuitError::NoConvergence { analysis: "dc", iterations: 99 };
        assert!(e.to_string().contains("dc"));
        let e = CircuitError::MeasurementFailed {
            measurement: "rise_time",
            reason: "never crosses 90 %".into(),
        };
        assert!(e.to_string().contains("rise_time"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
