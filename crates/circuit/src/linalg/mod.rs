//! Minimal dense linear algebra used by the MNA solver.
//!
//! The circuits simulated in this crate have a few dozen unknowns at most, so
//! a dense LU factorization with partial pivoting is entirely adequate and
//! keeps the crate free of external linear-algebra dependencies.

mod complex;
mod dense;

pub use complex::Complex;
pub use dense::{solve_complex, solve_real, Matrix};
