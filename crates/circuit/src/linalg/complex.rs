//! A small complex-number type for AC analysis.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A double-precision complex number `re + j·im`.
///
/// # Example
///
/// ```
/// use stc_circuit::linalg::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.norm(), 5.0);
/// assert_eq!((z * Complex::j()).re, -4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from its real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The additive identity.
    pub fn zero() -> Self {
        Complex { re: 0.0, im: 0.0 }
    }

    /// The multiplicative identity.
    pub fn one() -> Self {
        Complex { re: 1.0, im: 0.0 }
    }

    /// The imaginary unit `j`.
    pub fn j() -> Self {
        Complex { re: 0.0, im: 1.0 }
    }

    /// A purely real number.
    pub fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Magnitude `sqrt(re² + im²)`.
    pub fn norm(&self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    pub fn norm_sqr(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians.
    pub fn arg(&self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(&self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the number is exactly zero.
    pub fn recip(&self) -> Self {
        let d = self.norm_sqr();
        debug_assert!(d > 0.0, "reciprocal of zero");
        Complex { re: self.re / d, im: -self.im / d }
    }

    /// Whether both parts are finite.
    pub fn is_finite(&self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex { re: self.re * rhs, im: self.im * rhs }
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division by multiplying with the reciprocal is the numerically
    // standard complex formulation.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_matches_hand_calculation() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        let q = a / b;
        let back = q * b;
        assert!((back.re - a.re).abs() < 1e-12);
        assert!((back.im - a.im).abs() < 1e-12);
    }

    #[test]
    fn norm_and_arg() {
        let z = Complex::new(0.0, 2.0);
        assert_eq!(z.norm(), 2.0);
        assert!((z.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert_eq!(Complex::real(-1.0).norm(), 1.0);
    }

    #[test]
    fn conj_and_recip() {
        let z = Complex::new(2.0, -3.0);
        assert_eq!(z.conj(), Complex::new(2.0, 3.0));
        let r = z.recip() * z;
        assert!((r.re - 1.0).abs() < 1e-12 && r.im.abs() < 1e-12);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
    }

    #[test]
    fn identities() {
        assert_eq!(Complex::one() * Complex::j(), Complex::j());
        assert_eq!(Complex::j() * Complex::j(), Complex::real(-1.0));
        assert_eq!(Complex::zero() + Complex::one(), Complex::one());
        assert_eq!(Complex::from(2.5).re, 2.5);
    }
}
