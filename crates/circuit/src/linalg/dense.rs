//! Dense matrices and LU solves (real and complex).

use serde::{Deserialize, Serialize};

use super::Complex;
use crate::CircuitError;

/// A dense, row-major `n × n` matrix of generic scalars.
///
/// # Example
///
/// ```
/// use stc_circuit::linalg::{solve_real, Matrix};
///
/// # fn main() -> Result<(), stc_circuit::CircuitError> {
/// let mut a = Matrix::zeros(2);
/// a[(0, 0)] = 2.0;
/// a[(1, 1)] = 4.0;
/// let x = solve_real(a, vec![2.0, 8.0])?;
/// assert_eq!(x, vec![1.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix<T> {
    n: usize,
    values: Vec<T>,
}

impl<T: Copy + Default> Matrix<T> {
    /// Creates an `n × n` matrix filled with the default scalar (zero).
    pub fn zeros(n: usize) -> Self {
        Matrix { n, values: vec![T::default(); n * n] }
    }

    /// Matrix dimension.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Resets every entry to the default scalar, keeping the allocation.
    pub fn clear(&mut self) {
        for v in &mut self.values {
            *v = T::default();
        }
    }
}

impl<T> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    fn index(&self, (row, col): (usize, usize)) -> &T {
        &self.values[row * self.n + col]
    }
}

impl<T> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut T {
        &mut self.values[row * self.n + col]
    }
}

impl Matrix<f64> {
    /// Adds `value` to entry `(row, col)` — the MNA "stamp" primitive.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        self.values[row * self.n + col] += value;
    }
}

impl Matrix<Complex> {
    /// Adds `value` to entry `(row, col)` — the MNA "stamp" primitive.
    pub fn add(&mut self, row: usize, col: usize, value: Complex) {
        let entry = &mut self.values[row * self.n + col];
        *entry += value;
    }
}

/// Solves `A x = b` for real `A` by LU factorization with partial pivoting.
///
/// Consumes the matrix (the factorization is done in place).
///
/// # Errors
///
/// Returns [`CircuitError::SingularMatrix`] when a pivot is (numerically)
/// zero, which for MNA systems indicates a floating node or an inconsistent
/// source loop.
pub fn solve_real(mut a: Matrix<f64>, mut b: Vec<f64>) -> Result<Vec<f64>, CircuitError> {
    let n = a.size();
    assert_eq!(b.len(), n, "rhs length must match matrix size");
    for k in 0..n {
        // Partial pivoting.
        let mut pivot_row = k;
        let mut pivot_mag = a[(k, k)].abs();
        for r in (k + 1)..n {
            let mag = a[(r, k)].abs();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = r;
            }
        }
        if pivot_mag < 1e-300 {
            return Err(CircuitError::SingularMatrix { pivot: k });
        }
        if pivot_row != k {
            for c in 0..n {
                let tmp = a[(k, c)];
                a[(k, c)] = a[(pivot_row, c)];
                a[(pivot_row, c)] = tmp;
            }
            b.swap(k, pivot_row);
        }
        let pivot = a[(k, k)];
        for r in (k + 1)..n {
            let factor = a[(r, k)] / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in k..n {
                let v = a[(k, c)];
                a[(r, c)] -= factor * v;
            }
            b[r] -= factor * b[k];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for k in (0..n).rev() {
        let mut sum = b[k];
        for c in (k + 1)..n {
            sum -= a[(k, c)] * x[c];
        }
        x[k] = sum / a[(k, k)];
    }
    Ok(x)
}

/// Solves `A x = b` for complex `A` by LU factorization with partial pivoting.
///
/// # Errors
///
/// Returns [`CircuitError::SingularMatrix`] when a pivot magnitude vanishes.
pub fn solve_complex(
    mut a: Matrix<Complex>,
    mut b: Vec<Complex>,
) -> Result<Vec<Complex>, CircuitError> {
    let n = a.size();
    assert_eq!(b.len(), n, "rhs length must match matrix size");
    for k in 0..n {
        let mut pivot_row = k;
        let mut pivot_mag = a[(k, k)].norm();
        for r in (k + 1)..n {
            let mag = a[(r, k)].norm();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = r;
            }
        }
        if pivot_mag < 1e-300 {
            return Err(CircuitError::SingularMatrix { pivot: k });
        }
        if pivot_row != k {
            for c in 0..n {
                let tmp = a[(k, c)];
                a[(k, c)] = a[(pivot_row, c)];
                a[(pivot_row, c)] = tmp;
            }
            b.swap(k, pivot_row);
        }
        let pivot = a[(k, k)];
        for r in (k + 1)..n {
            let factor = a[(r, k)] / pivot;
            if factor.norm() == 0.0 {
                continue;
            }
            for c in k..n {
                let v = a[(k, c)];
                a[(r, c)] -= factor * v;
            }
            b[r] = b[r] - factor * b[k];
        }
    }
    let mut x = vec![Complex::zero(); n];
    for k in (0..n).rev() {
        let mut sum = b[k];
        for c in (k + 1)..n {
            sum -= a[(k, c)] * x[c];
        }
        x[k] = sum / a[(k, k)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_real_system() {
        // [2 1; 1 3] x = [3; 5]  =>  x = [0.8, 1.4]
        let mut a = Matrix::zeros(2);
        a[(0, 0)] = 2.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 3.0;
        let x = solve_real(a, vec![3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 1; 1 0] x = [2; 3]  =>  x = [3, 2]
        let mut a = Matrix::zeros(2);
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        let x = solve_real(a, vec![2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut a = Matrix::zeros(2);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 4.0;
        assert!(matches!(solve_real(a, vec![1.0, 2.0]), Err(CircuitError::SingularMatrix { .. })));
    }

    #[test]
    fn random_real_systems_round_trip() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for n in [1usize, 3, 7, 15] {
            let mut a = Matrix::zeros(n);
            for r in 0..n {
                for c in 0..n {
                    a[(r, c)] = rng.gen_range(-1.0..1.0);
                }
                a[(r, r)] += 3.0; // diagonally dominant => well conditioned
            }
            let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 1.5).collect();
            let mut b = vec![0.0; n];
            for r in 0..n {
                for c in 0..n {
                    b[r] += a[(r, c)] * x_true[c];
                }
            }
            let x = solve_real(a, b).unwrap();
            for (xi, ti) in x.iter().zip(x_true.iter()) {
                assert!((xi - ti).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn solves_complex_system() {
        // (1 + j) x = 2j  =>  x = 1 + j
        let mut a = Matrix::zeros(1);
        a[(0, 0)] = Complex::new(1.0, 1.0);
        let x = solve_complex(a, vec![Complex::new(0.0, 2.0)]).unwrap();
        assert!((x[0].re - 1.0).abs() < 1e-12);
        assert!((x[0].im - 1.0).abs() < 1e-12);
    }

    #[test]
    fn complex_round_trip() {
        let n = 5;
        let mut a = Matrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                a[(r, c)] = Complex::new((r + c) as f64 * 0.1, (r as f64 - c as f64) * 0.2);
            }
            a[(r, r)] += Complex::real(4.0);
        }
        let x_true: Vec<Complex> =
            (0..n).map(|i| Complex::new(i as f64, -(i as f64) / 2.0)).collect();
        let mut b = vec![Complex::zero(); n];
        for r in 0..n {
            for c in 0..n {
                b[r] += a[(r, c)] * x_true[c];
            }
        }
        let x = solve_complex(a, b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((*xi - *ti).norm() < 1e-9);
        }
    }

    #[test]
    fn clear_resets_entries() {
        let mut a: Matrix<f64> = Matrix::zeros(2);
        a.add(0, 0, 5.0);
        a.clear();
        assert_eq!(a[(0, 0)], 0.0);
        assert_eq!(a.size(), 2);
    }
}
