//! # stc-circuit
//!
//! A small, self-contained analog circuit simulator used as the substitute
//! for Cadence Virtuoso Spectre in the reproduction of *"Specification Test
//! Compaction for Analog Circuits and MEMS"* (DATE 2005).
//!
//! The simulator provides the three analyses the paper's specification tests
//! need:
//!
//! * [`dc_operating_point`] — Newton–Raphson DC solution with gmin and source
//!   stepping,
//! * [`ac_analysis`] — small-signal frequency sweeps around the operating
//!   point,
//! * [`transient_analysis`] — fixed-step trapezoidal/backward-Euler time
//!   integration.
//!
//! Circuits are built programmatically with [`Circuit`]; the element set
//! (R, L, C, independent and controlled sources, diodes and level-1 MOSFETs)
//! is enough for the two-stage CMOS operational amplifier of the paper's
//! first case study, which is available ready-made in [`devices::opamp`]
//! together with testbenches for all eleven Table 1 specifications.
//!
//! ## Example
//!
//! ```
//! use stc_circuit::{dc_operating_point, Circuit, SourceWaveform};
//!
//! # fn main() -> Result<(), stc_circuit::CircuitError> {
//! let mut circuit = Circuit::new();
//! let vin = circuit.node("vin");
//! let vout = circuit.node("vout");
//! circuit.voltage_source("V1", vin, Circuit::ground(), SourceWaveform::dc(1.0))?;
//! circuit.resistor("R1", vin, vout, 1_000.0)?;
//! circuit.resistor("R2", vout, Circuit::ground(), 1_000.0)?;
//! let op = dc_operating_point(&circuit)?;
//! assert!((op.voltage(vout) - 0.5).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ac;
mod dc;
mod error;
mod measure;
mod mna;
mod netlist;
mod transient;
mod waveform;

pub mod devices;
pub mod elements;
pub mod linalg;
pub mod variation;

pub use ac::{ac_analysis, log_frequency_sweep, AcSweep};
pub use dc::{dc_operating_point, dc_operating_point_from, DcSolution};
pub use elements::{DiodeModel, Element, MosfetModel, MosfetPolarity, SourceWaveform};
pub use error::CircuitError;
pub use measure::{
    bandwidth_3db, dc_gain, peak_frequency, phase_margin, quality_factor, unity_gain_frequency,
};
pub use mna::{IntegrationMethod, MnaLayout};
pub use netlist::{Circuit, NodeId};
pub use transient::{
    transient_analysis, transient_analysis_from, TransientParams, TransientResult,
};
pub use waveform::Waveform;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, CircuitError>;
