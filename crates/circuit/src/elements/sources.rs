//! Time-domain waveforms for independent sources.

use serde::{Deserialize, Serialize};

/// The value of an independent source as a function of time.
///
/// The DC value (used by operating-point analysis) is the waveform evaluated
/// at `t = 0`, except for [`SourceWaveform::Sine`] where it is the offset.
///
/// # Example
///
/// ```
/// use stc_circuit::SourceWaveform;
///
/// let step = SourceWaveform::step(0.0, 1.0, 1e-6);
/// assert_eq!(step.value_at(0.0), 0.0);
/// assert_eq!(step.value_at(2e-6), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SourceWaveform {
    /// Constant value.
    Dc(f64),
    /// Step from `initial` to `final_value` at `delay`, with linear `rise_time`.
    Step {
        /// Value before the step.
        initial: f64,
        /// Value after the step.
        final_value: f64,
        /// Time at which the transition starts, in seconds.
        delay: f64,
        /// Duration of the linear ramp, in seconds (0 gives an ideal step).
        rise_time: f64,
    },
    /// Periodic pulse train (SPICE `PULSE`).
    Pulse {
        /// Value during the "low" phase.
        low: f64,
        /// Value during the "high" phase.
        high: f64,
        /// Delay before the first rising edge, in seconds.
        delay: f64,
        /// Rise time, in seconds.
        rise: f64,
        /// Fall time, in seconds.
        fall: f64,
        /// Width of the high phase, in seconds.
        width: f64,
        /// Period, in seconds.
        period: f64,
    },
    /// Sinusoid `offset + amplitude * sin(2π f (t - delay))` for `t >= delay`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        amplitude: f64,
        /// Frequency in hertz.
        frequency: f64,
        /// Start delay in seconds.
        delay: f64,
    },
    /// Piece-wise-linear waveform given as `(time, value)` breakpoints
    /// (held constant outside the given range).
    Pwl {
        /// Breakpoints sorted by time.
        points: Vec<(f64, f64)>,
    },
}

impl SourceWaveform {
    /// Constant (DC) waveform.
    pub fn dc(value: f64) -> Self {
        SourceWaveform::Dc(value)
    }

    /// Ideal-ish step with a finite rise time.
    pub fn step(initial: f64, final_value: f64, delay: f64) -> Self {
        SourceWaveform::Step { initial, final_value, delay, rise_time: 0.0 }
    }

    /// Step with an explicit linear ramp duration.
    pub fn ramp_step(initial: f64, final_value: f64, delay: f64, rise_time: f64) -> Self {
        SourceWaveform::Step { initial, final_value, delay, rise_time }
    }

    /// Sinusoid around `offset`.
    pub fn sine(offset: f64, amplitude: f64, frequency: f64) -> Self {
        SourceWaveform::Sine { offset, amplitude, frequency, delay: 0.0 }
    }

    /// DC value used by operating-point analyses.
    pub fn dc_value(&self) -> f64 {
        match self {
            SourceWaveform::Dc(v) => *v,
            SourceWaveform::Step { initial, .. } => *initial,
            SourceWaveform::Pulse { low, .. } => *low,
            SourceWaveform::Sine { offset, .. } => *offset,
            SourceWaveform::Pwl { points } => points.first().map(|p| p.1).unwrap_or(0.0),
        }
    }

    /// Value of the waveform at time `t` (seconds).
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            SourceWaveform::Dc(v) => *v,
            SourceWaveform::Step { initial, final_value, delay, rise_time } => {
                if t <= *delay {
                    *initial
                } else if *rise_time <= 0.0 || t >= delay + rise_time {
                    *final_value
                } else {
                    let frac = (t - delay) / rise_time;
                    initial + (final_value - initial) * frac
                }
            }
            SourceWaveform::Pulse { low, high, delay, rise, fall, width, period } => {
                if t < *delay || *period <= 0.0 {
                    return *low;
                }
                let tp = (t - delay) % period;
                if tp < *rise {
                    if *rise <= 0.0 {
                        *high
                    } else {
                        low + (high - low) * tp / rise
                    }
                } else if tp < rise + width {
                    *high
                } else if tp < rise + width + fall {
                    if *fall <= 0.0 {
                        *low
                    } else {
                        high - (high - low) * (tp - rise - width) / fall
                    }
                } else {
                    *low
                }
            }
            SourceWaveform::Sine { offset, amplitude, frequency, delay } => {
                if t < *delay {
                    *offset
                } else {
                    offset + amplitude * (std::f64::consts::TAU * frequency * (t - delay)).sin()
                }
            }
            SourceWaveform::Pwl { points } => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for pair in points.windows(2) {
                    let (t0, v0) = pair[0];
                    let (t1, v1) = pair[1];
                    if t <= t1 {
                        if t1 - t0 <= 0.0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points.last().map(|p| p.1).unwrap_or(0.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = SourceWaveform::dc(2.5);
        assert_eq!(w.dc_value(), 2.5);
        assert_eq!(w.value_at(123.0), 2.5);
    }

    #[test]
    fn step_transitions_after_delay() {
        let w = SourceWaveform::ramp_step(0.0, 1.0, 1e-6, 1e-6);
        assert_eq!(w.value_at(0.5e-6), 0.0);
        assert!((w.value_at(1.5e-6) - 0.5).abs() < 1e-12);
        assert_eq!(w.value_at(3e-6), 1.0);
        assert_eq!(w.dc_value(), 0.0);
    }

    #[test]
    fn pulse_repeats_with_period() {
        let w = SourceWaveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 0.0,
            rise: 0.1,
            fall: 0.1,
            width: 0.3,
            period: 1.0,
        };
        assert!((w.value_at(0.05) - 0.5).abs() < 1e-12);
        assert_eq!(w.value_at(0.2), 1.0);
        assert_eq!(w.value_at(0.7), 0.0);
        assert_eq!(w.value_at(1.2), 1.0);
    }

    #[test]
    fn sine_starts_at_offset() {
        let w = SourceWaveform::sine(1.0, 0.5, 1000.0);
        assert_eq!(w.dc_value(), 1.0);
        assert!((w.value_at(0.0) - 1.0).abs() < 1e-12);
        assert!((w.value_at(0.25e-3) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = SourceWaveform::Pwl { points: vec![(0.0, 0.0), (1.0, 2.0), (2.0, 2.0)] };
        assert_eq!(w.value_at(-1.0), 0.0);
        assert!((w.value_at(0.5) - 1.0).abs() < 1e-12);
        assert_eq!(w.value_at(5.0), 2.0);
        let empty = SourceWaveform::Pwl { points: vec![] };
        assert_eq!(empty.value_at(1.0), 0.0);
    }
}
