//! Square-law (SPICE level-1) MOSFET model.
//!
//! The model covers cut-off, triode and saturation regions with channel-length
//! modulation, and is symmetric in drain/source (the terminals are swapped
//! internally when `Vds < 0`).  Body effect and intrinsic capacitances are not
//! modelled; the op-amp bandwidth in this crate is set by its explicit
//! compensation and load capacitors, which is sufficient for reproducing the
//! statistical behaviour the paper relies on.

use serde::{Deserialize, Serialize};

/// N-channel or P-channel device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MosfetPolarity {
    /// N-channel (conducts for positive `Vgs` above threshold).
    Nmos,
    /// P-channel (conducts for negative `Vgs` below `-|Vth|`).
    Pmos,
}

/// Level-1 model card.
///
/// The same card is shared by all transistors of one polarity in a design;
/// geometry (`W`, `L`) is per-instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosfetModel {
    /// Threshold voltage magnitude in volts.
    pub threshold_voltage: f64,
    /// Transconductance parameter `k' = µ Cox` in A/V².
    pub transconductance: f64,
    /// Channel-length modulation parameter λ in 1/V.
    pub lambda: f64,
}

impl MosfetModel {
    /// A generic 0.5 µm-class NMOS card (`Vth = 0.7 V`, `k' = 110 µA/V²`,
    /// `λ = 0.04 V⁻¹`).
    pub fn nmos_default() -> Self {
        MosfetModel { threshold_voltage: 0.7, transconductance: 110e-6, lambda: 0.04 }
    }

    /// A generic 0.5 µm-class PMOS card (`Vth = 0.7 V`, `k' = 50 µA/V²`,
    /// `λ = 0.05 V⁻¹`).
    pub fn pmos_default() -> Self {
        MosfetModel { threshold_voltage: 0.7, transconductance: 50e-6, lambda: 0.05 }
    }
}

/// Linearised large-signal operating point of a MOSFET, expressed with respect
/// to the *absolute* terminal voltages so the MNA assembler can stamp it
/// directly.
///
/// `ids` is the current flowing from the drain terminal through the channel to
/// the source terminal; `d_vg`, `d_vd`, `d_vs` are its partial derivatives
/// with respect to the gate, drain and source node voltages.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MosfetOperatingPoint {
    /// Drain-to-source channel current in amperes.
    pub ids: f64,
    /// ∂ids/∂Vg.
    pub d_vg: f64,
    /// ∂ids/∂Vd.
    pub d_vd: f64,
    /// ∂ids/∂Vs.
    pub d_vs: f64,
    /// Saturation-region transconductance magnitude (for reporting).
    pub gm: f64,
    /// Output conductance magnitude (for reporting).
    pub gds: f64,
}

/// Region-aware square-law drain current and derivatives for an N-type device
/// with `vds >= 0`.
///
/// Returns `(id, gm, gds)` where `gm = ∂id/∂vgs` and `gds = ∂id/∂vds`.
fn nmos_equations(vgs: f64, vds: f64, vth: f64, beta: f64, lambda: f64) -> (f64, f64, f64) {
    debug_assert!(vds >= 0.0);
    let gleak = 1e-12;
    let vov = vgs - vth;
    if vov <= 0.0 {
        // Cut-off: tiny leakage keeps the Jacobian non-singular.
        return (gleak * vds, 0.0, gleak);
    }
    let clm = 1.0 + lambda * vds;
    if vds >= vov {
        // Saturation.
        let id = 0.5 * beta * vov * vov * clm;
        let gm = beta * vov * clm;
        let gds = 0.5 * beta * vov * vov * lambda + gleak;
        (id + gleak * vds, gm, gds)
    } else {
        // Triode.
        let shape = vov * vds - 0.5 * vds * vds;
        let id = beta * shape * clm;
        let gm = beta * vds * clm;
        let gds = beta * (vov - vds) * clm + beta * shape * lambda + gleak;
        (id + gleak * vds, gm, gds)
    }
}

/// Evaluates the MOSFET at the given absolute terminal voltages.
///
/// Handles polarity and drain/source swapping, returning derivatives with
/// respect to the node voltages so the Newton assembler can stamp the
/// companion model without further sign juggling.
pub fn linearize(
    model: &MosfetModel,
    polarity: MosfetPolarity,
    width: f64,
    length: f64,
    vg: f64,
    vd: f64,
    vs: f64,
) -> MosfetOperatingPoint {
    let beta = model.transconductance * width / length;
    let vth = model.threshold_voltage.abs();
    let lambda = model.lambda;

    match polarity {
        MosfetPolarity::Nmos => {
            if vd >= vs {
                let (id, gm, gds) = nmos_equations(vg - vs, vd - vs, vth, beta, lambda);
                MosfetOperatingPoint { ids: id, d_vg: gm, d_vd: gds, d_vs: -(gm + gds), gm, gds }
            } else {
                // Source and drain exchange roles; channel current reverses.
                let (id, gm, gds) = nmos_equations(vg - vd, vs - vd, vth, beta, lambda);
                MosfetOperatingPoint { ids: -id, d_vg: -gm, d_vd: gm + gds, d_vs: -gds, gm, gds }
            }
        }
        MosfetPolarity::Pmos => {
            // Evaluate the symmetric N-type equations in the source-referred
            // frame (vsg, vsd); the channel current then flows source->drain,
            // i.e. ids (drain->source) is negative in normal operation.
            if vs >= vd {
                let (id, gm, gds) = nmos_equations(vs - vg, vs - vd, vth, beta, lambda);
                MosfetOperatingPoint { ids: -id, d_vg: gm, d_vd: gds, d_vs: -(gm + gds), gm, gds }
            } else {
                let (id, gm, gds) = nmos_equations(vd - vg, vd - vs, vth, beta, lambda);
                MosfetOperatingPoint { ids: id, d_vg: -gm, d_vd: gm + gds, d_vs: -gds, gm, gds }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: f64 = 10e-6;
    const L: f64 = 1e-6;

    #[test]
    fn nmos_cutoff_saturation_triode_regions() {
        let m = MosfetModel::nmos_default();
        // Cut-off.
        let op = linearize(&m, MosfetPolarity::Nmos, W, L, 0.3, 2.0, 0.0);
        assert!(op.ids.abs() < 1e-9);
        // Saturation: vgs = 1.2, vds = 2.0 > vov = 0.5.
        let sat = linearize(&m, MosfetPolarity::Nmos, W, L, 1.2, 2.0, 0.0);
        let beta = m.transconductance * W / L;
        let expected = 0.5 * beta * 0.5 * 0.5 * (1.0 + m.lambda * 2.0);
        assert!((sat.ids - expected).abs() / expected < 1e-3, "{} vs {expected}", sat.ids);
        // Triode: vds = 0.1 < vov.
        let tri = linearize(&m, MosfetPolarity::Nmos, W, L, 1.2, 0.1, 0.0);
        assert!(tri.ids < sat.ids);
        assert!(tri.ids > 0.0);
    }

    #[test]
    fn pmos_conducts_with_negative_vgs() {
        let m = MosfetModel::pmos_default();
        // Source at 2.5 V, gate at 1.0 V => vsg = 1.5 V > vth, drain low.
        let op = linearize(&m, MosfetPolarity::Pmos, W, L, 1.0, 0.0, 2.5);
        assert!(op.ids < 0.0, "PMOS channel current should flow source->drain: {}", op.ids);
        // Off when gate is at the source potential.
        let off = linearize(&m, MosfetPolarity::Pmos, W, L, 2.5, 0.0, 2.5);
        assert!(off.ids.abs() < 1e-9);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let m = MosfetModel::nmos_default();
        let cases = [
            (MosfetPolarity::Nmos, 1.3, 2.0, 0.0),
            (MosfetPolarity::Nmos, 1.3, 0.2, 0.0),
            (MosfetPolarity::Nmos, 1.0, -0.5, 0.0), // swapped terminals
            (MosfetPolarity::Pmos, 1.0, 0.2, 2.5),
            (MosfetPolarity::Pmos, 1.5, 2.3, 2.5), // swapped terminals
        ];
        let h = 1e-6;
        for (pol, vg, vd, vs) in cases {
            let model = if pol == MosfetPolarity::Nmos { m } else { MosfetModel::pmos_default() };
            let base = linearize(&model, pol, W, L, vg, vd, vs);
            let num_g = (linearize(&model, pol, W, L, vg + h, vd, vs).ids
                - linearize(&model, pol, W, L, vg - h, vd, vs).ids)
                / (2.0 * h);
            let num_d = (linearize(&model, pol, W, L, vg, vd + h, vs).ids
                - linearize(&model, pol, W, L, vg, vd - h, vs).ids)
                / (2.0 * h);
            let num_s = (linearize(&model, pol, W, L, vg, vd, vs + h).ids
                - linearize(&model, pol, W, L, vg, vd, vs - h).ids)
                / (2.0 * h);
            let tol = 1e-6 + 1e-3 * base.ids.abs().max(1e-6);
            assert!((num_g - base.d_vg).abs() < tol, "{pol:?} d_vg {num_g} vs {}", base.d_vg);
            assert!((num_d - base.d_vd).abs() < tol, "{pol:?} d_vd {num_d} vs {}", base.d_vd);
            assert!((num_s - base.d_vs).abs() < tol, "{pol:?} d_vs {num_s} vs {}", base.d_vs);
        }
    }

    #[test]
    fn current_scales_with_geometry() {
        let m = MosfetModel::nmos_default();
        let narrow = linearize(&m, MosfetPolarity::Nmos, W, L, 1.5, 2.0, 0.0);
        let wide = linearize(&m, MosfetPolarity::Nmos, 2.0 * W, L, 1.5, 2.0, 0.0);
        assert!((wide.ids / narrow.ids - 2.0).abs() < 1e-6);
        let long = linearize(&m, MosfetPolarity::Nmos, W, 2.0 * L, 1.5, 2.0, 0.0);
        assert!((narrow.ids / long.ids - 2.0).abs() < 1e-6);
    }

    #[test]
    fn symmetric_in_drain_source_swap() {
        let m = MosfetModel::nmos_default();
        let forward = linearize(&m, MosfetPolarity::Nmos, W, L, 1.5, 0.3, 0.0);
        let reverse = linearize(&m, MosfetPolarity::Nmos, W, L, 1.5, 0.0, 0.3);
        // Swapping drain and source voltages reverses the current.
        assert!((forward.ids + reverse.ids).abs() < 1e-9);
    }
}
