//! Junction diode model (Shockley equation with series-free companion model).

use serde::{Deserialize, Serialize};

/// Diode model card.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiodeModel {
    /// Saturation current in amperes.
    pub saturation_current: f64,
    /// Emission coefficient (ideality factor).
    pub emission_coefficient: f64,
    /// Thermal voltage `kT/q` in volts.
    pub thermal_voltage: f64,
}

impl DiodeModel {
    /// A generic small-signal silicon diode (`Is = 1e-14 A`, `n = 1`,
    /// `Vt = 25.85 mV`).
    pub fn silicon() -> Self {
        DiodeModel {
            saturation_current: 1e-14,
            emission_coefficient: 1.0,
            thermal_voltage: 0.02585,
        }
    }

    /// Diode current and small-signal conductance at junction voltage `v`.
    ///
    /// The exponent is limited (equivalent to SPICE's junction-voltage
    /// limiting) so that Newton iterations cannot overflow.
    pub fn evaluate(&self, v: f64) -> (f64, f64) {
        let n_vt = self.emission_coefficient * self.thermal_voltage;
        // Above v_crit, linearise the exponential to keep Newton stable.
        let v_crit = n_vt * 40.0;
        let gmin = 1e-12;
        if v <= v_crit {
            let e = (v / n_vt).exp();
            let current = self.saturation_current * (e - 1.0) + gmin * v;
            let conductance = self.saturation_current * e / n_vt + gmin;
            (current, conductance)
        } else {
            let e = (v_crit / n_vt).exp();
            let g_at_crit = self.saturation_current * e / n_vt;
            let i_at_crit = self.saturation_current * (e - 1.0);
            (i_at_crit + g_at_crit * (v - v_crit) + gmin * v, g_at_crit + gmin)
        }
    }
}

impl Default for DiodeModel {
    fn default() -> Self {
        DiodeModel::silicon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_current_grows_exponentially() {
        let model = DiodeModel::silicon();
        let (i_06, _) = model.evaluate(0.6);
        let (i_07, _) = model.evaluate(0.7);
        assert!(i_07 > i_06 * 10.0);
        assert!(i_06 > 0.0);
    }

    #[test]
    fn reverse_current_saturates_near_minus_is() {
        let model = DiodeModel::silicon();
        let (i, g) = model.evaluate(-1.0);
        assert!(i < 0.0);
        assert!(i > -1e-11); // -Is plus gmin leakage
        assert!(g > 0.0);
    }

    #[test]
    fn conductance_is_derivative_of_current() {
        let model = DiodeModel::silicon();
        for &v in &[-0.5, 0.2, 0.5, 0.65] {
            let h = 1e-7;
            let (i_plus, _) = model.evaluate(v + h);
            let (i_minus, _) = model.evaluate(v - h);
            let numeric = (i_plus - i_minus) / (2.0 * h);
            let (_, analytic) = model.evaluate(v);
            let scale = analytic.abs().max(1e-12);
            assert!(
                ((numeric - analytic) / scale).abs() < 1e-3,
                "v={v}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn large_forward_bias_does_not_overflow() {
        let model = DiodeModel::silicon();
        let (i, g) = model.evaluate(5.0);
        assert!(i.is_finite());
        assert!(g.is_finite());
    }
}
