//! Circuit element definitions.
//!
//! Elements are a closed set modelled as the [`Element`] enum; the crate's
//! (private) MNA assembler pattern-matches over it.  Device equations for
//! the nonlinear elements live in [`diode`] and [`mosfet`].

pub mod diode;
pub mod mosfet;
pub mod sources;

use serde::{Deserialize, Serialize};

pub use diode::DiodeModel;
pub use mosfet::{MosfetModel, MosfetOperatingPoint, MosfetPolarity};
pub use sources::SourceWaveform;

use crate::netlist::NodeId;

/// One netlist element.
///
/// Node fields refer to [`NodeId`]s of the owning [`crate::Circuit`]; the
/// circuit validates them when the element is added.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Element {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms (must be positive).
        resistance: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads (must be positive).
        capacitance: f64,
    },
    /// Linear inductor between `a` and `b` (adds one branch-current unknown).
    Inductor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Inductance in henries (must be positive).
        inductance: f64,
    },
    /// Independent voltage source from `pos` to `neg`
    /// (adds one branch-current unknown; the branch current flows from `pos`
    /// through the source to `neg`).
    VoltageSource {
        /// Instance name.
        name: String,
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Time-domain waveform (also provides the DC value).
        waveform: SourceWaveform,
        /// Small-signal AC magnitude used by AC analysis.
        ac_magnitude: f64,
    },
    /// Independent current source; the current flows from `pos` through the
    /// source to `neg` (SPICE convention).
    CurrentSource {
        /// Instance name.
        name: String,
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Time-domain waveform (also provides the DC value).
        waveform: SourceWaveform,
        /// Small-signal AC magnitude used by AC analysis.
        ac_magnitude: f64,
    },
    /// Voltage-controlled voltage source: `V(out_pos, out_neg) = gain * V(in_pos, in_neg)`
    /// (adds one branch-current unknown).
    Vcvs {
        /// Instance name.
        name: String,
        /// Positive output terminal.
        out_pos: NodeId,
        /// Negative output terminal.
        out_neg: NodeId,
        /// Positive controlling terminal.
        in_pos: NodeId,
        /// Negative controlling terminal.
        in_neg: NodeId,
        /// Voltage gain.
        gain: f64,
    },
    /// Voltage-controlled current source:
    /// `I(out_pos -> out_neg) = transconductance * V(in_pos, in_neg)`.
    Vccs {
        /// Instance name.
        name: String,
        /// Terminal the controlled current leaves.
        out_pos: NodeId,
        /// Terminal the controlled current enters.
        out_neg: NodeId,
        /// Positive controlling terminal.
        in_pos: NodeId,
        /// Negative controlling terminal.
        in_neg: NodeId,
        /// Transconductance in siemens.
        transconductance: f64,
    },
    /// Junction diode from `anode` to `cathode`.
    Diode {
        /// Instance name.
        name: String,
        /// Anode terminal.
        anode: NodeId,
        /// Cathode terminal.
        cathode: NodeId,
        /// Device model.
        model: DiodeModel,
    },
    /// Square-law (SPICE level-1) MOSFET.
    Mosfet {
        /// Instance name.
        name: String,
        /// Drain terminal.
        drain: NodeId,
        /// Gate terminal.
        gate: NodeId,
        /// Source terminal.
        source: NodeId,
        /// NMOS or PMOS.
        polarity: MosfetPolarity,
        /// Device model card.
        model: MosfetModel,
        /// Channel width in metres.
        width: f64,
        /// Channel length in metres.
        length: f64,
    },
}

impl Element {
    /// The instance name of the element.
    pub fn name(&self) -> &str {
        match self {
            Element::Resistor { name, .. }
            | Element::Capacitor { name, .. }
            | Element::Inductor { name, .. }
            | Element::VoltageSource { name, .. }
            | Element::CurrentSource { name, .. }
            | Element::Vcvs { name, .. }
            | Element::Vccs { name, .. }
            | Element::Diode { name, .. }
            | Element::Mosfet { name, .. } => name,
        }
    }

    /// Whether this element introduces an extra MNA branch-current unknown.
    pub fn needs_branch_current(&self) -> bool {
        matches!(
            self,
            Element::VoltageSource { .. } | Element::Inductor { .. } | Element::Vcvs { .. }
        )
    }

    /// All node indices referenced by the element.
    pub fn nodes(&self) -> Vec<NodeId> {
        match *self {
            Element::Resistor { a, b, .. }
            | Element::Capacitor { a, b, .. }
            | Element::Inductor { a, b, .. } => vec![a, b],
            Element::VoltageSource { pos, neg, .. } | Element::CurrentSource { pos, neg, .. } => {
                vec![pos, neg]
            }
            Element::Vcvs { out_pos, out_neg, in_pos, in_neg, .. }
            | Element::Vccs { out_pos, out_neg, in_pos, in_neg, .. } => {
                vec![out_pos, out_neg, in_pos, in_neg]
            }
            Element::Diode { anode, cathode, .. } => vec![anode, cathode],
            Element::Mosfet { drain, gate, source, .. } => vec![drain, gate, source],
        }
    }

    /// Whether the element is nonlinear (requires Newton iteration).
    pub fn is_nonlinear(&self) -> bool {
        matches!(self, Element::Diode { .. } | Element::Mosfet { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_current_classification() {
        let v = Element::VoltageSource {
            name: "v1".into(),
            pos: NodeId(1),
            neg: NodeId(0),
            waveform: SourceWaveform::dc(1.0),
            ac_magnitude: 0.0,
        };
        let r =
            Element::Resistor { name: "r1".into(), a: NodeId(1), b: NodeId(0), resistance: 1.0 };
        assert!(v.needs_branch_current());
        assert!(!r.needs_branch_current());
        assert_eq!(v.name(), "v1");
        assert_eq!(r.nodes(), vec![NodeId(1), NodeId(0)]);
        assert!(!r.is_nonlinear());
    }
}
