//! Property-based tests of the circuit simulator: conservation laws and
//! closed-form checks that must hold for any parameter values.

use proptest::prelude::*;
use stc_circuit::{
    ac_analysis, dc_operating_point, transient_analysis, Circuit, SourceWaveform, TransientParams,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A resistive divider always produces the analytic output voltage.
    #[test]
    fn divider_matches_closed_form(
        source in 0.1f64..20.0,
        r1 in 10.0f64..1e6,
        r2 in 10.0f64..1e6,
    ) {
        let mut circuit = Circuit::new();
        let vin = circuit.node("vin");
        let vout = circuit.node("vout");
        circuit.voltage_source("V1", vin, Circuit::ground(), SourceWaveform::dc(source)).unwrap();
        circuit.resistor("R1", vin, vout, r1).unwrap();
        circuit.resistor("R2", vout, Circuit::ground(), r2).unwrap();
        let op = dc_operating_point(&circuit).unwrap();
        let expected = source * r2 / (r1 + r2);
        prop_assert!((op.voltage(vout) - expected).abs() < 1e-6 * expected.abs().max(1.0));
    }

    /// Kirchhoff's current law at the supply: the source current equals the
    /// current through the load for a single-loop circuit.
    #[test]
    fn source_current_matches_ohms_law(source in 0.5f64..10.0, resistance in 10.0f64..1e5) {
        let mut circuit = Circuit::new();
        let vin = circuit.node("vin");
        circuit.voltage_source("V1", vin, Circuit::ground(), SourceWaveform::dc(source)).unwrap();
        circuit.resistor("R1", vin, Circuit::ground(), resistance).unwrap();
        let op = dc_operating_point(&circuit).unwrap();
        let branch = op.branch_current(0).unwrap();
        // The gmin conductance to ground adds a ~1e-12 S leakage path, so the
        // comparison tolerance must sit above source * gmin.
        let expected = source / resistance;
        prop_assert!((branch + expected).abs() < 1e-10 + 1e-5 * expected);
    }

    /// The RC low-pass magnitude matches 1/sqrt(1 + (f/fc)^2) at any frequency.
    #[test]
    fn rc_low_pass_matches_transfer_function(
        resistance in 100.0f64..1e5,
        capacitance in 1e-9f64..1e-6,
        relative_frequency in 0.05f64..20.0,
    ) {
        let mut circuit = Circuit::new();
        let vin = circuit.node("vin");
        let vout = circuit.node("vout");
        circuit
            .ac_voltage_source("V1", vin, Circuit::ground(), SourceWaveform::dc(0.0), 1.0)
            .unwrap();
        circuit.resistor("R1", vin, vout, resistance).unwrap();
        circuit.capacitor("C1", vout, Circuit::ground(), capacitance).unwrap();
        let corner = 1.0 / (std::f64::consts::TAU * resistance * capacitance);
        let frequency = relative_frequency * corner;
        let op = dc_operating_point(&circuit).unwrap();
        let sweep = ac_analysis(&circuit, &op, &[frequency]).unwrap();
        let magnitude = sweep.magnitude(vout)[0];
        let expected = 1.0 / (1.0 + relative_frequency * relative_frequency).sqrt();
        prop_assert!((magnitude - expected).abs() < 1e-3, "{magnitude} vs {expected}");
    }

    /// An RC step response never overshoots and always settles to the source
    /// value, whatever the time constant.
    #[test]
    fn rc_step_response_is_monotonic(
        resistance in 100.0f64..10_000.0,
        capacitance in 1e-8f64..1e-6,
    ) {
        let mut circuit = Circuit::new();
        let vin = circuit.node("vin");
        let vout = circuit.node("vout");
        circuit
            .voltage_source("V1", vin, Circuit::ground(), SourceWaveform::step(0.0, 1.0, 0.0))
            .unwrap();
        circuit.resistor("R1", vin, vout, resistance).unwrap();
        circuit.capacitor("C1", vout, Circuit::ground(), capacitance).unwrap();
        let tau = resistance * capacitance;
        let result =
            transient_analysis(&circuit, &TransientParams::new(6.0 * tau, tau / 50.0)).unwrap();
        let wave = result.waveform(vout);
        prop_assert!(wave.overshoot() < 1e-6);
        prop_assert!((wave.final_value() - 1.0).abs() < 0.01);
        prop_assert!(wave.values().windows(2).all(|w| w[1] >= w[0] - 1e-9));
    }
}
