use rand::rngs::StdRng;
use rand::SeedableRng;
use stc_circuit::devices::opamp::{OpAmp, OpAmpParams};
use stc_circuit::variation::VariationModel;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let nominal = OpAmp::default().measure().unwrap();
    println!("nominal in {:?}: {:?}", t0.elapsed(), nominal);
    let model = VariationModel::paper_default();
    let mut rng = StdRng::seed_from_u64(7);
    let t0 = Instant::now();
    let mut failures = 0;
    let n = 20;
    for _ in 0..n {
        let params = model.perturb_opamp(&OpAmpParams::nominal(), &mut rng);
        if OpAmp::new(params).measure().is_err() {
            failures += 1;
        }
    }
    println!(
        "{} instances in {:?} ({:?}/instance), {} failures",
        n,
        t0.elapsed(),
        t0.elapsed() / n,
        failures
    );
}
