//! Property-based tests of the SVM building blocks.

use proptest::prelude::*;
use stc_svm::{Dataset, Kernel, ScaleMethod, Scaler, Svc, SvcParams};

fn finite_vector(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, len)
}

proptest! {
    /// Every kernel is symmetric in its arguments.
    #[test]
    fn kernels_are_symmetric(x in finite_vector(5), y in finite_vector(5), gamma in 0.01f64..5.0) {
        for kernel in [Kernel::linear(), Kernel::rbf(gamma), Kernel::polynomial(gamma, 1.0, 2)] {
            let forward = kernel.eval(&x, &y);
            let backward = kernel.eval(&y, &x);
            prop_assert!((forward - backward).abs() <= 1e-9 * forward.abs().max(1.0));
        }
    }

    /// The RBF kernel is bounded in [0, 1] (it may underflow to exactly 0 for
    /// very distant points) and equals 1 at zero distance.
    #[test]
    fn rbf_is_bounded(x in finite_vector(4), y in finite_vector(4), gamma in 0.01f64..2.0) {
        let value = Kernel::rbf(gamma).eval(&x, &y);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&value));
        let self_value = Kernel::rbf(gamma).eval(&x, &x);
        prop_assert!((self_value - 1.0).abs() < 1e-12);
    }

    /// Min-max scaling maps every training sample into the unit hyper-cube and
    /// the inverse transform recovers the original vector.
    #[test]
    fn minmax_scaling_round_trips(rows in prop::collection::vec(finite_vector(3), 2..40)) {
        let labels = vec![1.0; rows.len()];
        let data = Dataset::from_rows(&rows, &labels).unwrap();
        let scaler = Scaler::fit(&data, ScaleMethod::MinMax).unwrap();
        for row in &rows {
            let scaled = scaler.transform_vector(row);
            for &value in &scaled {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&value));
            }
            let back = scaler.inverse_transform_vector(&scaled);
            for (a, b) in row.iter().zip(back.iter()) {
                prop_assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0));
            }
        }
    }

    /// Range scaling maps the range bounds exactly to 0 and 1.
    #[test]
    fn range_scaling_maps_bounds(lo in -1e3f64..1e3, width in 0.1f64..1e3) {
        let scaler = Scaler::from_ranges(&[(lo, lo + width)]).unwrap();
        prop_assert!(scaler.transform_vector(&[lo])[0].abs() < 1e-12);
        prop_assert!((scaler.transform_vector(&[lo + width])[0] - 1.0).abs() < 1e-12);
    }

    /// A linearly separable problem with a generous margin is always solved
    /// perfectly by a linear-kernel SVC, wherever the threshold sits.
    #[test]
    fn separable_problems_are_learned(threshold in -0.5f64..0.5, count in 10usize..40) {
        let mut data = Dataset::new(1).unwrap();
        for i in 0..count {
            let offset = 0.2 + (i as f64) / count as f64;
            data.push(vec![threshold + offset], 1.0).unwrap();
            data.push(vec![threshold - offset], -1.0).unwrap();
        }
        let model = Svc::train(
            &data,
            &SvcParams::new().with_c(100.0).with_kernel(Kernel::linear()),
        )
        .unwrap();
        prop_assert_eq!(model.accuracy(&data), 1.0);
        prop_assert_eq!(model.predict(&[threshold + 1.0]), 1.0);
        prop_assert_eq!(model.predict(&[threshold - 1.0]), -1.0);
    }

    /// Warm-starting from the cold model of the *same* problem never costs
    /// more solver iterations than the cold start did, for arbitrary
    /// two-cluster geometries and box sizes: the projected optimum already
    /// satisfies the stopping test (up to support-vector truncation noise).
    #[test]
    fn warm_restarts_never_cost_more_iterations(
        separation in 0.05f64..1.0,
        spread in 0.01f64..0.5,
        c in 0.5f64..50.0,
        count in 8usize..30,
    ) {
        let mut data = Dataset::new(1).unwrap();
        for i in 0..count {
            let jitter = spread * (i as f64 / count as f64);
            data.push(vec![separation + jitter], 1.0).unwrap();
            data.push(vec![-separation - jitter], -1.0).unwrap();
        }
        let params = SvcParams::new().with_c(c).with_kernel(Kernel::rbf(1.0));
        let cold = Svc::train(&data, &params).unwrap();
        let warm = Svc::train_warm(&data, &params, Some(&cold)).unwrap();
        prop_assert!(
            warm.iterations() <= cold.iterations(),
            "warm {} vs cold {}", warm.iterations(), cold.iterations()
        );
        for sample in data.iter() {
            prop_assert_eq!(warm.predict(&sample.features), cold.predict(&sample.features));
        }
    }

    /// Warm-starting across an *added* feature column — the forward-selection
    /// strategy's access pattern, where the committed kept set is a subset of
    /// the candidate kept set — always converges to decisions that agree with
    /// the cold-started model wherever the cold model is confident.  Alphas
    /// are mapped by training-instance index, so the direction of the column
    /// difference must not matter.
    #[test]
    fn warm_starts_across_added_columns_agree_with_cold_training(
        slope in 0.2f64..2.0,
        count in 12usize..40,
    ) {
        let mut data = Dataset::new(2).unwrap();
        for i in 0..count {
            let x = i as f64 / count as f64;
            data.push(vec![x, slope * x + 0.4], 1.0).unwrap();
            data.push(vec![x, slope * x - 0.4], -1.0).unwrap();
        }
        let params = SvcParams::new().with_c(10.0).with_kernel(Kernel::rbf(1.0));
        // The parent sees only the informative column; the child adds one.
        let narrow = data.select_columns(&[1]).unwrap();
        let parent = Svc::train(&narrow, &params).unwrap();
        let cold = Svc::train(&data, &params).unwrap();
        let warm = Svc::train_warm(&data, &params, Some(&parent)).unwrap();
        for sample in data.iter() {
            let confidence = cold.decision_function(&sample.features);
            if confidence.abs() > 0.05 {
                prop_assert_eq!(warm.predict(&sample.features), cold.predict(&sample.features));
            }
        }
    }

    /// Warm-starting across a dropped feature column — the backward
    /// strategies' access pattern — always converges to decisions that agree
    /// with the cold-started model wherever the cold model is confident.
    #[test]
    fn warm_starts_across_dropped_columns_agree_with_cold_training(
        slope in 0.2f64..2.0,
        count in 12usize..40,
    ) {
        let mut data = Dataset::new(2).unwrap();
        for i in 0..count {
            let x = i as f64 / count as f64;
            data.push(vec![x, slope * x + 0.4], 1.0).unwrap();
            data.push(vec![x, slope * x - 0.4], -1.0).unwrap();
        }
        let params = SvcParams::new().with_c(10.0).with_kernel(Kernel::rbf(1.0));
        let parent = Svc::train(&data, &params).unwrap();
        let narrow = data.select_columns(&[1]).unwrap();
        let cold = Svc::train(&narrow, &params).unwrap();
        let warm = Svc::train_warm(&narrow, &params, Some(&parent)).unwrap();
        for sample in narrow.iter() {
            let confidence = cold.decision_function(&sample.features);
            if confidence.abs() > 0.05 {
                prop_assert_eq!(warm.predict(&sample.features), cold.predict(&sample.features));
            }
        }
    }
}
