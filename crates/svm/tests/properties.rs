//! Property-based tests of the SVM building blocks.

use proptest::prelude::*;
use stc_svm::{Dataset, Kernel, KernelEngine, KernelPath, ScaleMethod, Scaler, Svc, SvcParams};

fn finite_vector(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, len)
}

/// Feature vectors in a moderate range, so kernel-row tolerances below are
/// meaningful absolute bounds (norms and dot products stay O(100)).
fn moderate_vector(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-5.0f64..5.0, len)
}

/// Alternating `+1`/`-1` labels for `len` samples.
fn alternating_labels(len: usize) -> Vec<f64> {
    (0..len).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect()
}

proptest! {
    /// Every kernel is symmetric in its arguments.
    #[test]
    fn kernels_are_symmetric(x in finite_vector(5), y in finite_vector(5), gamma in 0.01f64..5.0) {
        for kernel in [Kernel::linear(), Kernel::rbf(gamma), Kernel::polynomial(gamma, 1.0, 2)] {
            let forward = kernel.eval(&x, &y);
            let backward = kernel.eval(&y, &x);
            prop_assert!((forward - backward).abs() <= 1e-9 * forward.abs().max(1.0));
        }
    }

    /// The RBF kernel is bounded in [0, 1] (it may underflow to exactly 0 for
    /// very distant points) and equals 1 at zero distance.
    #[test]
    fn rbf_is_bounded(x in finite_vector(4), y in finite_vector(4), gamma in 0.01f64..2.0) {
        let value = Kernel::rbf(gamma).eval(&x, &y);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&value));
        let self_value = Kernel::rbf(gamma).eval(&x, &x);
        prop_assert!((self_value - 1.0).abs() < 1e-12);
    }

    /// Min-max scaling maps every training sample into the unit hyper-cube and
    /// the inverse transform recovers the original vector.
    #[test]
    fn minmax_scaling_round_trips(rows in prop::collection::vec(finite_vector(3), 2..40)) {
        let labels = vec![1.0; rows.len()];
        let data = Dataset::from_rows(&rows, &labels).unwrap();
        let scaler = Scaler::fit(&data, ScaleMethod::MinMax).unwrap();
        for row in &rows {
            let scaled = scaler.transform_vector(row);
            for &value in &scaled {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&value));
            }
            let back = scaler.inverse_transform_vector(&scaled);
            for (a, b) in row.iter().zip(back.iter()) {
                prop_assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0));
            }
        }
    }

    /// Range scaling maps the range bounds exactly to 0 and 1.
    #[test]
    fn range_scaling_maps_bounds(lo in -1e3f64..1e3, width in 0.1f64..1e3) {
        let scaler = Scaler::from_ranges(&[(lo, lo + width)]).unwrap();
        prop_assert!(scaler.transform_vector(&[lo])[0].abs() < 1e-12);
        prop_assert!((scaler.transform_vector(&[lo + width])[0] - 1.0).abs() < 1e-12);
    }

    /// A linearly separable problem with a generous margin is always solved
    /// perfectly by a linear-kernel SVC, wherever the threshold sits.
    #[test]
    fn separable_problems_are_learned(threshold in -0.5f64..0.5, count in 10usize..40) {
        let mut data = Dataset::new(1).unwrap();
        for i in 0..count {
            let offset = 0.2 + (i as f64) / count as f64;
            data.push(vec![threshold + offset], 1.0).unwrap();
            data.push(vec![threshold - offset], -1.0).unwrap();
        }
        let model = Svc::train(
            &data,
            &SvcParams::new().with_c(100.0).with_kernel(Kernel::linear()),
        )
        .unwrap();
        prop_assert_eq!(model.accuracy(&data), 1.0);
        prop_assert_eq!(model.predict(&[threshold + 1.0]), 1.0);
        prop_assert_eq!(model.predict(&[threshold - 1.0]), -1.0);
    }

    /// Warm-starting from the cold model of the *same* problem never costs
    /// more solver iterations than the cold start did, for arbitrary
    /// two-cluster geometries and box sizes: the projected optimum already
    /// satisfies the stopping test (up to support-vector truncation noise).
    #[test]
    fn warm_restarts_never_cost_more_iterations(
        separation in 0.05f64..1.0,
        spread in 0.01f64..0.5,
        c in 0.5f64..50.0,
        count in 8usize..30,
    ) {
        let mut data = Dataset::new(1).unwrap();
        for i in 0..count {
            let jitter = spread * (i as f64 / count as f64);
            data.push(vec![separation + jitter], 1.0).unwrap();
            data.push(vec![-separation - jitter], -1.0).unwrap();
        }
        let params = SvcParams::new().with_c(c).with_kernel(Kernel::rbf(1.0));
        let cold = Svc::train(&data, &params).unwrap();
        let warm = Svc::train_warm(&data, &params, Some(&cold)).unwrap();
        prop_assert!(
            warm.iterations() <= cold.iterations(),
            "warm {} vs cold {}", warm.iterations(), cold.iterations()
        );
        for sample in data.iter() {
            prop_assert_eq!(warm.predict(&sample.features), cold.predict(&sample.features));
        }
    }

    /// Warm-starting across an *added* feature column — the forward-selection
    /// strategy's access pattern, where the committed kept set is a subset of
    /// the candidate kept set — always converges to decisions that agree with
    /// the cold-started model wherever the cold model is confident.  Alphas
    /// are mapped by training-instance index, so the direction of the column
    /// difference must not matter.
    ///
    /// "Confident" must leave real headroom: warm and cold are two *different*
    /// solutions of the same KKT stopping tolerance, and on near-degenerate
    /// data (near-duplicate samples across classes) their decision values can
    /// differ by ~0.1 even though both optima are equally valid.
    #[test]
    fn warm_starts_across_added_columns_agree_with_cold_training(
        slope in 0.2f64..2.0,
        count in 12usize..40,
    ) {
        let mut data = Dataset::new(2).unwrap();
        for i in 0..count {
            let x = i as f64 / count as f64;
            data.push(vec![x, slope * x + 0.4], 1.0).unwrap();
            data.push(vec![x, slope * x - 0.4], -1.0).unwrap();
        }
        let params = SvcParams::new().with_c(10.0).with_kernel(Kernel::rbf(1.0));
        // The parent sees only the informative column; the child adds one.
        let narrow = data.select_columns(&[1]).unwrap();
        let parent = Svc::train(&narrow, &params).unwrap();
        let cold = Svc::train(&data, &params).unwrap();
        let warm = Svc::train_warm(&data, &params, Some(&parent)).unwrap();
        for sample in data.iter() {
            let confidence = cold.decision_function(&sample.features);
            if confidence.abs() > 0.25 {
                prop_assert_eq!(warm.predict(&sample.features), cold.predict(&sample.features));
            }
        }
    }

    /// Warm-starting across a dropped feature column — the backward
    /// strategies' access pattern — always converges to decisions that agree
    /// with the cold-started model wherever the cold model is confident
    /// (with the same degeneracy headroom as the added-column test above).
    #[test]
    fn warm_starts_across_dropped_columns_agree_with_cold_training(
        slope in 0.2f64..2.0,
        count in 12usize..40,
    ) {
        let mut data = Dataset::new(2).unwrap();
        for i in 0..count {
            let x = i as f64 / count as f64;
            data.push(vec![x, slope * x + 0.4], 1.0).unwrap();
            data.push(vec![x, slope * x - 0.4], -1.0).unwrap();
        }
        let params = SvcParams::new().with_c(10.0).with_kernel(Kernel::rbf(1.0));
        let parent = Svc::train(&data, &params).unwrap();
        let narrow = data.select_columns(&[1]).unwrap();
        let cold = Svc::train(&narrow, &params).unwrap();
        let warm = Svc::train_warm(&narrow, &params, Some(&parent)).unwrap();
        for sample in narrow.iter() {
            let confidence = cold.decision_function(&sample.features);
            if confidence.abs() > 0.25 {
                prop_assert_eq!(warm.predict(&sample.features), cold.predict(&sample.features));
            }
        }
    }

    /// The blocked kernel engine (precomputed norms, columnar dot rows)
    /// reproduces the naive per-element [`Kernel::eval`] rows: bit-exactly
    /// for the linear and polynomial kernels (the columnar accumulation
    /// order matches the sequential dot product), and to within `1e-12` for
    /// the RBF and sigmoid kernels (the RBF norm expansion rounds
    /// differently from the explicit squared distance).
    #[test]
    fn blocked_kernel_rows_match_naive_eval(
        rows in prop::collection::vec(moderate_vector(6), 4..24),
        gamma in 0.01f64..2.0,
    ) {
        let labels = alternating_labels(rows.len());
        let data = Dataset::from_rows(&rows, &labels).unwrap();
        let kernels = [
            (Kernel::linear(), 0.0),
            (Kernel::polynomial(gamma, 1.0, 3), 0.0),
            (Kernel::rbf(gamma), 1e-12),
            (Kernel::sigmoid(gamma, 0.5), 1e-12),
        ];
        for (kernel, tolerance) in kernels {
            let blocked = KernelEngine::new(&data, kernel, KernelPath::Blocked);
            let naive = KernelEngine::new(&data, kernel, KernelPath::Naive);
            let mut fast = vec![0.0; data.len()];
            let mut reference = vec![0.0; data.len()];
            for i in 0..data.len() {
                blocked.kernel_row(i, &mut fast);
                naive.kernel_row(i, &mut reference);
                let row_i = data.features(i);
                for j in 0..data.len() {
                    // The naive path *is* per-element eval over gathered rows.
                    prop_assert_eq!(reference[j], kernel.eval(&row_i, &data.features(j)));
                    if tolerance == 0.0 {
                        prop_assert_eq!(fast[j], reference[j]);
                    } else {
                        prop_assert!(
                            (fast[j] - reference[j]).abs() <= tolerance,
                            "kernel {:?} ({i},{j}): {} vs {}", kernel, fast[j], reference[j]
                        );
                    }
                }
                prop_assert!((blocked.diag(i) - naive.diag(i)).abs() <= tolerance);
            }
        }
    }

    /// Incrementally seeded candidate rows (a parent's [`DotRowBank`]
    /// adjusted by the dropped column) match rows computed from scratch to
    /// within `1e-12` *relative* error, for every kernel family (a
    /// polynomial kernel raises the few-ulp dot-row adjustment to the
    /// degree, so the absolute error scales with the kernel value).
    #[test]
    fn bank_seeded_candidate_rows_match_scratch(
        rows in prop::collection::vec(moderate_vector(6), 4..24),
        gamma in 0.01f64..2.0,
        dropped in 0usize..6,
    ) {
        let labels = alternating_labels(rows.len());
        let parent_data = Dataset::from_rows(&rows, &labels).unwrap();
        let kept: Vec<usize> = (0..6).filter(|&c| c != dropped).collect();
        // Zero-copy projection: the child shares the parent's column Arcs,
        // exactly like consecutive candidate kept sets in the greedy loop.
        let child_data = parent_data.select_columns(&kept).unwrap();
        for kernel in [
            Kernel::linear(),
            Kernel::polynomial(gamma, 1.0, 3),
            Kernel::rbf(gamma),
            Kernel::sigmoid(gamma, 0.5),
        ] {
            let parent = KernelEngine::new(&parent_data, kernel, KernelPath::Blocked);
            let mut scratch_row = vec![0.0; parent_data.len()];
            for i in 0..parent_data.len() {
                parent.kernel_row(i, &mut scratch_row); // record dot rows
            }
            let bank = parent.into_bank();
            let seeded = KernelEngine::with_bank(
                &child_data,
                kernel,
                KernelPath::Blocked,
                Some(&bank),
            );
            prop_assert!(seeded.seeded_rows() > 0, "bank must apply to the child");
            let fresh = KernelEngine::new(&child_data, kernel, KernelPath::Blocked);
            let mut fast = vec![0.0; child_data.len()];
            let mut reference = vec![0.0; child_data.len()];
            for i in 0..child_data.len() {
                seeded.kernel_row(i, &mut fast);
                fresh.kernel_row(i, &mut reference);
                for j in 0..child_data.len() {
                    prop_assert!(
                        (fast[j] - reference[j]).abs() <= 1e-12 * reference[j].abs().max(1.0),
                        "kernel {:?} ({i},{j}): {} vs {}", kernel, fast[j], reference[j]
                    );
                }
            }
        }
    }
}
