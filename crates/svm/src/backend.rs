//! The ε-SVM classifier backend for the compaction pipeline.
//!
//! `stc-core` defines the [`ClassifierFactory`]/[`Classifier`] seam; this
//! module plugs the SMO-trained [`Svc`] into it, making the paper's model
//! family one backend among several (the grid model of
//! `stc_core::classifier::GridBackend` is another).

use std::sync::Arc;

use stc_core::classifier::{
    BankStats, Classifier, ClassifierFactory, TrainingView, WarmStartContext,
};
use stc_core::{CompactionError, GuardBandConfig};

use crate::engine::{DotRowBank, EngineUsage};
use crate::nystrom::{NystromModel, NystromParams};
use crate::{Dataset, Kernel, Svc, SvcParams, SvmError};

impl From<SvmError> for CompactionError {
    fn from(error: SvmError) -> Self {
        CompactionError::Classifier { backend: "svm".to_string(), message: error.to_string() }
    }
}

/// The SMO-trained ε-SVM backend (the classifier family of the paper).
///
/// # Example
///
/// ```
/// use stc_core::pipeline::CompactionPipeline;
/// use stc_core::{MonteCarloConfig, SyntheticDevice};
/// use stc_svm::SvmBackend;
///
/// # fn main() -> Result<(), stc_core::CompactionError> {
/// let device = SyntheticDevice::new(4, 1.8, 0.9);
/// let report = CompactionPipeline::for_device(&device)
///     .monte_carlo(MonteCarloConfig::new(300).with_seed(7))
///     .classifier(SvmBackend::paper_default())
///     .run()?;
/// assert_eq!(report.backend, "svm");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SvmBackend {
    params: SvcParams,
}

impl SvmBackend {
    /// A backend with explicit SVC hyper-parameters.
    pub fn new(params: SvcParams) -> Self {
        SvmBackend { params }
    }

    /// The paper's settings: `C = 10`, RBF kernel with `gamma = 1`.
    pub fn paper_default() -> Self {
        SvmBackend::new(SvcParams::new().with_c(10.0).with_kernel(Kernel::rbf(1.0)))
    }

    /// A backend with the SVM hyper-parameters a guard-band configuration
    /// carries (`svm_c`, `svm_gamma`), matching the behaviour of the old
    /// hard-wired elimination loop.
    pub fn from_guard_band(config: &GuardBandConfig) -> Self {
        SvmBackend::new(
            SvcParams::new().with_c(config.svm_c).with_kernel(Kernel::rbf(config.svm_gamma)),
        )
    }

    /// The SVC hyper-parameters this backend trains with.
    pub fn params(&self) -> &SvcParams {
        &self.params
    }
}

impl Default for SvmBackend {
    fn default() -> Self {
        SvmBackend::paper_default()
    }
}

impl ClassifierFactory for SvmBackend {
    fn name(&self) -> &str {
        "svm"
    }

    fn train(&self, view: &TrainingView<'_>) -> stc_core::Result<Arc<dyn Classifier>> {
        self.train_warm(view, None)
    }

    /// Trains the ε-SVM, warm-starting the SMO solver from the hinted
    /// model's support-vector alphas when the hint is a model this backend
    /// trained over the same training population (see [`Svc::train_warm`]).
    /// Any other hint — a foreign backend's model, a population mismatch,
    /// or a kept set sharing no column with this view's (a start from a
    /// fully disjoint feature space carries no useful geometry) — silently
    /// falls back to a cold start; the returned model always meets the
    /// cold-start KKT tolerance.
    ///
    /// The same hint also carries the parent training's [`DotRowBank`]: the
    /// kernel engine adjusts the parent's cached dot-product rows by the one
    /// (or few) differing feature columns instead of recomputing them from
    /// scratch — the incremental candidate-row path of [`crate::engine`].
    /// Like the warm start itself, the bank is purely an accelerator and is
    /// ignored whenever it does not line up with this view's columns.
    fn train_warm(
        &self,
        view: &TrainingView<'_>,
        warm: Option<&WarmStartContext<'_>>,
    ) -> stc_core::Result<Arc<dyn Classifier>> {
        let dataset = dataset_from_view(view)?;
        let parent = warm
            .filter(|context| context.overlaps(view.kept()))
            .and_then(|context| context.model().as_any())
            .and_then(|any| any.downcast_ref::<SvmClassifier>());
        let warm_model = parent.map(|classifier| &classifier.model);
        let parent_bank = parent.map(|classifier| classifier.bank.as_ref());
        let (model, bank, usage) =
            Svc::train_with_bank(&dataset, &self.params, warm_model, parent_bank)?;
        Ok(Arc::new(SvmClassifier { model, bank: Arc::new(bank), usage }))
    }

    fn supports_screening(&self) -> bool {
        true
    }

    /// Trains a Nyström low-rank approximation of this backend's SVM —
    /// the screening model of the 0.10 screen-then-verify path (see
    /// [`crate::nystrom`]).  The approximate model is a stand-alone
    /// classifier: cheap to train (one `landmarks × n` kernel slab and a
    /// small ridge solve instead of full SMO), deterministic, and never
    /// reused as a warm-start hint — candidates it shortlists are
    /// re-trained exactly before any frontier commit.
    fn train_screen(
        &self,
        view: &TrainingView<'_>,
        landmarks: usize,
    ) -> stc_core::Result<Arc<dyn Classifier>> {
        let dataset = dataset_from_view(view)?;
        let params = NystromParams::new()
            .with_landmarks(landmarks)
            .with_kernel(self.params.kernel())
            .with_kernel_path(self.params.kernel_path());
        let model = NystromModel::train(&dataset, &params)?;
        Ok(Arc::new(ScreenClassifier { model }))
    }
}

/// Classifier wrapping a trained [`Svc`], together with the dot rows its
/// training recorded (reused when this model later warm-starts a candidate
/// child — see [`crate::engine`]).
#[derive(Debug, Clone)]
struct SvmClassifier {
    model: Svc,
    bank: Arc<DotRowBank>,
    usage: EngineUsage,
}

impl Classifier for SvmClassifier {
    fn decision(&self, features: &[f64]) -> f64 {
        self.model.decision_function(features)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn solver_iterations(&self) -> Option<usize> {
        Some(self.model.iterations())
    }

    fn bank_stats(&self) -> Option<BankStats> {
        Some(BankStats {
            seeded_rows: self.usage.seeded_rows,
            rebuilt_rows: self.usage.rebuilt_rows,
            ignored_banks: usize::from(self.usage.ignored_bank),
        })
    }

    /// Box decisions from the interval bounds of the decision function
    /// ([`Svc::decision_bounds`]): a sign proven constant over the whole box
    /// with a small numerical safety margin yields `Some`, anything else
    /// `None`.  This is what gives SVM-backed tester programs model-based
    /// early exits in the sequential deploy mode.
    fn predict_good_within(&self, lower: &[f64], upper: &[f64]) -> Option<bool> {
        /// Guards the proof against floating-point rounding in the bound
        /// accumulation: a sign this close to zero is not trusted.
        const SIGN_MARGIN: f64 = 1e-9;
        let (min, max) = self.model.decision_bounds(lower, upper);
        if min > SIGN_MARGIN {
            Some(true)
        } else if max < -SIGN_MARGIN {
            Some(false)
        } else {
            None
        }
    }
}

/// Classifier wrapping a Nyström screening model ([`NystromModel`]).
///
/// Deliberately minimal: no `as_any` downcast (screening models must never
/// be mistaken for exact parents by the warm-start machinery), no solver
/// iterations (there is no iterative solver), no box decisions.  It exists
/// only to rank candidate kept sets inside the screen-then-verify
/// evaluator.
#[derive(Debug, Clone)]
struct ScreenClassifier {
    model: NystromModel,
}

impl Classifier for ScreenClassifier {
    fn decision(&self, features: &[f64]) -> f64 {
        self.model.decision_function(features)
    }
}

/// Builds an SVM [`Dataset`] from a training view: normalised kept-column
/// features with margin-adjusted `+1`/`-1` labels (the successor of the old
/// `MeasurementSet::to_svm_dataset`).
///
/// Since 0.8 this is **zero-copy end to end**: the view hands out the
/// `Arc`-shared normalized columns memoized on the underlying measurement
/// set, and the dataset adopts those allocations directly
/// ([`Dataset::from_shared_columns`]) — no per-row gathers and no per-call
/// renormalization.  Because every candidate kept set of a compaction run
/// draws from the same memoized columns, the datasets built here share
/// column allocations, which is what enables the kernel engine's
/// incremental candidate rows.
///
/// # Errors
///
/// Propagates dataset-construction errors (converted to
/// [`CompactionError::Classifier`]).
pub fn dataset_from_view(view: &TrainingView<'_>) -> stc_core::Result<Dataset> {
    let columns = view.shared_feature_columns();
    let labels = view.class_labels();
    Ok(Dataset::from_shared_columns(columns, labels)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stc_core::{MeasurementSet, Specification, SpecificationSet};

    fn population() -> MeasurementSet {
        let specs = SpecificationSet::new(vec![
            Specification::new("a", "-", 0.0, -1.0, 1.0).unwrap(),
            Specification::new("b", "-", 0.0, -1.0, 1.0).unwrap(),
        ])
        .unwrap();
        let rows: Vec<Vec<f64>> = (0..120)
            .map(|i| {
                let x = -1.5 + 3.0 * (i as f64) / 119.0;
                vec![x, 0.9 * x]
            })
            .collect();
        MeasurementSet::new(specs, rows).unwrap()
    }

    #[test]
    fn svm_backend_learns_the_boundary() {
        let data = population();
        let view = TrainingView::new(&data, &[0], 0.0).unwrap();
        let model = SvmBackend::paper_default().train(&view).unwrap();
        assert!(model.predict_good(&[0.5]));
        assert!(!model.predict_good(&[1.3]));
        assert!(!model.predict_good(&[-0.3]));
    }

    #[test]
    fn dataset_conversion_matches_the_view() {
        let data = population();
        let view = TrainingView::new(&data, &[1], 0.05).unwrap();
        let dataset = dataset_from_view(&view).unwrap();
        assert_eq!(dataset.len(), view.len());
        assert_eq!(dataset.dimension(), 1);
        for i in 0..view.len() {
            assert_eq!(dataset.features(i), view.features(i));
            assert_eq!(dataset.label(i), view.label(i).to_class());
        }
    }

    #[test]
    fn single_class_views_fail_with_a_classifier_error() {
        let specs =
            SpecificationSet::new(vec![Specification::new("a", "-", 0.0, -1.0, 1.0).unwrap()])
                .unwrap();
        let rows = vec![vec![0.0]; 40];
        let data = MeasurementSet::new(specs, rows).unwrap();
        let view = TrainingView::new(&data, &[0], 0.0).unwrap();
        let error = SvmBackend::paper_default().train(&view).unwrap_err();
        assert!(matches!(error, CompactionError::Classifier { .. }));
    }

    #[test]
    fn guard_band_parameters_are_adopted() {
        let config = GuardBandConfig::paper_default().with_svm(5.0, 0.5);
        let backend = SvmBackend::from_guard_band(&config);
        assert_eq!(backend.params().c(), 5.0);
        assert_eq!(backend.name(), "svm");
    }

    #[test]
    fn classifier_reports_solver_iterations_and_supports_downcast() {
        let data = population();
        let view = TrainingView::new(&data, &[0], 0.0).unwrap();
        let model = SvmBackend::paper_default().train(&view).unwrap();
        assert!(model.solver_iterations().expect("svm reports iterations") > 0);
        assert!(model.as_any().is_some());
    }

    /// Warm-starting from the parent kept set's model (the compaction loop's
    /// pattern) trains fewer iterations and keeps the decisions of a cold
    /// start on this population.
    #[test]
    fn warm_start_from_the_parent_kept_set_saves_iterations() {
        let data = population();
        let backend = SvmBackend::paper_default();
        let parent_kept = [0usize, 1];
        let parent_view = TrainingView::new(&data, &parent_kept, 0.0).unwrap();
        let parent = backend.train(&parent_view).unwrap();

        let child_view = TrainingView::new(&data, &[0], 0.0).unwrap();
        let cold = backend.train(&child_view).unwrap();
        let hint = WarmStartContext::new(parent.as_ref(), &parent_kept);
        let warm = backend.train_warm(&child_view, Some(&hint)).unwrap();
        assert!(
            warm.solver_iterations().unwrap() <= cold.solver_iterations().unwrap(),
            "warm {:?} vs cold {:?}",
            warm.solver_iterations(),
            cold.solver_iterations()
        );
        for x in [-0.4, 0.2, 0.5, 0.8, 1.3] {
            assert_eq!(warm.predict_good(&[x]), cold.predict_good(&[x]), "x = {x}");
        }
    }

    /// Box decisions are sound (they never contradict a pointwise
    /// prediction inside the box) and decisive on boxes far from the
    /// boundary.
    #[test]
    fn box_decisions_are_sound_and_decisive_off_the_boundary() {
        let data = population();
        let view = TrainingView::new(&data, &[0], 0.0).unwrap();
        let model = SvmBackend::paper_default().train(&view).unwrap();
        // A tight box around a clearly-good point and one around a
        // clearly-bad point decide; whatever is returned must agree with
        // every sampled point inside the box.
        for (lo, hi) in [(0.4, 0.6), (1.3, 1.5), (-0.4, -0.2), (0.0, 1.0)] {
            if let Some(verdict) = model.predict_good_within(&[lo], &[hi]) {
                for i in 0..=10 {
                    let x = lo + (hi - lo) * i as f64 / 10.0;
                    assert_eq!(model.predict_good(&[x]), verdict, "x = {x} in [{lo}, {hi}]");
                }
            }
        }
        // A degenerate box collapses the bounds to the exact decision, so
        // off-boundary points always decide, with the right sign.
        assert_eq!(model.predict_good_within(&[0.5], &[0.5]), Some(true));
        assert_eq!(model.predict_good_within(&[1.4], &[1.4]), Some(false));
        // A box spanning the boundary cannot be decided.
        assert_eq!(model.predict_good_within(&[-0.5], &[1.5]), None);
    }

    /// A foreign backend's model as the warm hint must be ignored, not
    /// panicked on or misused.
    #[test]
    fn foreign_warm_hints_fall_back_to_cold_training() {
        use stc_core::classifier::GridBackend;
        let data = population();
        let view = TrainingView::new(&data, &[0], 0.0).unwrap();
        let grid_model = GridBackend::default().train(&view).unwrap();
        let hint = WarmStartContext::new(grid_model.as_ref(), &[0]);
        let backend = SvmBackend::paper_default();
        let cold = backend.train(&view).unwrap();
        let warm = backend.train_warm(&view, Some(&hint)).unwrap();
        assert_eq!(warm.solver_iterations(), cold.solver_iterations());
    }
}
