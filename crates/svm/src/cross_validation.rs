//! k-fold cross-validation and train/test splitting helpers.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Dataset, Result, Svc, SvcParams, SvmError};

/// Deterministically splits `data` into `folds` disjoint index sets after a
/// random shuffle driven by `rng`.
///
/// # Errors
///
/// Returns [`SvmError::InvalidFolds`] if `folds < 2` or there are fewer
/// samples than folds.
pub fn fold_indices<R: Rng>(data: &Dataset, folds: usize, rng: &mut R) -> Result<Vec<Vec<usize>>> {
    if folds < 2 || data.len() < folds {
        return Err(SvmError::InvalidFolds { folds, samples: data.len() });
    }
    let mut indices: Vec<usize> = (0..data.len()).collect();
    indices.shuffle(rng);
    let mut out = vec![Vec::new(); folds];
    for (position, index) in indices.into_iter().enumerate() {
        out[position % folds].push(index);
    }
    Ok(out)
}

/// Splits a dataset into a training and a test partition, with `test_fraction`
/// of the samples (rounded down, at least one) going to the test set.
///
/// # Errors
///
/// Returns [`SvmError::EmptyDataset`] if `data` has fewer than two samples and
/// [`SvmError::InvalidParameter`] if `test_fraction` is non-finite (NaN or
/// infinite) or outside the open interval `(0, 1)` — out-of-range fractions
/// are rejected rather than silently clamped into range, matching the
/// fail-fast validation of the solver parameters.
pub fn train_test_split<R: Rng>(
    data: &Dataset,
    test_fraction: f64,
    rng: &mut R,
) -> Result<(Dataset, Dataset)> {
    if data.len() < 2 {
        return Err(SvmError::EmptyDataset);
    }
    // NaN and ±infinity fail the open-interval comparison too, so every
    // non-finite fraction is rejected here.
    if !(test_fraction > 0.0 && test_fraction < 1.0) {
        return Err(SvmError::InvalidParameter { name: "test_fraction", value: test_fraction });
    }
    let mut indices: Vec<usize> = (0..data.len()).collect();
    indices.shuffle(rng);
    let test_len = ((data.len() as f64 * test_fraction) as usize).clamp(1, data.len() - 1);
    let (test_idx, train_idx) = indices.split_at(test_len);
    Ok((data.subset(train_idx), data.subset(test_idx)))
}

/// Mean k-fold cross-validated accuracy of an SVC with the given parameters.
///
/// Folds in which training fails (for example a fold whose training partition
/// is single-class) are skipped; if every fold fails the original error is
/// returned.
///
/// # Errors
///
/// Propagates fold-construction errors and the last training error when no
/// fold could be evaluated.
pub fn cross_validate_svc<R: Rng>(
    data: &Dataset,
    params: &SvcParams,
    folds: usize,
    rng: &mut R,
) -> Result<f64> {
    let fold_sets = fold_indices(data, folds, rng)?;
    let mut total = 0.0;
    let mut evaluated = 0usize;
    let mut last_error = None;
    for fold in &fold_sets {
        // One boolean membership mask per fold keeps the train-partition
        // filter linear; testing `fold.contains(i)` per sample is O(n·k).
        let mut in_fold = vec![false; data.len()];
        for &index in fold {
            in_fold[index] = true;
        }
        let train_set: Vec<usize> = (0..data.len()).filter(|&i| !in_fold[i]).collect();
        let train = data.subset(&train_set);
        let test = data.subset(fold);
        match Svc::train(&train, params) {
            Ok(model) => {
                total += model.accuracy(&test);
                evaluated += 1;
            }
            Err(err) => last_error = Some(err),
        }
    }
    if evaluated == 0 {
        Err(last_error.unwrap_or(SvmError::EmptyDataset))
    } else {
        Ok(total / evaluated as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kernel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn separable(n: usize) -> Dataset {
        let mut d = Dataset::new(2).unwrap();
        for i in 0..n {
            let x = i as f64 / n as f64;
            d.push(vec![x, x + 0.4], 1.0).unwrap();
            d.push(vec![x, x - 0.4], -1.0).unwrap();
        }
        d
    }

    #[test]
    fn folds_partition_all_indices() {
        let data = separable(20);
        let mut rng = StdRng::seed_from_u64(7);
        let folds = fold_indices(&data, 5, &mut rng).unwrap();
        let mut seen: Vec<usize> = folds.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..data.len()).collect::<Vec<_>>());
        for fold in &folds {
            assert_eq!(fold.len(), data.len() / 5);
        }
    }

    #[test]
    fn invalid_fold_counts_are_rejected() {
        let data = separable(3);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(fold_indices(&data, 1, &mut rng).is_err());
        assert!(fold_indices(&data, 100, &mut rng).is_err());
    }

    #[test]
    fn split_respects_fraction_and_disjointness() {
        let data = separable(25);
        let mut rng = StdRng::seed_from_u64(3);
        let (train, test) = train_test_split(&data, 0.2, &mut rng).unwrap();
        assert_eq!(train.len() + test.len(), data.len());
        assert_eq!(test.len(), data.len() / 5);
        assert!(train_test_split(&data, 0.0, &mut rng).is_err());
        assert!(train_test_split(&data, 1.0, &mut rng).is_err());
    }

    #[test]
    fn degenerate_fractions_are_rejected_not_clamped() {
        let data = separable(25);
        let mut rng = StdRng::seed_from_u64(3);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.3, -0.0, 1.0001, 17.0] {
            let result = train_test_split(&data, bad, &mut rng);
            assert!(
                matches!(result, Err(SvmError::InvalidParameter { name: "test_fraction", .. })),
                "fraction {bad} must be rejected"
            );
        }
    }

    #[test]
    fn cross_validation_scores_separable_data_highly() {
        let data = separable(30);
        let params = SvcParams::new().with_c(10.0).with_kernel(Kernel::linear());
        let mut rng = StdRng::seed_from_u64(11);
        let score = cross_validate_svc(&data, &params, 5, &mut rng).unwrap();
        assert!(score > 0.95, "cv accuracy {score}");
    }

    #[test]
    fn split_of_tiny_dataset_fails() {
        let mut d = Dataset::new(1).unwrap();
        d.push(vec![0.0], 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        assert!(train_test_split(&d, 0.5, &mut rng).is_err());
    }
}
