//! Training/test data containers.
//!
//! Since 0.8 the [`Dataset`] stores features **column-major** in `Arc`-shared
//! allocations: one contiguous slice per feature, shared (not copied) with
//! whatever produced it — in the compaction flow, the normalized-column cache
//! of `stc_core`'s `MeasurementSet`.  This is the layout the SMO kernel
//! engine ([`crate::engine`]) consumes: kernel rows are assembled as fused
//! per-column passes over contiguous lanes, and column `Arc` identity lets
//! consecutive candidate kept sets (which differ by one column) reuse each
//! other's per-column dot-product contributions.
//!
//! Validation happens **once, at construction**: every constructor rejects
//! ragged shapes and non-finite values, so the kernel and solver hot paths
//! can assume consistent finite data without re-checking per element.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::{Result, SvmError};

/// A single labelled sample: a feature vector and its target value.
///
/// For classification the label is `+1.0` or `-1.0`; for regression it is any
/// finite real number.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Feature values.
    pub features: Vec<f64>,
    /// Target value (class label or regression target).
    pub label: f64,
}

impl Sample {
    /// Creates a new sample from a feature vector and a label.
    pub fn new(features: Vec<f64>, label: f64) -> Self {
        Sample { features, label }
    }
}

/// A dense, fixed-dimension collection of labelled samples, stored
/// column-major.
///
/// The dataset validates every inserted value so that downstream training
/// code can assume consistent, finite data.  Feature columns are `Arc`-shared
/// slices: [`Dataset::select_columns`] and [`Dataset::relabel`] are zero-copy
/// over the feature storage, and [`Dataset::from_shared_columns`] adopts
/// caller-owned allocations without copying.
///
/// Row-oriented accessors remain available — [`Dataset::features`] *gathers*
/// a row into an owned vector, which is the slow path; hot code should read
/// whole columns via [`Dataset::column`].
///
/// # Example
///
/// ```
/// use stc_svm::Dataset;
///
/// # fn main() -> Result<(), stc_svm::SvmError> {
/// let mut data = Dataset::new(2)?;
/// data.push(vec![0.0, 1.0], 1.0)?;
/// data.push(vec![1.0, 0.0], -1.0)?;
/// assert_eq!(data.len(), 2);
/// assert_eq!(data.dimension(), 2);
/// assert_eq!(data.column(0), &[0.0, 1.0]);
/// # Ok(())
/// # }
/// ```
///
/// **Serialisation:** the wire format is unchanged from the row-major era —
/// `{dimension, samples: [{features, label}]}` — so persisted datasets and
/// models keep round-tripping.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    dimension: usize,
    /// One `Arc`-shared slice per feature, each of length `labels.len()`.
    columns: Vec<Arc<[f64]>>,
    labels: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset whose samples all have `dimension` features.
    ///
    /// # Errors
    ///
    /// Returns [`SvmError::EmptyDimension`] if `dimension == 0`.
    pub fn new(dimension: usize) -> Result<Self> {
        if dimension == 0 {
            return Err(SvmError::EmptyDimension);
        }
        let columns = (0..dimension).map(|_| Arc::from(Vec::<f64>::new())).collect();
        Ok(Dataset { dimension, columns, labels: Vec::new() })
    }

    /// Creates a dataset from parallel slices of feature vectors and labels
    /// (one transpose pass; total cost `O(len · dimension)`).
    ///
    /// # Errors
    ///
    /// Returns an error if `rows` is empty, `rows` and `labels` disagree in
    /// length, any row has the wrong dimension, or any value is non-finite.
    pub fn from_rows(rows: &[Vec<f64>], labels: &[f64]) -> Result<Self> {
        if rows.is_empty() {
            return Err(SvmError::EmptyDataset);
        }
        if rows.len() != labels.len() {
            return Err(SvmError::DimensionMismatch { expected: rows.len(), found: labels.len() });
        }
        let dimension = rows[0].len();
        if dimension == 0 {
            return Err(SvmError::EmptyDimension);
        }
        let mut columns = vec![Vec::with_capacity(rows.len()); dimension];
        for row in rows {
            if row.len() != dimension {
                return Err(SvmError::DimensionMismatch { expected: dimension, found: row.len() });
            }
            for (index, (&value, column)) in row.iter().zip(columns.iter_mut()).enumerate() {
                if !value.is_finite() {
                    return Err(SvmError::NonFiniteFeature { index, value });
                }
                column.push(value);
            }
        }
        validate_labels(labels)?;
        Ok(Dataset {
            dimension,
            columns: columns.into_iter().map(Arc::from).collect(),
            labels: labels.to_vec(),
        })
    }

    /// Creates a dataset from feature *columns* (one slice per feature, each
    /// of length `labels.len()`) — the natural entry point for column-major
    /// measurement storage, avoiding a caller-side transpose.
    ///
    /// # Errors
    ///
    /// Returns [`SvmError::EmptyDimension`] for zero columns,
    /// [`SvmError::DimensionMismatch`] for a column whose length disagrees
    /// with `labels` and [`SvmError::NonFiniteFeature`] for NaN/infinite
    /// values (checked column-sequentially before assembly).
    pub fn from_columns(columns: &[&[f64]], labels: &[f64]) -> Result<Self> {
        validate_columns(columns.iter().map(|c| &c[..]), columns.len(), labels)?;
        Ok(Dataset {
            dimension: columns.len(),
            columns: columns.iter().map(|&column| Arc::from(column)).collect(),
            labels: labels.to_vec(),
        })
    }

    /// Creates a dataset that *adopts* already-shared feature columns without
    /// copying them.
    ///
    /// This is the zero-copy entry point of the compaction flow: the
    /// normalized columns cached on a `stc_core` measurement set flow
    /// straight into SVM training, and because two candidate kept sets that
    /// share a specification receive pointer-identical `Arc`s, the kernel
    /// engine can recognise shared columns across datasets via
    /// [`Dataset::shares_column_with`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Dataset::from_columns`].
    pub fn from_shared_columns(columns: Vec<Arc<[f64]>>, labels: Vec<f64>) -> Result<Self> {
        validate_columns(columns.iter().map(|c| &c[..]), columns.len(), &labels)?;
        Ok(Dataset { dimension: columns.len(), columns, labels })
    }

    /// Appends a sample.
    ///
    /// This is the **slow path**: column-major shared storage means every
    /// push re-allocates each feature column (`O(len · dimension)` per call).
    /// It remains for convenient test/example construction; bulk data should
    /// arrive through [`Dataset::from_rows`], [`Dataset::from_columns`] or
    /// [`Dataset::from_shared_columns`].
    ///
    /// # Errors
    ///
    /// Returns [`SvmError::DimensionMismatch`] if the feature vector has the
    /// wrong length and [`SvmError::NonFiniteFeature`] if any entry (or the
    /// label) is NaN or infinite.
    pub fn push(&mut self, features: Vec<f64>, label: f64) -> Result<()> {
        if features.len() != self.dimension {
            return Err(SvmError::DimensionMismatch {
                expected: self.dimension,
                found: features.len(),
            });
        }
        for (index, &value) in features.iter().enumerate() {
            if !value.is_finite() {
                return Err(SvmError::NonFiniteFeature { index, value });
            }
        }
        if !label.is_finite() {
            return Err(SvmError::NonFiniteFeature { index: usize::MAX, value: label });
        }
        for (column, &value) in self.columns.iter_mut().zip(&features) {
            let mut grown = Vec::with_capacity(column.len() + 1);
            grown.extend_from_slice(column);
            grown.push(value);
            *column = grown.into();
        }
        self.labels.push(label);
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per sample.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// The contiguous values of feature `c`, one per sample — zero-copy.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn column(&self, c: usize) -> &[f64] {
        &self.columns[c]
    }

    /// The `Arc`-shared feature columns, in feature order.
    pub fn shared_columns(&self) -> &[Arc<[f64]>] {
        &self.columns
    }

    /// Whether feature `c` of this dataset and feature `other_c` of `other`
    /// are views of the *same allocation* (`Arc` pointer identity, not value
    /// equality).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn shares_column_with(&self, c: usize, other: &Dataset, other_c: usize) -> bool {
        Arc::ptr_eq(&self.columns[c], &other.columns[other_c])
    }

    /// Feature vector of sample `i`, gathered from the column storage into an
    /// owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn features(&self, i: usize) -> Vec<f64> {
        assert!(i < self.len(), "sample {i} out of range ({} samples)", self.len());
        self.columns.iter().map(|column| column[i]).collect()
    }

    /// Label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn label(&self, i: usize) -> f64 {
        self.labels[i]
    }

    /// All labels, in insertion order.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// Iterator over samples (each gathered into an owned [`Sample`]).
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Sample> + '_ {
        (0..self.len()).map(|i| Sample::new(self.features(i), self.labels[i]))
    }

    /// Returns a new dataset containing only the samples at `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let columns = self
            .columns
            .iter()
            .map(|column| indices.iter().map(|&i| column[i]).collect())
            .collect();
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Dataset { dimension: self.dimension, columns, labels }
    }

    /// Returns a new dataset keeping only the feature columns in `columns`
    /// (in the given order) — zero-copy: the result shares this dataset's
    /// column allocations.
    ///
    /// This is the primitive the compaction methodology uses to "remove a
    /// specification from the training data" (paper Section 3.2).
    ///
    /// # Errors
    ///
    /// Returns [`SvmError::EmptyDimension`] if `columns` is empty and
    /// [`SvmError::DimensionMismatch`] if any column index is out of range.
    pub fn select_columns(&self, columns: &[usize]) -> Result<Dataset> {
        if columns.is_empty() {
            return Err(SvmError::EmptyDimension);
        }
        if let Some(&bad) = columns.iter().find(|&&c| c >= self.dimension) {
            return Err(SvmError::DimensionMismatch { expected: self.dimension, found: bad });
        }
        Ok(Dataset {
            dimension: columns.len(),
            columns: columns.iter().map(|&c| Arc::clone(&self.columns[c])).collect(),
            labels: self.labels.clone(),
        })
    }

    /// Replaces every label using `f(old_label, features) -> new_label`,
    /// sharing the feature columns with `self`.
    pub fn relabel<F>(&self, mut f: F) -> Dataset
    where
        F: FnMut(f64, &[f64]) -> f64,
    {
        let labels = (0..self.len()).map(|i| f(self.labels[i], &self.features(i))).collect();
        Dataset { dimension: self.dimension, columns: self.columns.clone(), labels }
    }

    /// Counts samples with a strictly positive label.
    pub fn positive_count(&self) -> usize {
        self.labels.iter().filter(|&&l| l > 0.0).count()
    }

    /// Counts samples with a non-positive label.
    pub fn negative_count(&self) -> usize {
        self.len() - self.positive_count()
    }
}

/// Shared constructor validation: non-empty dimension, column lengths equal
/// to the label count, all values and labels finite.
fn validate_columns<'a, I>(columns: I, dimension: usize, labels: &[f64]) -> Result<()>
where
    I: Iterator<Item = &'a [f64]>,
{
    if dimension == 0 {
        return Err(SvmError::EmptyDimension);
    }
    let count = labels.len();
    for (feature, column) in columns.enumerate() {
        if column.len() != count {
            return Err(SvmError::DimensionMismatch { expected: count, found: column.len() });
        }
        // `index` is the *feature* index, matching `push`'s convention.
        if let Some(&value) = column.iter().find(|v| !v.is_finite()) {
            return Err(SvmError::NonFiniteFeature { index: feature, value });
        }
    }
    validate_labels(labels)
}

fn validate_labels(labels: &[f64]) -> Result<()> {
    if let Some(&label) = labels.iter().find(|l| !l.is_finite()) {
        return Err(SvmError::NonFiniteFeature { index: usize::MAX, value: label });
    }
    Ok(())
}

impl Serialize for Dataset {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let samples: Vec<Sample> = self.iter().collect();
        let mut state = serializer.serialize_struct("Dataset", 2)?;
        state.serialize_field("dimension", &self.dimension)?;
        state.serialize_field("samples", &samples)?;
        state.end()
    }
}

impl<'de> Deserialize<'de> for Dataset {
    /// Deserialises the row-major wire format through the validating
    /// constructors, so a decoded dataset upholds the same shape/finiteness
    /// invariants as a constructed one.
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        use serde::de::{Error as _, IgnoredAny, MapAccess, Visitor};
        struct DatasetVisitor;
        impl<'de> Visitor<'de> for DatasetVisitor {
            type Value = Dataset;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a dataset as {dimension, samples}")
            }
            fn visit_map<A: MapAccess<'de>>(
                self,
                mut map: A,
            ) -> std::result::Result<Dataset, A::Error> {
                let mut dimension: Option<usize> = None;
                let mut samples: Option<Vec<Sample>> = None;
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "dimension" => dimension = Some(map.next_value()?),
                        "samples" => samples = Some(map.next_value()?),
                        _ => {
                            map.next_value::<IgnoredAny>()?;
                        }
                    }
                }
                let dimension = dimension.ok_or_else(|| A::Error::missing_field("dimension"))?;
                let samples = samples.ok_or_else(|| A::Error::missing_field("samples"))?;
                let mut data = Dataset::new(dimension)
                    .map_err(|error| A::Error::custom(format!("invalid dataset: {error}")))?;
                if samples.is_empty() {
                    return Ok(data);
                }
                let (rows, labels): (Vec<Vec<f64>>, Vec<f64>) =
                    samples.into_iter().map(|s| (s.features, s.label)).unzip();
                data = Dataset::from_rows(&rows, &labels)
                    .map_err(|error| A::Error::custom(format!("invalid dataset: {error}")))?;
                if data.dimension() != dimension {
                    return Err(A::Error::custom(format!(
                        "invalid dataset: declared dimension {dimension}, samples have {}",
                        data.dimension()
                    )));
                }
                Ok(data)
            }
        }
        deserializer.deserialize_any(DatasetVisitor)
    }
}

/// Owning iterator over gathered samples (column-major storage has no
/// borrowed rows to hand out).
pub struct SampleIter<'a> {
    data: &'a Dataset,
    next: usize,
}

impl Iterator for SampleIter<'_> {
    type Item = Sample;

    fn next(&mut self) -> Option<Sample> {
        if self.next >= self.data.len() {
            return None;
        }
        let i = self.next;
        self.next += 1;
        Some(Sample::new(self.data.features(i), self.data.label(i)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.data.len() - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SampleIter<'_> {}

impl<'a> IntoIterator for &'a Dataset {
    type Item = Sample;
    type IntoIter = SampleIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        SampleIter { data: self, next: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(3).unwrap();
        d.push(vec![1.0, 2.0, 3.0], 1.0).unwrap();
        d.push(vec![4.0, 5.0, 6.0], -1.0).unwrap();
        d.push(vec![7.0, 8.0, 9.0], 1.0).unwrap();
        d
    }

    #[test]
    fn new_rejects_zero_dimension() {
        assert_eq!(Dataset::new(0).unwrap_err(), SvmError::EmptyDimension);
    }

    #[test]
    fn push_rejects_wrong_dimension() {
        let mut d = Dataset::new(2).unwrap();
        let err = d.push(vec![1.0], 1.0).unwrap_err();
        assert_eq!(err, SvmError::DimensionMismatch { expected: 2, found: 1 });
    }

    #[test]
    fn push_rejects_nan_feature_and_label() {
        let mut d = Dataset::new(1).unwrap();
        assert!(matches!(
            d.push(vec![f64::NAN], 1.0),
            Err(SvmError::NonFiniteFeature { index: 0, .. })
        ));
        assert!(d.push(vec![0.0], f64::INFINITY).is_err());
    }

    #[test]
    fn storage_is_column_major() {
        let d = toy();
        assert_eq!(d.column(0), &[1.0, 4.0, 7.0]);
        assert_eq!(d.column(2), &[3.0, 6.0, 9.0]);
        assert_eq!(d.features(1), &[4.0, 5.0, 6.0]);
        assert_eq!(d.shared_columns().len(), 3);
    }

    #[test]
    fn subset_and_counts() {
        let d = toy();
        assert_eq!(d.positive_count(), 2);
        assert_eq!(d.negative_count(), 1);
        let s = d.subset(&[0, 2]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.label(1), 1.0);
        assert_eq!(s.features(1), &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn select_columns_keeps_order_and_validates() {
        let d = toy();
        let projected = d.select_columns(&[2, 0]).unwrap();
        assert_eq!(projected.dimension(), 2);
        assert_eq!(projected.features(0), &[3.0, 1.0]);
        // Zero-copy: the projection shares the parent's column allocations.
        assert!(projected.shares_column_with(0, &d, 2));
        assert!(projected.shares_column_with(1, &d, 0));
        assert!(d.select_columns(&[]).is_err());
        assert!(d.select_columns(&[5]).is_err());
    }

    #[test]
    fn from_shared_columns_adopts_allocations() {
        let a: Arc<[f64]> = vec![1.0, 2.0].into();
        let b: Arc<[f64]> = vec![3.0, 4.0].into();
        let d = Dataset::from_shared_columns(vec![Arc::clone(&a), Arc::clone(&b)], vec![1.0, -1.0])
            .unwrap();
        assert!(Arc::ptr_eq(&d.shared_columns()[0], &a));
        assert!(Arc::ptr_eq(&d.shared_columns()[1], &b));
        assert_eq!(d.features(0), &[1.0, 3.0]);
        // Validation still applies to adopted columns.
        let ragged: Arc<[f64]> = vec![1.0].into();
        assert!(Dataset::from_shared_columns(vec![ragged], vec![1.0, -1.0]).is_err());
        let nan: Arc<[f64]> = vec![f64::NAN, 0.0].into();
        assert!(Dataset::from_shared_columns(vec![nan], vec![1.0, -1.0]).is_err());
        assert!(Dataset::from_shared_columns(vec![], vec![]).is_err());
    }

    #[test]
    fn from_columns_matches_from_rows() {
        let rows = vec![vec![0.0, 1.0], vec![2.0, 3.0], vec![4.0, 5.0]];
        let labels = vec![1.0, -1.0, 1.0];
        let by_rows = Dataset::from_rows(&rows, &labels).unwrap();
        let by_columns =
            Dataset::from_columns(&[&[0.0, 2.0, 4.0], &[1.0, 3.0, 5.0]], &labels).unwrap();
        assert_eq!(by_rows, by_columns);
        assert!(Dataset::from_columns(&[], &labels).is_err());
        assert!(Dataset::from_columns(&[&[0.0, 1.0]], &labels).is_err());
        assert!(Dataset::from_columns(&[&[0.0, f64::NAN, 1.0]], &labels).is_err());
        assert!(Dataset::from_columns(&[&[0.0, 1.0, 2.0]], &[1.0, f64::INFINITY, 1.0]).is_err());
    }

    #[test]
    fn relabel_applies_function_and_shares_columns() {
        let d = toy();
        let flipped = d.relabel(|l, _| -l);
        assert_eq!(flipped.label(0), -1.0);
        assert_eq!(flipped.label(1), 1.0);
        assert!(flipped.shares_column_with(0, &d, 0));
    }

    #[test]
    fn from_rows_round_trip() {
        let rows = vec![vec![0.0, 1.0], vec![2.0, 3.0]];
        let labels = vec![1.0, -1.0];
        let d = Dataset::from_rows(&rows, &labels).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.labels(), labels);
        assert!(Dataset::from_rows(&[], &[]).is_err());
        // Row/label count mismatches are rejected, not silently truncated.
        assert!(Dataset::from_rows(&rows, &[1.0]).is_err());
        assert!(Dataset::from_rows(&[vec![0.0], vec![1.0, 2.0]], &[1.0, -1.0]).is_err());
    }

    #[test]
    fn iteration_yields_all_samples() {
        let d = toy();
        assert_eq!(d.iter().count(), 3);
        assert_eq!((&d).into_iter().count(), 3);
        let gathered: Vec<Sample> = d.iter().collect();
        assert_eq!(gathered[2], Sample::new(vec![7.0, 8.0, 9.0], 1.0));
    }
}
