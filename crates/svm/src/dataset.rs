//! Training/test data containers.

use serde::{Deserialize, Serialize};

use crate::{Result, SvmError};

/// A single labelled sample: a feature vector and its target value.
///
/// For classification the label is `+1.0` or `-1.0`; for regression it is any
/// finite real number.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Feature values.
    pub features: Vec<f64>,
    /// Target value (class label or regression target).
    pub label: f64,
}

impl Sample {
    /// Creates a new sample from a feature vector and a label.
    pub fn new(features: Vec<f64>, label: f64) -> Self {
        Sample { features, label }
    }
}

/// A dense, fixed-dimension collection of labelled samples.
///
/// The dataset validates every inserted sample so that downstream training
/// code can assume consistent, finite data.
///
/// # Example
///
/// ```
/// use stc_svm::Dataset;
///
/// # fn main() -> Result<(), stc_svm::SvmError> {
/// let mut data = Dataset::new(2)?;
/// data.push(vec![0.0, 1.0], 1.0)?;
/// data.push(vec![1.0, 0.0], -1.0)?;
/// assert_eq!(data.len(), 2);
/// assert_eq!(data.dimension(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    dimension: usize,
    samples: Vec<Sample>,
}

impl Dataset {
    /// Creates an empty dataset whose samples all have `dimension` features.
    ///
    /// # Errors
    ///
    /// Returns [`SvmError::EmptyDimension`] if `dimension == 0`.
    pub fn new(dimension: usize) -> Result<Self> {
        if dimension == 0 {
            return Err(SvmError::EmptyDimension);
        }
        Ok(Dataset { dimension, samples: Vec::new() })
    }

    /// Creates a dataset from parallel slices of feature vectors and labels.
    ///
    /// # Errors
    ///
    /// Returns an error if the vectors are empty, have inconsistent lengths or
    /// contain non-finite values.
    pub fn from_rows(rows: &[Vec<f64>], labels: &[f64]) -> Result<Self> {
        if rows.is_empty() {
            return Err(SvmError::EmptyDataset);
        }
        let mut data = Dataset::new(rows[0].len())?;
        for (row, &label) in rows.iter().zip(labels.iter()) {
            data.push(row.clone(), label)?;
        }
        Ok(data)
    }

    /// Creates a dataset from feature *columns* (one slice per feature, each
    /// of length `labels.len()`) — the natural entry point for column-major
    /// measurement storage, avoiding a caller-side transpose.
    ///
    /// # Errors
    ///
    /// Returns [`SvmError::EmptyDimension`] for zero columns,
    /// [`SvmError::DimensionMismatch`] for a column whose length disagrees
    /// with `labels` and [`SvmError::NonFiniteFeature`] for NaN/infinite
    /// values (checked column-sequentially before assembly).
    pub fn from_columns(columns: &[&[f64]], labels: &[f64]) -> Result<Self> {
        if columns.is_empty() {
            return Err(SvmError::EmptyDimension);
        }
        let count = labels.len();
        for (feature, column) in columns.iter().enumerate() {
            if column.len() != count {
                return Err(SvmError::DimensionMismatch { expected: count, found: column.len() });
            }
            // `index` is the *feature* index, matching `push`'s convention.
            if let Some(&value) = column.iter().find(|v| !v.is_finite()) {
                return Err(SvmError::NonFiniteFeature { index: feature, value });
            }
        }
        if let Some(&label) = labels.iter().find(|l| !l.is_finite()) {
            return Err(SvmError::NonFiniteFeature { index: usize::MAX, value: label });
        }
        let samples = (0..count)
            .map(|i| Sample::new(columns.iter().map(|column| column[i]).collect(), labels[i]))
            .collect();
        Ok(Dataset { dimension: columns.len(), samples })
    }

    /// Appends a sample.
    ///
    /// # Errors
    ///
    /// Returns [`SvmError::DimensionMismatch`] if the feature vector has the
    /// wrong length and [`SvmError::NonFiniteFeature`] if any entry (or the
    /// label) is NaN or infinite.
    pub fn push(&mut self, features: Vec<f64>, label: f64) -> Result<()> {
        if features.len() != self.dimension {
            return Err(SvmError::DimensionMismatch {
                expected: self.dimension,
                found: features.len(),
            });
        }
        for (index, &value) in features.iter().enumerate() {
            if !value.is_finite() {
                return Err(SvmError::NonFiniteFeature { index, value });
            }
        }
        if !label.is_finite() {
            return Err(SvmError::NonFiniteFeature { index: usize::MAX, value: label });
        }
        self.samples.push(Sample::new(features, label));
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of features per sample.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Borrow of all samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Feature vector of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn features(&self, i: usize) -> &[f64] {
        &self.samples[i].features
    }

    /// Label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn label(&self, i: usize) -> f64 {
        self.samples[i].label
    }

    /// All labels, in insertion order.
    pub fn labels(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.label).collect()
    }

    /// Iterator over samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }

    /// Returns a new dataset containing only the samples at `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let samples = indices.iter().map(|&i| self.samples[i].clone()).collect();
        Dataset { dimension: self.dimension, samples }
    }

    /// Returns a new dataset keeping only the feature columns in `columns`
    /// (in the given order).
    ///
    /// This is the primitive the compaction methodology uses to "remove a
    /// specification from the training data" (paper Section 3.2).
    ///
    /// # Errors
    ///
    /// Returns [`SvmError::EmptyDimension`] if `columns` is empty and
    /// [`SvmError::DimensionMismatch`] if any column index is out of range.
    pub fn select_columns(&self, columns: &[usize]) -> Result<Dataset> {
        if columns.is_empty() {
            return Err(SvmError::EmptyDimension);
        }
        if let Some(&bad) = columns.iter().find(|&&c| c >= self.dimension) {
            return Err(SvmError::DimensionMismatch { expected: self.dimension, found: bad });
        }
        let mut out = Dataset::new(columns.len())?;
        for sample in &self.samples {
            let features: Vec<f64> = columns.iter().map(|&c| sample.features[c]).collect();
            out.push(features, sample.label)?;
        }
        Ok(out)
    }

    /// Replaces every label using `f(old_label, features) -> new_label`.
    pub fn relabel<F>(&self, mut f: F) -> Dataset
    where
        F: FnMut(f64, &[f64]) -> f64,
    {
        let samples = self
            .samples
            .iter()
            .map(|s| Sample::new(s.features.clone(), f(s.label, &s.features)))
            .collect();
        Dataset { dimension: self.dimension, samples }
    }

    /// Counts samples with a strictly positive label.
    pub fn positive_count(&self) -> usize {
        self.samples.iter().filter(|s| s.label > 0.0).count()
    }

    /// Counts samples with a non-positive label.
    pub fn negative_count(&self) -> usize {
        self.len() - self.positive_count()
    }
}

impl Extend<Sample> for Dataset {
    fn extend<T: IntoIterator<Item = Sample>>(&mut self, iter: T) {
        for sample in iter {
            // Samples that fail validation are silently skipped would be
            // surprising; Extend cannot return errors so enforce via assert.
            assert_eq!(
                sample.features.len(),
                self.dimension,
                "extended sample has wrong dimension"
            );
            self.samples.push(sample);
        }
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Sample;
    type IntoIter = std::slice::Iter<'a, Sample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(3).unwrap();
        d.push(vec![1.0, 2.0, 3.0], 1.0).unwrap();
        d.push(vec![4.0, 5.0, 6.0], -1.0).unwrap();
        d.push(vec![7.0, 8.0, 9.0], 1.0).unwrap();
        d
    }

    #[test]
    fn new_rejects_zero_dimension() {
        assert_eq!(Dataset::new(0).unwrap_err(), SvmError::EmptyDimension);
    }

    #[test]
    fn push_rejects_wrong_dimension() {
        let mut d = Dataset::new(2).unwrap();
        let err = d.push(vec![1.0], 1.0).unwrap_err();
        assert_eq!(err, SvmError::DimensionMismatch { expected: 2, found: 1 });
    }

    #[test]
    fn push_rejects_nan_feature_and_label() {
        let mut d = Dataset::new(1).unwrap();
        assert!(matches!(
            d.push(vec![f64::NAN], 1.0),
            Err(SvmError::NonFiniteFeature { index: 0, .. })
        ));
        assert!(d.push(vec![0.0], f64::INFINITY).is_err());
    }

    #[test]
    fn subset_and_counts() {
        let d = toy();
        assert_eq!(d.positive_count(), 2);
        assert_eq!(d.negative_count(), 1);
        let s = d.subset(&[0, 2]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.label(1), 1.0);
        assert_eq!(s.features(1), &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn select_columns_keeps_order_and_validates() {
        let d = toy();
        let projected = d.select_columns(&[2, 0]).unwrap();
        assert_eq!(projected.dimension(), 2);
        assert_eq!(projected.features(0), &[3.0, 1.0]);
        assert!(d.select_columns(&[]).is_err());
        assert!(d.select_columns(&[5]).is_err());
    }

    #[test]
    fn from_columns_matches_from_rows() {
        let rows = vec![vec![0.0, 1.0], vec![2.0, 3.0], vec![4.0, 5.0]];
        let labels = vec![1.0, -1.0, 1.0];
        let by_rows = Dataset::from_rows(&rows, &labels).unwrap();
        let by_columns =
            Dataset::from_columns(&[&[0.0, 2.0, 4.0], &[1.0, 3.0, 5.0]], &labels).unwrap();
        assert_eq!(by_rows, by_columns);
        assert!(Dataset::from_columns(&[], &labels).is_err());
        assert!(Dataset::from_columns(&[&[0.0, 1.0]], &labels).is_err());
        assert!(Dataset::from_columns(&[&[0.0, f64::NAN, 1.0]], &labels).is_err());
        assert!(Dataset::from_columns(&[&[0.0, 1.0, 2.0]], &[1.0, f64::INFINITY, 1.0]).is_err());
    }

    #[test]
    fn relabel_applies_function() {
        let d = toy();
        let flipped = d.relabel(|l, _| -l);
        assert_eq!(flipped.label(0), -1.0);
        assert_eq!(flipped.label(1), 1.0);
    }

    #[test]
    fn from_rows_round_trip() {
        let rows = vec![vec![0.0, 1.0], vec![2.0, 3.0]];
        let labels = vec![1.0, -1.0];
        let d = Dataset::from_rows(&rows, &labels).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.labels(), labels);
        assert!(Dataset::from_rows(&[], &[]).is_err());
    }

    #[test]
    fn iteration_yields_all_samples() {
        let d = toy();
        assert_eq!(d.iter().count(), 3);
        assert_eq!((&d).into_iter().count(), 3);
    }
}
