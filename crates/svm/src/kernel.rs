//! Kernel functions for SVM training and prediction.

use serde::{Deserialize, Serialize};

use crate::{Result, SvmError};

/// A positive-definite kernel `K(x, y)` used by [`crate::Svc`] and
/// [`crate::Svr`].
///
/// The paper's test-compaction flow uses an RBF kernel (the decision boundary
/// of a mixed analog/MEMS acceptance region is curved, see Figure 3); the
/// linear kernel is retained for the simpler cases and for fast unit tests.
///
/// # Example
///
/// ```
/// use stc_svm::Kernel;
///
/// let k = Kernel::rbf(0.5);
/// let same = k.eval(&[1.0, 2.0], &[1.0, 2.0]);
/// assert!((same - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Kernel {
    /// `K(x, y) = x · y`
    Linear,
    /// `K(x, y) = (gamma * x · y + coef0)^degree`
    Polynomial {
        /// Scale applied to the dot product.
        gamma: f64,
        /// Additive constant.
        coef0: f64,
        /// Polynomial degree.
        degree: u32,
    },
    /// `K(x, y) = exp(-gamma * ||x - y||^2)`
    Rbf {
        /// Width parameter; larger values make the kernel more local.
        gamma: f64,
    },
    /// `K(x, y) = tanh(gamma * x · y + coef0)`
    Sigmoid {
        /// Scale applied to the dot product.
        gamma: f64,
        /// Additive constant.
        coef0: f64,
    },
}

impl Kernel {
    /// Linear kernel.
    pub fn linear() -> Self {
        Kernel::Linear
    }

    /// Gaussian radial-basis-function kernel with the given `gamma`.
    pub fn rbf(gamma: f64) -> Self {
        Kernel::Rbf { gamma }
    }

    /// Polynomial kernel `(gamma x·y + coef0)^degree`.
    pub fn polynomial(gamma: f64, coef0: f64, degree: u32) -> Self {
        Kernel::Polynomial { gamma, coef0, degree }
    }

    /// Sigmoid (hyperbolic tangent) kernel.
    pub fn sigmoid(gamma: f64, coef0: f64) -> Self {
        Kernel::Sigmoid { gamma, coef0 }
    }

    /// Validates the kernel hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SvmError::InvalidParameter`] when `gamma` is not strictly
    /// positive or `degree` is zero.
    pub fn validate(&self) -> Result<()> {
        match *self {
            Kernel::Linear => Ok(()),
            Kernel::Rbf { gamma } | Kernel::Sigmoid { gamma, .. } => {
                if gamma > 0.0 && gamma.is_finite() {
                    Ok(())
                } else {
                    Err(SvmError::InvalidParameter { name: "gamma", value: gamma })
                }
            }
            Kernel::Polynomial { gamma, degree, .. } => {
                if !(gamma > 0.0 && gamma.is_finite()) {
                    Err(SvmError::InvalidParameter { name: "gamma", value: gamma })
                } else if degree == 0 {
                    Err(SvmError::InvalidParameter { name: "degree", value: 0.0 })
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Evaluates the kernel for two feature vectors.
    ///
    /// Both vectors must come from the same feature space: a [`crate::Dataset`]
    /// (whose constructors validate dimensions and finiteness once) or a
    /// prediction input of the same dimension.  Mismatched lengths are a
    /// caller bug, never valid data — release builds used to *silently
    /// truncate* to the shorter vector here (the `zip` ignores trailing
    /// elements), which turned dimension bugs into wrong kernel values; the
    /// guard is now unconditional.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths (debug **and** release
    /// builds).
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "kernel arguments must have equal length");
        match *self {
            Kernel::Linear => dot(x, y),
            Kernel::Polynomial { gamma, coef0, degree } => {
                (gamma * dot(x, y) + coef0).powi(degree as i32)
            }
            Kernel::Rbf { gamma } => (-gamma * squared_distance(x, y)).exp(),
            Kernel::Sigmoid { gamma, coef0 } => (gamma * dot(x, y) + coef0).tanh(),
        }
    }

    /// A reasonable default `gamma` for RBF kernels: `1 / dimension`,
    /// matching the common LIBSVM heuristic.
    pub fn default_gamma(dimension: usize) -> f64 {
        if dimension == 0 {
            1.0
        } else {
            1.0 / dimension as f64
        }
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::Rbf { gamma: 1.0 }
    }
}

fn dot(x: &[f64], y: &[f64]) -> f64 {
    x.iter().zip(y.iter()).map(|(a, b)| a * b).sum()
}

fn squared_distance(x: &[f64], y: &[f64]) -> f64 {
    x.iter()
        .zip(y.iter())
        .map(|(a, b)| {
            let d = a - b;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_kernel_is_dot_product() {
        let k = Kernel::linear();
        assert_eq!(k.eval(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn rbf_is_one_at_zero_distance_and_decays() {
        let k = Kernel::rbf(2.0);
        assert!((k.eval(&[1.0, 1.0], &[1.0, 1.0]) - 1.0).abs() < 1e-15);
        let near = k.eval(&[0.0, 0.0], &[0.1, 0.0]);
        let far = k.eval(&[0.0, 0.0], &[1.0, 0.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn polynomial_matches_manual_expansion() {
        let k = Kernel::polynomial(1.0, 1.0, 2);
        // (x·y + 1)^2 with x·y = 2
        assert!((k.eval(&[1.0, 1.0], &[1.0, 1.0]) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_is_bounded() {
        let k = Kernel::sigmoid(0.5, 0.0);
        let v = k.eval(&[10.0, 10.0], &[10.0, 10.0]);
        assert!((-1.0..=1.0).contains(&v));
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(Kernel::rbf(0.0).validate().is_err());
        assert!(Kernel::rbf(-1.0).validate().is_err());
        assert!(Kernel::rbf(f64::NAN).validate().is_err());
        assert!(Kernel::polynomial(1.0, 0.0, 0).validate().is_err());
        assert!(Kernel::linear().validate().is_ok());
        assert!(Kernel::rbf(0.7).validate().is_ok());
    }

    #[test]
    fn default_gamma_follows_libsvm_heuristic() {
        assert_eq!(Kernel::default_gamma(4), 0.25);
        assert_eq!(Kernel::default_gamma(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn eval_rejects_mismatched_lengths_in_all_builds() {
        // Regression guard: this used to be a debug_assert, so release
        // builds silently truncated to the shorter vector.
        Kernel::linear().eval(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn kernels_are_symmetric() {
        let kernels = [
            Kernel::linear(),
            Kernel::rbf(0.3),
            Kernel::polynomial(0.5, 1.0, 3),
            Kernel::sigmoid(0.2, 0.1),
        ];
        let x = [0.3, -1.2, 2.5];
        let y = [1.1, 0.4, -0.9];
        for k in kernels {
            assert!((k.eval(&x, &y) - k.eval(&y, &x)).abs() < 1e-12, "{k:?} not symmetric");
        }
    }
}
