//! Kernel functions for SVM training and prediction.

use serde::{Deserialize, Serialize};

use crate::{Result, SvmError};

/// A positive-definite kernel `K(x, y)` used by [`crate::Svc`] and
/// [`crate::Svr`].
///
/// The paper's test-compaction flow uses an RBF kernel (the decision boundary
/// of a mixed analog/MEMS acceptance region is curved, see Figure 3); the
/// linear kernel is retained for the simpler cases and for fast unit tests.
///
/// # Example
///
/// ```
/// use stc_svm::Kernel;
///
/// let k = Kernel::rbf(0.5);
/// let same = k.eval(&[1.0, 2.0], &[1.0, 2.0]);
/// assert!((same - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Kernel {
    /// `K(x, y) = x · y`
    Linear,
    /// `K(x, y) = (gamma * x · y + coef0)^degree`
    Polynomial {
        /// Scale applied to the dot product.
        gamma: f64,
        /// Additive constant.
        coef0: f64,
        /// Polynomial degree.
        degree: u32,
    },
    /// `K(x, y) = exp(-gamma * ||x - y||^2)`
    Rbf {
        /// Width parameter; larger values make the kernel more local.
        gamma: f64,
    },
    /// `K(x, y) = tanh(gamma * x · y + coef0)`
    Sigmoid {
        /// Scale applied to the dot product.
        gamma: f64,
        /// Additive constant.
        coef0: f64,
    },
}

impl Kernel {
    /// Linear kernel.
    pub fn linear() -> Self {
        Kernel::Linear
    }

    /// Gaussian radial-basis-function kernel with the given `gamma`.
    pub fn rbf(gamma: f64) -> Self {
        Kernel::Rbf { gamma }
    }

    /// Polynomial kernel `(gamma x·y + coef0)^degree`.
    pub fn polynomial(gamma: f64, coef0: f64, degree: u32) -> Self {
        Kernel::Polynomial { gamma, coef0, degree }
    }

    /// Sigmoid (hyperbolic tangent) kernel.
    pub fn sigmoid(gamma: f64, coef0: f64) -> Self {
        Kernel::Sigmoid { gamma, coef0 }
    }

    /// Validates the kernel hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SvmError::InvalidParameter`] when `gamma` is not strictly
    /// positive or `degree` is zero.
    pub fn validate(&self) -> Result<()> {
        match *self {
            Kernel::Linear => Ok(()),
            Kernel::Rbf { gamma } | Kernel::Sigmoid { gamma, .. } => {
                if gamma > 0.0 && gamma.is_finite() {
                    Ok(())
                } else {
                    Err(SvmError::InvalidParameter { name: "gamma", value: gamma })
                }
            }
            Kernel::Polynomial { gamma, degree, .. } => {
                if !(gamma > 0.0 && gamma.is_finite()) {
                    Err(SvmError::InvalidParameter { name: "gamma", value: gamma })
                } else if degree == 0 {
                    Err(SvmError::InvalidParameter { name: "degree", value: 0.0 })
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Evaluates the kernel for two feature vectors.
    ///
    /// Both vectors must come from the same feature space: a [`crate::Dataset`]
    /// (whose constructors validate dimensions and finiteness once) or a
    /// prediction input of the same dimension.  Mismatched lengths are a
    /// caller bug, never valid data — release builds used to *silently
    /// truncate* to the shorter vector here (the `zip` ignores trailing
    /// elements), which turned dimension bugs into wrong kernel values; the
    /// guard is now unconditional.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths (debug **and** release
    /// builds).
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "kernel arguments must have equal length");
        match *self {
            Kernel::Linear => dot(x, y),
            Kernel::Polynomial { gamma, coef0, degree } => {
                (gamma * dot(x, y) + coef0).powi(degree as i32)
            }
            Kernel::Rbf { gamma } => (-gamma * squared_distance(x, y)).exp(),
            Kernel::Sigmoid { gamma, coef0 } => (gamma * dot(x, y) + coef0).tanh(),
        }
    }

    /// A reasonable default `gamma` for RBF kernels: `1 / dimension`,
    /// matching the common LIBSVM heuristic.
    pub fn default_gamma(dimension: usize) -> f64 {
        if dimension == 0 {
            1.0
        } else {
            1.0 / dimension as f64
        }
    }

    /// Bounds of `K(x, y)` as `y` ranges over the axis-aligned box
    /// `[lower, upper]` (per-dimension inclusive bounds): returns
    /// `(min, max)` such that `min <= K(x, y) <= max` for every `y` in the
    /// box.  The bounds are exact per dimension (interval arithmetic over
    /// the dot product / squared distance, pushed through the monotone or
    /// piecewise-monotone outer function), which is what lets
    /// [`crate::Svc::decision_bounds`] prove a constant decision sign over a
    /// partially measured device.
    ///
    /// # Panics
    ///
    /// Panics if the three slices have different lengths.
    pub fn eval_bounds(&self, x: &[f64], lower: &[f64], upper: &[f64]) -> (f64, f64) {
        assert_eq!(x.len(), lower.len(), "kernel arguments must have equal length");
        assert_eq!(x.len(), upper.len(), "kernel arguments must have equal length");
        match *self {
            Kernel::Linear => dot_bounds(x, lower, upper),
            Kernel::Polynomial { gamma, coef0, degree } => {
                let (d_lo, d_hi) = dot_bounds(x, lower, upper);
                powi_bounds(gamma * d_lo + coef0, gamma * d_hi + coef0, degree as i32)
            }
            Kernel::Rbf { gamma } => {
                let (d2_lo, d2_hi) = squared_distance_bounds(x, lower, upper);
                ((-gamma * d2_hi).exp(), (-gamma * d2_lo).exp())
            }
            Kernel::Sigmoid { gamma, coef0 } => {
                let (d_lo, d_hi) = dot_bounds(x, lower, upper);
                ((gamma * d_lo + coef0).tanh(), (gamma * d_hi + coef0).tanh())
            }
        }
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::Rbf { gamma: 1.0 }
    }
}

fn dot(x: &[f64], y: &[f64]) -> f64 {
    x.iter().zip(y.iter()).map(|(a, b)| a * b).sum()
}

fn squared_distance(x: &[f64], y: &[f64]) -> f64 {
    x.iter()
        .zip(y.iter())
        .map(|(a, b)| {
            let d = a - b;
            d * d
        })
        .sum()
}

/// Bounds of `x · y` with `y_j ∈ [l_j, u_j]`: each term `x_j * y_j` is
/// monotone in `y_j`, so the extremes sit at the interval endpoints.
fn dot_bounds(x: &[f64], lower: &[f64], upper: &[f64]) -> (f64, f64) {
    let mut lo = 0.0;
    let mut hi = 0.0;
    for ((&a, &l), &u) in x.iter().zip(lower.iter()).zip(upper.iter()) {
        let (t1, t2) = (a * l, a * u);
        lo += t1.min(t2);
        hi += t1.max(t2);
    }
    (lo, hi)
}

/// Bounds of `||x - y||²` with `y_j ∈ [l_j, u_j]`: per dimension the
/// squared offset is smallest at the projection of `x_j` onto the interval
/// and largest at the farther endpoint.
fn squared_distance_bounds(x: &[f64], lower: &[f64], upper: &[f64]) -> (f64, f64) {
    let mut lo = 0.0;
    let mut hi = 0.0;
    for ((&a, &l), &u) in x.iter().zip(lower.iter()).zip(upper.iter()) {
        let near = (l - a).max(a - u).max(0.0);
        lo += near * near;
        let (d1, d2) = (a - l, a - u);
        hi += (d1 * d1).max(d2 * d2);
    }
    (lo, hi)
}

/// Bounds of `s^degree` for `s ∈ [lo, hi]`: monotone for odd degrees; for
/// even degrees the minimum is 0 when the interval straddles zero.
fn powi_bounds(lo: f64, hi: f64, degree: i32) -> (f64, f64) {
    let (p_lo, p_hi) = (lo.powi(degree), hi.powi(degree));
    if degree % 2 != 0 {
        (p_lo, p_hi)
    } else if lo <= 0.0 && hi >= 0.0 {
        (0.0, p_lo.max(p_hi))
    } else {
        (p_lo.min(p_hi), p_lo.max(p_hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_kernel_is_dot_product() {
        let k = Kernel::linear();
        assert_eq!(k.eval(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn rbf_is_one_at_zero_distance_and_decays() {
        let k = Kernel::rbf(2.0);
        assert!((k.eval(&[1.0, 1.0], &[1.0, 1.0]) - 1.0).abs() < 1e-15);
        let near = k.eval(&[0.0, 0.0], &[0.1, 0.0]);
        let far = k.eval(&[0.0, 0.0], &[1.0, 0.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn polynomial_matches_manual_expansion() {
        let k = Kernel::polynomial(1.0, 1.0, 2);
        // (x·y + 1)^2 with x·y = 2
        assert!((k.eval(&[1.0, 1.0], &[1.0, 1.0]) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_is_bounded() {
        let k = Kernel::sigmoid(0.5, 0.0);
        let v = k.eval(&[10.0, 10.0], &[10.0, 10.0]);
        assert!((-1.0..=1.0).contains(&v));
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(Kernel::rbf(0.0).validate().is_err());
        assert!(Kernel::rbf(-1.0).validate().is_err());
        assert!(Kernel::rbf(f64::NAN).validate().is_err());
        assert!(Kernel::polynomial(1.0, 0.0, 0).validate().is_err());
        assert!(Kernel::linear().validate().is_ok());
        assert!(Kernel::rbf(0.7).validate().is_ok());
    }

    #[test]
    fn default_gamma_follows_libsvm_heuristic() {
        assert_eq!(Kernel::default_gamma(4), 0.25);
        assert_eq!(Kernel::default_gamma(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn eval_rejects_mismatched_lengths_in_all_builds() {
        // Regression guard: this used to be a debug_assert, so release
        // builds silently truncated to the shorter vector.
        Kernel::linear().eval(&[1.0, 2.0], &[1.0]);
    }

    /// `eval_bounds` encloses the kernel value for every point of the box,
    /// and collapses to the exact value on a degenerate (point) box.
    #[test]
    fn eval_bounds_enclose_every_point_of_the_box() {
        let kernels = [
            Kernel::linear(),
            Kernel::rbf(0.8),
            Kernel::polynomial(0.5, 1.0, 2),
            Kernel::polynomial(0.5, -2.0, 3),
            Kernel::sigmoid(0.4, -0.1),
        ];
        let x = [0.7, -0.3, 1.4];
        let lower = [-0.5, 0.0, 0.2];
        let upper = [0.5, 1.0, 1.6];
        for k in kernels {
            let (lo, hi) = k.eval_bounds(&x, &lower, &upper);
            assert!(lo <= hi, "{k:?}");
            // Dense sample of the box.
            for i in 0..=4 {
                for j in 0..=4 {
                    for m in 0..=4 {
                        let y = [
                            lower[0] + (upper[0] - lower[0]) * i as f64 / 4.0,
                            lower[1] + (upper[1] - lower[1]) * j as f64 / 4.0,
                            lower[2] + (upper[2] - lower[2]) * m as f64 / 4.0,
                        ];
                        let value = k.eval(&x, &y);
                        assert!(
                            lo - 1e-12 <= value && value <= hi + 1e-12,
                            "{k:?}: {value} outside [{lo}, {hi}] at {y:?}"
                        );
                    }
                }
            }
            let point = [0.1, 0.5, 0.9];
            let (p_lo, p_hi) = k.eval_bounds(&x, &point, &point);
            let exact = k.eval(&x, &point);
            assert!((p_lo - exact).abs() < 1e-12 && (p_hi - exact).abs() < 1e-12, "{k:?}");
        }
    }

    #[test]
    fn kernels_are_symmetric() {
        let kernels = [
            Kernel::linear(),
            Kernel::rbf(0.3),
            Kernel::polynomial(0.5, 1.0, 3),
            Kernel::sigmoid(0.2, 0.1),
        ];
        let x = [0.3, -1.2, 2.5];
        let y = [1.1, 0.4, -0.9];
        for k in kernels {
            assert!((k.eval(&x, &y) - k.eval(&y, &x)).abs() < 1e-12, "{k:?} not symmetric");
        }
    }
}
