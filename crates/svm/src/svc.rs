//! Soft-margin support-vector classification (C-SVC).

use serde::{Deserialize, Serialize};

use crate::engine::{DotRowBank, EngineUsage, KernelEngine, KernelPath};
use crate::smo::{self, QMatrix, SmoParams, SmoProblem};
use crate::{Dataset, Kernel, Result, SvmError};

/// Hyper-parameters for [`Svc::train`].
///
/// # Example
///
/// ```
/// use stc_svm::{Kernel, SvcParams};
///
/// let params = SvcParams::new()
///     .with_c(10.0)
///     .with_kernel(Kernel::rbf(0.5))
///     .with_tolerance(1e-3);
/// assert_eq!(params.c(), 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvcParams {
    c: f64,
    kernel: Kernel,
    tolerance: f64,
    max_iterations: usize,
    positive_weight: f64,
    negative_weight: f64,
    /// Kernel row-assembly implementation (defaulted on deserialization so
    /// pre-0.8 configs still load).
    #[serde(default)]
    kernel_path: KernelPath,
}

impl SvcParams {
    /// Default parameters: `C = 1`, RBF kernel with `gamma = 1`, LIBSVM
    /// tolerance `1e-3`.
    pub fn new() -> Self {
        SvcParams {
            c: 1.0,
            kernel: Kernel::default(),
            tolerance: 1e-3,
            max_iterations: 200_000,
            positive_weight: 1.0,
            negative_weight: 1.0,
            kernel_path: KernelPath::default(),
        }
    }

    /// Sets the soft-margin penalty `C`.
    pub fn with_c(mut self, c: f64) -> Self {
        self.c = c;
        self
    }

    /// Sets the kernel.
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the SMO stopping tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Sets the SMO iteration budget.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets per-class weights, multiplying `C` for the positive/negative
    /// class respectively.  Useful when one class is much rarer (for example
    /// bad devices in a high-yield population).
    pub fn with_class_weights(mut self, positive: f64, negative: f64) -> Self {
        self.positive_weight = positive;
        self.negative_weight = negative;
        self
    }

    /// The soft-margin penalty.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// The configured kernel.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The SMO stopping tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Selects the kernel row-assembly implementation (see [`KernelPath`]).
    pub fn with_kernel_path(mut self, kernel_path: KernelPath) -> Self {
        self.kernel_path = kernel_path;
        self
    }

    /// The configured kernel row-assembly implementation.
    pub fn kernel_path(&self) -> KernelPath {
        self.kernel_path
    }

    fn validate(&self) -> Result<()> {
        if !(self.c > 0.0 && self.c.is_finite()) {
            return Err(SvmError::InvalidParameter { name: "C", value: self.c });
        }
        if !(self.positive_weight > 0.0) {
            return Err(SvmError::InvalidParameter {
                name: "positive_weight",
                value: self.positive_weight,
            });
        }
        if !(self.negative_weight > 0.0) {
            return Err(SvmError::InvalidParameter {
                name: "negative_weight",
                value: self.negative_weight,
            });
        }
        self.kernel.validate()
    }
}

impl Default for SvcParams {
    fn default() -> Self {
        SvcParams::new()
    }
}

/// `Q` matrix for classification: `Q[i][j] = y_i y_j K(x_i, x_j)`.
///
/// Kernel rows come from the [`KernelEngine`]; the label products multiply
/// exact `±1` factors on top, so the engine's numerical contract carries
/// through to `Q` unchanged.
struct SvcQ<'a> {
    engine: KernelEngine<'a>,
    labels: &'a [f64],
    diag: Vec<f64>,
}

impl<'a> SvcQ<'a> {
    fn new(data: &'a Dataset, kernel: Kernel, path: KernelPath, bank: Option<&DotRowBank>) -> Self {
        let engine = KernelEngine::with_bank(data, kernel, path, bank);
        let diag = (0..data.len()).map(|i| engine.diag(i)).collect();
        SvcQ { engine, labels: data.labels(), diag }
    }

    fn usage(&self) -> EngineUsage {
        self.engine.usage()
    }

    fn into_bank(self) -> DotRowBank {
        self.engine.into_bank()
    }
}

impl QMatrix for SvcQ<'_> {
    fn len(&self) -> usize {
        self.engine.len()
    }

    fn row(&self, i: usize, out: &mut [f64]) {
        self.engine.kernel_row(i, out);
        let yi = self.labels[i];
        for (cell, &yj) in out.iter_mut().zip(self.labels) {
            *cell *= yi * yj;
        }
    }

    fn rows(&self, indices: &[usize], out: &mut [f64]) {
        self.engine.kernel_rows(indices, out);
        let n = self.engine.len();
        for (row, &i) in out.chunks_exact_mut(n).zip(indices) {
            let yi = self.labels[i];
            for (cell, &yj) in row.iter_mut().zip(self.labels) {
                *cell *= yi * yj;
            }
        }
    }

    fn diag(&self, i: usize) -> f64 {
        self.diag[i]
    }
}

/// A trained support-vector classifier.
///
/// The decision function is `f(x) = Σ_i a_i y_i K(x_i, x) - rho`; prediction
/// is `sign(f(x))` with ties broken toward the positive class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Svc {
    kernel: Kernel,
    support_vectors: Vec<Vec<f64>>,
    coefficients: Vec<f64>,
    /// Training-instance index of each support vector, enabling warm starts
    /// of related problems over the same training population.  Defaulted on
    /// deserialization so 0.3-era models still load (they simply cannot seed
    /// warm starts).
    #[serde(default)]
    support_indices: Vec<usize>,
    rho: f64,
    dimension: usize,
    bias_shift: f64,
    /// SMO iterations spent training this model (0 for deserialized 0.3-era
    /// models).
    #[serde(default)]
    iterations: usize,
}

impl Svc {
    /// Trains a classifier on `data` (labels must be `+1`/`-1`).
    ///
    /// # Errors
    ///
    /// Returns an error when the dataset is empty or single-class, when a
    /// label is not `±1`, when hyper-parameters are invalid, or when the SMO
    /// solver fails to converge.
    pub fn train(data: &Dataset, params: &SvcParams) -> Result<Self> {
        Svc::train_warm(data, params, None)
    }

    /// [`Svc::train`] with an optional warm start from a model trained on
    /// the *same training instances* (typically over an overlapping feature
    /// subset, as in the greedy test-compaction loop where consecutive
    /// candidate kept sets differ by one measurement column).
    ///
    /// The warm model's support-vector alphas are mapped by training-instance
    /// index onto this problem, clipped to the feasible box, the equality
    /// constraint is repaired, and SMO solves from that point.  Warm starts
    /// only change the solver trajectory: the returned model satisfies
    /// exactly the same KKT stopping tolerance as a cold start.  A warm
    /// model that does not match the dataset (more instances than `data`
    /// has) is ignored and training falls back to a cold start.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Svc::train`].
    pub fn train_warm(data: &Dataset, params: &SvcParams, warm: Option<&Svc>) -> Result<Self> {
        Svc::train_with_bank(data, params, warm, None).map(|(model, _, _)| model)
    }

    /// [`Svc::train_warm`] that additionally threads the kernel engine's
    /// [`DotRowBank`] through training: `parent_bank` (dot rows recorded by
    /// the committed parent's training, if any) seeds this problem's kernel
    /// rows incrementally, and the returned bank holds the rows *this*
    /// training touched, ready for the next candidate generation.
    ///
    /// The bank is strictly an accelerator with the same contract as warm
    /// starts: an inapplicable bank (different column universe or population)
    /// is ignored, and the returned model satisfies the same stopping
    /// tolerance either way.  On [`KernelPath::Naive`] the returned bank is
    /// always empty.  The returned [`EngineUsage`] says how the parent bank
    /// fared — rows seeded versus rebuilt from scratch, and whether a
    /// supplied bank had to be ignored.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Svc::train`].
    pub fn train_with_bank(
        data: &Dataset,
        params: &SvcParams,
        warm: Option<&Svc>,
        parent_bank: Option<&DotRowBank>,
    ) -> Result<(Self, DotRowBank, EngineUsage)> {
        params.validate()?;
        if data.is_empty() {
            return Err(SvmError::EmptyDataset);
        }
        for &label in data.labels() {
            if label != 1.0 && label != -1.0 {
                return Err(SvmError::InvalidLabel(label));
            }
        }
        let positives = data.positive_count();
        if positives == 0 || positives == data.len() {
            return Err(SvmError::SingleClass);
        }

        let n = data.len();
        let y = data.labels().to_vec();
        let upper_bound: Vec<f64> = y
            .iter()
            .map(|&label| {
                if label > 0.0 {
                    params.c * params.positive_weight
                } else {
                    params.c * params.negative_weight
                }
            })
            .collect();
        let initial_alpha = match warm {
            Some(model) => model.project_alphas(&y, &upper_bound),
            None => vec![0.0; n],
        };
        let problem = SmoProblem { y: y.clone(), p: vec![-1.0; n], upper_bound, initial_alpha };
        let q = SvcQ::new(data, params.kernel, params.kernel_path, parent_bank);
        let smo_params = SmoParams {
            tolerance: params.tolerance,
            max_iterations: params.max_iterations,
            ..SmoParams::default()
        };
        let solution = smo::solve(&q, &problem, &smo_params)?;

        let mut support_vectors = Vec::new();
        let mut coefficients = Vec::new();
        let mut support_indices = Vec::new();
        for (i, (&alpha, &label)) in solution.alpha.iter().zip(y.iter()).enumerate() {
            if alpha > 1e-12 {
                support_vectors.push(data.features(i));
                coefficients.push(alpha * label);
                support_indices.push(i);
            }
        }
        let model = Svc {
            kernel: params.kernel,
            support_vectors,
            coefficients,
            support_indices,
            rho: solution.rho,
            dimension: data.dimension(),
            bias_shift: 0.0,
            iterations: solution.iterations,
        };
        let usage = q.usage();
        Ok((model, q.into_bank(), usage))
    }

    /// Projects this model's dual variables onto a related problem over the
    /// same training instances: alphas land on the instance that produced
    /// them, are clipped to the new box, and the equality constraint is
    /// repaired.  Returns the zero vector (a plain cold start) when the
    /// model does not line up with the new problem.
    fn project_alphas(&self, y: &[f64], upper_bound: &[f64]) -> Vec<f64> {
        let n = y.len();
        let mut alpha = vec![0.0; n];
        for (&index, &coefficient) in self.support_indices.iter().zip(self.coefficients.iter()) {
            if index >= n {
                // Trained on a different (larger) population: cold start.
                return vec![0.0; n];
            }
            // `coefficient` is `alpha_i * y_i`, so its sign is the training
            // label; skip instances whose label changed (defensive — labels
            // are independent of the kept feature columns in the compaction
            // flow, so this should not trigger there).
            if y[index] * coefficient <= 0.0 {
                continue;
            }
            alpha[index] = coefficient.abs().min(upper_bound[index]);
        }
        smo::repair_equality_constraint(&mut alpha, y);
        alpha
    }

    /// Signed distance-like score of `x`; positive means the positive class.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not have [`Svc::dimension`] entries.
    pub fn decision_function(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dimension, "feature vector has wrong dimension");
        let mut sum = 0.0;
        for (sv, &coef) in self.support_vectors.iter().zip(self.coefficients.iter()) {
            sum += coef * self.kernel.eval(sv, x);
        }
        sum - self.rho + self.bias_shift
    }

    /// Bounds of the decision function over the axis-aligned box
    /// `[lower, upper]`: returns `(min, max)` with
    /// `min <= f(y) <= max` for every `y` in the box, built from the
    /// per-support-vector kernel bounds ([`Kernel::eval_bounds`]) weighted
    /// by the sign of each coefficient.
    ///
    /// A strictly positive `min` proves every point of the box is
    /// classified positive; a strictly negative `max` proves every point
    /// negative — the capability behind the sequential tester's early
    /// exits.
    ///
    /// # Panics
    ///
    /// Panics if the bounds do not have [`Svc::dimension`] entries.
    pub fn decision_bounds(&self, lower: &[f64], upper: &[f64]) -> (f64, f64) {
        assert_eq!(lower.len(), self.dimension, "lower bound has wrong dimension");
        assert_eq!(upper.len(), self.dimension, "upper bound has wrong dimension");
        let mut min = 0.0;
        let mut max = 0.0;
        for (sv, &coef) in self.support_vectors.iter().zip(self.coefficients.iter()) {
            let (k_lo, k_hi) = self.kernel.eval_bounds(sv, lower, upper);
            if coef >= 0.0 {
                min += coef * k_lo;
                max += coef * k_hi;
            } else {
                min += coef * k_hi;
                max += coef * k_lo;
            }
        }
        let offset = self.bias_shift - self.rho;
        (min + offset, max + offset)
    }

    /// Predicted class label (`+1.0` or `-1.0`).
    ///
    /// # Panics
    ///
    /// Panics if `x` does not have [`Svc::dimension`] entries.
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.decision_function(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Fraction of samples in `data` whose predicted label matches the truth.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 1.0;
        }
        let correct = data
            .iter()
            .filter(|s| (self.predict(&s.features) - s.label).abs() < f64::EPSILON)
            .count();
        correct as f64 / data.len() as f64
    }

    /// Returns a copy of this classifier whose decision threshold is shifted
    /// by `delta` (`f'(x) = f(x) + delta`).
    ///
    /// The guard-banding scheme of the paper (Section 4.2) builds two such
    /// perturbed models — one biased toward predicting *good*, one toward
    /// *bad* — and places devices on which they disagree into the guard band.
    pub fn with_bias_shift(&self, delta: f64) -> Svc {
        let mut shifted = self.clone();
        shifted.bias_shift += delta;
        shifted
    }

    /// Number of support vectors retained by training.
    pub fn support_vector_count(&self) -> usize {
        self.support_vectors.len()
    }

    /// Expected input dimension.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Kernel the model was trained with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Offset `rho` of the decision function.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// SMO iterations the solver spent training this model (a warm start
    /// typically needs a small fraction of the cold-start count).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Training-instance indices of the support vectors, aligned with the
    /// coefficient order.
    pub fn support_indices(&self) -> &[usize] {
        &self.support_indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable(n: usize) -> Dataset {
        let mut d = Dataset::new(2).unwrap();
        for i in 0..n {
            let x = i as f64 / n as f64;
            d.push(vec![x, x + 0.5], 1.0).unwrap();
            d.push(vec![x, x - 0.5], -1.0).unwrap();
        }
        d
    }

    /// XOR-like data that a linear kernel cannot separate but RBF can.
    fn xor_data() -> Dataset {
        let mut d = Dataset::new(2).unwrap();
        let centers =
            [([0.0, 0.0], 1.0), ([1.0, 1.0], 1.0), ([0.0, 1.0], -1.0), ([1.0, 0.0], -1.0)];
        for (c, label) in centers {
            for di in 0..5 {
                for dj in 0..5 {
                    let x = c[0] + 0.02 * di as f64;
                    let y = c[1] + 0.02 * dj as f64;
                    d.push(vec![x, y], label).unwrap();
                }
            }
        }
        d
    }

    #[test]
    fn separable_data_is_classified_perfectly() {
        let data = linearly_separable(30);
        let params = SvcParams::new().with_c(10.0).with_kernel(Kernel::linear());
        let model = Svc::train(&data, &params).unwrap();
        assert_eq!(model.accuracy(&data), 1.0);
        assert_eq!(model.predict(&[0.5, 1.0]), 1.0);
        assert_eq!(model.predict(&[0.5, 0.0]), -1.0);
    }

    #[test]
    fn rbf_solves_xor() {
        let data = xor_data();
        let params = SvcParams::new().with_c(50.0).with_kernel(Kernel::rbf(4.0));
        let model = Svc::train(&data, &params).unwrap();
        assert!(model.accuracy(&data) > 0.98, "accuracy {}", model.accuracy(&data));
        assert_eq!(model.predict(&[0.02, 0.02]), 1.0);
        assert_eq!(model.predict(&[0.98, 0.05]), -1.0);
    }

    #[test]
    fn training_rejects_bad_inputs() {
        let empty = Dataset::new(2).unwrap();
        let params = SvcParams::new();
        assert!(matches!(Svc::train(&empty, &params), Err(SvmError::EmptyDataset)));

        let mut single = Dataset::new(1).unwrap();
        single.push(vec![1.0], 1.0).unwrap();
        single.push(vec![2.0], 1.0).unwrap();
        assert!(matches!(Svc::train(&single, &params), Err(SvmError::SingleClass)));

        let mut bad_label = Dataset::new(1).unwrap();
        bad_label.push(vec![1.0], 2.0).unwrap();
        bad_label.push(vec![2.0], -1.0).unwrap();
        assert!(matches!(Svc::train(&bad_label, &params), Err(SvmError::InvalidLabel(_))));

        let data = linearly_separable(5);
        assert!(Svc::train(&data, &SvcParams::new().with_c(-1.0)).is_err());
        assert!(Svc::train(&data, &SvcParams::new().with_kernel(Kernel::rbf(0.0))).is_err());
        assert!(Svc::train(&data, &SvcParams::new().with_class_weights(0.0, 1.0)).is_err());
    }

    #[test]
    fn bias_shift_moves_the_boundary_monotonically() {
        let data = linearly_separable(20);
        let params = SvcParams::new().with_c(5.0).with_kernel(Kernel::linear());
        let model = Svc::train(&data, &params).unwrap();
        let x = [0.5, 0.45];
        let base = model.decision_function(&x);
        let up = model.with_bias_shift(0.3).decision_function(&x);
        let down = model.with_bias_shift(-0.3).decision_function(&x);
        assert!((up - base - 0.3).abs() < 1e-12);
        assert!((base - down - 0.3).abs() < 1e-12);
    }

    #[test]
    fn positively_shifted_model_never_predicts_bad_where_base_predicts_good() {
        let data = xor_data();
        let params = SvcParams::new().with_c(10.0).with_kernel(Kernel::rbf(2.0));
        let model = Svc::train(&data, &params).unwrap();
        let optimistic = model.with_bias_shift(0.2);
        for s in data.iter() {
            if model.predict(&s.features) > 0.0 {
                assert!(optimistic.predict(&s.features) > 0.0);
            }
        }
    }

    #[test]
    fn class_weights_bias_the_boundary_toward_the_weighted_class() {
        // Imbalanced, overlapping data: 40 positive, 8 negative.
        let mut d = Dataset::new(1).unwrap();
        for i in 0..40 {
            d.push(vec![0.4 + 0.01 * i as f64], 1.0).unwrap();
        }
        for i in 0..8 {
            d.push(vec![0.35 - 0.01 * i as f64], -1.0).unwrap();
        }
        let kernel = Kernel::rbf(2.0);
        let plain = Svc::train(&d, &SvcParams::new().with_c(1.0).with_kernel(kernel)).unwrap();
        let weighted = Svc::train(
            &d,
            &SvcParams::new().with_c(1.0).with_kernel(kernel).with_class_weights(1.0, 10.0),
        )
        .unwrap();
        // The negatively-weighted model should score the ambiguous midpoint
        // lower (more likely negative) than the unweighted model.
        let x = [0.37];
        assert!(weighted.decision_function(&x) <= plain.decision_function(&x) + 1e-9);
    }

    #[test]
    fn accuracy_of_empty_dataset_is_one() {
        let data = linearly_separable(5);
        let model = Svc::train(&data, &SvcParams::new().with_kernel(Kernel::linear())).unwrap();
        let empty = Dataset::new(2).unwrap();
        assert_eq!(model.accuracy(&empty), 1.0);
    }

    #[test]
    fn model_exposes_metadata() {
        let data = linearly_separable(10);
        let params = SvcParams::new().with_c(2.0).with_kernel(Kernel::linear());
        let model = Svc::train(&data, &params).unwrap();
        assert_eq!(model.dimension(), 2);
        assert!(model.support_vector_count() > 0);
        assert_eq!(model.support_indices().len(), model.support_vector_count());
        assert!(model.support_indices().iter().all(|&i| i < data.len()));
        assert_eq!(model.kernel(), Kernel::linear());
        assert!(model.rho().is_finite());
        assert!(model.iterations() > 0);
    }

    /// Warm-starting from a model of the *same* problem converges without
    /// iterating and reproduces the model.
    #[test]
    fn warm_start_from_itself_is_free() {
        let data = xor_data();
        let params = SvcParams::new().with_c(10.0).with_kernel(Kernel::rbf(2.0));
        let cold = Svc::train(&data, &params).unwrap();
        let warm = Svc::train_warm(&data, &params, Some(&cold)).unwrap();
        assert!(
            warm.iterations() <= cold.iterations() / 4,
            "warm {} vs cold {}",
            warm.iterations(),
            cold.iterations()
        );
        for sample in data.iter() {
            assert_eq!(warm.predict(&sample.features), cold.predict(&sample.features));
        }
    }

    /// Warm-starting across an overlapping feature subset (the compaction
    /// loop's case: same instances, one column dropped) converges to the
    /// same decisions as the cold start of the smaller problem.
    #[test]
    fn warm_start_across_a_dropped_column_matches_cold_training() {
        let data = xor_data();
        // The one-column projection of the XOR data: labels stay mixed, and
        // the instances line up index-for-index with the 2-D parent.
        let narrow = data.select_columns(&[0]).unwrap();
        let params = SvcParams::new().with_c(10.0).with_kernel(Kernel::rbf(2.0));
        let parent = Svc::train(&data, &params).unwrap();
        let cold = Svc::train(&narrow, &params).unwrap();
        let warm = Svc::train_warm(&narrow, &params, Some(&parent)).unwrap();
        assert_eq!(warm.dimension(), 1);
        // Both satisfy the same KKT tolerance; on this well-separated data
        // their decisions agree everywhere.
        for sample in narrow.iter() {
            assert_eq!(warm.predict(&sample.features), cold.predict(&sample.features));
        }
    }

    /// A warm model from an unrelated (larger) population is ignored rather
    /// than corrupting the start.
    #[test]
    fn mismatched_warm_models_fall_back_to_cold_training() {
        let big = linearly_separable(40);
        let small = linearly_separable(6);
        let params = SvcParams::new().with_c(5.0).with_kernel(Kernel::linear());
        let parent = Svc::train(&big, &params).unwrap();
        assert!(parent.support_indices().iter().any(|&i| i >= small.len()));
        let cold = Svc::train(&small, &params).unwrap();
        let warm = Svc::train_warm(&small, &params, Some(&parent)).unwrap();
        assert_eq!(warm.iterations(), cold.iterations());
        assert_eq!(warm, cold);
    }
}
