//! Sequential minimal optimization (SMO) solver.
//!
//! This is a LIBSVM-style dual solver for problems of the form
//!
//! ```text
//! minimize    0.5 * a' Q a + p' a
//! subject to  y' a = delta,   0 <= a_i <= C_i
//! ```
//!
//! where `Q[i][j] = y_i * y_j * K(x_i, x_j)`.  Both the C-SVC classifier
//! ([`crate::Svc`]) and the ε-SVR regressor ([`crate::Svr`]) reduce their dual
//! problems to this form and share the solver.
//!
//! The working-set selection picks the maximal violator and pairs it by
//! *second-order gain* (LIBSVM's WSS 2: maximise the two-variable objective
//! decrease); the stopping criterion is the duality-gap surrogate
//! `m(a) - M(a) <= tolerance` from Keerthi et al.  Variables pinned at a
//! bound are periodically *shrunk* out of the working set (the standard
//! LIBSVM heuristic); before the solver accepts convergence of a shrunk
//! problem it restores every variable and re-checks the stopping criterion
//! on the full set, so the returned solution always satisfies the global
//! KKT tolerance.
//!
//! The solver supports **warm starts** through
//! [`SmoProblem::initial_alpha`]: any box-feasible starting point is
//! accepted, and a start near the optimum (for example the projected
//! solution of a closely related problem) converges in a small fraction of
//! the cold-start iterations.

use crate::{Result, SvmError};

/// Value used in place of a non-positive second derivative of the
/// two-variable sub-problem (guards against a numerically indefinite kernel).
const TAU: f64 = 1e-12;

/// Warm-start gradient rows fetched per batched [`QMatrix::rows`] call.
const WARM_ROW_BLOCK: usize = 8;

/// Abstract view of the `Q` matrix (`Q[i][j] = y_i y_j K(i, j)`).
///
/// Implementations compute rows on demand; the solver caches recently used
/// rows internally so implementations can stay simple.
pub trait QMatrix {
    /// Number of optimization variables.
    fn len(&self) -> usize;

    /// Returns `true` when the problem has no variables.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes row `i` of `Q` into `out` (which has length [`QMatrix::len`]).
    fn row(&self, i: usize, out: &mut [f64]);

    /// Writes every row of `indices` into `out`, row `r` occupying
    /// `out[r * len .. (r + 1) * len]`.
    ///
    /// Must be element-for-element identical to calling [`QMatrix::row`]
    /// once per index in order — the default does exactly that.
    /// Implementations backed by a batched kernel engine override it to
    /// amortize memory traffic across the rows (used by the solver's
    /// warm-start gradient reconstruction, which touches one row per
    /// initially non-zero variable).
    fn rows(&self, indices: &[usize], out: &mut [f64]) {
        let n = self.len();
        debug_assert_eq!(out.len(), indices.len() * n);
        for (row, &i) in out.chunks_exact_mut(n).zip(indices) {
            self.row(i, row);
        }
    }

    /// Diagonal entry `Q[i][i]`.
    fn diag(&self, i: usize) -> f64;
}

/// Solver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoParams {
    /// Stopping tolerance on the maximal KKT violation (LIBSVM default 1e-3).
    /// Must be finite and strictly positive: a NaN tolerance would silently
    /// disable the stopping test (`gap <= NaN` is always false) and burn the
    /// whole iteration budget.
    pub tolerance: f64,
    /// Hard cap on the number of SMO iterations (must be non-zero).
    pub max_iterations: usize,
    /// Number of `Q` rows kept in the internal cache (must be non-zero; the
    /// solver raises it to at least 2 so the active pair always fits).
    pub cache_rows: usize,
}

impl Default for SmoParams {
    fn default() -> Self {
        SmoParams { tolerance: 1e-3, max_iterations: 200_000, cache_rows: 512 }
    }
}

/// Description of one dual problem instance.
#[derive(Debug, Clone)]
pub struct SmoProblem {
    /// Sign of each variable in the equality constraint (`+1` or `-1`).
    pub y: Vec<f64>,
    /// Linear term of the objective.
    pub p: Vec<f64>,
    /// Upper bound of each variable (per-variable `C`).
    pub upper_bound: Vec<f64>,
    /// Initial values of the variables.  All zero for a cold start; a warm
    /// start supplies a box-feasible point (each entry in `[0, C_i]`), and
    /// the implied equality-constraint value `y' a` is preserved by the
    /// solver, so warm starts must also repair `y' a` to the target value
    /// before solving.
    pub initial_alpha: Vec<f64>,
}

/// Redistributes `alpha` so that `y' alpha == 0` while keeping every entry
/// inside its `[0, C]` box.  Used by warm starts that project the solution
/// of a related problem onto a new feasible region.
///
/// The heavier side is first scaled down proportionally — preserving the
/// *shape* of the projected solution, which matters for warm-start quality —
/// and the last floating-point crumbs of the surplus are then drained from
/// individual entries in index order so the constraint holds to the last
/// bit.  Both moves only shrink entries toward zero, so the box is never
/// left.
pub(crate) fn repair_equality_constraint(alpha: &mut [f64], y: &[f64]) {
    let surplus: f64 = alpha.iter().zip(y).map(|(&a, &sign)| a * sign).sum();
    if surplus != 0.0 {
        let heavy: f64 =
            alpha.iter().zip(y).filter(|&(_, &sign)| sign * surplus > 0.0).map(|(&a, _)| a).sum();
        if heavy > 0.0 {
            let factor = ((heavy - surplus.abs()) / heavy).max(0.0);
            for (a, &sign) in alpha.iter_mut().zip(y) {
                if sign * surplus > 0.0 {
                    *a *= factor;
                }
            }
        }
    }
    // Proportional scaling leaves a rounding-level residual; drain it.
    let mut residual: f64 = alpha.iter().zip(y).map(|(&a, &sign)| a * sign).sum();
    for (a, &sign) in alpha.iter_mut().zip(y) {
        if residual == 0.0 {
            break;
        }
        if *a > 0.0 && sign * residual > 0.0 {
            let take = (*a).min(residual.abs());
            *a -= take;
            residual -= sign * take;
        }
    }
}

/// Result of a successful SMO run.
#[derive(Debug, Clone)]
pub struct SmoSolution {
    /// Optimal dual variables.
    pub alpha: Vec<f64>,
    /// Offset `rho` of the decision function (`f(x) = sum_i a_i y_i K(x_i,x) - rho`).
    pub rho: f64,
    /// Final objective value.
    pub objective: f64,
    /// Iterations performed.
    pub iterations: usize,
}

/// LRU row cache keyed by row index.
///
/// Every access refreshes a row's recency stamp, so the rows of the current
/// working pair — touched on every iteration — survive arbitrary cache
/// pressure while cold rows are evicted first.  (The pre-0.4 cache evicted
/// in pure FIFO insertion order, which could throw out the two hot rows
/// while one-shot rows survived.)
///
/// Residency ([`RowCache::ensure`]) is separated from access
/// ([`RowCache::row`]) so the solver can hold shared borrows of several rows
/// at once instead of copying them out.
struct RowCache {
    capacity: usize,
    clock: u64,
    resident: usize,
    /// One slot per row: `(last-use stamp, row values)` when resident.
    rows: Vec<Option<(u64, Vec<f64>)>>,
}

impl RowCache {
    fn new(capacity: usize, n: usize) -> Self {
        RowCache { capacity: capacity.max(2), clock: 0, resident: 0, rows: vec![None; n] }
    }

    /// Makes row `i` resident (computing it if needed, evicting the
    /// least-recently-used row when at capacity) and refreshes its recency.
    fn ensure<Q: QMatrix>(&mut self, q: &Q, i: usize) {
        self.clock += 1;
        if let Some((stamp, _)) = self.rows[i].as_mut() {
            *stamp = self.clock;
            return;
        }
        if self.resident >= self.capacity {
            let evict = self
                .rows
                .iter()
                .enumerate()
                .filter_map(|(t, slot)| slot.as_ref().map(|(stamp, _)| (*stamp, t)))
                .min()
                .map(|(_, t)| t)
                .expect("a full cache has a least-recently-used row");
            self.rows[evict] = None;
            self.resident -= 1;
        }
        let mut row = vec![0.0; q.len()];
        q.row(i, &mut row);
        self.rows[i] = Some((self.clock, row));
        self.resident += 1;
    }

    /// Makes every row of `batch` resident with one batched
    /// [`QMatrix::rows`] fetch for the misses.
    ///
    /// Bookkeeping — recency stamps, eviction order, resident set — is
    /// identical to calling [`RowCache::ensure`] on each index in order,
    /// because the fetch is a pure function of the index and only the
    /// insertion order touches the cache state.  `batch` must hold distinct
    /// indices and be no longer than the cache capacity (so no row of the
    /// batch can evict another).
    fn ensure_batch<Q: QMatrix>(&mut self, q: &Q, batch: &[usize]) {
        debug_assert!(batch.len() <= self.capacity);
        let misses: Vec<usize> =
            batch.iter().copied().filter(|&i| self.rows[i].is_none()).collect();
        let mut fetched = vec![0.0; misses.len() * q.len()];
        q.rows(&misses, &mut fetched);
        let mut chunks = fetched.chunks_exact(q.len());
        for &i in batch {
            self.clock += 1;
            if let Some((stamp, _)) = self.rows[i].as_mut() {
                *stamp = self.clock;
                continue;
            }
            if self.resident >= self.capacity {
                let evict = self
                    .rows
                    .iter()
                    .enumerate()
                    .filter_map(|(t, slot)| slot.as_ref().map(|(stamp, _)| (*stamp, t)))
                    .min()
                    .map(|(_, t)| t)
                    .expect("a full cache has a least-recently-used row");
                self.rows[evict] = None;
                self.resident -= 1;
            }
            let row = chunks.next().expect("one fetched row per miss").to_vec();
            self.rows[i] = Some((self.clock, row));
            self.resident += 1;
        }
    }

    /// Borrows a row previously made resident with [`RowCache::ensure`].
    ///
    /// # Panics
    ///
    /// Panics if the row is not resident.
    fn row(&self, i: usize) -> &[f64] {
        self.rows[i].as_ref().map(|(_, row)| row.as_slice()).expect("row is resident")
    }
}

/// Validates the solver configuration.
fn validate_params(params: &SmoParams) -> Result<()> {
    if !(params.tolerance > 0.0 && params.tolerance.is_finite()) {
        return Err(SvmError::InvalidParameter { name: "tolerance", value: params.tolerance });
    }
    if params.max_iterations == 0 {
        return Err(SvmError::InvalidParameter { name: "max_iterations", value: 0.0 });
    }
    if params.cache_rows == 0 {
        return Err(SvmError::InvalidParameter { name: "cache_rows", value: 0.0 });
    }
    Ok(())
}

/// Solves the dual problem.
///
/// The equality-constraint constant `delta` is *implied by the starting
/// point* (`delta = y' initial_alpha`) and preserved by every pair update:
/// a cold start solves the `delta = 0` problem of the SVC/SVR duals, and a
/// warm start must repair its projected alphas to the intended constant
/// (see [`SmoProblem::initial_alpha`]) — the solver cannot distinguish a
/// deliberate non-zero `delta` from an unrepaired one.
///
/// # Errors
///
/// Returns [`SvmError::EmptyDataset`] for a zero-variable problem,
/// [`SvmError::InvalidParameter`] if the problem vectors have inconsistent
/// lengths, if a solver parameter is outside its domain (non-finite or
/// non-positive `tolerance`, zero `max_iterations` or `cache_rows`) or if
/// the starting point is not box-feasible, and [`SvmError::NotConverged`] if
/// the iteration budget is exhausted before the KKT conditions are met.
pub fn solve<Q: QMatrix>(q: &Q, problem: &SmoProblem, params: &SmoParams) -> Result<SmoSolution> {
    let n = q.len();
    if n == 0 {
        return Err(SvmError::EmptyDataset);
    }
    if problem.y.len() != n
        || problem.p.len() != n
        || problem.upper_bound.len() != n
        || problem.initial_alpha.len() != n
    {
        return Err(SvmError::InvalidParameter { name: "problem size", value: n as f64 });
    }
    validate_params(params)?;
    for (&a, &upper) in problem.initial_alpha.iter().zip(problem.upper_bound.iter()) {
        if !(a >= 0.0 && a <= upper) {
            return Err(SvmError::InvalidParameter { name: "initial_alpha", value: a });
        }
    }

    let y = &problem.y;
    let p = &problem.p;
    let c = &problem.upper_bound;
    let mut alpha = problem.initial_alpha.clone();
    let mut cache = RowCache::new(params.cache_rows, n);

    // Gradient of the objective: G_t = sum_s Q[t][s] alpha_s + p_t.  For a
    // cold start this is just `p`; a warm start pays one row per initially
    // non-zero variable, which a start near the optimum amortises many times
    // over in saved iterations.
    let mut grad: Vec<f64> = p.clone();
    let warm_rows: Vec<usize> =
        alpha.iter().enumerate().filter(|(_, &a)| a != 0.0).map(|(s, _)| s).collect();
    let warm = !warm_rows.is_empty();
    // Rows are fetched in blocks through `QMatrix::rows` so a batched
    // backend amortizes its column traffic; the block never exceeds the
    // cache capacity, so every row of a block is still resident when its
    // gradient contribution is accumulated.
    for block in warm_rows.chunks(WARM_ROW_BLOCK.min(cache.capacity)) {
        cache.ensure_batch(q, block);
        for &s in block {
            let alpha_s = alpha[s];
            let row = cache.row(s);
            for (g, &value) in grad.iter_mut().zip(row.iter()) {
                *g += value * alpha_s;
            }
        }
    }

    // A projected warm start can land *uphill* of the zero start when the
    // related problem it came from differs too much.  The objective along
    // the ray `t * alpha0` is the exact quadratic `0.5 t^2 (a'Qa) + t (p'a)`
    // and the gradient rescales linearly along it, so the best point of the
    // segment — cold start, full warm start, or anywhere between — costs
    // nothing beyond the gradient already computed.  Scaling preserves the
    // box (t <= 1) and, for the zero-delta problems warm starts arise from
    // (`y' a = 0`), the equality constraint.
    if warm {
        let delta: f64 = alpha.iter().zip(y.iter()).map(|(&a, &sign)| a * sign).sum();
        let quadratic: f64 =
            alpha.iter().zip(grad.iter().zip(p.iter())).map(|(&a, (&g, &pp))| a * (g - pp)).sum();
        let linear: f64 = alpha.iter().zip(p.iter()).map(|(&a, &pp)| a * pp).sum();
        if delta.abs() < 1e-9 {
            let t = if quadratic > 0.0 {
                (-linear / quadratic).clamp(0.0, 1.0)
            } else if linear >= 0.0 {
                0.0
            } else {
                1.0
            };
            if t < 1.0 {
                for a in alpha.iter_mut() {
                    *a *= t;
                }
                for (g, &pp) in grad.iter_mut().zip(p.iter()) {
                    *g = t * (*g - pp) + pp;
                }
            }
        }
    }

    // Shrinking (LIBSVM heuristic): variables pinned at a bound whose
    // gradient keeps them out of every violating pair are periodically
    // dropped from the selection scan.  Gradients are maintained for all
    // variables, so restoring the full set is free and convergence is always
    // re-verified on the full problem before the solver returns.
    let mut active: Vec<usize> = (0..n).collect();
    let shrink_interval = n.clamp(1, 1000);
    let mut since_shrink = 0usize;

    let mut iterations = 0;
    loop {
        // Working-set selection, first pass: the maximal violator `i` over
        // the active set's "up" index set, plus the minimal "low" value for
        // the stopping test (`m(a) - M(a) <= tolerance`, Keerthi et al.).
        let mut g_max = f64::NEG_INFINITY;
        let mut g_min = f64::INFINITY;
        let mut i_sel: Option<usize> = None;
        let mut low_sel: Option<usize> = None;
        for &t in &active {
            let value = -y[t] * grad[t];
            let in_up = (y[t] > 0.0 && alpha[t] < c[t]) || (y[t] < 0.0 && alpha[t] > 0.0);
            let in_low = (y[t] > 0.0 && alpha[t] > 0.0) || (y[t] < 0.0 && alpha[t] < c[t]);
            if in_up && value > g_max {
                g_max = value;
                i_sel = Some(t);
            }
            if in_low && value < g_min {
                g_min = value;
                low_sel = Some(t);
            }
        }

        // `None` pair: every variable is stuck at a bound in a way that
        // leaves one of the index sets empty — the current point is optimal
        // for the feasible region.
        let converged = match (i_sel, low_sel) {
            (Some(_), Some(_)) => g_max - g_min <= params.tolerance,
            _ => true,
        };
        if converged {
            if active.len() == n {
                break;
            }
            // The *shrunk* problem converged; restore every variable and
            // re-check optimality on the full set before accepting.
            active = (0..n).collect();
            since_shrink = 0;
            continue;
        }
        let i = i_sel.expect("pair exists");

        if iterations >= params.max_iterations {
            return Err(SvmError::NotConverged { iterations });
        }
        iterations += 1;

        // Second pass: second-order selection of `j` (LIBSVM's WSS 2).
        // Among the "low" variables violating against `i`, pick the one whose
        // two-variable sub-problem yields the largest objective decrease
        // `(g_max - value_t)^2 / a_it` — far fewer iterations than the
        // first-order maximal-violating-pair rule, especially from a
        // warm-started point whose remaining violations are diffuse.
        cache.ensure(q, i);
        let j = {
            let q_i = cache.row(i);
            let diag_i = q.diag(i);
            let mut j_sel: Option<usize> = None;
            let mut best_gain = f64::NEG_INFINITY;
            for &t in &active {
                let in_low = (y[t] > 0.0 && alpha[t] > 0.0) || (y[t] < 0.0 && alpha[t] < c[t]);
                if !in_low {
                    continue;
                }
                let grad_diff = g_max + y[t] * grad[t];
                if grad_diff <= 0.0 {
                    continue;
                }
                // `a_it = K_ii + K_tt - 2 K_it`; `Q[i][t] = y_i y_t K_it`.
                let mut quad = diag_i + q.diag(t) - 2.0 * y[i] * y[t] * q_i[t];
                if quad <= 0.0 {
                    quad = TAU;
                }
                let gain = grad_diff * grad_diff / quad;
                if gain > best_gain {
                    best_gain = gain;
                    j_sel = Some(t);
                }
            }
            // The stopping test failed, so the minimal "low" value violates
            // against `i` by more than the tolerance and is always a valid
            // fallback candidate.
            j_sel.or(low_sel).expect("a violating pair exists")
        };

        // Periodically shrink bound variables that cannot join a violating
        // pair (their `value` lies strictly outside the current
        // `[g_min, g_max]` violation window on their only side).
        since_shrink += 1;
        if since_shrink >= shrink_interval {
            since_shrink = 0;
            active.retain(|&t| {
                let value = -y[t] * grad[t];
                let in_up = (y[t] > 0.0 && alpha[t] < c[t]) || (y[t] < 0.0 && alpha[t] > 0.0);
                let in_low = (y[t] > 0.0 && alpha[t] > 0.0) || (y[t] < 0.0 && alpha[t] < c[t]);
                match (in_up, in_low) {
                    (true, true) => true,
                    (true, false) => value >= g_min,
                    (false, true) => value <= g_max,
                    (false, false) => false,
                }
            });
        }

        cache.ensure(q, j);
        cache.ensure(q, i);
        let (q_i, q_j) = (cache.row(i), cache.row(j));
        let old_ai = alpha[i];
        let old_aj = alpha[j];

        if (y[i] - y[j]).abs() > f64::EPSILON {
            // Opposite signs.
            let mut quad = q.diag(i) + q.diag(j) + 2.0 * q_i[j];
            if quad <= 0.0 {
                quad = TAU;
            }
            let delta = (-grad[i] - grad[j]) / quad;
            let diff = alpha[i] - alpha[j];
            alpha[i] += delta;
            alpha[j] += delta;
            if diff > 0.0 {
                if alpha[j] < 0.0 {
                    alpha[j] = 0.0;
                    alpha[i] = diff;
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = -diff;
            }
            if diff > c[i] - c[j] {
                if alpha[i] > c[i] {
                    alpha[i] = c[i];
                    alpha[j] = c[i] - diff;
                }
            } else if alpha[j] > c[j] {
                alpha[j] = c[j];
                alpha[i] = c[j] + diff;
            }
        } else {
            // Same sign.
            let mut quad = q.diag(i) + q.diag(j) - 2.0 * q_i[j];
            if quad <= 0.0 {
                quad = TAU;
            }
            let delta = (grad[i] - grad[j]) / quad;
            let sum = alpha[i] + alpha[j];
            alpha[i] -= delta;
            alpha[j] += delta;
            if sum > c[i] {
                if alpha[i] > c[i] {
                    alpha[i] = c[i];
                    alpha[j] = sum - c[i];
                }
            } else if alpha[j] < 0.0 {
                alpha[j] = 0.0;
                alpha[i] = sum;
            }
            if sum > c[j] {
                if alpha[j] > c[j] {
                    alpha[j] = c[j];
                    alpha[i] = sum - c[j];
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = sum;
            }
        }

        let delta_i = alpha[i] - old_ai;
        let delta_j = alpha[j] - old_aj;
        if delta_i == 0.0 && delta_j == 0.0 {
            // Numerically stuck pair; the violating gap is below what the
            // arithmetic can resolve.  Restore any shrunk variables first so
            // the conclusion is reached on the full problem.
            if active.len() == n {
                break;
            }
            active = (0..n).collect();
            since_shrink = 0;
            continue;
        }
        for t in 0..n {
            grad[t] += q_i[t] * delta_i + q_j[t] * delta_j;
        }
    }

    // rho (decision-function offset).
    let mut upper = f64::INFINITY;
    let mut lower = f64::NEG_INFINITY;
    let mut sum_free = 0.0;
    let mut count_free = 0usize;
    for t in 0..n {
        let yg = y[t] * grad[t];
        if alpha[t] >= c[t] - f64::EPSILON {
            if y[t] < 0.0 {
                upper = upper.min(yg);
            } else {
                lower = lower.max(yg);
            }
        } else if alpha[t] <= f64::EPSILON {
            if y[t] > 0.0 {
                upper = upper.min(yg);
            } else {
                lower = lower.max(yg);
            }
        } else {
            count_free += 1;
            sum_free += yg;
        }
    }
    let rho = if count_free > 0 {
        sum_free / count_free as f64
    } else if upper.is_finite() && lower.is_finite() {
        (upper + lower) / 2.0
    } else if upper.is_finite() {
        upper
    } else if lower.is_finite() {
        lower
    } else {
        0.0
    };

    // Objective value: 0.5 * a'(G + p) = 0.5 * (a'Qa) + a'p + 0.5*a'p - 0.5*a'p
    let objective = 0.5
        * alpha
            .iter()
            .zip(grad.iter().zip(p.iter()))
            .map(|(&a, (&g, &pp))| a * (g + pp))
            .sum::<f64>();

    Ok(SmoSolution { alpha, rho, objective, iterations })
}

/// Dense `Q` matrix backed by an explicit kernel evaluation closure.
///
/// Useful for tests and small problems; the SVC/SVR wrappers provide their own
/// implementations that work directly from datasets.
pub struct DenseQ {
    n: usize,
    values: Vec<f64>,
}

impl DenseQ {
    /// Builds the full matrix from `q(i, j)`.
    pub fn from_fn<F: Fn(usize, usize) -> f64>(n: usize, q: F) -> Self {
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = q(i, j);
            }
        }
        DenseQ { n, values }
    }
}

impl QMatrix for DenseQ {
    fn len(&self) -> usize {
        self.n
    }

    fn row(&self, i: usize, out: &mut [f64]) {
        out.copy_from_slice(&self.values[i * self.n..(i + 1) * self.n]);
    }

    fn diag(&self, i: usize) -> f64 {
        self.values[i * self.n + i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kernel;

    /// Tiny hand-checkable SVC problem: two points at -1 and +1 on a line.
    /// The optimal separating hyperplane is x = 0 with margin 1, which for the
    /// linear kernel gives alpha_1 = alpha_2 = 0.5 (when C is large).
    #[test]
    fn two_point_classification_recovers_known_alphas() {
        let xs = [vec![-1.0], vec![1.0]];
        let ys = [-1.0, 1.0];
        let kernel = Kernel::linear();
        let q = DenseQ::from_fn(2, |i, j| ys[i] * ys[j] * kernel.eval(&xs[i], &xs[j]));
        let problem = SmoProblem {
            y: ys.to_vec(),
            p: vec![-1.0; 2],
            upper_bound: vec![100.0; 2],
            initial_alpha: vec![0.0; 2],
        };
        let solution = solve(&q, &problem, &SmoParams::default()).unwrap();
        assert!((solution.alpha[0] - 0.5).abs() < 1e-3, "{:?}", solution.alpha);
        assert!((solution.alpha[1] - 0.5).abs() < 1e-3);
        // Decision boundary exactly between the points => rho = 0.
        assert!(solution.rho.abs() < 1e-6);
    }

    #[test]
    fn equality_constraint_is_preserved() {
        // Four points, alternating labels.
        let xs = [vec![0.0], vec![0.4], vec![0.6], vec![1.0]];
        let ys = [-1.0, -1.0, 1.0, 1.0];
        let kernel = Kernel::rbf(1.0);
        let q = DenseQ::from_fn(4, |i, j| ys[i] * ys[j] * kernel.eval(&xs[i], &xs[j]));
        let problem = SmoProblem {
            y: ys.to_vec(),
            p: vec![-1.0; 4],
            upper_bound: vec![10.0; 4],
            initial_alpha: vec![0.0; 4],
        };
        let solution = solve(&q, &problem, &SmoParams::default()).unwrap();
        let balance: f64 = solution.alpha.iter().zip(ys.iter()).map(|(a, y)| a * y).sum();
        assert!(balance.abs() < 1e-9, "constraint violated: {balance}");
        for (a, &c) in solution.alpha.iter().zip(problem.upper_bound.iter()) {
            assert!(*a >= -1e-12 && *a <= c + 1e-12);
        }
    }

    #[test]
    fn empty_problem_is_rejected() {
        let q = DenseQ::from_fn(0, |_, _| 0.0);
        let problem =
            SmoProblem { y: vec![], p: vec![], upper_bound: vec![], initial_alpha: vec![] };
        assert!(matches!(solve(&q, &problem, &SmoParams::default()), Err(SvmError::EmptyDataset)));
    }

    #[test]
    fn inconsistent_lengths_are_rejected() {
        let q = DenseQ::from_fn(2, |_, _| 1.0);
        let problem = SmoProblem {
            y: vec![1.0, -1.0],
            p: vec![-1.0],
            upper_bound: vec![1.0, 1.0],
            initial_alpha: vec![0.0, 0.0],
        };
        assert!(solve(&q, &problem, &SmoParams::default()).is_err());
    }

    fn tiny_problem() -> (DenseQ, SmoProblem) {
        let q = DenseQ::from_fn(2, |i, j| if i == j { 1.0 } else { 0.0 });
        let problem = SmoProblem {
            y: vec![1.0, -1.0],
            p: vec![-1.0, -1.0],
            upper_bound: vec![1.0, 1.0],
            initial_alpha: vec![0.0, 0.0],
        };
        (q, problem)
    }

    #[test]
    fn bad_tolerance_is_rejected() {
        let (q, problem) = tiny_problem();
        for tolerance in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let params = SmoParams { tolerance, ..SmoParams::default() };
            assert!(
                matches!(
                    solve(&q, &problem, &params),
                    Err(SvmError::InvalidParameter { name: "tolerance", .. })
                ),
                "tolerance {tolerance} must be rejected"
            );
        }
    }

    /// Regression test: a NaN tolerance used to pass the `<= 0.0` validation
    /// and silently disable the stopping test (`gap <= NaN` is always
    /// false), burning the entire iteration budget before failing with
    /// `NotConverged`.  It must be rejected up front instead.
    #[test]
    fn nan_tolerance_fails_fast_instead_of_burning_the_budget() {
        let (q, problem) = tiny_problem();
        let params = SmoParams { tolerance: f64::NAN, ..SmoParams::default() };
        match solve(&q, &problem, &params) {
            Err(SvmError::InvalidParameter { name: "tolerance", value }) => {
                assert!(value.is_nan());
            }
            other => panic!("expected InvalidParameter, got {other:?}"),
        }
    }

    #[test]
    fn zero_iteration_budget_and_zero_cache_are_rejected() {
        let (q, problem) = tiny_problem();
        let no_budget = SmoParams { max_iterations: 0, ..SmoParams::default() };
        assert!(matches!(
            solve(&q, &problem, &no_budget),
            Err(SvmError::InvalidParameter { name: "max_iterations", .. })
        ));
        let no_cache = SmoParams { cache_rows: 0, ..SmoParams::default() };
        assert!(matches!(
            solve(&q, &problem, &no_cache),
            Err(SvmError::InvalidParameter { name: "cache_rows", .. })
        ));
    }

    #[test]
    fn box_infeasible_starting_points_are_rejected() {
        let (q, mut problem) = tiny_problem();
        problem.initial_alpha = vec![-0.1, 0.0];
        assert!(matches!(
            solve(&q, &problem, &SmoParams::default()),
            Err(SvmError::InvalidParameter { name: "initial_alpha", .. })
        ));
        problem.initial_alpha = vec![0.0, 1.5];
        assert!(solve(&q, &problem, &SmoParams::default()).is_err());
        problem.initial_alpha = vec![f64::NAN, 0.0];
        assert!(solve(&q, &problem, &SmoParams::default()).is_err());
    }

    #[test]
    fn iteration_budget_is_enforced() {
        // A moderately sized separable problem with a budget of one iteration
        // cannot converge.
        let n = 40;
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let ys: Vec<f64> = (0..n).map(|i| if i < n / 2 { -1.0 } else { 1.0 }).collect();
        let kernel = Kernel::rbf(5.0);
        let q = DenseQ::from_fn(n, |i, j| ys[i] * ys[j] * kernel.eval(&xs[i], &xs[j]));
        let problem = SmoProblem {
            y: ys,
            p: vec![-1.0; n],
            upper_bound: vec![10.0; n],
            initial_alpha: vec![0.0; n],
        };
        let params = SmoParams { max_iterations: 1, ..SmoParams::default() };
        assert!(matches!(solve(&q, &problem, &params), Err(SvmError::NotConverged { .. })));
    }

    /// Regression test: the pre-0.4 row cache evicted in pure FIFO insertion
    /// order without refreshing recency, so a row touched on every access
    /// could be evicted while one-shot rows survived.  Eviction is LRU now.
    #[test]
    fn row_cache_keeps_hot_rows_under_pressure() {
        let q = DenseQ::from_fn(8, |i, j| (i * 8 + j) as f64);
        let mut cache = RowCache::new(2, 8);
        cache.ensure(&q, 0); // hot row
        cache.ensure(&q, 1);
        for cold in 2..8 {
            // Touch the hot row, then fault in a cold one: the cold rows must
            // evict each other while row 0 stays resident throughout.
            cache.ensure(&q, 0);
            cache.ensure(&q, cold);
            assert!(cache.rows[0].is_some(), "hot row evicted by cold row {cold}");
            assert_eq!(cache.row(0)[3], 3.0);
        }
        // Only the capacity's worth of rows is resident.
        assert_eq!(cache.resident, 2);
        assert_eq!(cache.rows.iter().filter(|slot| slot.is_some()).count(), 2);
    }

    /// The two rows of the working pair are touched every iteration, so even
    /// a minimal cache must not recompute them per iteration: the number of
    /// `QMatrix::row` evaluations stays far below one per iteration.
    #[test]
    fn hot_rows_are_not_recomputed_every_iteration() {
        use std::cell::Cell;

        struct CountingQ {
            inner: DenseQ,
            row_calls: Cell<usize>,
        }
        impl QMatrix for CountingQ {
            fn len(&self) -> usize {
                self.inner.len()
            }
            fn row(&self, i: usize, out: &mut [f64]) {
                self.row_calls.set(self.row_calls.get() + 1);
                self.inner.row(i, out);
            }
            fn diag(&self, i: usize) -> f64 {
                self.inner.diag(i)
            }
        }

        let n = 60;
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![(i as f64 / n as f64).sin()]).collect();
        let ys: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { -1.0 } else { 1.0 }).collect();
        let kernel = Kernel::rbf(4.0);
        let q = CountingQ {
            inner: DenseQ::from_fn(n, |i, j| ys[i] * ys[j] * kernel.eval(&xs[i], &xs[j])),
            row_calls: Cell::new(0),
        };
        let problem = SmoProblem {
            y: ys,
            p: vec![-1.0; n],
            upper_bound: vec![10.0; n],
            initial_alpha: vec![0.0; n],
        };
        // A cache smaller than the problem still absorbs the per-iteration
        // row traffic of the working pairs: the old per-iteration full-row
        // copies amounted to two row materialisations every iteration, while
        // the shared-borrow cache recomputes a row only on a genuine miss.
        let params = SmoParams { cache_rows: 8, ..SmoParams::default() };
        let solution = solve(&q, &problem, &params).unwrap();
        assert!(solution.iterations > 0);
        assert!(
            q.row_calls.get() <= solution.iterations + n,
            "{} row computations for {} iterations",
            q.row_calls.get(),
            solution.iterations
        );
    }

    /// Warm-starting from (a projection of) the converged solution must
    /// satisfy the stopping test essentially immediately and reproduce the
    /// same solution.
    #[test]
    fn warm_start_from_the_optimum_converges_immediately() {
        let n = 40;
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let ys: Vec<f64> = (0..n).map(|i| if i < n / 2 { -1.0 } else { 1.0 }).collect();
        let kernel = Kernel::rbf(5.0);
        let q = DenseQ::from_fn(n, |i, j| ys[i] * ys[j] * kernel.eval(&xs[i], &xs[j]));
        let cold_problem = SmoProblem {
            y: ys.clone(),
            p: vec![-1.0; n],
            upper_bound: vec![10.0; n],
            initial_alpha: vec![0.0; n],
        };
        let cold = solve(&q, &cold_problem, &SmoParams::default()).unwrap();
        assert!(cold.iterations > 0);

        let warm_problem = SmoProblem { initial_alpha: cold.alpha.clone(), ..cold_problem };
        let warm = solve(&q, &warm_problem, &SmoParams::default()).unwrap();
        assert_eq!(warm.iterations, 0, "restart from the optimum must not iterate");
        assert_eq!(warm.alpha, cold.alpha);
        assert!((warm.objective - cold.objective).abs() < 1e-9);
    }

    /// The equality-constraint repair drains surplus while staying in the
    /// box, whatever the surplus sign.  (The balance lands within absorption
    /// distance of zero — the last crumbs of the residual can be smaller
    /// than one ulp of the entries they are drained from.)
    #[test]
    fn equality_repair_restores_feasibility() {
        let y = [1.0, 1.0, -1.0, -1.0];
        let mut alpha = [0.9, 0.4, 0.2, 0.1];
        repair_equality_constraint(&mut alpha, &y);
        let balance: f64 = alpha.iter().zip(y.iter()).map(|(a, s)| a * s).sum();
        assert!(balance.abs() < 1e-12, "balance {balance}");
        assert!(alpha.iter().all(|&a| (0.0..=1.0).contains(&a)));
        // The lighter side is untouched.
        assert_eq!(&alpha[2..], &[0.2, 0.1]);

        let mut negative_surplus = [0.1, 0.0, 0.8, 0.5];
        repair_equality_constraint(&mut negative_surplus, &y);
        let balance: f64 = negative_surplus.iter().zip(y.iter()).map(|(a, s)| a * s).sum();
        assert!(balance.abs() < 1e-12, "balance {balance}");
        assert!(negative_surplus.iter().all(|&a| (0.0..=1.0).contains(&a)));
    }

    #[test]
    fn objective_decreases_with_more_freedom() {
        // With larger C the optimum can only get better (more feasible space).
        let xs = [vec![0.0], vec![0.3], vec![0.7], vec![1.0]];
        let ys = [-1.0, 1.0, -1.0, 1.0];
        let kernel = Kernel::rbf(2.0);
        let q = DenseQ::from_fn(4, |i, j| ys[i] * ys[j] * kernel.eval(&xs[i], &xs[j]));
        let solve_with_c = |c: f64| {
            let problem = SmoProblem {
                y: ys.to_vec(),
                p: vec![-1.0; 4],
                upper_bound: vec![c; 4],
                initial_alpha: vec![0.0; 4],
            };
            solve(&q, &problem, &SmoParams::default()).unwrap().objective
        };
        assert!(solve_with_c(10.0) <= solve_with_c(0.5) + 1e-9);
    }
}
