//! Sequential minimal optimization (SMO) solver.
//!
//! This is a LIBSVM-style dual solver for problems of the form
//!
//! ```text
//! minimize    0.5 * a' Q a + p' a
//! subject to  y' a = delta,   0 <= a_i <= C_i
//! ```
//!
//! where `Q[i][j] = y_i * y_j * K(x_i, x_j)`.  Both the C-SVC classifier
//! ([`crate::Svc`]) and the ε-SVR regressor ([`crate::Svr`]) reduce their dual
//! problems to this form and share the solver.
//!
//! The working-set selection uses the classical *maximal violating pair*
//! heuristic; the stopping criterion is the duality-gap surrogate
//! `m(a) - M(a) <= tolerance` from Keerthi et al.

use std::collections::VecDeque;

use crate::{Result, SvmError};

/// Value used in place of a non-positive second derivative of the
/// two-variable sub-problem (guards against a numerically indefinite kernel).
const TAU: f64 = 1e-12;

/// Abstract view of the `Q` matrix (`Q[i][j] = y_i y_j K(i, j)`).
///
/// Implementations compute rows on demand; the solver caches recently used
/// rows internally so implementations can stay simple.
pub trait QMatrix {
    /// Number of optimization variables.
    fn len(&self) -> usize;

    /// Returns `true` when the problem has no variables.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes row `i` of `Q` into `out` (which has length [`QMatrix::len`]).
    fn row(&self, i: usize, out: &mut [f64]);

    /// Diagonal entry `Q[i][i]`.
    fn diag(&self, i: usize) -> f64;
}

/// Solver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoParams {
    /// Stopping tolerance on the maximal KKT violation (LIBSVM default 1e-3).
    pub tolerance: f64,
    /// Hard cap on the number of SMO iterations.
    pub max_iterations: usize,
    /// Number of `Q` rows kept in the internal cache.
    pub cache_rows: usize,
}

impl Default for SmoParams {
    fn default() -> Self {
        SmoParams { tolerance: 1e-3, max_iterations: 200_000, cache_rows: 512 }
    }
}

/// Description of one dual problem instance.
#[derive(Debug, Clone)]
pub struct SmoProblem {
    /// Sign of each variable in the equality constraint (`+1` or `-1`).
    pub y: Vec<f64>,
    /// Linear term of the objective.
    pub p: Vec<f64>,
    /// Upper bound of each variable (per-variable `C`).
    pub upper_bound: Vec<f64>,
    /// Initial values of the variables (usually all zero).
    pub initial_alpha: Vec<f64>,
}

/// Result of a successful SMO run.
#[derive(Debug, Clone)]
pub struct SmoSolution {
    /// Optimal dual variables.
    pub alpha: Vec<f64>,
    /// Offset `rho` of the decision function (`f(x) = sum_i a_i y_i K(x_i,x) - rho`).
    pub rho: f64,
    /// Final objective value.
    pub objective: f64,
    /// Iterations performed.
    pub iterations: usize,
}

/// Simple FIFO row cache keyed by row index.
struct RowCache {
    capacity: usize,
    order: VecDeque<usize>,
    rows: Vec<Option<Vec<f64>>>,
}

impl RowCache {
    fn new(capacity: usize, n: usize) -> Self {
        RowCache { capacity: capacity.max(2), order: VecDeque::new(), rows: vec![None; n] }
    }

    fn get<'a, Q: QMatrix>(&'a mut self, q: &Q, i: usize) -> &'a [f64] {
        if self.rows[i].is_none() {
            let mut row = vec![0.0; q.len()];
            q.row(i, &mut row);
            if self.order.len() >= self.capacity {
                if let Some(evicted) = self.order.pop_front() {
                    self.rows[evicted] = None;
                }
            }
            self.order.push_back(i);
            self.rows[i] = Some(row);
        }
        self.rows[i].as_deref().expect("row was just inserted")
    }
}

/// Solves the dual problem.
///
/// # Errors
///
/// Returns [`SvmError::EmptyDataset`] for a zero-variable problem,
/// [`SvmError::InvalidParameter`] if the problem vectors have inconsistent
/// lengths, and [`SvmError::NotConverged`] if the iteration budget is
/// exhausted before the KKT conditions are met.
pub fn solve<Q: QMatrix>(q: &Q, problem: &SmoProblem, params: &SmoParams) -> Result<SmoSolution> {
    let n = q.len();
    if n == 0 {
        return Err(SvmError::EmptyDataset);
    }
    if problem.y.len() != n
        || problem.p.len() != n
        || problem.upper_bound.len() != n
        || problem.initial_alpha.len() != n
    {
        return Err(SvmError::InvalidParameter { name: "problem size", value: n as f64 });
    }
    if params.tolerance <= 0.0 {
        return Err(SvmError::InvalidParameter { name: "tolerance", value: params.tolerance });
    }

    let y = &problem.y;
    let p = &problem.p;
    let c = &problem.upper_bound;
    let mut alpha = problem.initial_alpha.clone();
    let mut cache = RowCache::new(params.cache_rows, n);

    // Gradient of the objective: G_t = sum_s Q[t][s] alpha_s + p_t.
    let mut grad: Vec<f64> = p.clone();
    for (s, &alpha_s) in alpha.iter().enumerate().take(n) {
        if alpha_s != 0.0 {
            let row = cache.get(q, s).to_vec();
            for t in 0..n {
                grad[t] += row[t] * alpha_s;
            }
        }
    }

    let mut iterations = 0;
    loop {
        // Working-set selection: maximal violating pair.
        let mut g_max = f64::NEG_INFINITY;
        let mut g_min = f64::INFINITY;
        let mut i_sel: Option<usize> = None;
        let mut j_sel: Option<usize> = None;
        for t in 0..n {
            let value = -y[t] * grad[t];
            let in_up = (y[t] > 0.0 && alpha[t] < c[t]) || (y[t] < 0.0 && alpha[t] > 0.0);
            let in_low = (y[t] > 0.0 && alpha[t] > 0.0) || (y[t] < 0.0 && alpha[t] < c[t]);
            if in_up && value > g_max {
                g_max = value;
                i_sel = Some(t);
            }
            if in_low && value < g_min {
                g_min = value;
                j_sel = Some(t);
            }
        }

        let (i, j) = match (i_sel, j_sel) {
            (Some(i), Some(j)) => (i, j),
            // Degenerate case: every variable is stuck at a bound in a way that
            // leaves one of the index sets empty.  The current point is optimal
            // for the feasible region.
            _ => break,
        };

        if g_max - g_min <= params.tolerance {
            break;
        }
        if iterations >= params.max_iterations {
            return Err(SvmError::NotConverged { iterations });
        }
        iterations += 1;

        let q_i = cache.get(q, i).to_vec();
        let q_j = cache.get(q, j).to_vec();
        let old_ai = alpha[i];
        let old_aj = alpha[j];

        if (y[i] - y[j]).abs() > f64::EPSILON {
            // Opposite signs.
            let mut quad = q.diag(i) + q.diag(j) + 2.0 * q_i[j];
            if quad <= 0.0 {
                quad = TAU;
            }
            let delta = (-grad[i] - grad[j]) / quad;
            let diff = alpha[i] - alpha[j];
            alpha[i] += delta;
            alpha[j] += delta;
            if diff > 0.0 {
                if alpha[j] < 0.0 {
                    alpha[j] = 0.0;
                    alpha[i] = diff;
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = -diff;
            }
            if diff > c[i] - c[j] {
                if alpha[i] > c[i] {
                    alpha[i] = c[i];
                    alpha[j] = c[i] - diff;
                }
            } else if alpha[j] > c[j] {
                alpha[j] = c[j];
                alpha[i] = c[j] + diff;
            }
        } else {
            // Same sign.
            let mut quad = q.diag(i) + q.diag(j) - 2.0 * q_i[j];
            if quad <= 0.0 {
                quad = TAU;
            }
            let delta = (grad[i] - grad[j]) / quad;
            let sum = alpha[i] + alpha[j];
            alpha[i] -= delta;
            alpha[j] += delta;
            if sum > c[i] {
                if alpha[i] > c[i] {
                    alpha[i] = c[i];
                    alpha[j] = sum - c[i];
                }
            } else if alpha[j] < 0.0 {
                alpha[j] = 0.0;
                alpha[i] = sum;
            }
            if sum > c[j] {
                if alpha[j] > c[j] {
                    alpha[j] = c[j];
                    alpha[i] = sum - c[j];
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = sum;
            }
        }

        let delta_i = alpha[i] - old_ai;
        let delta_j = alpha[j] - old_aj;
        if delta_i == 0.0 && delta_j == 0.0 {
            // Numerically stuck pair; the violating gap is below what the
            // arithmetic can resolve.
            break;
        }
        for t in 0..n {
            grad[t] += q_i[t] * delta_i + q_j[t] * delta_j;
        }
    }

    // rho (decision-function offset).
    let mut upper = f64::INFINITY;
    let mut lower = f64::NEG_INFINITY;
    let mut sum_free = 0.0;
    let mut count_free = 0usize;
    for t in 0..n {
        let yg = y[t] * grad[t];
        if alpha[t] >= c[t] - f64::EPSILON {
            if y[t] < 0.0 {
                upper = upper.min(yg);
            } else {
                lower = lower.max(yg);
            }
        } else if alpha[t] <= f64::EPSILON {
            if y[t] > 0.0 {
                upper = upper.min(yg);
            } else {
                lower = lower.max(yg);
            }
        } else {
            count_free += 1;
            sum_free += yg;
        }
    }
    let rho = if count_free > 0 {
        sum_free / count_free as f64
    } else if upper.is_finite() && lower.is_finite() {
        (upper + lower) / 2.0
    } else if upper.is_finite() {
        upper
    } else if lower.is_finite() {
        lower
    } else {
        0.0
    };

    // Objective value: 0.5 * a'(G + p) = 0.5 * (a'Qa) + a'p + 0.5*a'p - 0.5*a'p
    let objective = 0.5
        * alpha
            .iter()
            .zip(grad.iter().zip(p.iter()))
            .map(|(&a, (&g, &pp))| a * (g + pp))
            .sum::<f64>();

    Ok(SmoSolution { alpha, rho, objective, iterations })
}

/// Dense `Q` matrix backed by an explicit kernel evaluation closure.
///
/// Useful for tests and small problems; the SVC/SVR wrappers provide their own
/// implementations that work directly from datasets.
pub struct DenseQ {
    n: usize,
    values: Vec<f64>,
}

impl DenseQ {
    /// Builds the full matrix from `q(i, j)`.
    pub fn from_fn<F: Fn(usize, usize) -> f64>(n: usize, q: F) -> Self {
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = q(i, j);
            }
        }
        DenseQ { n, values }
    }
}

impl QMatrix for DenseQ {
    fn len(&self) -> usize {
        self.n
    }

    fn row(&self, i: usize, out: &mut [f64]) {
        out.copy_from_slice(&self.values[i * self.n..(i + 1) * self.n]);
    }

    fn diag(&self, i: usize) -> f64 {
        self.values[i * self.n + i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kernel;

    /// Tiny hand-checkable SVC problem: two points at -1 and +1 on a line.
    /// The optimal separating hyperplane is x = 0 with margin 1, which for the
    /// linear kernel gives alpha_1 = alpha_2 = 0.5 (when C is large).
    #[test]
    fn two_point_classification_recovers_known_alphas() {
        let xs = [vec![-1.0], vec![1.0]];
        let ys = [-1.0, 1.0];
        let kernel = Kernel::linear();
        let q = DenseQ::from_fn(2, |i, j| ys[i] * ys[j] * kernel.eval(&xs[i], &xs[j]));
        let problem = SmoProblem {
            y: ys.to_vec(),
            p: vec![-1.0; 2],
            upper_bound: vec![100.0; 2],
            initial_alpha: vec![0.0; 2],
        };
        let solution = solve(&q, &problem, &SmoParams::default()).unwrap();
        assert!((solution.alpha[0] - 0.5).abs() < 1e-3, "{:?}", solution.alpha);
        assert!((solution.alpha[1] - 0.5).abs() < 1e-3);
        // Decision boundary exactly between the points => rho = 0.
        assert!(solution.rho.abs() < 1e-6);
    }

    #[test]
    fn equality_constraint_is_preserved() {
        // Four points, alternating labels.
        let xs = [vec![0.0], vec![0.4], vec![0.6], vec![1.0]];
        let ys = [-1.0, -1.0, 1.0, 1.0];
        let kernel = Kernel::rbf(1.0);
        let q = DenseQ::from_fn(4, |i, j| ys[i] * ys[j] * kernel.eval(&xs[i], &xs[j]));
        let problem = SmoProblem {
            y: ys.to_vec(),
            p: vec![-1.0; 4],
            upper_bound: vec![10.0; 4],
            initial_alpha: vec![0.0; 4],
        };
        let solution = solve(&q, &problem, &SmoParams::default()).unwrap();
        let balance: f64 = solution.alpha.iter().zip(ys.iter()).map(|(a, y)| a * y).sum();
        assert!(balance.abs() < 1e-9, "constraint violated: {balance}");
        for (a, &c) in solution.alpha.iter().zip(problem.upper_bound.iter()) {
            assert!(*a >= -1e-12 && *a <= c + 1e-12);
        }
    }

    #[test]
    fn empty_problem_is_rejected() {
        let q = DenseQ::from_fn(0, |_, _| 0.0);
        let problem =
            SmoProblem { y: vec![], p: vec![], upper_bound: vec![], initial_alpha: vec![] };
        assert!(matches!(solve(&q, &problem, &SmoParams::default()), Err(SvmError::EmptyDataset)));
    }

    #[test]
    fn inconsistent_lengths_are_rejected() {
        let q = DenseQ::from_fn(2, |_, _| 1.0);
        let problem = SmoProblem {
            y: vec![1.0, -1.0],
            p: vec![-1.0],
            upper_bound: vec![1.0, 1.0],
            initial_alpha: vec![0.0, 0.0],
        };
        assert!(solve(&q, &problem, &SmoParams::default()).is_err());
    }

    #[test]
    fn bad_tolerance_is_rejected() {
        let q = DenseQ::from_fn(2, |i, j| if i == j { 1.0 } else { 0.0 });
        let problem = SmoProblem {
            y: vec![1.0, -1.0],
            p: vec![-1.0, -1.0],
            upper_bound: vec![1.0, 1.0],
            initial_alpha: vec![0.0, 0.0],
        };
        let params = SmoParams { tolerance: 0.0, ..SmoParams::default() };
        assert!(solve(&q, &problem, &params).is_err());
    }

    #[test]
    fn iteration_budget_is_enforced() {
        // A moderately sized separable problem with a budget of one iteration
        // cannot converge.
        let n = 40;
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let ys: Vec<f64> = (0..n).map(|i| if i < n / 2 { -1.0 } else { 1.0 }).collect();
        let kernel = Kernel::rbf(5.0);
        let q = DenseQ::from_fn(n, |i, j| ys[i] * ys[j] * kernel.eval(&xs[i], &xs[j]));
        let problem = SmoProblem {
            y: ys,
            p: vec![-1.0; n],
            upper_bound: vec![10.0; n],
            initial_alpha: vec![0.0; n],
        };
        let params = SmoParams { max_iterations: 1, ..SmoParams::default() };
        assert!(matches!(solve(&q, &problem, &params), Err(SvmError::NotConverged { .. })));
    }

    #[test]
    fn objective_decreases_with_more_freedom() {
        // With larger C the optimum can only get better (more feasible space).
        let xs = [vec![0.0], vec![0.3], vec![0.7], vec![1.0]];
        let ys = [-1.0, 1.0, -1.0, 1.0];
        let kernel = Kernel::rbf(2.0);
        let q = DenseQ::from_fn(4, |i, j| ys[i] * ys[j] * kernel.eval(&xs[i], &xs[j]));
        let solve_with_c = |c: f64| {
            let problem = SmoProblem {
                y: ys.to_vec(),
                p: vec![-1.0; 4],
                upper_bound: vec![c; 4],
                initial_alpha: vec![0.0; 4],
            };
            solve(&q, &problem, &SmoParams::default()).unwrap().objective
        };
        assert!(solve_with_c(10.0) <= solve_with_c(0.5) + 1e-9);
    }
}
