//! Error type shared by all SVM operations.

use std::error::Error;
use std::fmt;

/// Errors produced while building datasets or training/evaluating SVM models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SvmError {
    /// A sample's feature vector length did not match the dataset dimension.
    DimensionMismatch {
        /// Dimension the dataset was created with.
        expected: usize,
        /// Dimension of the offending vector.
        found: usize,
    },
    /// The dataset dimension was zero.
    EmptyDimension,
    /// Training was attempted on an empty dataset.
    EmptyDataset,
    /// Classification training requires both a positive and a negative class.
    SingleClass,
    /// A label other than `+1`/`-1` was supplied to a classifier.
    InvalidLabel(f64),
    /// A hyper-parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the parameter (for example `"C"` or `"gamma"`).
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The SMO solver failed to converge within its iteration budget.
    NotConverged {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// Cross-validation was asked for an impossible number of folds.
    InvalidFolds {
        /// Requested number of folds.
        folds: usize,
        /// Number of available samples.
        samples: usize,
    },
    /// A feature vector contained a non-finite value.
    NonFiniteFeature {
        /// Index of the offending feature.
        index: usize,
        /// The non-finite value.
        value: f64,
    },
}

impl fmt::Display for SvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvmError::DimensionMismatch { expected, found } => {
                write!(f, "feature vector has {found} entries, expected {expected}")
            }
            SvmError::EmptyDimension => write!(f, "dataset dimension must be non-zero"),
            SvmError::EmptyDataset => write!(f, "dataset contains no samples"),
            SvmError::SingleClass => {
                write!(f, "classification requires both positive and negative samples")
            }
            SvmError::InvalidLabel(l) => {
                write!(f, "classification label must be +1 or -1, got {l}")
            }
            SvmError::InvalidParameter { name, value } => {
                write!(f, "invalid value {value} for parameter {name}")
            }
            SvmError::NotConverged { iterations } => {
                write!(f, "SMO solver did not converge after {iterations} iterations")
            }
            SvmError::InvalidFolds { folds, samples } => {
                write!(f, "cannot split {samples} samples into {folds} folds")
            }
            SvmError::NonFiniteFeature { index, value } => {
                write!(f, "feature {index} is not finite ({value})")
            }
        }
    }
}

impl Error for SvmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SvmError::DimensionMismatch { expected: 3, found: 2 };
        assert!(e.to_string().contains("expected 3"));
        let e = SvmError::InvalidParameter { name: "C", value: -1.0 };
        assert!(e.to_string().contains('C'));
        let e = SvmError::NotConverged { iterations: 10 };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SvmError>();
    }
}
