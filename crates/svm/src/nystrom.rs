//! Nyström low-rank approximate classifier — the cheap *screening* trainer.
//!
//! Training an exact C-SVM per candidate kept set makes the SMO solve the
//! dominant cost of a compaction search even with the blocked kernel engine
//! underneath.  This module provides the approximation the screen-then-verify
//! evaluation path ranks candidates with: instead of the full `n × n` kernel
//! matrix, only `m ≪ n` **landmark** rows are assembled
//! (`C[i][j] = K(l_j, x_i)`, batched through
//! [`KernelEngine::kernel_rows`]), and a regularized least-squares fit over
//! the landmark feature map
//!
//! ```text
//! f(x) = Σ_j β_j K(l_j, x) + b
//! ```
//!
//! replaces the dual solve.  This is the classic Nyström construction in its
//! *landmark-dual* parametrization: the approximate kernel
//! `K̂ = C W⁺ Cᵀ` never needs `W^{±1/2}` explicitly because the model is fit
//! (ridge-regularized) directly in the span of the landmark columns — one
//! `(m+1) × (m+1)` normal-equation solve, assembled in a single pass over
//! the landmark rows.
//!
//! The fit optimizes squared error against the `±1` labels rather than the
//! hinge loss, so decision *values* differ from the exact SVM's — but their
//! *ranking* of closely related candidate kept sets tracks the exact model
//! closely, which is all the screen needs: winners are always re-verified
//! exactly before a frontier commit.  Property tests pin sign agreement with
//! the exact model on the bundled op-amp fixture.
//!
//! # Determinism
//!
//! Landmark selection is a seeded partial Fisher–Yates draw (SplitMix64,
//! dependency-free), and every downstream step is a pure function of the
//! dataset — results never depend on thread count or timing.

use crate::engine::{KernelEngine, KernelPath};
use crate::{Dataset, Kernel, Result, SvmError};

/// Hyper-parameters for [`NystromModel::train`].
///
/// # Example
///
/// ```
/// use stc_svm::{Kernel, NystromParams};
///
/// let params = NystromParams::new()
///     .with_landmarks(24)
///     .with_kernel(Kernel::rbf(0.5));
/// assert_eq!(params.landmarks(), 24);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NystromParams {
    landmarks: usize,
    seed: u64,
    ridge: f64,
    kernel: Kernel,
    kernel_path: KernelPath,
}

impl NystromParams {
    /// Default parameters: 32 landmarks, the default RBF kernel, a small
    /// relative ridge, and a fixed seed (screening must be reproducible).
    pub fn new() -> Self {
        NystromParams {
            landmarks: 32,
            seed: 0x57C5_CEEDu64,
            ridge: 1e-6,
            kernel: Kernel::default(),
            kernel_path: KernelPath::default(),
        }
    }

    /// Sets the number of landmark samples (capped at the dataset size).
    pub fn with_landmarks(mut self, landmarks: usize) -> Self {
        self.landmarks = landmarks;
        self
    }

    /// Sets the landmark-selection seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the ridge coefficient (scaled by the sample count before being
    /// added to the normal-equation diagonal).
    pub fn with_ridge(mut self, ridge: f64) -> Self {
        self.ridge = ridge;
        self
    }

    /// Sets the kernel.
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Selects the kernel row-assembly implementation.
    pub fn with_kernel_path(mut self, kernel_path: KernelPath) -> Self {
        self.kernel_path = kernel_path;
        self
    }

    /// The configured landmark count.
    pub fn landmarks(&self) -> usize {
        self.landmarks
    }

    /// The configured kernel.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    fn validate(&self) -> Result<()> {
        if self.landmarks == 0 {
            return Err(SvmError::InvalidParameter { name: "landmarks", value: 0.0 });
        }
        if !(self.ridge >= 0.0 && self.ridge.is_finite()) {
            return Err(SvmError::InvalidParameter { name: "ridge", value: self.ridge });
        }
        self.kernel.validate()
    }
}

impl Default for NystromParams {
    fn default() -> Self {
        NystromParams::new()
    }
}

/// A trained Nyström approximate classifier (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct NystromModel {
    kernel: Kernel,
    /// Feature rows of the selected landmark samples.
    landmarks: Vec<Vec<f64>>,
    /// Landmark coefficients of the decision function.
    beta: Vec<f64>,
    bias: f64,
    dimension: usize,
}

/// SplitMix64 step: cheap, dependency-free, stable across platforms.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws `m` distinct indices from `0..n` by a partial Fisher–Yates shuffle
/// seeded with `seed` (deterministic, order-stable across platforms).
fn select_landmarks(n: usize, m: usize, seed: u64) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).collect();
    let mut state = seed;
    for i in 0..m {
        let j = i + (splitmix64(&mut state) % (n - i) as u64) as usize;
        pool.swap(i, j);
    }
    pool.truncate(m);
    pool
}

impl NystromModel {
    /// Trains the approximate classifier on `data` (labels must be `±1`).
    ///
    /// # Errors
    ///
    /// Returns an error when the dataset is empty, a label is not `±1`, a
    /// hyper-parameter is invalid, or the (ridge-regularized) normal
    /// equations are numerically singular.
    // Indexed loops mirror the textbook normal-equation assembly (symmetric
    // writes to `system[j][k]` and `system[k][j]`); iterator forms obscure it.
    #[allow(clippy::needless_range_loop)]
    pub fn train(data: &Dataset, params: &NystromParams) -> Result<Self> {
        params.validate()?;
        if data.is_empty() {
            return Err(SvmError::EmptyDataset);
        }
        for &label in data.labels() {
            if label != 1.0 && label != -1.0 {
                return Err(SvmError::InvalidLabel(label));
            }
        }
        let n = data.len();
        let m = params.landmarks.min(n);
        let indices = select_landmarks(n, m, params.seed);

        // One batched pass assembles every landmark row K(l_j, ·).
        let engine = KernelEngine::new(data, params.kernel, params.kernel_path);
        let mut rows = vec![0.0; m * n];
        engine.kernel_rows(&indices, &mut rows);
        let row = |j: usize| &rows[j * n..(j + 1) * n];

        // Normal equations over z_i = [K(l_0, x_i), …, K(l_{m-1}, x_i), 1]:
        // (ZᵀZ + ridge·n·I) [β; b] = Zᵀy, with the bias coordinate left
        // unregularized (its diagonal is n and never vanishes).
        let dim = m + 1;
        let mut system = vec![vec![0.0; dim + 1]; dim];
        let y = data.labels();
        for j in 0..m {
            let row_j = row(j);
            for k in j..m {
                let dot: f64 = row_j.iter().zip(row(k)).map(|(&a, &b)| a * b).sum();
                system[j][k] = dot;
                system[k][j] = dot;
            }
            system[j][m] = row_j.iter().sum();
            system[m][j] = system[j][m];
            system[j][dim] = row_j.iter().zip(y).map(|(&a, &label)| a * label).sum();
            system[j][j] += params.ridge * n as f64;
        }
        system[m][m] = n as f64;
        system[m][dim] = y.iter().sum();

        let solution = solve_dense(&mut system)?;
        let (beta, bias) = {
            let mut beta = solution;
            let bias = beta.pop().expect("system has a bias coordinate");
            (beta, bias)
        };
        Ok(NystromModel {
            kernel: params.kernel,
            landmarks: indices.iter().map(|&i| data.features(i)).collect(),
            beta,
            bias,
            dimension: data.dimension(),
        })
    }

    /// Approximate decision value of `x`; positive means the positive class.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not have [`NystromModel::dimension`] entries.
    pub fn decision_function(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dimension, "feature vector has wrong dimension");
        let mut sum = self.bias;
        for (landmark, &coefficient) in self.landmarks.iter().zip(self.beta.iter()) {
            sum += coefficient * self.kernel.eval(landmark, x);
        }
        sum
    }

    /// Predicted class label (`+1.0` or `-1.0`).
    ///
    /// # Panics
    ///
    /// Panics if `x` does not have [`NystromModel::dimension`] entries.
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.decision_function(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Number of landmarks the model was fit over.
    pub fn landmark_count(&self) -> usize {
        self.landmarks.len()
    }

    /// Expected input dimension.
    pub fn dimension(&self) -> usize {
        self.dimension
    }
}

/// Solves the dense augmented system `[A | b]` (each row holding its
/// right-hand side in the last column) by Gauss–Jordan elimination with
/// partial pivoting.  The systems here are tiny (`landmarks + 1` square), so
/// a direct dense solve beats anything fancier.
#[allow(clippy::needless_range_loop)] // pivoting reads and writes across rows
fn solve_dense(system: &mut [Vec<f64>]) -> Result<Vec<f64>> {
    let dim = system.len();
    for pivot_column in 0..dim {
        let pivot_row = (pivot_column..dim)
            .max_by(|&a, &b| {
                system[a][pivot_column]
                    .abs()
                    .partial_cmp(&system[b][pivot_column].abs())
                    .expect("pivot magnitudes are finite")
            })
            .expect("system has rows left to pivot");
        system.swap(pivot_column, pivot_row);
        let pivot = system[pivot_column][pivot_column];
        if !(pivot.abs() > f64::EPSILON) {
            return Err(SvmError::InvalidParameter { name: "nystrom system", value: pivot });
        }
        for column in pivot_column..=dim {
            system[pivot_column][column] /= pivot;
        }
        for other in 0..dim {
            if other == pivot_column {
                continue;
            }
            let factor = system[other][pivot_column];
            if factor == 0.0 {
                continue;
            }
            for column in pivot_column..=dim {
                let value = system[pivot_column][column];
                system[other][column] -= factor * value;
            }
        }
    }
    Ok((0..dim).map(|row| system[row][dim]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Svc, SvcParams};

    fn ring_data() -> Dataset {
        // Positive class inside a ring, negative outside — separable by RBF.
        let mut d = Dataset::new(2).unwrap();
        for i in 0..60 {
            let angle = i as f64 * std::f64::consts::TAU / 60.0;
            let r_in = 0.4 + 0.05 * (i % 3) as f64;
            let r_out = 1.2 + 0.05 * (i % 4) as f64;
            d.push(vec![r_in * angle.cos(), r_in * angle.sin()], 1.0).unwrap();
            d.push(vec![r_out * angle.cos(), r_out * angle.sin()], -1.0).unwrap();
        }
        d
    }

    #[test]
    fn landmark_selection_is_deterministic_and_distinct() {
        let a = select_landmarks(100, 20, 7);
        let b = select_landmarks(100, 20, 7);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(sorted.iter().all(|&i| i < 100));
        let c = select_landmarks(100, 20, 8);
        assert_ne!(a, c, "different seeds draw different landmarks");
    }

    #[test]
    fn approximates_the_exact_decision_boundary() {
        let data = ring_data();
        let kernel = Kernel::rbf(1.5);
        let exact = Svc::train(&data, &SvcParams::new().with_c(10.0).with_kernel(kernel)).unwrap();
        let screen = NystromModel::train(
            &data,
            &NystromParams::new().with_landmarks(40).with_kernel(kernel),
        )
        .unwrap();
        let agree = data
            .iter()
            .filter(|s| screen.predict(&s.features) == exact.predict(&s.features))
            .count();
        assert!(
            agree as f64 / data.len() as f64 >= 0.95,
            "only {agree}/{} sign agreements",
            data.len()
        );
    }

    #[test]
    fn full_rank_fit_is_still_well_posed() {
        let data = ring_data();
        // landmarks > n caps at n; the ridge keeps the solve well posed.
        let screen = NystromModel::train(
            &data,
            &NystromParams::new().with_landmarks(10_000).with_kernel(Kernel::rbf(1.5)),
        )
        .unwrap();
        assert_eq!(screen.landmark_count(), data.len());
        assert!(screen.decision_function(&[0.0, 0.0]).is_finite());
    }

    #[test]
    fn rejects_invalid_inputs() {
        let data = ring_data();
        assert!(NystromModel::train(&data, &NystromParams::new().with_landmarks(0)).is_err());
        assert!(NystromModel::train(&data, &NystromParams::new().with_ridge(f64::NAN)).is_err());
        let empty = Dataset::new(2).unwrap();
        assert!(matches!(
            NystromModel::train(&empty, &NystromParams::new()),
            Err(SvmError::EmptyDataset)
        ));
        let mut bad = Dataset::new(1).unwrap();
        bad.push(vec![0.1], 2.0).unwrap();
        assert!(matches!(
            NystromModel::train(&bad, &NystromParams::new()),
            Err(SvmError::InvalidLabel(_))
        ));
    }

    #[test]
    fn training_is_deterministic() {
        let data = ring_data();
        let params = NystromParams::new().with_landmarks(16).with_kernel(Kernel::rbf(1.0));
        let a = NystromModel::train(&data, &params).unwrap();
        let b = NystromModel::train(&data, &params).unwrap();
        assert_eq!(a, b);
    }
}
