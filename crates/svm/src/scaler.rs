//! Per-feature scaling of datasets.
//!
//! The paper normalises every specification to its acceptability range so the
//! multi-dimensional space converges uniformly (Section 4.3).  When an
//! explicit range is not available (for example for raw behavioural
//! quantities), min–max or z-score scaling learned from the training data is
//! used instead.

use serde::{Deserialize, Serialize};

use crate::{Dataset, Result, SvmError};

/// Which statistic the [`Scaler`] uses for each feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ScaleMethod {
    /// Map the observed `[min, max]` of each feature to `[0, 1]`.
    MinMax,
    /// Subtract the mean and divide by the standard deviation.
    ZScore,
}

/// A fitted per-feature affine transform `x' = (x - offset) / scale`.
///
/// # Example
///
/// ```
/// use stc_svm::{Dataset, ScaleMethod, Scaler};
///
/// # fn main() -> Result<(), stc_svm::SvmError> {
/// let mut data = Dataset::new(1)?;
/// data.push(vec![10.0], 1.0)?;
/// data.push(vec![20.0], -1.0)?;
/// let scaler = Scaler::fit(&data, ScaleMethod::MinMax)?;
/// assert_eq!(scaler.transform_vector(&[15.0]), vec![0.5]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    method: ScaleMethod,
    offsets: Vec<f64>,
    scales: Vec<f64>,
}

impl Scaler {
    /// Fits a scaler to the dataset.
    ///
    /// # Errors
    ///
    /// Returns [`SvmError::EmptyDataset`] if the dataset has no samples.
    pub fn fit(data: &Dataset, method: ScaleMethod) -> Result<Self> {
        if data.is_empty() {
            return Err(SvmError::EmptyDataset);
        }
        let dim = data.dimension();
        let n = data.len() as f64;
        let mut offsets = vec![0.0; dim];
        let mut scales = vec![1.0; dim];
        match method {
            ScaleMethod::MinMax => {
                for j in 0..dim {
                    let mut lo = f64::INFINITY;
                    let mut hi = f64::NEG_INFINITY;
                    for s in data.iter() {
                        lo = lo.min(s.features[j]);
                        hi = hi.max(s.features[j]);
                    }
                    offsets[j] = lo;
                    let span = hi - lo;
                    scales[j] = if span.abs() < f64::EPSILON { 1.0 } else { span };
                }
            }
            ScaleMethod::ZScore => {
                for j in 0..dim {
                    let mean = data.iter().map(|s| s.features[j]).sum::<f64>() / n;
                    let var = data
                        .iter()
                        .map(|s| {
                            let d = s.features[j] - mean;
                            d * d
                        })
                        .sum::<f64>()
                        / n;
                    offsets[j] = mean;
                    let sd = var.sqrt();
                    scales[j] = if sd < f64::EPSILON { 1.0 } else { sd };
                }
            }
        }
        Ok(Scaler { method, offsets, scales })
    }

    /// Builds a scaler from explicit per-feature ranges `[lower, upper]`.
    ///
    /// This is how the compaction flow normalises each specification to its
    /// acceptability range: the lower bound maps to 0 and the upper bound to 1
    /// (paper Section 4.3).
    ///
    /// # Errors
    ///
    /// Returns [`SvmError::InvalidParameter`] if any range is empty or
    /// reversed, or [`SvmError::EmptyDimension`] if `ranges` is empty.
    pub fn from_ranges(ranges: &[(f64, f64)]) -> Result<Self> {
        if ranges.is_empty() {
            return Err(SvmError::EmptyDimension);
        }
        let mut offsets = Vec::with_capacity(ranges.len());
        let mut scales = Vec::with_capacity(ranges.len());
        for &(lo, hi) in ranges {
            if !(hi > lo) || !lo.is_finite() || !hi.is_finite() {
                return Err(SvmError::InvalidParameter { name: "range", value: hi - lo });
            }
            offsets.push(lo);
            scales.push(hi - lo);
        }
        Ok(Scaler { method: ScaleMethod::MinMax, offsets, scales })
    }

    /// The scaling method this scaler was fitted with.
    pub fn method(&self) -> ScaleMethod {
        self.method
    }

    /// Number of features this scaler expects.
    pub fn dimension(&self) -> usize {
        self.offsets.len()
    }

    /// Scales a single feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector length does not match [`Scaler::dimension`].
    pub fn transform_vector(&self, features: &[f64]) -> Vec<f64> {
        assert_eq!(features.len(), self.dimension(), "scaler dimension mismatch");
        features
            .iter()
            .zip(self.offsets.iter().zip(self.scales.iter()))
            .map(|(&x, (&o, &s))| (x - o) / s)
            .collect()
    }

    /// Inverse of [`Scaler::transform_vector`].
    ///
    /// # Panics
    ///
    /// Panics if the vector length does not match [`Scaler::dimension`].
    pub fn inverse_transform_vector(&self, features: &[f64]) -> Vec<f64> {
        assert_eq!(features.len(), self.dimension(), "scaler dimension mismatch");
        features
            .iter()
            .zip(self.offsets.iter().zip(self.scales.iter()))
            .map(|(&x, (&o, &s))| x * s + o)
            .collect()
    }

    /// Scales every sample of a dataset, keeping labels unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`SvmError::DimensionMismatch`] if the dataset dimension does
    /// not match the scaler.
    pub fn transform(&self, data: &Dataset) -> Result<Dataset> {
        if data.dimension() != self.dimension() {
            return Err(SvmError::DimensionMismatch {
                expected: self.dimension(),
                found: data.dimension(),
            });
        }
        let mut out = Dataset::new(self.dimension())?;
        for s in data.iter() {
            out.push(self.transform_vector(&s.features), s.label)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(2).unwrap();
        d.push(vec![0.0, 100.0], 1.0).unwrap();
        d.push(vec![10.0, 300.0], -1.0).unwrap();
        d.push(vec![5.0, 200.0], 1.0).unwrap();
        d
    }

    #[test]
    fn minmax_maps_extremes_to_unit_interval() {
        let d = toy();
        let scaler = Scaler::fit(&d, ScaleMethod::MinMax).unwrap();
        let scaled = scaler.transform(&d).unwrap();
        assert_eq!(scaled.features(0), &[0.0, 0.0]);
        assert_eq!(scaled.features(1), &[1.0, 1.0]);
        assert_eq!(scaled.features(2), &[0.5, 0.5]);
    }

    #[test]
    fn zscore_centres_data() {
        let d = toy();
        let scaler = Scaler::fit(&d, ScaleMethod::ZScore).unwrap();
        let scaled = scaler.transform(&d).unwrap();
        for j in 0..2 {
            let mean: f64 = scaled.iter().map(|s| s.features[j]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
        }
    }

    #[test]
    fn constant_feature_does_not_divide_by_zero() {
        let mut d = Dataset::new(1).unwrap();
        d.push(vec![5.0], 1.0).unwrap();
        d.push(vec![5.0], -1.0).unwrap();
        let scaler = Scaler::fit(&d, ScaleMethod::MinMax).unwrap();
        let v = scaler.transform_vector(&[5.0]);
        assert!(v[0].is_finite());
    }

    #[test]
    fn from_ranges_maps_bounds_to_zero_one() {
        let scaler = Scaler::from_ranges(&[(10.0, 20.0), (-1.0, 1.0)]).unwrap();
        assert_eq!(scaler.transform_vector(&[10.0, -1.0]), vec![0.0, 0.0]);
        assert_eq!(scaler.transform_vector(&[20.0, 1.0]), vec![1.0, 1.0]);
        assert_eq!(scaler.transform_vector(&[15.0, 0.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn from_ranges_rejects_degenerate_ranges() {
        assert!(Scaler::from_ranges(&[]).is_err());
        assert!(Scaler::from_ranges(&[(1.0, 1.0)]).is_err());
        assert!(Scaler::from_ranges(&[(2.0, 1.0)]).is_err());
        assert!(Scaler::from_ranges(&[(0.0, f64::INFINITY)]).is_err());
    }

    #[test]
    fn inverse_round_trips() {
        let scaler = Scaler::from_ranges(&[(10.0, 20.0), (-4.0, 4.0)]).unwrap();
        let original = vec![13.0, 2.5];
        let back = scaler.inverse_transform_vector(&scaler.transform_vector(&original));
        for (a, b) in original.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn transform_rejects_wrong_dimension() {
        let scaler = Scaler::from_ranges(&[(0.0, 1.0)]).unwrap();
        let d = toy();
        assert!(scaler.transform(&d).is_err());
    }
}
