//! ε-support-vector regression.
//!
//! The paper argues (Section 4.1) that pass/fail prediction should be treated
//! as a *classification* problem rather than the regression formulation used
//! by earlier alternate-test work, because classification only needs training
//! coverage near the class boundary.  This module provides the regression
//! counterpart so the comparison can be reproduced (ablation A in DESIGN.md).

use std::cell::RefCell;

use serde::{Deserialize, Serialize};

use crate::engine::{KernelEngine, KernelPath};
use crate::smo::{self, QMatrix, SmoParams, SmoProblem};
use crate::{Dataset, Kernel, Result, SvmError};

/// Hyper-parameters for [`Svr::train`].
///
/// # Example
///
/// ```
/// use stc_svm::{Kernel, SvrParams};
///
/// let params = SvrParams::new()
///     .with_c(10.0)
///     .with_epsilon(0.05)
///     .with_kernel(Kernel::rbf(1.0));
/// assert_eq!(params.epsilon(), 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvrParams {
    c: f64,
    epsilon: f64,
    kernel: Kernel,
    tolerance: f64,
    max_iterations: usize,
    /// Kernel row-assembly implementation (defaulted on deserialization so
    /// pre-0.8 configs still load).
    #[serde(default)]
    kernel_path: KernelPath,
}

impl SvrParams {
    /// Default parameters: `C = 1`, `epsilon = 0.1`, RBF kernel.
    pub fn new() -> Self {
        SvrParams {
            c: 1.0,
            epsilon: 0.1,
            kernel: Kernel::default(),
            tolerance: 1e-3,
            max_iterations: 200_000,
            kernel_path: KernelPath::default(),
        }
    }

    /// Sets the penalty `C`.
    pub fn with_c(mut self, c: f64) -> Self {
        self.c = c;
        self
    }

    /// Sets the width of the ε-insensitive tube.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the kernel.
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the SMO stopping tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Sets the SMO iteration budget.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// The penalty `C`.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// The ε-tube half-width.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The configured kernel.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Selects the kernel row-assembly implementation (see [`KernelPath`]).
    pub fn with_kernel_path(mut self, kernel_path: KernelPath) -> Self {
        self.kernel_path = kernel_path;
        self
    }

    /// The configured kernel row-assembly implementation.
    pub fn kernel_path(&self) -> KernelPath {
        self.kernel_path
    }

    fn validate(&self) -> Result<()> {
        if !(self.c > 0.0 && self.c.is_finite()) {
            return Err(SvmError::InvalidParameter { name: "C", value: self.c });
        }
        if !(self.epsilon >= 0.0 && self.epsilon.is_finite()) {
            return Err(SvmError::InvalidParameter { name: "epsilon", value: self.epsilon });
        }
        self.kernel.validate()
    }
}

impl Default for SvrParams {
    fn default() -> Self {
        SvrParams::new()
    }
}

/// `Q` matrix for the expanded 2l-variable SVR dual.
///
/// Variables `0..l` correspond to `alpha` (sign +1), variables `l..2l` to
/// `alpha*` (sign -1); `Q[s][t] = sign_s * sign_t * K(s mod l, t mod l)`.
struct SvrQ<'a> {
    engine: KernelEngine<'a>,
    /// Number of training instances `l` (the expanded dual has `2l` rows).
    samples: usize,
    diag: Vec<f64>,
    /// Reusable base-kernel row of length `l`, expanded into `out` per call.
    scratch: RefCell<Vec<f64>>,
}

impl<'a> SvrQ<'a> {
    fn new(data: &'a Dataset, kernel: Kernel, path: KernelPath) -> Self {
        let engine = KernelEngine::new(data, kernel, path);
        let l = data.len();
        let mut diag = vec![0.0; 2 * l];
        for i in 0..l {
            let k = engine.diag(i);
            diag[i] = k;
            diag[i + l] = k;
        }
        SvrQ { engine, samples: l, diag, scratch: RefCell::new(vec![0.0; l]) }
    }

    fn sign(&self, t: usize) -> f64 {
        if t < self.samples {
            1.0
        } else {
            -1.0
        }
    }

    fn base(&self, t: usize) -> usize {
        t % self.samples
    }
}

impl QMatrix for SvrQ<'_> {
    fn len(&self) -> usize {
        2 * self.samples
    }

    fn row(&self, i: usize, out: &mut [f64]) {
        // One engine row over the l base instances serves both dual halves.
        let mut scratch = self.scratch.borrow_mut();
        self.engine.kernel_row(self.base(i), &mut scratch);
        let si = self.sign(i);
        let (alpha_half, alpha_star_half) = out[..2 * self.samples].split_at_mut(self.samples);
        for ((cell, starred), &k) in
            alpha_half.iter_mut().zip(alpha_star_half.iter_mut()).zip(scratch.iter())
        {
            *cell = si * k;
            *starred = -si * k;
        }
    }

    fn diag(&self, i: usize) -> f64 {
        self.diag[i]
    }
}

/// A trained ε-support-vector regressor.
///
/// The prediction is `f(x) = Σ_i beta_i K(x_i, x) + b` where
/// `beta_i = alpha_i - alpha*_i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Svr {
    kernel: Kernel,
    support_vectors: Vec<Vec<f64>>,
    coefficients: Vec<f64>,
    /// Training-instance index of each support vector, enabling warm starts
    /// of related problems over the same training population.  Defaulted on
    /// deserialization so 0.3-era models still load (they simply cannot seed
    /// warm starts).
    #[serde(default)]
    support_indices: Vec<usize>,
    bias: f64,
    dimension: usize,
    /// SMO iterations spent training this model (0 for deserialized 0.3-era
    /// models).
    #[serde(default)]
    iterations: usize,
}

impl Svr {
    /// Trains a regressor.
    ///
    /// # Errors
    ///
    /// Returns an error when the dataset is empty, the hyper-parameters are
    /// invalid, or the SMO solver fails to converge.
    pub fn train(data: &Dataset, params: &SvrParams) -> Result<Self> {
        Svr::train_warm(data, params, None)
    }

    /// [`Svr::train`] with an optional warm start from a regressor trained
    /// on the *same training instances* (typically over an overlapping
    /// feature subset).
    ///
    /// The warm model's `beta_i = alpha_i - alpha*_i` coefficients are split
    /// back into the expanded `(alpha, alpha*)` pair on the instance that
    /// produced them, clipped to the feasible box, the equality constraint
    /// is repaired, and SMO solves from that point.  The returned model
    /// satisfies exactly the same KKT stopping tolerance as a cold start; a
    /// warm model that does not line up with `data` is ignored.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Svr::train`].
    pub fn train_warm(data: &Dataset, params: &SvrParams, warm: Option<&Svr>) -> Result<Self> {
        params.validate()?;
        if data.is_empty() {
            return Err(SvmError::EmptyDataset);
        }
        let l = data.len();
        let mut y = vec![1.0; 2 * l];
        let mut p = vec![0.0; 2 * l];
        for i in 0..l {
            let target = data.label(i);
            p[i] = params.epsilon - target;
            p[i + l] = params.epsilon + target;
            y[i + l] = -1.0;
        }
        let upper_bound = vec![params.c; 2 * l];
        let initial_alpha = match warm {
            Some(model) => model.project_alphas(l, &y, &upper_bound),
            None => vec![0.0; 2 * l],
        };
        let problem = SmoProblem { y, p, upper_bound, initial_alpha };
        let q = SvrQ::new(data, params.kernel, params.kernel_path);
        let smo_params = SmoParams {
            tolerance: params.tolerance,
            max_iterations: params.max_iterations,
            ..SmoParams::default()
        };
        let solution = smo::solve(&q, &problem, &smo_params)?;

        let mut support_vectors = Vec::new();
        let mut coefficients = Vec::new();
        let mut support_indices = Vec::new();
        for i in 0..l {
            let beta = solution.alpha[i] - solution.alpha[i + l];
            if beta.abs() > 1e-12 {
                support_vectors.push(data.features(i));
                coefficients.push(beta);
                support_indices.push(i);
            }
        }
        Ok(Svr {
            kernel: params.kernel,
            support_vectors,
            coefficients,
            support_indices,
            bias: -solution.rho,
            dimension: data.dimension(),
            iterations: solution.iterations,
        })
    }

    /// Projects this model's `beta` coefficients onto the expanded
    /// `2l`-variable dual of a related problem over the same `l` training
    /// instances (`alpha_i = max(beta_i, 0)`, `alpha*_i = max(-beta_i, 0)`,
    /// which holds at any optimum by complementarity), clips to the box and
    /// repairs the equality constraint.  Returns the zero vector when the
    /// model does not line up with the new problem.
    fn project_alphas(&self, l: usize, y: &[f64], upper_bound: &[f64]) -> Vec<f64> {
        let mut alpha = vec![0.0; 2 * l];
        for (&index, &beta) in self.support_indices.iter().zip(self.coefficients.iter()) {
            if index >= l {
                // Trained on a different (larger) population: cold start.
                return vec![0.0; 2 * l];
            }
            if beta >= 0.0 {
                alpha[index] = beta.min(upper_bound[index]);
            } else {
                alpha[index + l] = (-beta).min(upper_bound[index + l]);
            }
        }
        smo::repair_equality_constraint(&mut alpha, y);
        alpha
    }

    /// Predicted target value for `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not have [`Svr::dimension`] entries.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dimension, "feature vector has wrong dimension");
        let mut sum = self.bias;
        for (sv, &coef) in self.support_vectors.iter().zip(self.coefficients.iter()) {
            sum += coef * self.kernel.eval(sv, x);
        }
        sum
    }

    /// Root-mean-square prediction error over a dataset.
    pub fn rmse(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let sum: f64 = data
            .iter()
            .map(|s| {
                let e = self.predict(&s.features) - s.label;
                e * e
            })
            .sum();
        (sum / data.len() as f64).sqrt()
    }

    /// Number of support vectors.
    pub fn support_vector_count(&self) -> usize {
        self.support_vectors.len()
    }

    /// Expected input dimension.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// SMO iterations the solver spent training this model.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Training-instance indices of the support vectors, aligned with the
    /// coefficient order.
    pub fn support_indices(&self) -> &[usize] {
        &self.support_indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data() -> Dataset {
        // y = 2x + 1 on [0, 1]
        let mut d = Dataset::new(1).unwrap();
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            d.push(vec![x], 2.0 * x + 1.0).unwrap();
        }
        d
    }

    #[test]
    fn fits_a_line_with_linear_kernel() {
        let data = linear_data();
        let params =
            SvrParams::new().with_c(100.0).with_epsilon(0.01).with_kernel(Kernel::linear());
        let model = Svr::train(&data, &params).unwrap();
        assert!(model.rmse(&data) < 0.05, "rmse {}", model.rmse(&data));
        assert!((model.predict(&[0.5]) - 2.0).abs() < 0.1);
    }

    #[test]
    fn fits_a_smooth_nonlinear_function_with_rbf() {
        let mut d = Dataset::new(1).unwrap();
        for i in 0..=40 {
            let x = i as f64 / 40.0;
            d.push(vec![x], (2.0 * std::f64::consts::PI * x).sin()).unwrap();
        }
        let params =
            SvrParams::new().with_c(100.0).with_epsilon(0.01).with_kernel(Kernel::rbf(10.0));
        let model = Svr::train(&d, &params).unwrap();
        assert!(model.rmse(&d) < 0.1, "rmse {}", model.rmse(&d));
    }

    #[test]
    fn epsilon_tube_controls_sparsity() {
        let data = linear_data();
        let tight = Svr::train(
            &data,
            &SvrParams::new().with_c(10.0).with_epsilon(0.001).with_kernel(Kernel::linear()),
        )
        .unwrap();
        let loose = Svr::train(
            &data,
            &SvrParams::new().with_c(10.0).with_epsilon(0.5).with_kernel(Kernel::linear()),
        )
        .unwrap();
        // A wider tube tolerates more error and needs at most as many SVs.
        assert!(loose.support_vector_count() <= tight.support_vector_count());
    }

    #[test]
    fn rejects_invalid_parameters_and_empty_data() {
        let data = linear_data();
        assert!(Svr::train(&data, &SvrParams::new().with_c(0.0)).is_err());
        assert!(Svr::train(&data, &SvrParams::new().with_epsilon(-1.0)).is_err());
        let empty = Dataset::new(1).unwrap();
        assert!(matches!(Svr::train(&empty, &SvrParams::new()), Err(SvmError::EmptyDataset)));
    }

    /// Warm-starting from a regressor of the same problem converges in a
    /// small fraction of the cold iterations with matching predictions.
    #[test]
    fn warm_start_from_itself_is_nearly_free() {
        let data = linear_data();
        let params = SvrParams::new().with_c(10.0).with_epsilon(0.05).with_kernel(Kernel::rbf(3.0));
        let cold = Svr::train(&data, &params).unwrap();
        assert!(cold.iterations() > 0);
        let warm = Svr::train_warm(&data, &params, Some(&cold)).unwrap();
        assert!(
            warm.iterations() <= cold.iterations() / 4,
            "warm {} vs cold {}",
            warm.iterations(),
            cold.iterations()
        );
        for sample in data.iter() {
            assert!((warm.predict(&sample.features) - cold.predict(&sample.features)).abs() < 0.05);
        }
    }

    #[test]
    fn rmse_of_empty_dataset_is_zero() {
        let data = linear_data();
        let model = Svr::train(&data, &SvrParams::new().with_c(10.0).with_kernel(Kernel::linear()))
            .unwrap();
        assert_eq!(model.rmse(&Dataset::new(1).unwrap()), 0.0);
    }
}
