//! # stc-svm
//!
//! A self-contained support-vector-machine library used by the specification
//! test compaction methodology of the DATE 2005 paper *"Specification Test
//! Compaction for Analog Circuits and MEMS"*.
//!
//! The paper uses ε-SVM **classification** (trained with SVM-light) to predict
//! the overall pass/fail outcome of a device from a subset of its specification
//! measurements.  This crate provides the equivalent functionality built from
//! scratch:
//!
//! * [`SvmBackend`] — the crate's [`stc_core::classifier::ClassifierFactory`]
//!   implementation, plugging the SVM into the `stc-core` compaction
//!   pipeline,
//! * [`Svc`] — soft-margin C-SVM classification trained with a
//!   LIBSVM-style SMO solver ([`smo`]),
//! * [`Svr`] — ε-support-vector regression, used only for the
//!   classification-vs-regression ablation of Section 4.1,
//! * [`Kernel`] — linear, polynomial, RBF and sigmoid kernels,
//! * [`Scaler`] — per-feature range scaling (the paper normalises every
//!   specification to its acceptability range, Section 4.3),
//! * [`cross_validation`] and [`grid_search`] — model selection helpers.
//!
//! ## Example
//!
//! ```
//! use stc_svm::{Dataset, Kernel, SvcParams, Svc};
//!
//! # fn main() -> Result<(), stc_svm::SvmError> {
//! // A linearly separable toy problem: class +1 above the diagonal.
//! let mut data = Dataset::new(2)?;
//! for i in 0..40 {
//!     let x = i as f64 / 40.0;
//!     data.push(vec![x, x + 0.3], 1.0)?;
//!     data.push(vec![x, x - 0.3], -1.0)?;
//! }
//! let params = SvcParams::new().with_c(10.0).with_kernel(Kernel::linear());
//! let model = Svc::train(&data, &params)?;
//! assert_eq!(model.predict(&[0.5, 0.9]), 1.0);
//! assert_eq!(model.predict(&[0.5, 0.1]), -1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod error;
mod kernel;
mod scaler;
mod svc;
mod svr;

pub mod backend;
pub mod cross_validation;
pub mod engine;
pub mod grid_search;
pub mod nystrom;
pub mod smo;

pub use backend::SvmBackend;
pub use dataset::{Dataset, Sample};
pub use engine::{DotRowBank, EngineUsage, KernelEngine, KernelPath};
pub use error::SvmError;
pub use kernel::Kernel;
pub use nystrom::{NystromModel, NystromParams};
pub use scaler::{ScaleMethod, Scaler};
pub use svc::{Svc, SvcParams};
pub use svr::{Svr, SvrParams};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, SvmError>;
