//! Grid search over SVC hyper-parameters.
//!
//! The compaction flow trains many classifiers; a small grid search over
//! `(C, gamma)` is used once per device family to pick sensible defaults.

use rand::Rng;

use crate::cross_validation::cross_validate_svc;
use crate::{Dataset, Kernel, Result, SvcParams, SvmError};

/// Search space for [`grid_search_svc`].
#[derive(Debug, Clone, PartialEq)]
pub struct GridSearchSpace {
    /// Candidate soft-margin penalties.
    pub c_values: Vec<f64>,
    /// Candidate RBF widths.
    pub gamma_values: Vec<f64>,
}

impl GridSearchSpace {
    /// A coarse default grid (`C ∈ {0.1, 1, 10, 100}`, `gamma ∈ {0.1, 1, 10}`),
    /// adequate for the normalised specification spaces used in the paper.
    pub fn coarse() -> Self {
        GridSearchSpace {
            c_values: vec![0.1, 1.0, 10.0, 100.0],
            gamma_values: vec![0.1, 1.0, 10.0],
        }
    }
}

impl Default for GridSearchSpace {
    fn default() -> Self {
        GridSearchSpace::coarse()
    }
}

/// Outcome of a grid search: the winning parameters and their CV accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSearchResult {
    /// Best parameters found.
    pub params: SvcParams,
    /// Cross-validated accuracy of those parameters.
    pub accuracy: f64,
}

/// Exhaustively evaluates every `(C, gamma)` pair with k-fold cross-validation
/// and returns the best one.
///
/// # Errors
///
/// Returns [`SvmError::InvalidParameter`] if the search space is empty and
/// propagates cross-validation errors when no candidate can be evaluated.
pub fn grid_search_svc<R: Rng>(
    data: &Dataset,
    space: &GridSearchSpace,
    base: &SvcParams,
    folds: usize,
    rng: &mut R,
) -> Result<GridSearchResult> {
    if space.c_values.is_empty() || space.gamma_values.is_empty() {
        return Err(SvmError::InvalidParameter { name: "grid", value: 0.0 });
    }
    let mut best: Option<GridSearchResult> = None;
    let mut last_error = None;
    for &c in &space.c_values {
        for &gamma in &space.gamma_values {
            let params = base.with_c(c).with_kernel(Kernel::rbf(gamma));
            match cross_validate_svc(data, &params, folds, rng) {
                Ok(accuracy) => {
                    let candidate = GridSearchResult { params, accuracy };
                    let better = match best {
                        None => true,
                        Some(current) => accuracy > current.accuracy,
                    };
                    if better {
                        best = Some(candidate);
                    }
                }
                Err(err) => last_error = Some(err),
            }
        }
    }
    best.ok_or_else(|| last_error.unwrap_or(SvmError::EmptyDataset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring_data() -> Dataset {
        // Inner cluster positive, outer ring negative: needs an RBF kernel.
        let mut d = Dataset::new(2).unwrap();
        for i in 0..40 {
            let angle = i as f64 * std::f64::consts::TAU / 40.0;
            d.push(vec![0.2 * angle.cos(), 0.2 * angle.sin()], 1.0).unwrap();
            d.push(vec![1.0 * angle.cos(), 1.0 * angle.sin()], -1.0).unwrap();
        }
        d
    }

    #[test]
    fn grid_search_finds_accurate_parameters() {
        let data = ring_data();
        let mut rng = StdRng::seed_from_u64(42);
        let result =
            grid_search_svc(&data, &GridSearchSpace::coarse(), &SvcParams::new(), 4, &mut rng)
                .unwrap();
        assert!(result.accuracy > 0.9, "best accuracy {}", result.accuracy);
    }

    #[test]
    fn empty_grid_is_rejected() {
        let data = ring_data();
        let mut rng = StdRng::seed_from_u64(1);
        let empty = GridSearchSpace { c_values: vec![], gamma_values: vec![] };
        assert!(grid_search_svc(&data, &empty, &SvcParams::new(), 4, &mut rng).is_err());
    }

    #[test]
    fn default_space_is_coarse() {
        assert_eq!(GridSearchSpace::default(), GridSearchSpace::coarse());
    }
}
