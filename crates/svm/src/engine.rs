//! Blocked columnar kernel row assembly — the SMO hot path.
//!
//! Training one SVM per candidate kept set makes kernel-**row** evaluation
//! the dominant cost of the compaction loop: the solver asks its `QMatrix`
//! for `Q[i][·]` once per working-set iteration, and the pre-0.8 path
//! answered by calling [`Kernel::eval`] per element over gathered row-major
//! slices — recomputing every dot product and squared distance from scratch.
//!
//! [`KernelEngine`] replaces that with three cooperating optimizations:
//!
//! 1. **Blocked columnar dot rows.** The [`Dataset`] stores features
//!    column-major in contiguous `Arc`-shared lanes, so the dot products of
//!    sample `i` against *all* samples are accumulated one feature column at
//!    a time (`out[j] += x[i][c] * x[j][c]` over a contiguous column slice).
//!    Each pass is a bounds-check-free axpy the compiler auto-vectorizes,
//!    and — because the per-`j` accumulator starts at `0.0` and the columns
//!    are visited in ascending feature order — the result is **bit-identical**
//!    to the sequential `dot()` the naive path computes per pair.
//! 2. **Precomputed squared norms.** `‖x_i‖²` is computed once per dataset,
//!    so an RBF row reduces to the fused dot-row pass plus one vectorizable
//!    `exp` loop via `‖x_i − x_j‖² = ‖x_i‖² + ‖x_j‖² − 2·x_i·x_j` (clamped
//!    at zero: the expansion can go negative by one ulp where the true
//!    distance vanishes).  Polynomial and sigmoid rows likewise become one
//!    `powi`/`tanh` loop over the dot row, and those two are *exactly* equal
//!    to the naive path (same dot value, same scalar postprocessing).
//! 3. **Incremental candidate rows.** Consecutive candidates of the greedy /
//!    beam searches differ from their committed parent by one feature
//!    column, and every candidate dataset of a run shares its column
//!    allocations through the `stc_core` normalized-column cache.  A parent
//!    training therefore *banks* its hottest dot rows ([`DotRowBank`]), and
//!    a child engine seeds itself by **adjusting** each banked row with only
//!    the differing columns (`row'[j] = row[j] − Σ_removed c[i]·c[j] +
//!    Σ_added c[i]·c[j]`, columns matched by `Arc` pointer identity) instead
//!    of recomputing `O(n·d)` from scratch.
//!
//! # Numerical contract
//!
//! * `KernelPath::Naive` reproduces the pre-engine numerics **bit for bit**:
//!   rows are gathered once and every element goes through [`Kernel::eval`].
//! * `KernelPath::Blocked` without a bank is bit-identical to `Naive` for
//!   linear, polynomial and sigmoid kernels and within one ulp of the
//!   per-element result for RBF off-diagonal entries (the norm expansion
//!   reassociates the subtraction); the diagonal is exactly `1.0` either
//!   way.  Property tests in `tests/properties.rs` pin both statements.
//! * Bank-seeded rows reassociate further (one fused multiply-add per
//!   differing column), staying within a few ulps of the scratch row.  Both
//!   deviations are orders of magnitude below the solver's stopping
//!   tolerance; the compaction-level property tests pin that kept sets are
//!   byte-identical between the `Blocked` and `Naive` paths.
//!
//! # Determinism
//!
//! Row assembly is a pure function of the dataset values, the kernel, and
//! the (deterministically recorded) parent bank.  Banks record the first
//! `record_cap` distinct rows the solver touches — a deterministic sequence
//! for a deterministic solver — so training results never depend on thread
//! count or timing.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::kernel::Kernel;

/// Which kernel row-assembly implementation a trainer uses.
///
/// The default is [`KernelPath::Blocked`]; [`KernelPath::Naive`] reproduces
/// the pre-0.8 per-element [`Kernel::eval`] numerics bit-for-bit and exists
/// as the property-test reference and as an escape hatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum KernelPath {
    /// Blocked columnar dot rows with precomputed norms and (when a parent
    /// bank is available) incremental candidate-row adjustment.
    #[default]
    Blocked,
    /// Gathered row-major features and per-element [`Kernel::eval`] — the
    /// reference implementation.
    Naive,
}

/// Soft cap on the total number of `f64`s a bank may hold (rows × samples).
/// 2M values ≈ 16 MiB per committed frontier model.
const BANK_VALUE_BUDGET: usize = 2_000_000;
/// Hard cap on banked rows regardless of population size.
const BANK_MAX_ROWS: usize = 96;
/// Minimum rows worth banking when the population is huge.
const BANK_MIN_ROWS: usize = 8;

fn bank_capacity(samples: usize) -> usize {
    (BANK_VALUE_BUDGET / samples.max(1)).clamp(BANK_MIN_ROWS, BANK_MAX_ROWS)
}

/// Rows assembled together per column sweep of
/// [`KernelEngine::kernel_rows`]: each shared column slice is streamed from
/// memory once per block instead of once per row, which amortizes the
/// memory traffic the dot-row pass is bound by (the arithmetic itself
/// vectorizes either way).  Kept small so a block of row accumulators stays
/// inside the L1/L2 working set alongside the column lane.
const ROW_BLOCK: usize = 4;

/// How an engine used — or could not use — the parent [`DotRowBank`] it was
/// given, captured after training via [`KernelEngine::usage`].
///
/// `ignored_bank` is the previously silent failure mode this surfaces: a
/// bank was supplied but could not be applied (naive path, foreign column
/// universe, or a column-set distance that makes adjustment no cheaper than
/// recomputation), so every row was rebuilt from scratch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineUsage {
    /// Rows seeded by adjusting parent-bank rows.
    pub seeded_rows: usize,
    /// Rows assembled from scratch (full column sweeps).
    pub rebuilt_rows: usize,
    /// Whether a non-empty parent bank was supplied but not applicable.
    pub ignored_bank: bool,
}

/// Dot-product rows banked by a parent training for reuse by its candidate
/// children (see the [module docs](self)).
///
/// A bank remembers the feature columns it was computed over (`Arc`s shared
/// with the parent dataset) and up to [`DotRowBank::len`] rows of
/// `x_i · x_j` values.  Children match columns by pointer identity, so a
/// bank can only ever be applied to datasets drawn from the same shared
/// column universe — anything else degrades to a cold start.
#[derive(Debug, Clone, Default)]
pub struct DotRowBank {
    columns: Vec<Arc<[f64]>>,
    rows: Vec<(usize, Arc<[f64]>)>,
}

impl DotRowBank {
    /// Number of banked rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the bank holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Columnar kernel row assembler for one dataset (see the
/// [module docs](self)).
///
/// An engine borrows its dataset, precomputes the per-sample squared norms
/// (blocked path) or gathers row-major features once (naive path), and then
/// serves [`KernelEngine::kernel_row`] / [`KernelEngine::diag`] to the
/// solver's `QMatrix` implementations.  After training,
/// [`KernelEngine::into_bank`] hands the recorded dot rows to the caller for
/// the next candidate generation.
#[derive(Debug)]
pub struct KernelEngine<'a> {
    data: &'a Dataset,
    kernel: Kernel,
    path: KernelPath,
    /// `‖x_i‖²` per sample (blocked path; empty on the naive path).
    norms: Vec<f64>,
    /// Gathered row-major features (naive path; empty on the blocked path).
    naive_rows: Vec<Vec<f64>>,
    /// Dot rows adjusted from a parent bank, keyed by sample index.
    seeded: BTreeMap<usize, Arc<[f64]>>,
    /// Dot rows recorded during this training, keyed by sample index.
    recorded: RefCell<BTreeMap<usize, Arc<[f64]>>>,
    record_cap: usize,
    /// Scratch dot rows assembled (cache/seed misses), for [`EngineUsage`].
    rebuilt: Cell<usize>,
    /// Whether a non-empty parent bank was supplied but inapplicable.
    ignored_bank: bool,
}

impl<'a> KernelEngine<'a> {
    /// Builds an engine with no parent bank.
    pub fn new(data: &'a Dataset, kernel: Kernel, path: KernelPath) -> Self {
        KernelEngine::with_bank(data, kernel, path, None)
    }

    /// Builds an engine, seeding its dot rows from a parent bank when one is
    /// given and applicable (blocked path, shared column universe, matching
    /// population size).  An inapplicable bank is silently ignored — the
    /// engine then behaves exactly like [`KernelEngine::new`].
    pub fn with_bank(
        data: &'a Dataset,
        kernel: Kernel,
        path: KernelPath,
        bank: Option<&DotRowBank>,
    ) -> Self {
        let mut engine = match path {
            KernelPath::Blocked => {
                let mut norms = vec![0.0; data.len()];
                for column in data.shared_columns() {
                    for (norm, &value) in norms.iter_mut().zip(column.iter()) {
                        *norm += value * value;
                    }
                }
                KernelEngine {
                    data,
                    kernel,
                    path,
                    norms,
                    naive_rows: Vec::new(),
                    seeded: BTreeMap::new(),
                    recorded: RefCell::new(BTreeMap::new()),
                    record_cap: bank_capacity(data.len()),
                    rebuilt: Cell::new(0),
                    ignored_bank: false,
                }
            }
            KernelPath::Naive => KernelEngine {
                data,
                kernel,
                path,
                norms: Vec::new(),
                naive_rows: (0..data.len()).map(|i| data.features(i)).collect(),
                seeded: BTreeMap::new(),
                recorded: RefCell::new(BTreeMap::new()),
                record_cap: 0,
                rebuilt: Cell::new(0),
                ignored_bank: false,
            },
        };
        match (engine.path, bank) {
            (KernelPath::Blocked, Some(bank)) => engine.seed_from(bank),
            // The naive path never seeds: a supplied non-empty bank is
            // ignored, and the diagnostics say so instead of staying silent.
            (KernelPath::Naive, Some(bank)) => engine.ignored_bank = !bank.is_empty(),
            (_, None) => {}
        }
        engine
    }

    /// Number of samples the engine serves rows over.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the engine serves an empty dataset.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The number of rows seeded from the parent bank (diagnostic).
    pub fn seeded_rows(&self) -> usize {
        self.seeded.len()
    }

    /// Bank-usage diagnostics accumulated so far (see [`EngineUsage`]).
    pub fn usage(&self) -> EngineUsage {
        EngineUsage {
            seeded_rows: self.seeded.len(),
            rebuilt_rows: self.rebuilt.get(),
            ignored_bank: self.ignored_bank,
        }
    }

    /// Adjusts the applicable bank rows to this dataset's column set.
    fn seed_from(&mut self, bank: &DotRowBank) {
        if bank.is_empty() {
            return;
        }
        let columns = self.data.shared_columns();
        let removed: Vec<&Arc<[f64]>> = bank
            .columns
            .iter()
            .filter(|parent| !columns.iter().any(|ours| Arc::ptr_eq(ours, parent)))
            .collect();
        let added: Vec<&Arc<[f64]>> = columns
            .iter()
            .filter(|ours| !bank.columns.iter().any(|parent| Arc::ptr_eq(ours, parent)))
            .collect();
        // Adjustment must be strictly cheaper than recomputation, and the
        // bank must describe the same population (row length = sample count).
        if removed.len() + added.len() >= self.data.dimension() {
            self.ignored_bank = true;
            return;
        }
        let n = self.data.len();
        if removed.iter().chain(&added).any(|column| column.len() != n) {
            self.ignored_bank = true;
            return;
        }
        for (index, parent_row) in &bank.rows {
            if *index >= n || parent_row.len() != n {
                continue;
            }
            let mut adjusted = parent_row.to_vec();
            for column in &removed {
                let xi = column[*index];
                for (value, &xj) in adjusted.iter_mut().zip(column.iter()) {
                    *value -= xi * xj;
                }
            }
            for column in &added {
                let xi = column[*index];
                for (value, &xj) in adjusted.iter_mut().zip(column.iter()) {
                    *value += xi * xj;
                }
            }
            self.seeded.insert(*index, adjusted.into());
        }
    }

    /// Writes the dot products of sample `i` against every sample into
    /// `out`, one blocked pass per feature column.
    fn dot_row(&self, i: usize, out: &mut [f64]) {
        out.fill(0.0);
        for column in self.data.shared_columns() {
            let xi = column[i];
            for (acc, &xj) in out.iter_mut().zip(column.iter()) {
                *acc += xi * xj;
            }
        }
    }

    /// Applies the kernel's scalar map to a dot row in place.
    fn apply_kernel(&self, i: usize, out: &mut [f64]) {
        match self.kernel {
            Kernel::Linear => {}
            Kernel::Polynomial { gamma, coef0, degree } => {
                for value in out.iter_mut() {
                    *value = (gamma * *value + coef0).powi(degree as i32);
                }
            }
            Kernel::Rbf { gamma } => {
                let norm_i = self.norms[i];
                for (value, &norm_j) in out.iter_mut().zip(&self.norms) {
                    let distance = (norm_i + norm_j - 2.0 * *value).max(0.0);
                    *value = (-gamma * distance).exp();
                }
            }
            Kernel::Sigmoid { gamma, coef0 } => {
                for value in out.iter_mut() {
                    *value = (gamma * *value + coef0).tanh();
                }
            }
        }
    }

    /// Writes `K(x_i, x_j)` for every `j` into `out`.
    ///
    /// Blocked path: seeded/recorded dot rows are reused when available,
    /// fresh rows are recorded (up to the bank budget) for the next
    /// generation.  Naive path: per-element [`Kernel::eval`] over the
    /// gathered rows, bit-identical to the pre-engine implementation.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `out.len() != self.len()`.
    pub fn kernel_row(&self, i: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.len(), "kernel row buffer length mismatch");
        match self.path {
            KernelPath::Naive => {
                let row_i = &self.naive_rows[i];
                for (value, row_j) in out.iter_mut().zip(&self.naive_rows) {
                    *value = self.kernel.eval(row_i, row_j);
                }
            }
            KernelPath::Blocked => {
                let cached = {
                    let recorded = self.recorded.borrow();
                    recorded.get(&i).or_else(|| self.seeded.get(&i)).cloned()
                };
                let dots: Arc<[f64]> = match cached {
                    Some(row) => {
                        out.copy_from_slice(&row);
                        row
                    }
                    None => {
                        self.dot_row(i, out);
                        self.rebuilt.set(self.rebuilt.get() + 1);
                        Arc::from(&out[..])
                    }
                };
                {
                    let mut recorded = self.recorded.borrow_mut();
                    if recorded.len() < self.record_cap {
                        recorded.entry(i).or_insert(dots);
                    }
                }
                self.apply_kernel(i, out);
            }
        }
    }

    /// Writes `K(x_{i_r}, x_j)` for every requested row `i_r` of `indices`
    /// and every `j` into `out`, row `r` occupying
    /// `out[r * len .. (r + 1) * len]`.
    ///
    /// Results and side effects are **identical** to calling
    /// [`KernelEngine::kernel_row`] once per index in order — same
    /// bit-exact values (each row's dot products still accumulate one
    /// ascending feature column at a time from a zero accumulator), same
    /// recorded-row bank contents.  The win is bandwidth: scratch rows are
    /// assembled `ROW_BLOCK` at a time, so each shared column lane
    /// streams from memory once per block instead of once per row, and the
    /// RBF/poly/sigmoid scalar pass runs per row afterwards as before.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or
    /// `out.len() != indices.len() * self.len()`.
    pub fn kernel_rows(&self, indices: &[usize], out: &mut [f64]) {
        let n = self.len();
        assert_eq!(out.len(), indices.len() * n, "kernel rows buffer length mismatch");
        if self.path == KernelPath::Naive {
            for (row, &i) in out.chunks_exact_mut(n).zip(indices) {
                self.kernel_row(i, row);
            }
            return;
        }
        let mut rows: Vec<&mut [f64]> = out.chunks_exact_mut(n).collect();
        // Resolve cached rows and find the scratch work: the first
        // occurrence of each uncached index computes, later duplicates copy.
        let mut cached: Vec<Option<Arc<[f64]>>> = vec![None; indices.len()];
        let mut first_slot: BTreeMap<usize, usize> = BTreeMap::new();
        let mut pending: Vec<usize> = Vec::new();
        {
            let recorded = self.recorded.borrow();
            for (slot, &i) in indices.iter().enumerate() {
                if let Some(row) = recorded.get(&i).or_else(|| self.seeded.get(&i)) {
                    rows[slot].copy_from_slice(row);
                    cached[slot] = Some(Arc::clone(row));
                } else if let std::collections::btree_map::Entry::Vacant(entry) =
                    first_slot.entry(i)
                {
                    entry.insert(slot);
                    pending.push(slot);
                }
                // An uncached duplicate copies its first occurrence's dot
                // values after the block pass.
            }
        }
        // Blocked scratch assembly: per block, one pass over the columns.
        for block in pending.chunks(ROW_BLOCK) {
            for &slot in block {
                rows[slot].fill(0.0);
            }
            for column in self.data.shared_columns() {
                for &slot in block {
                    let xi = column[indices[slot]];
                    for (acc, &xj) in rows[slot].iter_mut().zip(column.iter()) {
                        *acc += xi * xj;
                    }
                }
            }
        }
        self.rebuilt.set(self.rebuilt.get() + pending.len());
        // Record and post-process in request order, replicating the exact
        // per-call bookkeeping of `kernel_row` (first `record_cap` distinct
        // touches win a bank slot).  Duplicates copy the saved *dot* values
        // — their first occurrence's buffer has already been mapped through
        // the kernel in place by the time they run.
        let mut computed: BTreeMap<usize, Arc<[f64]>> = BTreeMap::new();
        for slot in 0..indices.len() {
            let i = indices[slot];
            let dots: Arc<[f64]> = if let Some(row) = &cached[slot] {
                Arc::clone(row)
            } else if first_slot[&i] == slot {
                let dots: Arc<[f64]> = Arc::from(&*rows[slot]);
                computed.insert(i, Arc::clone(&dots));
                dots
            } else {
                let dots = Arc::clone(&computed[&i]);
                rows[slot].copy_from_slice(&dots);
                dots
            };
            {
                let mut recorded = self.recorded.borrow_mut();
                if recorded.len() < self.record_cap {
                    recorded.entry(i).or_insert(dots);
                }
            }
            self.apply_kernel(i, rows[slot]);
        }
    }

    /// `K(x_i, x_i)` without assembling a row.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn diag(&self, i: usize) -> f64 {
        match self.path {
            KernelPath::Naive => {
                let row = &self.naive_rows[i];
                self.kernel.eval(row, row)
            }
            KernelPath::Blocked => match self.kernel {
                Kernel::Linear => self.norms[i],
                Kernel::Polynomial { gamma, coef0, degree } => {
                    (gamma * self.norms[i] + coef0).powi(degree as i32)
                }
                // ‖x−x‖² is exactly zero, so the RBF diagonal is exactly one.
                Kernel::Rbf { .. } => 1.0,
                Kernel::Sigmoid { gamma, coef0 } => (gamma * self.norms[i] + coef0).tanh(),
            },
        }
    }

    /// Consumes the engine, returning the dot rows recorded during training
    /// (plus this dataset's column identities) as a bank for candidate
    /// children.  Always empty on the naive path.
    pub fn into_bank(self) -> DotRowBank {
        DotRowBank {
            columns: self.data.shared_columns().to_vec(),
            rows: self.recorded.into_inner().into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(dimension: usize, samples: usize) -> Dataset {
        // Deterministic, mildly irregular values spanning sign changes.
        let columns: Vec<Vec<f64>> = (0..dimension)
            .map(|c| {
                (0..samples)
                    .map(|i| ((i * 7 + c * 3) % 11) as f64 * 0.37 - 1.5 + c as f64 * 0.01)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = columns.iter().map(|c| c.as_slice()).collect();
        let labels: Vec<f64> = (0..samples).map(|i| if i % 3 == 0 { 1.0 } else { -1.0 }).collect();
        Dataset::from_columns(&refs, &labels).unwrap()
    }

    fn all_kernels() -> Vec<Kernel> {
        vec![
            Kernel::linear(),
            Kernel::rbf(0.45),
            Kernel::polynomial(0.8, 0.5, 3),
            Kernel::sigmoid(0.3, 0.2),
        ]
    }

    #[test]
    fn blocked_rows_match_naive_rows() {
        let data = toy(5, 37);
        for kernel in all_kernels() {
            let blocked = KernelEngine::new(&data, kernel, KernelPath::Blocked);
            let naive = KernelEngine::new(&data, kernel, KernelPath::Naive);
            let mut b = vec![0.0; data.len()];
            let mut n = vec![0.0; data.len()];
            for i in 0..data.len() {
                blocked.kernel_row(i, &mut b);
                naive.kernel_row(i, &mut n);
                for j in 0..data.len() {
                    let tolerance = match kernel {
                        // Exact: same dot value, same scalar postprocessing.
                        Kernel::Linear | Kernel::Polynomial { .. } | Kernel::Sigmoid { .. } => 0.0,
                        // Norm expansion reassociates the subtraction.
                        Kernel::Rbf { .. } => 1e-12,
                    };
                    assert!(
                        (b[j] - n[j]).abs() <= tolerance,
                        "{kernel:?} row {i} col {j}: {} vs {}",
                        b[j],
                        n[j]
                    );
                }
                assert_eq!(blocked.diag(i), naive.diag(i), "{kernel:?} diag {i}");
            }
        }
    }

    #[test]
    fn bank_seeded_rows_match_scratch_rows() {
        let parent_data = toy(6, 41);
        let kernel = Kernel::rbf(0.3);
        let parent = KernelEngine::new(&parent_data, kernel, KernelPath::Blocked);
        let mut buffer = vec![0.0; parent_data.len()];
        for i in 0..parent_data.len() {
            parent.kernel_row(i, &mut buffer);
        }
        let bank = parent.into_bank();
        assert!(!bank.is_empty());
        // Child drops column 2 — the backward-elimination shape.
        let kept: Vec<usize> = (0..6).filter(|&c| c != 2).collect();
        let child_data = parent_data.select_columns(&kept).unwrap();
        let seeded = KernelEngine::with_bank(&child_data, kernel, KernelPath::Blocked, Some(&bank));
        assert_eq!(seeded.seeded_rows(), bank.len());
        let scratch = KernelEngine::new(&child_data, kernel, KernelPath::Blocked);
        let mut s = vec![0.0; child_data.len()];
        let mut c = vec![0.0; child_data.len()];
        for i in 0..child_data.len() {
            seeded.kernel_row(i, &mut s);
            scratch.kernel_row(i, &mut c);
            for j in 0..child_data.len() {
                assert!(
                    (s[j] - c[j]).abs() <= 1e-12,
                    "row {i} col {j}: seeded {} vs scratch {}",
                    s[j],
                    c[j]
                );
            }
        }
    }

    #[test]
    fn unrelated_bank_is_ignored() {
        let parent_data = toy(4, 20);
        let kernel = Kernel::linear();
        let parent = KernelEngine::new(&parent_data, kernel, KernelPath::Blocked);
        let mut buffer = vec![0.0; parent_data.len()];
        parent.kernel_row(0, &mut buffer);
        let bank = parent.into_bank();
        // A dataset with the same values but fresh allocations shares no
        // columns, so the bank must not seed anything.
        let stranger = toy(4, 20);
        let engine = KernelEngine::with_bank(&stranger, kernel, KernelPath::Blocked, Some(&bank));
        assert_eq!(engine.seeded_rows(), 0);
        // A naive engine records nothing.
        let naive = KernelEngine::new(&stranger, kernel, KernelPath::Naive);
        naive.kernel_row(0, &mut buffer);
        assert!(naive.into_bank().is_empty());
    }

    #[test]
    fn batched_rows_match_sequential_rows_bit_for_bit() {
        let data = toy(5, 33);
        // Duplicates and repeats on purpose: the batch must replicate the
        // per-call record bookkeeping exactly.
        let indices = [3usize, 0, 7, 3, 12, 0, 5, 9, 1, 12];
        for kernel in all_kernels() {
            for path in [KernelPath::Blocked, KernelPath::Naive] {
                let sequential = KernelEngine::new(&data, kernel, path);
                let batched = KernelEngine::new(&data, kernel, path);
                let mut expected = vec![0.0; data.len()];
                let mut out = vec![0.0; indices.len() * data.len()];
                batched.kernel_rows(&indices, &mut out);
                for (r, &i) in indices.iter().enumerate() {
                    sequential.kernel_row(i, &mut expected);
                    let got = &out[r * data.len()..(r + 1) * data.len()];
                    for (a, b) in got.iter().zip(expected.iter()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "{kernel:?} {path:?} row {i}");
                    }
                }
                let (a, b) = (sequential.into_bank(), batched.into_bank());
                assert_eq!(a.rows.len(), b.rows.len());
                for ((ia, ra), (ib, rb)) in a.rows.iter().zip(b.rows.iter()) {
                    assert_eq!(ia, ib);
                    assert_eq!(ra.as_ref(), rb.as_ref());
                }
            }
        }
    }

    #[test]
    fn batched_rows_reuse_seeded_rows() {
        let parent_data = toy(6, 29);
        let kernel = Kernel::rbf(0.4);
        let parent = KernelEngine::new(&parent_data, kernel, KernelPath::Blocked);
        let mut buffer = vec![0.0; parent_data.len()];
        for i in 0..parent_data.len() {
            parent.kernel_row(i, &mut buffer);
        }
        let bank = parent.into_bank();
        let kept: Vec<usize> = (0..6).filter(|&c| c != 4).collect();
        let child_data = parent_data.select_columns(&kept).unwrap();
        let seeded = KernelEngine::with_bank(&child_data, kernel, KernelPath::Blocked, Some(&bank));
        let indices: Vec<usize> = (0..child_data.len()).collect();
        let mut out = vec![0.0; indices.len() * child_data.len()];
        seeded.kernel_rows(&indices, &mut out);
        let usage = seeded.usage();
        assert_eq!(usage.seeded_rows, bank.len());
        assert_eq!(usage.rebuilt_rows, child_data.len() - bank.len());
        assert!(!usage.ignored_bank);
    }

    #[test]
    fn usage_reports_ignored_banks() {
        let parent_data = toy(4, 20);
        let kernel = Kernel::linear();
        let parent = KernelEngine::new(&parent_data, kernel, KernelPath::Blocked);
        let mut buffer = vec![0.0; parent_data.len()];
        parent.kernel_row(0, &mut buffer);
        let bank = parent.into_bank();
        // Foreign column universe: supplied but inapplicable.
        let stranger = toy(4, 20);
        let engine = KernelEngine::with_bank(&stranger, kernel, KernelPath::Blocked, Some(&bank));
        assert!(engine.usage().ignored_bank);
        // The naive path can never apply a bank either.
        let naive = KernelEngine::with_bank(&stranger, kernel, KernelPath::Naive, Some(&bank));
        assert!(naive.usage().ignored_bank);
        // No bank supplied: nothing to ignore, rebuilt rows still counted.
        let fresh = KernelEngine::new(&stranger, kernel, KernelPath::Blocked);
        fresh.kernel_row(3, &mut buffer);
        fresh.kernel_row(3, &mut buffer);
        let usage = fresh.usage();
        assert!(!usage.ignored_bank);
        assert_eq!(usage.seeded_rows, 0);
        assert_eq!(usage.rebuilt_rows, 1);
    }

    #[test]
    fn bank_capacity_is_bounded() {
        assert_eq!(bank_capacity(0), BANK_MAX_ROWS);
        assert_eq!(bank_capacity(10_000), BANK_MAX_ROWS);
        assert_eq!(bank_capacity(100_000), 20);
        assert_eq!(bank_capacity(1_000_000), BANK_MIN_ROWS);
    }
}
