//! Deployment of a compacted test set on the production tester
//! (paper Section 3.3).

use serde::{Deserialize, Serialize};

use crate::dataset::MeasurementSet;
use crate::gridmodel::LookupTableTester;
use crate::guardband::{GuardBandedClassifier, Prediction};
use crate::metrics::ErrorBreakdown;
use crate::spec::SpecificationSet;
use crate::{CompactionError, Result};

/// How the acceptance region of the compacted test set is represented on the
/// tester.
///
/// # Serialisation
///
/// `CompleteSuite` and `LookupTable` round-trip exactly.  `Exact` carries
/// live classifier trait objects that cannot cross a process boundary, so it
/// serialises as a [`TesterModel::Detached`] descriptor (backend name + kept
/// set); decoding yields `Detached`, which reserialises to the same bytes.
/// Jobs that need a fully serialisable deployed model should ship a lookup
/// table instead.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum TesterModel {
    /// Apply the complete specification suite directly — no statistical
    /// model is needed when no test was eliminated.
    CompleteSuite,
    /// Ship the trained guard-banded model pair to the tester (needs more
    /// tester compute).
    Exact(GuardBandedClassifier),
    /// Ship a grid lookup table derived from the model (cheap on the tester,
    /// slightly approximate).
    LookupTable(LookupTableTester),
    /// A deserialised stand-in for [`TesterModel::Exact`]: records which
    /// backend trained the model and which tests it kept, but cannot classify
    /// devices.  Produced only by deserialisation.
    Detached {
        /// Name of the classifier backend that trained the original model.
        backend: String,
        /// Specification indices the original model kept.
        kept: Vec<usize>,
    },
}

impl Serialize for TesterModel {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        use serde::ser::SerializeStructVariant;
        match self {
            TesterModel::CompleteSuite => {
                serializer.serialize_unit_variant("TesterModel", 0, "CompleteSuite")
            }
            TesterModel::Exact(classifier) => {
                let mut state =
                    serializer.serialize_struct_variant("TesterModel", 3, "Detached", 2)?;
                state.serialize_field("backend", classifier.backend())?;
                state.serialize_field("kept", &classifier.kept().to_vec())?;
                state.end()
            }
            TesterModel::LookupTable(table) => {
                serializer.serialize_newtype_variant("TesterModel", 2, "LookupTable", table)
            }
            TesterModel::Detached { backend, kept } => {
                let mut state =
                    serializer.serialize_struct_variant("TesterModel", 3, "Detached", 2)?;
                state.serialize_field("backend", backend)?;
                state.serialize_field("kept", kept)?;
                state.end()
            }
        }
    }
}

impl<'de> Deserialize<'de> for TesterModel {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        use serde::de::{EnumAccess, Error as _, IgnoredAny, MapAccess, VariantAccess, Visitor};
        const VARIANTS: &[&str] = &["CompleteSuite", "LookupTable", "Detached"];
        struct DetachedVisitor;
        impl<'de> Visitor<'de> for DetachedVisitor {
            type Value = TesterModel;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("struct variant TesterModel::Detached")
            }
            fn visit_map<A: MapAccess<'de>>(
                self,
                mut map: A,
            ) -> std::result::Result<TesterModel, A::Error> {
                let mut backend: Option<String> = None;
                let mut kept: Option<Vec<usize>> = None;
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "backend" => backend = Some(map.next_value()?),
                        "kept" => kept = Some(map.next_value()?),
                        _ => {
                            map.next_value::<IgnoredAny>()?;
                        }
                    }
                }
                Ok(TesterModel::Detached {
                    backend: backend.ok_or_else(|| A::Error::missing_field("backend"))?,
                    kept: kept.ok_or_else(|| A::Error::missing_field("kept"))?,
                })
            }
        }
        struct ModelVisitor;
        impl<'de> Visitor<'de> for ModelVisitor {
            type Value = TesterModel;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("enum TesterModel")
            }
            fn visit_enum<A: EnumAccess<'de>>(
                self,
                data: A,
            ) -> std::result::Result<TesterModel, A::Error> {
                let (tag, variant): (String, _) = data.variant()?;
                match tag.as_str() {
                    "CompleteSuite" => {
                        variant.unit_variant()?;
                        Ok(TesterModel::CompleteSuite)
                    }
                    "LookupTable" => Ok(TesterModel::LookupTable(variant.newtype_variant()?)),
                    "Detached" => variant.struct_variant(&["backend", "kept"], DetachedVisitor),
                    "Exact" => Err(A::Error::custom(
                        "TesterModel::Exact never serialises under its own tag; \
                         expected its `Detached` descriptor",
                    )),
                    other => Err(A::Error::unknown_variant(other, VARIANTS)),
                }
            }
        }
        deserializer.deserialize_enum("TesterModel", VARIANTS, ModelVisitor)
    }
}

/// A complete tester program: which specifications to measure and how to turn
/// the measurements into an accept/reject/retest decision.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TesterProgram {
    specs: SpecificationSet,
    kept: Vec<usize>,
    model: TesterModel,
}

impl TesterProgram {
    /// Builds the trivial program that applies the complete specification
    /// suite: every test is kept and the accept/reject decision is the
    /// range check itself.
    pub fn complete(specs: SpecificationSet) -> Self {
        let kept = (0..specs.len()).collect();
        TesterProgram { specs, kept, model: TesterModel::CompleteSuite }
    }

    /// Builds a tester program that ships the trained model pair itself
    /// (whatever classifier backend produced it).
    pub fn with_model(specs: SpecificationSet, classifier: GuardBandedClassifier) -> Self {
        let kept = classifier.kept().to_vec();
        TesterProgram { specs, kept, model: TesterModel::Exact(classifier) }
    }

    /// Builds a tester program that ships the model pair itself.
    #[deprecated(
        since = "0.2.0",
        note = "renamed to `with_model`: the model pair is no \
                                          longer necessarily an SVM"
    )]
    pub fn with_svm(specs: SpecificationSet, classifier: GuardBandedClassifier) -> Self {
        TesterProgram::with_model(specs, classifier)
    }

    /// Builds a tester program that ships a lookup table with the given grid
    /// resolution (the paper's low-cost option).
    ///
    /// # Errors
    ///
    /// Propagates table-size errors from [`LookupTableTester::build`].
    pub fn with_lookup_table(
        specs: SpecificationSet,
        classifier: &GuardBandedClassifier,
        cells_per_dim: usize,
    ) -> Result<Self> {
        let table = LookupTableTester::build(classifier, cells_per_dim)?;
        Ok(TesterProgram {
            specs,
            kept: classifier.kept().to_vec(),
            model: TesterModel::LookupTable(table),
        })
    }

    /// The complete specification table the program was built against.
    pub fn specs(&self) -> &SpecificationSet {
        &self.specs
    }

    /// The specifications that must still be measured on the tester.
    pub fn kept(&self) -> &[usize] {
        &self.kept
    }

    /// Names of the kept specifications, in measurement order.
    pub fn kept_names(&self) -> Vec<&str> {
        self.kept.iter().map(|&c| self.specs.spec(c).name()).collect()
    }

    /// Which model representation the program carries.
    pub fn model(&self) -> &TesterModel {
        &self.model
    }

    /// Classifies one device from its *kept* raw measurements (in the same
    /// order as [`TesterProgram::kept`]).
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::DimensionMismatch`] when the number of
    /// measurements does not match the kept set.
    pub fn classify(&self, kept_measurements: &[f64]) -> Result<Prediction> {
        if kept_measurements.len() != self.kept.len() {
            return Err(CompactionError::DimensionMismatch {
                expected: self.kept.len(),
                found: kept_measurements.len(),
            });
        }
        // The kept tests are real measurements: a device violating one of
        // their ranges is rejected outright.
        for (&column, &value) in self.kept.iter().zip(kept_measurements.iter()) {
            if !self.specs.spec(column).passes(value) {
                return Ok(Prediction::Bad);
            }
        }
        let features: Vec<f64> = self
            .kept
            .iter()
            .zip(kept_measurements.iter())
            .map(|(&column, &value)| self.specs.spec(column).normalize(value))
            .collect();
        Ok(match &self.model {
            // Every kept range (i.e. every specification) passed above.
            TesterModel::CompleteSuite => Prediction::Good,
            TesterModel::Exact(classifier) => classifier.classify_features(&features),
            TesterModel::LookupTable(table) => table.classify_features(&features),
            TesterModel::Detached { backend, .. } => {
                return Err(CompactionError::Classifier {
                    backend: backend.clone(),
                    message: "a detached (deserialised) exact model cannot classify devices; \
                              retrain or deploy a lookup table"
                        .to_owned(),
                })
            }
        })
    }

    /// Applies the program to a full labelled population (which still carries
    /// every measurement) and reports the error breakdown — the end-to-end
    /// check that deployment behaves like the model it was derived from.
    pub fn evaluate(&self, data: &MeasurementSet) -> ErrorBreakdown {
        crate::metrics::evaluate_population(data, |data, i| {
            let kept_measurements: Vec<f64> = self.kept.iter().map(|&c| data.value(i, c)).collect();
            self.classify(&kept_measurements)
                .expect("program model must be executable (detached models cannot classify)")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SyntheticDevice;
    use crate::guardband::GuardBandConfig;
    use crate::montecarlo::{generate_train_test, MonteCarloConfig};

    fn setup() -> (MeasurementSet, MeasurementSet, GuardBandedClassifier) {
        let device = SyntheticDevice::new(3, 1.5, 0.85);
        let (train, test) =
            generate_train_test(&device, &MonteCarloConfig::new(400).with_seed(55), 200).unwrap();
        let classifier = GuardBandedClassifier::train_with(
            &crate::classifier::GridBackend::default(),
            &train,
            &[0, 1],
            &GuardBandConfig::paper_default(),
        )
        .unwrap();
        (train, test, classifier)
    }

    #[test]
    fn exact_program_matches_direct_classifier_evaluation() {
        let (train, test, classifier) = setup();
        let program = TesterProgram::with_model(train.specs().clone(), classifier.clone());
        assert_eq!(program.kept(), &[0, 1]);
        assert_eq!(program.kept_names(), vec!["spec0", "spec1"]);
        assert!(matches!(program.model(), TesterModel::Exact(_)));
        let direct = classifier.evaluate(&test);
        let deployed = program.evaluate(&test);
        assert_eq!(direct.yield_loss_count, deployed.yield_loss_count);
        assert_eq!(direct.defect_escape_count, deployed.defect_escape_count);
    }

    #[test]
    fn lookup_table_program_is_close_to_the_exact_program() {
        let (train, test, classifier) = setup();
        let exact_program = TesterProgram::with_model(train.specs().clone(), classifier.clone());
        let table_program =
            TesterProgram::with_lookup_table(train.specs().clone(), &classifier, 64).unwrap();
        assert!(matches!(table_program.model(), TesterModel::LookupTable(_)));
        let exact_eval = exact_program.evaluate(&test);
        let table_eval = table_program.evaluate(&test);
        assert!(
            (exact_eval.prediction_error() - table_eval.prediction_error()).abs() < 0.03,
            "exact {:?} table {:?}",
            exact_eval,
            table_eval
        );
    }

    #[test]
    fn deprecated_with_svm_shim_builds_the_same_program() {
        let (train, test, classifier) = setup();
        #[allow(deprecated)]
        let shim = TesterProgram::with_svm(train.specs().clone(), classifier.clone());
        let current = TesterProgram::with_model(train.specs().clone(), classifier);
        let shim_eval = shim.evaluate(&test);
        let current_eval = current.evaluate(&test);
        assert_eq!(shim_eval.yield_loss_count, current_eval.yield_loss_count);
        assert_eq!(shim_eval.defect_escape_count, current_eval.defect_escape_count);
        assert_eq!(shim_eval.guard_band_count, current_eval.guard_band_count);
    }

    #[test]
    fn classify_rejects_wrong_measurement_count_and_bad_kept_values() {
        let (train, _, classifier) = setup();
        let program = TesterProgram::with_model(train.specs().clone(), classifier);
        assert!(program.classify(&[0.0]).is_err());
        // A kept measurement far outside its range is rejected outright.
        assert_eq!(program.classify(&[99.0, 0.0]).unwrap(), Prediction::Bad);
    }
}
