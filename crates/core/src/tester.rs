//! Deployment of a compacted test set on the production tester
//! (paper Section 3.3).
//!
//! Since 0.9 the deploy layer is staged: a [`TestPlan`] fixes the order in
//! which the kept specifications are measured (cheapest-first under the
//! run's [`TestCostModel`] by default), and a [`SequentialSession`] walks
//! that plan one measurement at a time, emitting a verdict the moment a
//! kept-range violation — or a guard-banded model pair that is provably
//! decided over every possible completion — makes the remaining
//! measurements irrelevant.  The one-shot [`TesterProgram::classify`] is a
//! thin wrapper that drives a kept-order session to completion, so its
//! verdicts are identical to the pre-0.9 monolithic implementation.

use serde::{Deserialize, Serialize};

use crate::costmodel::TestCostModel;
use crate::dataset::MeasurementSet;
use crate::gridmodel::LookupTableTester;
use crate::guardband::{GuardBandedClassifier, Prediction};
use crate::metrics::ErrorBreakdown;
use crate::spec::SpecificationSet;
use crate::{CompactionError, Result};

/// How the acceptance region of the compacted test set is represented on the
/// tester.
///
/// # Serialisation
///
/// `CompleteSuite` and `LookupTable` round-trip exactly.  `Exact` carries
/// live classifier trait objects that cannot cross a process boundary, so it
/// serialises as a [`TesterModel::Detached`] descriptor (backend name + kept
/// set); decoding yields `Detached`, which reserialises to the same bytes.
/// Jobs that need a fully serialisable deployed model should ship a lookup
/// table instead.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum TesterModel {
    /// Apply the complete specification suite directly — no statistical
    /// model is needed when no test was eliminated.
    CompleteSuite,
    /// Ship the trained guard-banded model pair to the tester (needs more
    /// tester compute).
    Exact(GuardBandedClassifier),
    /// Ship a grid lookup table derived from the model (cheap on the tester,
    /// slightly approximate).
    LookupTable(LookupTableTester),
    /// A deserialised stand-in for [`TesterModel::Exact`]: records which
    /// backend trained the model and which tests it kept, but cannot classify
    /// devices.  Produced only by deserialisation.
    Detached {
        /// Name of the classifier backend that trained the original model.
        backend: String,
        /// Specification indices the original model kept.
        kept: Vec<usize>,
    },
}

impl Serialize for TesterModel {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        use serde::ser::SerializeStructVariant;
        match self {
            TesterModel::CompleteSuite => {
                serializer.serialize_unit_variant("TesterModel", 0, "CompleteSuite")
            }
            TesterModel::Exact(classifier) => {
                let mut state =
                    serializer.serialize_struct_variant("TesterModel", 3, "Detached", 2)?;
                state.serialize_field("backend", classifier.backend())?;
                state.serialize_field("kept", &classifier.kept().to_vec())?;
                state.end()
            }
            TesterModel::LookupTable(table) => {
                serializer.serialize_newtype_variant("TesterModel", 2, "LookupTable", table)
            }
            TesterModel::Detached { backend, kept } => {
                let mut state =
                    serializer.serialize_struct_variant("TesterModel", 3, "Detached", 2)?;
                state.serialize_field("backend", backend)?;
                state.serialize_field("kept", kept)?;
                state.end()
            }
        }
    }
}

impl<'de> Deserialize<'de> for TesterModel {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        use serde::de::{EnumAccess, Error as _, IgnoredAny, MapAccess, VariantAccess, Visitor};
        const VARIANTS: &[&str] = &["CompleteSuite", "LookupTable", "Detached"];
        struct DetachedVisitor;
        impl<'de> Visitor<'de> for DetachedVisitor {
            type Value = TesterModel;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("struct variant TesterModel::Detached")
            }
            fn visit_map<A: MapAccess<'de>>(
                self,
                mut map: A,
            ) -> std::result::Result<TesterModel, A::Error> {
                let mut backend: Option<String> = None;
                let mut kept: Option<Vec<usize>> = None;
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "backend" => backend = Some(map.next_value()?),
                        "kept" => kept = Some(map.next_value()?),
                        _ => {
                            map.next_value::<IgnoredAny>()?;
                        }
                    }
                }
                Ok(TesterModel::Detached {
                    backend: backend.ok_or_else(|| A::Error::missing_field("backend"))?,
                    kept: kept.ok_or_else(|| A::Error::missing_field("kept"))?,
                })
            }
        }
        struct ModelVisitor;
        impl<'de> Visitor<'de> for ModelVisitor {
            type Value = TesterModel;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("enum TesterModel")
            }
            fn visit_enum<A: EnumAccess<'de>>(
                self,
                data: A,
            ) -> std::result::Result<TesterModel, A::Error> {
                let (tag, variant): (String, _) = data.variant()?;
                match tag.as_str() {
                    "CompleteSuite" => {
                        variant.unit_variant()?;
                        Ok(TesterModel::CompleteSuite)
                    }
                    "LookupTable" => Ok(TesterModel::LookupTable(variant.newtype_variant()?)),
                    "Detached" => variant.struct_variant(&["backend", "kept"], DetachedVisitor),
                    "Exact" => Err(A::Error::custom(
                        "TesterModel::Exact never serialises under its own tag; \
                         expected its `Detached` descriptor",
                    )),
                    other => Err(A::Error::unknown_variant(other, VARIANTS)),
                }
            }
        }
        deserializer.deserialize_enum("TesterModel", VARIANTS, ModelVisitor)
    }
}

/// A complete tester program: which specifications to measure and how to turn
/// the measurements into an accept/reject/retest decision.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TesterProgram {
    specs: SpecificationSet,
    kept: Vec<usize>,
    model: TesterModel,
}

impl TesterProgram {
    /// Builds the trivial program that applies the complete specification
    /// suite: every test is kept and the accept/reject decision is the
    /// range check itself.
    pub fn complete(specs: SpecificationSet) -> Self {
        let kept = (0..specs.len()).collect();
        TesterProgram { specs, kept, model: TesterModel::CompleteSuite }
    }

    /// Builds a tester program that ships the trained model pair itself
    /// (whatever classifier backend produced it).
    pub fn with_model(specs: SpecificationSet, classifier: GuardBandedClassifier) -> Self {
        let kept = classifier.kept().to_vec();
        TesterProgram { specs, kept, model: TesterModel::Exact(classifier) }
    }

    /// Builds a tester program that ships a lookup table with the given grid
    /// resolution (the paper's low-cost option).
    ///
    /// # Errors
    ///
    /// Propagates table-size errors from [`LookupTableTester::build`].
    pub fn with_lookup_table(
        specs: SpecificationSet,
        classifier: &GuardBandedClassifier,
        cells_per_dim: usize,
    ) -> Result<Self> {
        let table = LookupTableTester::build(classifier, cells_per_dim)?;
        Ok(TesterProgram {
            specs,
            kept: classifier.kept().to_vec(),
            model: TesterModel::LookupTable(table),
        })
    }

    /// The complete specification table the program was built against.
    pub fn specs(&self) -> &SpecificationSet {
        &self.specs
    }

    /// The specifications that must still be measured on the tester.
    pub fn kept(&self) -> &[usize] {
        &self.kept
    }

    /// Names of the kept specifications, in measurement order.
    pub fn kept_names(&self) -> Vec<&str> {
        self.kept.iter().map(|&c| self.specs.spec(c).name()).collect()
    }

    /// Which model representation the program carries.
    pub fn model(&self) -> &TesterModel {
        &self.model
    }

    /// Starts a sequential session over the kept set in its stored order
    /// (the [`TestPlan::kept_order`] plan).  Use
    /// [`TestPlan::begin`] to drive a reordered plan instead.
    pub fn begin(&self) -> SequentialSession<'_> {
        TestPlan::kept_order(self).begin()
    }

    /// Classifies one device from its *kept* raw measurements (in the same
    /// order as [`TesterProgram::kept`]).
    ///
    /// Since 0.9 this is a thin wrapper that drives a kept-order
    /// [`SequentialSession`] to its verdict; because a session only
    /// early-exits on outcomes that are provably the final verdict, the
    /// result is identical to evaluating every measurement up front.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::DimensionMismatch`] when the number of
    /// measurements does not match the kept set.
    pub fn classify(&self, kept_measurements: &[f64]) -> Result<Prediction> {
        if kept_measurements.len() != self.kept.len() {
            return Err(CompactionError::DimensionMismatch {
                expected: self.kept.len(),
                found: kept_measurements.len(),
            });
        }
        let mut session = self.begin();
        for &value in kept_measurements {
            if let StepVerdict::Decided(prediction) = session.measure(value)? {
                return Ok(prediction);
            }
        }
        unreachable!("a session over the full kept set always reaches a verdict")
    }

    /// Applies the program to a full labelled population (which still carries
    /// every measurement) and reports the error breakdown — the end-to-end
    /// check that deployment behaves like the model it was derived from.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::Classifier`] when the program carries a
    /// detached (deserialised) exact model, which cannot classify devices.
    pub fn try_evaluate(&self, data: &MeasurementSet) -> Result<ErrorBreakdown> {
        crate::metrics::try_evaluate_population(data, |data, i| {
            let kept_measurements: Vec<f64> = self.kept.iter().map(|&c| data.value(i, c)).collect();
            self.classify(&kept_measurements)
        })
    }

    /// [`TesterProgram::try_evaluate`], panicking instead of returning the
    /// detached-model error.
    ///
    /// # Panics
    ///
    /// Panics when the program carries a detached (deserialised) exact
    /// model.  Long-running services should call
    /// [`TesterProgram::try_evaluate`] instead.
    pub fn evaluate(&self, data: &MeasurementSet) -> ErrorBreakdown {
        self.try_evaluate(data)
            .expect("program model must be executable (detached models cannot classify)")
    }
}

/// An ordered measurement schedule over a tester program's kept
/// specifications — the staging that a [`SequentialSession`] walks.
///
/// A plan is always a permutation of the program's kept set: reordering
/// changes *when* a device's verdict is reached (and therefore the expected
/// measurement cost per device), never *what* the verdict is.
#[derive(Debug, Clone)]
pub struct TestPlan<'p> {
    program: &'p TesterProgram,
    /// Specification columns in measurement order.
    stages: Vec<usize>,
    /// `slots[i]` is the position of `stages[i]` within the program's kept
    /// set (the feature-vector index the models expect).
    slots: Vec<usize>,
}

impl<'p> TestPlan<'p> {
    /// The kept set in its stored order — the plan the one-shot
    /// [`TesterProgram::classify`] drives.
    pub fn kept_order(program: &'p TesterProgram) -> Self {
        let stages = program.kept.to_vec();
        let slots = (0..stages.len()).collect();
        TestPlan { program, stages, slots }
    }

    /// Orders the kept set cheapest-first under a cost model: each stage is
    /// the remaining kept specification with the smallest *incremental* cost
    /// (per-test cost plus its insertion's setup cost if no earlier stage
    /// already opened that insertion), ties broken by column index.  This is
    /// the default deploy-time order — devices that exit early skip the most
    /// expensive tail.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::UnknownSpecification`] when the cost model
    /// does not cover the kept columns.
    pub fn cheapest_first(program: &'p TesterProgram, cost_model: &TestCostModel) -> Result<Self> {
        let stages = cost_model.cheapest_order(&program.kept)?;
        TestPlan::with_stages(program, stages)
    }

    /// Orders the kept set by an externally resolved ranking (for example an
    /// [`EliminationOrder`](crate::EliminationOrder) resolved against the
    /// training population): kept columns are measured in the order they
    /// appear in `order`.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::InvalidConfig`] when a kept column does
    /// not appear in `order`.
    pub fn ordered_by(program: &'p TesterProgram, order: &[usize]) -> Result<Self> {
        let mut stages: Vec<usize> = Vec::with_capacity(program.kept.len());
        for &column in order {
            if program.kept.contains(&column) && !stages.contains(&column) {
                stages.push(column);
            }
        }
        if stages.len() != program.kept.len() {
            let missing = program.kept.iter().find(|c| !stages.contains(c)).copied().unwrap_or(0);
            return Err(CompactionError::InvalidConfig {
                parameter: "order",
                value: missing as f64,
            });
        }
        TestPlan::with_stages(program, stages)
    }

    /// A plan with an explicit stage order.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::DimensionMismatch`] when the stage count
    /// differs from the kept set,
    /// [`CompactionError::UnknownSpecification`] when a stage is not a kept
    /// column, and [`CompactionError::InvalidConfig`] on duplicates.
    pub fn with_stages(program: &'p TesterProgram, stages: Vec<usize>) -> Result<Self> {
        if stages.len() != program.kept.len() {
            return Err(CompactionError::DimensionMismatch {
                expected: program.kept.len(),
                found: stages.len(),
            });
        }
        let mut slots = Vec::with_capacity(stages.len());
        let mut seen = vec![false; program.kept.len()];
        for &column in &stages {
            let slot = program.kept.iter().position(|&k| k == column).ok_or(
                CompactionError::UnknownSpecification { index: column, count: program.specs.len() },
            )?;
            if seen[slot] {
                return Err(CompactionError::InvalidConfig {
                    parameter: "stages",
                    value: column as f64,
                });
            }
            seen[slot] = true;
            slots.push(slot);
        }
        Ok(TestPlan { program, stages, slots })
    }

    /// The program this plan schedules.
    pub fn program(&self) -> &'p TesterProgram {
        self.program
    }

    /// Specification columns in measurement order.
    pub fn stages(&self) -> &[usize] {
        &self.stages
    }

    /// Number of measurement stages (the kept-set size).
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the plan has no stages (an empty kept set; never produced by
    /// the pipeline).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Cumulative measurement cost after each stage under a cost model:
    /// `prefix_costs(m)[d]` is what a device that exits after `d + 1`
    /// measurements paid.  The last entry equals the static kept-set cost.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::UnknownSpecification`] when the cost model
    /// does not cover the kept columns.
    pub fn prefix_costs(&self, cost_model: &TestCostModel) -> Result<Vec<f64>> {
        let mut costs = Vec::with_capacity(self.stages.len());
        for end in 1..=self.stages.len() {
            costs.push(cost_model.cost_of(&self.stages[..end])?);
        }
        Ok(costs)
    }

    /// Starts a sequential session over this plan.
    pub fn begin(&self) -> SequentialSession<'p> {
        let kept_len = self.program.kept.len();
        SequentialSession {
            program: self.program,
            stages: self.stages.clone(),
            slots: self.slots.clone(),
            next: 0,
            lower: vec![0.0; kept_len],
            upper: vec![1.0; kept_len],
            verdict: None,
        }
    }
}

/// Outcome of one [`SequentialSession::measure`] step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepVerdict {
    /// The device's verdict is settled; remaining measurements are
    /// irrelevant and the session accepts no further input.
    Decided(Prediction),
    /// More measurements are needed; `next` is the specification column to
    /// measure next.
    NeedMore {
        /// Specification column of the next stage.
        next: usize,
    },
}

/// An in-flight per-device walk of a [`TestPlan`], fed one measurement at a
/// time.
///
/// The session decides as early as soundness allows:
///
/// * a measurement violating its own specification range rejects the device
///   immediately (the one-shot path rejects on any kept-range violation, so
///   this is order-independent), and
/// * once the guard-banded model pair is provably **bad** over the whole box
///   of values the unmeasured stages could still take
///   ([`GuardBandedClassifier::classify_within`]), the device is rejected
///   without measuring them.
///
/// A *good* (or guard-band) verdict can never be emitted early: any
/// unmeasured kept specification could still be violated.  Because both
/// early-exit triggers are provably the final verdict, driving a session to
/// completion yields exactly what [`TesterProgram::classify`] returns — the
/// sequential mode only changes *when* the answer arrives, never what it is.
///
/// # Example
///
/// ```
/// use stc_core::tester::StepVerdict;
/// use stc_core::{Prediction, Specification, SpecificationSet, TesterProgram};
///
/// # fn main() -> Result<(), stc_core::CompactionError> {
/// let specs = SpecificationSet::new(vec![
///     Specification::new("gain", "dB", 60.0, 55.0, 65.0)?,
///     Specification::new("offset", "mV", 0.0, -5.0, 5.0)?,
/// ])?;
/// let program = TesterProgram::complete(specs);
///
/// let mut session = program.begin();
/// // The gain passes its range: the verdict is still open.
/// assert_eq!(session.measure(60.0)?, StepVerdict::NeedMore { next: 1 });
/// // The offset violates its range: rejected without further stages.
/// assert_eq!(session.measure(9.0)?, StepVerdict::Decided(Prediction::Bad));
/// assert_eq!(session.verdict(), Some(Prediction::Bad));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SequentialSession<'p> {
    program: &'p TesterProgram,
    stages: Vec<usize>,
    slots: Vec<usize>,
    next: usize,
    /// Per kept slot: the box of normalised values the device can still
    /// have.  Unmeasured in-range slots span `[0, 1]`; measured slots are
    /// pinned to a point.
    lower: Vec<f64>,
    upper: Vec<f64>,
    verdict: Option<Prediction>,
}

impl SequentialSession<'_> {
    /// Feeds the raw measurement of the current stage and reports whether
    /// the verdict is settled.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::DimensionMismatch`] when the session is
    /// already decided or exhausted, and [`CompactionError::Classifier`]
    /// when a detached (deserialised) model must be consulted for the final
    /// verdict.
    pub fn measure(&mut self, value: f64) -> Result<StepVerdict> {
        if self.verdict.is_some() || self.next >= self.stages.len() {
            return Err(CompactionError::DimensionMismatch {
                expected: self.stages.len(),
                found: self.stages.len() + 1,
            });
        }
        let column = self.stages[self.next];
        let slot = self.slots[self.next];
        let spec = self.program.specs.spec(column);
        self.next += 1;
        // The kept tests are real measurements: a device violating one of
        // their ranges is rejected outright, whatever the model would say.
        if !spec.passes(value) {
            self.verdict = Some(Prediction::Bad);
            return Ok(StepVerdict::Decided(Prediction::Bad));
        }
        let normalised = spec.normalize(value);
        self.lower[slot] = normalised;
        self.upper[slot] = normalised;
        if self.next == self.stages.len() {
            // Every range passed and every slot is pinned: `lower` is the
            // exact feature vector the one-shot path would build.
            let verdict = match &self.program.model {
                TesterModel::CompleteSuite => Prediction::Good,
                TesterModel::Exact(classifier) => classifier.classify_features(&self.lower),
                TesterModel::LookupTable(table) => table.classify_features(&self.lower),
                TesterModel::Detached { backend, .. } => {
                    return Err(CompactionError::Classifier {
                        backend: backend.clone(),
                        message: "a detached (deserialised) exact model cannot classify devices; \
                                  retrain or deploy a lookup table"
                            .to_owned(),
                    })
                }
            };
            self.verdict = Some(verdict);
            return Ok(StepVerdict::Decided(verdict));
        }
        // Model-based early exit.  Only a provably-bad box is sound: every
        // in-range completion classifies bad, and every out-of-range
        // completion is bad by the range check above — so the final verdict
        // is bad whatever the remaining measurements turn out to be.  A
        // provably-good box proves nothing (an unmeasured kept range could
        // still be violated).
        let box_verdict = match &self.program.model {
            TesterModel::Exact(classifier) => classifier.classify_within(&self.lower, &self.upper),
            TesterModel::LookupTable(table) => table.classify_within(&self.lower, &self.upper),
            TesterModel::CompleteSuite | TesterModel::Detached { .. } => None,
        };
        if box_verdict == Some(Prediction::Bad) {
            self.verdict = Some(Prediction::Bad);
            return Ok(StepVerdict::Decided(Prediction::Bad));
        }
        Ok(StepVerdict::NeedMore { next: self.stages[self.next] })
    }

    /// Number of measurements taken so far.
    pub fn measured(&self) -> usize {
        self.next
    }

    /// The settled verdict, or `None` while the session still needs
    /// measurements.
    pub fn verdict(&self) -> Option<Prediction> {
        self.verdict
    }

    /// Whether the verdict is settled.
    pub fn is_decided(&self) -> bool {
        self.verdict.is_some()
    }

    /// Specification column of the next stage, or `None` when the session
    /// is decided or exhausted.
    pub fn next_stage(&self) -> Option<usize> {
        if self.verdict.is_some() {
            None
        } else {
            self.stages.get(self.next).copied()
        }
    }
}

/// Deploy-time statistics of running a [`TestPlan`] sequentially over a
/// population: how deep the sessions went and what they cost per device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequentialStats {
    /// Specification columns in the measurement order the stats were
    /// collected under.
    pub stage_order: Vec<usize>,
    /// Devices driven through the plan.
    pub devices: usize,
    /// Devices decided before the last stage (their remaining measurements
    /// were skipped).
    pub early_exits: usize,
    /// Decision-depth histogram: `decision_depths[d]` devices were decided
    /// after exactly `d + 1` measurements (length = stage count).
    pub decision_depths: Vec<usize>,
    /// Mean number of measurements per device.
    pub mean_depth: f64,
    /// Expected measurement cost per device under the observed early-exit
    /// distribution (mean of the per-device prefix costs).
    pub expected_cost: f64,
    /// Cost of measuring the full kept set on every device — the static
    /// compaction result the sequential mode improves on.
    pub static_cost: f64,
}

impl SequentialStats {
    /// Drives every device of a population through the plan and collects
    /// the depth histogram and per-device expected cost under `cost_model`.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::Classifier`] when the program carries a
    /// detached model (a session that survives to the last stage must
    /// consult it) and cost-model coverage errors.
    pub fn collect(
        plan: &TestPlan<'_>,
        cost_model: &TestCostModel,
        data: &MeasurementSet,
    ) -> Result<Self> {
        let prefix_costs = plan.prefix_costs(cost_model)?;
        let mut decision_depths = vec![0usize; plan.len()];
        let mut early_exits = 0usize;
        for i in 0..data.len() {
            let mut session = plan.begin();
            for &column in plan.stages() {
                if let StepVerdict::Decided(_) = session.measure(data.value(i, column))? {
                    break;
                }
            }
            let depth = session.measured();
            decision_depths[depth - 1] += 1;
            if depth < plan.len() {
                early_exits += 1;
            }
        }
        let devices = data.len();
        let scale = if devices == 0 { 0.0 } else { 1.0 / devices as f64 };
        let mean_depth = decision_depths
            .iter()
            .enumerate()
            .map(|(d, &count)| (d + 1) as f64 * count as f64)
            .sum::<f64>()
            * scale;
        let expected_cost = decision_depths
            .iter()
            .zip(prefix_costs.iter())
            .map(|(&count, &cost)| count as f64 * cost)
            .sum::<f64>()
            * scale;
        let static_cost = prefix_costs.last().copied().unwrap_or(0.0);
        Ok(SequentialStats {
            stage_order: plan.stages().to_vec(),
            devices,
            early_exits,
            decision_depths,
            mean_depth,
            expected_cost,
            static_cost,
        })
    }

    /// Fraction of devices decided before the last stage.
    pub fn early_exit_fraction(&self) -> f64 {
        if self.devices == 0 {
            0.0
        } else {
            self.early_exits as f64 / self.devices as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SyntheticDevice;
    use crate::guardband::GuardBandConfig;
    use crate::montecarlo::{generate_train_test, MonteCarloConfig};

    fn setup() -> (MeasurementSet, MeasurementSet, GuardBandedClassifier) {
        let device = SyntheticDevice::new(3, 1.5, 0.85);
        let (train, test) =
            generate_train_test(&device, &MonteCarloConfig::new(400).with_seed(55), 200).unwrap();
        let classifier = GuardBandedClassifier::train_with(
            &crate::classifier::GridBackend::default(),
            &train,
            &[0, 1],
            &GuardBandConfig::paper_default(),
        )
        .unwrap();
        (train, test, classifier)
    }

    #[test]
    fn exact_program_matches_direct_classifier_evaluation() {
        let (train, test, classifier) = setup();
        let program = TesterProgram::with_model(train.specs().clone(), classifier.clone());
        assert_eq!(program.kept(), &[0, 1]);
        assert_eq!(program.kept_names(), vec!["spec0", "spec1"]);
        assert!(matches!(program.model(), TesterModel::Exact(_)));
        let direct = classifier.evaluate(&test);
        let deployed = program.evaluate(&test);
        assert_eq!(direct.yield_loss_count, deployed.yield_loss_count);
        assert_eq!(direct.defect_escape_count, deployed.defect_escape_count);
    }

    #[test]
    fn lookup_table_program_is_close_to_the_exact_program() {
        let (train, test, classifier) = setup();
        let exact_program = TesterProgram::with_model(train.specs().clone(), classifier.clone());
        let table_program =
            TesterProgram::with_lookup_table(train.specs().clone(), &classifier, 64).unwrap();
        assert!(matches!(table_program.model(), TesterModel::LookupTable(_)));
        let exact_eval = exact_program.evaluate(&test);
        let table_eval = table_program.evaluate(&test);
        assert!(
            (exact_eval.prediction_error() - table_eval.prediction_error()).abs() < 0.03,
            "exact {:?} table {:?}",
            exact_eval,
            table_eval
        );
    }

    #[test]
    fn classify_rejects_wrong_measurement_count_and_bad_kept_values() {
        let (train, _, classifier) = setup();
        let program = TesterProgram::with_model(train.specs().clone(), classifier);
        assert!(program.classify(&[0.0]).is_err());
        // A kept measurement far outside its range is rejected outright.
        assert_eq!(program.classify(&[99.0, 0.0]).unwrap(), Prediction::Bad);
    }

    /// A session driven over every plan order agrees with the one-shot
    /// verdict on every device of the population.
    #[test]
    fn sequential_sessions_match_the_one_shot_verdict() {
        let (train, test, classifier) = setup();
        let programs = [
            TesterProgram::with_model(train.specs().clone(), classifier.clone()),
            TesterProgram::with_lookup_table(train.specs().clone(), &classifier, 32).unwrap(),
            TesterProgram::complete(train.specs().clone()),
        ];
        for program in &programs {
            let orders: Vec<Vec<usize>> =
                vec![program.kept().to_vec(), program.kept().iter().rev().copied().collect()];
            for order in orders {
                let plan = TestPlan::with_stages(program, order).unwrap();
                for i in 0..test.len() {
                    let kept_measurements: Vec<f64> =
                        program.kept().iter().map(|&c| test.value(i, c)).collect();
                    let one_shot = program.classify(&kept_measurements).unwrap();
                    let mut session = plan.begin();
                    let mut verdict = None;
                    for &column in plan.stages() {
                        if let StepVerdict::Decided(p) =
                            session.measure(test.value(i, column)).unwrap()
                        {
                            verdict = Some(p);
                            break;
                        }
                    }
                    assert_eq!(verdict.expect("full plan always decides"), one_shot);
                }
            }
        }
    }

    #[test]
    fn decided_sessions_reject_further_measurements() {
        let (train, _, classifier) = setup();
        let program = TesterProgram::with_model(train.specs().clone(), classifier);
        let mut session = program.begin();
        assert_eq!(session.measure(99.0).unwrap(), StepVerdict::Decided(Prediction::Bad));
        assert!(session.is_decided());
        assert_eq!(session.next_stage(), None);
        assert!(session.measure(0.0).is_err());
    }

    #[test]
    fn plan_validation_rejects_foreign_and_duplicate_stages() {
        let (train, _, classifier) = setup();
        let program = TesterProgram::with_model(train.specs().clone(), classifier);
        assert!(TestPlan::with_stages(&program, vec![0]).is_err());
        assert!(TestPlan::with_stages(&program, vec![0, 2]).is_err());
        assert!(TestPlan::with_stages(&program, vec![0, 0]).is_err());
        assert!(TestPlan::with_stages(&program, vec![1, 0]).is_ok());
        assert!(TestPlan::ordered_by(&program, &[2, 1, 0]).is_ok());
        assert!(TestPlan::ordered_by(&program, &[1, 2]).is_err());
    }

    #[test]
    fn cheapest_first_puts_the_expensive_stage_last() {
        let (train, _, classifier) = setup();
        let program = TesterProgram::with_model(train.specs().clone(), classifier);
        let costs = TestCostModel::new(vec![1.0, 5.0, 1.0], vec![0, 0, 0], vec![0.0]).unwrap();
        let plan = TestPlan::cheapest_first(&program, &costs).unwrap();
        assert_eq!(plan.stages(), &[0, 1]);
        let reversed = TestCostModel::new(vec![5.0, 1.0, 1.0], vec![0, 0, 0], vec![0.0]).unwrap();
        let plan = TestPlan::cheapest_first(&program, &reversed).unwrap();
        assert_eq!(plan.stages(), &[1, 0]);
    }

    #[test]
    fn sequential_stats_expected_cost_never_exceeds_static_cost() {
        let (train, test, classifier) = setup();
        let program = TesterProgram::with_model(train.specs().clone(), classifier);
        let costs = TestCostModel::uniform(train.specs().len());
        let plan = TestPlan::cheapest_first(&program, &costs).unwrap();
        let stats = SequentialStats::collect(&plan, &costs, &test).unwrap();
        assert_eq!(stats.devices, test.len());
        assert_eq!(stats.decision_depths.iter().sum::<usize>(), test.len());
        assert!(stats.expected_cost <= stats.static_cost + 1e-12);
        assert!((stats.expected_cost - costs.expected_cost(&plan, &test).unwrap()).abs() < 1e-12);
    }

    /// A deserialised (detached) program fails `try_evaluate` with a
    /// classifier error instead of panicking — unless a range violation
    /// already decided the device.
    #[test]
    fn detached_programs_error_instead_of_panicking() {
        let (train, test, classifier) = setup();
        // What deserialising an `Exact` program yields (see the
        // `TesterModel` serialisation contract).
        let detached = TesterProgram {
            specs: train.specs().clone(),
            kept: classifier.kept().to_vec(),
            model: TesterModel::Detached {
                backend: classifier.backend().to_string(),
                kept: classifier.kept().to_vec(),
            },
        };
        assert!(matches!(detached.model(), TesterModel::Detached { .. }));
        assert!(matches!(detached.try_evaluate(&test), Err(CompactionError::Classifier { .. })));
        // Range violations still decide without the model.
        assert_eq!(detached.classify(&[99.0, 0.0]).unwrap(), Prediction::Bad);
    }
}
