//! Grid-based training-data compaction and the lookup-table tester model
//! (paper Sections 4.3 and 3.3).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::dataset::{DeviceLabel, MeasurementSet};
use crate::guardband::{GuardBandedClassifier, Prediction};
use crate::{CompactionError, Result};

/// Largest number of cells a lookup table is allowed to have.
const LOOKUP_TABLE_CELL_LIMIT: u128 = 4_000_000;

/// Compresses a training population by gridding the normalised measurement
/// space (paper Section 4.3): cells containing both good and bad instances
/// keep all their instances (they straddle the class boundary and carry the
/// information the classifier needs); homogeneous cells are merged into a
/// single representative at the cell centre.
///
/// Returns the compressed rows (in original measurement units) so they can be
/// wrapped in a new [`MeasurementSet`].
///
/// # Errors
///
/// Returns [`CompactionError::InvalidConfig`] when `cells_per_dim < 2` and
/// [`CompactionError::InsufficientData`] for an empty population.
pub fn compress_training_data(
    data: &MeasurementSet,
    cells_per_dim: usize,
) -> Result<MeasurementSet> {
    if cells_per_dim < 2 {
        return Err(CompactionError::InvalidConfig {
            parameter: "cells_per_dim",
            value: cells_per_dim as f64,
        });
    }
    if data.is_empty() {
        return Err(CompactionError::InsufficientData {
            reason: "cannot compress an empty population".to_string(),
        });
    }
    let specs = data.specs();
    let dims = specs.len();

    #[derive(Default)]
    struct Cell {
        rows: Vec<usize>,
        good: usize,
        bad: usize,
    }

    // Cells cover the shared normalised grid band around the acceptance box
    // (see `classifier::grid_cell`); anything further out is clamped into the
    // outermost cells so gross outliers do not explode the key space.
    // Cell keys and labels both come from one sequential pass per column of
    // the shared columnar storage.
    let cell_columns: Vec<Vec<u16>> = (0..dims)
        .map(|c| {
            let spec = specs.spec(c);
            data.column(c)
                .iter()
                .map(|&value| crate::classifier::grid_cell(spec.normalize(value), cells_per_dim))
                .collect()
        })
        .collect();
    let labels = data.labels();
    let mut cells: HashMap<Vec<u16>, Cell> = HashMap::new();
    for (i, &label) in labels.iter().enumerate() {
        let key: Vec<u16> = cell_columns.iter().map(|column| column[i]).collect();
        let cell = cells.entry(key).or_default();
        cell.rows.push(i);
        match label {
            DeviceLabel::Good => cell.good += 1,
            DeviceLabel::Bad => cell.bad += 1,
        }
    }

    let mut compressed: Vec<Vec<f64>> = Vec::new();
    for cell in cells.values() {
        if cell.good > 0 && cell.bad > 0 {
            // Boundary cell: keep every instance.
            for &i in &cell.rows {
                compressed.push(data.row_values(i));
            }
        } else {
            // Homogeneous cell: merge to the centroid (which preserves the
            // label because the cell is single-class).
            let mut centroid = vec![0.0; dims];
            for &i in &cell.rows {
                for (c, slot) in centroid.iter_mut().enumerate() {
                    *slot += data.value(i, c) / cell.rows.len() as f64;
                }
            }
            compressed.push(centroid);
        }
    }
    MeasurementSet::new(specs.clone(), compressed)
}

/// A tester-side lookup table over the compacted specification space
/// (paper Section 3.3): the space of kept, normalised measurements is divided
/// into a regular grid and each cell centre is classified once by the
/// statistical model; production devices are then classified by a table
/// lookup, which costs almost nothing on the tester.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LookupTableTester {
    kept: Vec<usize>,
    cells_per_dim: usize,
    /// Normalised-space coverage: cells span `[lower, upper]` in every kept
    /// dimension.
    lower: f64,
    upper: f64,
    attributes: Vec<Prediction>,
}

impl LookupTableTester {
    /// Builds the table by sampling the classifier at every cell centre.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::LookupTableTooLarge`] when
    /// `cells_per_dim ^ kept` exceeds the internal limit and
    /// [`CompactionError::InvalidConfig`] for a degenerate grid.
    pub fn build(
        classifier: &GuardBandedClassifier,
        cells_per_dim: usize,
    ) -> Result<LookupTableTester> {
        if cells_per_dim < 2 {
            return Err(CompactionError::InvalidConfig {
                parameter: "cells_per_dim",
                value: cells_per_dim as f64,
            });
        }
        let kept = classifier.kept().to_vec();
        let cells = (cells_per_dim as u128).pow(kept.len() as u32);
        if cells > LOOKUP_TABLE_CELL_LIMIT {
            return Err(CompactionError::LookupTableTooLarge {
                cells,
                limit: LOOKUP_TABLE_CELL_LIMIT,
            });
        }
        // Cover a bit more than the acceptability box so devices slightly
        // outside still hit a cell (the shared grid band of `classifier`).
        let lower = crate::classifier::GRID_LOWER;
        let upper = crate::classifier::GRID_UPPER;
        let mut attributes = Vec::with_capacity(cells as usize);
        let mut index = vec![0usize; kept.len()];
        loop {
            let centre: Vec<f64> = index
                .iter()
                .map(|&i| lower + (i as f64 + 0.5) * (upper - lower) / cells_per_dim as f64)
                .collect();
            attributes.push(classifier.classify_features(&centre));
            // Odometer increment.
            let mut dim = 0;
            loop {
                if dim == kept.len() {
                    return Ok(LookupTableTester { kept, cells_per_dim, lower, upper, attributes });
                }
                index[dim] += 1;
                if index[dim] < cells_per_dim {
                    break;
                }
                index[dim] = 0;
                dim += 1;
            }
        }
    }

    /// The kept specification indices the table expects.
    pub fn kept(&self) -> &[usize] {
        &self.kept
    }

    /// Number of cells in the table.
    pub fn cell_count(&self) -> usize {
        self.attributes.len()
    }

    /// Classifies a normalised kept-column feature vector by table lookup.
    ///
    /// # Panics
    ///
    /// Panics if the vector length does not match the kept set.
    pub fn classify_features(&self, features: &[f64]) -> Prediction {
        assert_eq!(features.len(), self.kept.len(), "feature vector length mismatch");
        let mut flat = 0usize;
        let mut stride = 1usize;
        for &value in features {
            let position = (value - self.lower) / (self.upper - self.lower);
            let cell = ((position * self.cells_per_dim as f64) as isize)
                .clamp(0, self.cells_per_dim as isize - 1) as usize;
            flat += cell * stride;
            stride *= self.cells_per_dim;
        }
        self.attributes[flat]
    }

    /// Classifies instance `i` of a measurement set.
    ///
    /// # Panics
    ///
    /// Panics if the measurement set does not contain the kept columns.
    pub fn classify_instance(&self, data: &MeasurementSet, i: usize) -> Prediction {
        self.classify_features(&data.features(i, &self.kept))
    }

    /// Classifies an axis-aligned box of normalised feature space, when the
    /// table's verdict is constant over it.
    ///
    /// Every point of `[lower, upper]` falls into a cell of the
    /// hyper-rectangle spanned by the corner cells; if all those cells carry
    /// the same attribute the box verdict is that attribute, otherwise (or
    /// when the sub-grid is too large to scan cheaply) `None`.  The decision
    /// seam of the sequential tester for table-backed programs
    /// ([`SequentialSession`](crate::SequentialSession)).
    ///
    /// # Panics
    ///
    /// Panics if the bound lengths do not match the kept set.
    pub fn classify_within(&self, lower: &[f64], upper: &[f64]) -> Option<Prediction> {
        /// Sub-grids larger than this are not worth scanning per step.
        const BOX_SCAN_CELL_LIMIT: u128 = 1 << 16;
        assert_eq!(lower.len(), self.kept.len(), "lower bound length mismatch");
        assert_eq!(upper.len(), self.kept.len(), "upper bound length mismatch");
        let cell_of = |value: f64| -> usize {
            let position = (value - self.lower) / (self.upper - self.lower);
            ((position * self.cells_per_dim as f64) as isize)
                .clamp(0, self.cells_per_dim as isize - 1) as usize
        };
        let ranges: Vec<(usize, usize)> = lower
            .iter()
            .zip(upper.iter())
            .map(|(&lo, &hi)| (cell_of(lo), cell_of(hi.max(lo))))
            .collect();
        let cells = ranges.iter().map(|&(lo, hi)| (hi - lo + 1) as u128).product::<u128>();
        if cells > BOX_SCAN_CELL_LIMIT {
            return None;
        }
        let mut index: Vec<usize> = ranges.iter().map(|&(lo, _)| lo).collect();
        let mut verdict: Option<Prediction> = None;
        loop {
            let mut flat = 0usize;
            let mut stride = 1usize;
            for &cell in &index {
                flat += cell * stride;
                stride *= self.cells_per_dim;
            }
            let attribute = self.attributes[flat];
            match verdict {
                None => verdict = Some(attribute),
                Some(seen) if seen != attribute => return None,
                Some(_) => {}
            }
            // Odometer increment over the sub-grid.
            let mut dim = 0;
            loop {
                if dim == index.len() {
                    return verdict;
                }
                index[dim] += 1;
                if index[dim] <= ranges[dim].1 {
                    break;
                }
                index[dim] = ranges[dim].0;
                dim += 1;
            }
        }
    }

    /// Fraction of a population on which the table and the exact classifier
    /// agree (a sanity metric for choosing the grid resolution).
    pub fn agreement_with(&self, classifier: &GuardBandedClassifier, data: &MeasurementSet) -> f64 {
        if data.is_empty() {
            return 1.0;
        }
        let matching = (0..data.len())
            .filter(|&i| self.classify_instance(data, i) == classifier.classify_instance(data, i))
            .count();
        matching as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SyntheticDevice;
    use crate::guardband::GuardBandConfig;
    use crate::montecarlo::{generate_train_test, MonteCarloConfig};

    fn train_pair(train: &MeasurementSet, kept: &[usize]) -> GuardBandedClassifier {
        GuardBandedClassifier::train_with(
            &crate::classifier::GridBackend::default(),
            train,
            kept,
            &GuardBandConfig::paper_default(),
        )
        .unwrap()
    }

    fn population() -> (MeasurementSet, MeasurementSet) {
        let device = SyntheticDevice::new(3, 1.5, 0.85);
        generate_train_test(&device, &MonteCarloConfig::new(400).with_seed(77), 200).unwrap()
    }

    #[test]
    fn compression_reduces_size_and_keeps_both_classes() {
        let (train, _) = population();
        let compressed = compress_training_data(&train, 6).unwrap();
        assert!(compressed.len() < train.len(), "{} -> {}", train.len(), compressed.len());
        assert!(!compressed.is_empty());
        // Merging homogeneous cells cannot erase a class entirely.
        let yield_fraction = compressed.yield_fraction();
        assert!(yield_fraction > 0.0 && yield_fraction < 1.0, "yield {yield_fraction}");
    }

    #[test]
    fn compressed_data_still_trains_an_accurate_model() {
        let (train, test) = population();
        let compressed = compress_training_data(&train, 10).unwrap();
        let full = train_pair(&train, &[0, 1]);
        let compact = train_pair(&compressed, &[0, 1]);
        let full_error = full.evaluate(&test).prediction_error();
        let compact_error = compact.evaluate(&test).prediction_error();
        assert!(
            compact_error <= full_error + 0.06,
            "compressed-model error {compact_error} vs {full_error}"
        );
    }

    #[test]
    fn compression_validates_inputs() {
        let (train, _) = population();
        assert!(compress_training_data(&train, 1).is_err());
        let empty = MeasurementSet::new(train.specs().clone(), vec![]).unwrap();
        assert!(compress_training_data(&empty, 4).is_err());
    }

    #[test]
    fn lookup_table_matches_the_exact_classifier_closely() {
        let (train, test) = population();
        let classifier = train_pair(&train, &[0, 1]);
        let table = LookupTableTester::build(&classifier, 48).unwrap();
        assert_eq!(table.cell_count(), 48 * 48);
        assert_eq!(table.kept(), &[0, 1]);
        let agreement = table.agreement_with(&classifier, &test);
        assert!(agreement > 0.93, "agreement {agreement}");
    }

    #[test]
    fn finer_tables_agree_at_least_as_well() {
        let (train, test) = population();
        let classifier = train_pair(&train, &[0, 1]);
        let coarse = LookupTableTester::build(&classifier, 8).unwrap();
        let fine = LookupTableTester::build(&classifier, 64).unwrap();
        assert!(
            fine.agreement_with(&classifier, &test)
                >= coarse.agreement_with(&classifier, &test) - 0.02
        );
    }

    #[test]
    fn box_verdicts_are_sound_for_every_contained_point() {
        let (train, _) = population();
        let classifier = train_pair(&train, &[0, 1]);
        let table = LookupTableTester::build(&classifier, 16).unwrap();
        // A degenerate box (a single point) reproduces the point lookup.
        let point = [0.4, 0.6];
        assert_eq!(table.classify_within(&point, &point), Some(table.classify_features(&point)));
        // Any constant box verdict must match the lookup of every sampled
        // point inside the box; a box covering disagreeing points must
        // return `None`.
        let (lo, hi) = ([0.0, 0.0], [1.0, 1.0]);
        let samples: Vec<[f64; 2]> = (0..=10)
            .flat_map(|a| (0..=10).map(move |b| [a as f64 / 10.0, b as f64 / 10.0]))
            .collect();
        let verdicts: Vec<Prediction> =
            samples.iter().map(|p| table.classify_features(p)).collect();
        // `None` is always a legal answer (no constant verdict proven).
        if let Some(v) = table.classify_within(&lo, &hi) {
            assert!(verdicts.iter().all(|&seen| seen == v));
        }
        assert!(verdicts.len() == 121);
    }

    #[test]
    fn oversized_tables_are_rejected() {
        let (train, _) = population();
        let classifier = train_pair(&train, &[0, 1, 2]);
        assert!(matches!(
            LookupTableTester::build(&classifier, 2000),
            Err(CompactionError::LookupTableTooLarge { .. })
        ));
        assert!(LookupTableTester::build(&classifier, 1).is_err());
    }
}
