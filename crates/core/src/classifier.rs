//! Pluggable pass/fail classifier backends — the seam of the compaction
//! pipeline.
//!
//! The paper trains an ε-SVM to predict the overall pass/fail outcome from a
//! subset of the specification measurements, but nothing in the methodology
//! depends on the model family.  This module extracts that dependency into a
//! [`Classifier`]/[`ClassifierFactory`] trait pair: a factory trains on a
//! [`TrainingView`] (a measurement set restricted to the kept columns, with
//! the acceptability ranges tightened or widened for guard-band labelling)
//! and returns a decision function over normalised feature vectors.
//!
//! Two backends prove the seam:
//!
//! * [`GridBackend`] (here) — the paper's Section 4.3 grid model turned into
//!   a standalone classifier: training instances are binned on a sparse grid
//!   over the normalised measurement space and a device is classified by the
//!   vote of its cell (falling back to the nearest occupied cell),
//! * `SvmBackend` (in `stc-svm`) — the SMO-trained ε-SVM of the paper.
//!
//! Additional backends only need to implement the two traits.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::dataset::{DeviceLabel, MeasurementSet};
use crate::{CompactionError, Result};

/// Normalised-space band the grid models cover: a little more than the
/// acceptance box so devices slightly outside still land in a cell.
pub(crate) const GRID_LOWER: f64 = -0.25;
pub(crate) const GRID_UPPER: f64 = 1.25;

/// Bins one normalised value onto the `[GRID_LOWER, GRID_UPPER]` grid,
/// clamping outliers into the outermost cells.  Shared by the grid backend
/// and the training-data compression of [`crate::gridmodel`] so training and
/// inference always agree on cell boundaries.
pub(crate) fn grid_cell(normalised: f64, cells_per_dim: usize) -> u16 {
    let position = (normalised - GRID_LOWER) / (GRID_UPPER - GRID_LOWER);
    ((position * cells_per_dim as f64) as isize).clamp(0, cells_per_dim as isize - 1) as u16
}

/// A borrowed view of a training population restricted to a set of *kept*
/// specification columns, with pass/fail labels computed after tightening
/// (`label_margin > 0`) or widening (`label_margin < 0`) every acceptability
/// range by that fraction of its width.
///
/// This is what classifier backends train on: features are the kept
/// measurements normalised to their acceptability ranges (paper Section 4.3),
/// the target is the overall pass/fail outcome of the *complete*
/// specification set under the margin.
#[derive(Debug, Clone, Copy)]
pub struct TrainingView<'a> {
    data: &'a MeasurementSet,
    kept: &'a [usize],
    label_margin: f64,
}

impl<'a> TrainingView<'a> {
    /// Creates a view, validating the kept columns.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::EmptyTestSet`] when `kept` is empty and
    /// [`CompactionError::UnknownSpecification`] for an out-of-range column.
    pub fn new(data: &'a MeasurementSet, kept: &'a [usize], label_margin: f64) -> Result<Self> {
        if kept.is_empty() {
            return Err(CompactionError::EmptyTestSet);
        }
        if let Some(&bad) = kept.iter().find(|&&c| c >= data.specs().len()) {
            return Err(CompactionError::UnknownSpecification {
                index: bad,
                count: data.specs().len(),
            });
        }
        Ok(TrainingView { data, kept, label_margin })
    }

    /// The underlying measurement set.
    pub fn measurements(&self) -> &'a MeasurementSet {
        self.data
    }

    /// The kept specification columns, in feature order.
    pub fn kept(&self) -> &'a [usize] {
        self.kept
    }

    /// The labelling margin (fraction of each range width).
    pub fn label_margin(&self) -> f64 {
        self.label_margin
    }

    /// Number of training instances.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the view holds no instances.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of features (kept columns).
    pub fn dimension(&self) -> usize {
        self.kept.len()
    }

    /// Normalised feature vector of instance `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn features(&self, i: usize) -> Vec<f64> {
        self.data.features(i, self.kept)
    }

    /// Margin-adjusted pass/fail label of instance `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn label(&self, i: usize) -> DeviceLabel {
        self.data.label_with_margin(i, self.label_margin)
    }

    /// The raw (unnormalised) measurement column backing feature `j` —
    /// zero-copy into the shared population allocation.
    ///
    /// # Panics
    ///
    /// Panics if `j >= dimension()`.
    pub fn raw_column(&self, j: usize) -> &'a [f64] {
        self.data.matrix().column(self.kept[j])
    }

    /// The normalised values of feature `j` for every instance, as an owned
    /// vector.  Prefer [`TrainingView::shared_column`] in hot paths — it
    /// returns the memoized shared allocation without copying.
    ///
    /// # Panics
    ///
    /// Panics if `j >= dimension()`.
    pub fn normalized_column(&self, j: usize) -> Vec<f64> {
        self.shared_column(j).to_vec()
    }

    /// The normalised values of feature `j`, memoized on the underlying
    /// measurement set ([`MeasurementSet::normalized_column_shared`]).
    ///
    /// Every view borrowed from the same set — every candidate kept set of a
    /// compaction round — receives pointer-identical `Arc`s for the columns
    /// it shares with other candidates, which is what lets the SVM kernel
    /// engine reuse per-column dot-product contributions across candidates.
    ///
    /// # Panics
    ///
    /// Panics if `j >= dimension()`.
    pub fn shared_column(&self, j: usize) -> Arc<[f64]> {
        self.data.normalized_column_shared(self.kept[j])
    }

    /// All normalised feature columns as shared allocations, one per kept
    /// specification, in feature order.
    pub fn shared_feature_columns(&self) -> Vec<Arc<[f64]>> {
        (0..self.dimension()).map(|j| self.shared_column(j)).collect()
    }

    /// All normalised feature columns, one owned `Vec` per kept
    /// specification.
    pub fn feature_columns(&self) -> Vec<Vec<f64>> {
        (0..self.dimension()).map(|j| self.normalized_column(j)).collect()
    }

    /// All feature vectors, one per instance.
    pub fn feature_rows(&self) -> Vec<Vec<f64>> {
        (0..self.len()).map(|i| self.features(i)).collect()
    }

    /// Margin-adjusted labels of every instance (one columnar pass).
    pub fn labels(&self) -> Vec<DeviceLabel> {
        self.data.labels_with_margin(self.label_margin)
    }

    /// All labels in the SVM-style `+1` / `-1` encoding.
    pub fn class_labels(&self) -> Vec<f64> {
        self.labels().into_iter().map(DeviceLabel::to_class).collect()
    }
}

/// How a backend's incremental kernel-row bank fared during one training (or
/// several, when merged): rows seeded from the parent's bank versus rebuilt
/// from scratch, plus banks that were supplied but could not be applied at
/// all.  Backends without a bank mechanism report nothing
/// ([`Classifier::bank_stats`] stays `None`) and the counters stay zero.
///
/// Before 0.10 an inapplicable bank was ignored *silently*; these counters
/// make the failure mode — and the hit rate of the happy path — observable
/// in [`WarmStartStats`](crate::WarmStartStats) and the pipeline summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankStats {
    /// Kernel rows seeded by adjusting parent-bank rows.
    pub seeded_rows: usize,
    /// Kernel rows rebuilt from scratch (full column sweeps).
    pub rebuilt_rows: usize,
    /// Parent banks supplied but inapplicable (foreign column universe,
    /// naive kernel path, or an adjustment no cheaper than recomputation).
    pub ignored_banks: usize,
}

impl BankStats {
    /// Accumulates another training's counters into this one.
    pub fn merge(&mut self, other: &BankStats) {
        self.seeded_rows += other.seeded_rows;
        self.rebuilt_rows += other.rebuilt_rows;
        self.ignored_banks += other.ignored_banks;
    }

    /// Whether any counter is non-zero (i.e. a bank-aware backend ran).
    pub fn any(&self) -> bool {
        self.seeded_rows > 0 || self.rebuilt_rows > 0 || self.ignored_banks > 0
    }
}

/// A trained pass/fail decision function over normalised kept-column feature
/// vectors.
pub trait Classifier: fmt::Debug + Send + Sync {
    /// Signed decision value: positive predicts the device passes the full
    /// specification set, negative that it fails.  The magnitude is a
    /// backend-specific confidence and is only compared against zero by the
    /// methodology.
    fn decision(&self, features: &[f64]) -> f64;

    /// Whether the device is predicted to pass.
    fn predict_good(&self, features: &[f64]) -> bool {
        self.decision(features) > 0.0
    }

    /// Type-erased view of the concrete model, letting a factory recognise
    /// (and warm-start from) models it trained itself.  Backends that do not
    /// support warm starts keep the default `None`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Iterations the backend's iterative solver spent training this model,
    /// or `None` for backends without an iterative solver (for example the
    /// single-pass [`GridBackend`]).  Feeds the
    /// [`WarmStartStats`](crate::WarmStartStats) diagnostics of the
    /// compaction loop.
    fn solver_iterations(&self) -> Option<usize> {
        None
    }

    /// Decision over an axis-aligned box of feature space: `Some(true)` when
    /// *every* point of `[lower, upper]` (per-dimension inclusive bounds, in
    /// the same normalised feature coordinates as
    /// [`Classifier::decision`]) is predicted good, `Some(false)` when every
    /// point is predicted bad, and `None` when the backend cannot prove the
    /// decision sign is constant over the box (including when it genuinely
    /// is not).
    ///
    /// Powers the sequential tester's early exits
    /// ([`SequentialSession`](crate::tester::SequentialSession)): with only
    /// a prefix of the kept specs measured, the unmeasured coordinates span
    /// a box, and a provably-constant bad verdict over that box decides the
    /// device without further measurements.  The default is `None` — box
    /// reasoning is an optional capability, and a backend without it merely
    /// forgoes model-based early exits (range-check exits still apply).
    fn predict_good_within(&self, lower: &[f64], upper: &[f64]) -> Option<bool> {
        let _ = (lower, upper);
        None
    }

    /// Kernel-row bank diagnostics of the training that produced this model,
    /// or `None` for backends without an incremental bank (for example the
    /// [`GridBackend`]).  Feeds the [`BankStats`] rolled up in
    /// [`WarmStartStats`](crate::WarmStartStats).
    fn bank_stats(&self) -> Option<BankStats> {
        None
    }
}

/// Warm-start hint handed to [`ClassifierFactory::train_warm`]: a model this
/// factory previously trained on the *same training population* over an
/// overlapping kept set, together with the parent-candidate relation
/// between the two kept sets ([`WarmStartContext::removed_columns`] /
/// [`WarmStartContext::added_columns`]).
///
/// In the backward-elimination strategies the hint is the model of the
/// committed frontier (the candidate's kept set plus the candidate column
/// itself), so the two training problems differ by exactly one feature
/// column; forward selection hands the frontier as a *subset* of the
/// candidate kept set instead.  Either way the instances — and therefore
/// their pass/fail labels, which depend only on the full specification set
/// — are identical, which is what makes the parent's dual solution a
/// useful starting point.
#[derive(Debug, Clone, Copy)]
pub struct WarmStartContext<'a> {
    model: &'a dyn Classifier,
    kept: &'a [usize],
}

impl<'a> WarmStartContext<'a> {
    /// Wraps a previously trained model and the kept columns it was trained
    /// on.
    pub fn new(model: &'a dyn Classifier, kept: &'a [usize]) -> Self {
        WarmStartContext { model, kept }
    }

    /// The previously trained model.
    pub fn model(&self) -> &'a dyn Classifier {
        self.model
    }

    /// The kept specification columns the model was trained on.
    pub fn kept(&self) -> &'a [usize] {
        self.kept
    }

    /// Whether this parent's kept set shares at least one column with a
    /// child kept set — the minimum relation for a warm start to carry any
    /// useful geometry.  Backends should fall back to a cold start when
    /// this is `false`.
    pub fn overlaps(&self, child_kept: &[usize]) -> bool {
        self.kept.iter().any(|column| child_kept.contains(column))
    }

    /// The columns this parent was trained on that a child kept set
    /// dropped.  In backward-elimination strategies this is exactly the
    /// candidate under examination (one column); beam search hands larger
    /// differences when a frontier warm-starts a cousin.
    pub fn removed_columns(&self, child_kept: &[usize]) -> Vec<usize> {
        self.kept.iter().copied().filter(|column| !child_kept.contains(column)).collect()
    }

    /// The columns a child kept set adds over this parent — the
    /// forward-selection access pattern, where the parent is the committed
    /// kept set and the child extends it by the candidate under
    /// examination.
    pub fn added_columns(&self, child_kept: &[usize]) -> Vec<usize> {
        child_kept.iter().copied().filter(|column| !self.kept.contains(column)).collect()
    }
}

/// Trains [`Classifier`]s from labelled measurement views.
///
/// Factories are shared across worker threads by the compaction loop, so
/// implementations must be `Send + Sync`.
pub trait ClassifierFactory: fmt::Debug + Send + Sync {
    /// Short backend name used in reports (for example `"svm"` or `"grid"`).
    fn name(&self) -> &str;

    /// Trains one classifier on a training view.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::Classifier`] when the model cannot be
    /// trained (the compaction loop treats this as "the candidate test cannot
    /// be eliminated" rather than aborting) and data errors for malformed
    /// views.
    fn train(&self, view: &TrainingView<'_>) -> Result<Arc<dyn Classifier>>;

    /// [`ClassifierFactory::train`] with an optional warm-start hint.
    ///
    /// The hint is strictly an accelerator: implementations must return a
    /// model meeting the same convergence guarantees as a cold
    /// [`ClassifierFactory::train`], and must fall back to a cold start when
    /// the hint is unusable (wrong concrete type, different population, …).
    /// The default ignores the hint.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClassifierFactory::train`].
    fn train_warm(
        &self,
        view: &TrainingView<'_>,
        warm: Option<&WarmStartContext<'_>>,
    ) -> Result<Arc<dyn Classifier>> {
        let _ = warm;
        self.train(view)
    }

    /// Whether [`ClassifierFactory::train_screen`] returns a genuinely
    /// cheaper approximate model.  The evaluator's screen-then-verify path
    /// only engages when this is `true`; the default (`false`) keeps
    /// screening inert for backends without an approximate trainer, so
    /// enabling [`ScreeningConfig`](crate::search::ScreeningConfig) on such
    /// a backend is a no-op rather than an error.
    fn supports_screening(&self) -> bool {
        false
    }

    /// Trains a cheap *approximate* classifier used only to rank candidate
    /// kept sets before exact verification (see
    /// [`ScreeningConfig`](crate::search::ScreeningConfig)).  `landmarks`
    /// bounds the approximation budget (for the SVM backend: Nyström
    /// landmark count).  Implementations must be deterministic; accuracy
    /// only matters for ranking quality, never for committed outcomes —
    /// every screened winner is re-trained exactly.  The default falls back
    /// to the exact [`ClassifierFactory::train`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClassifierFactory::train`].
    fn train_screen(
        &self,
        view: &TrainingView<'_>,
        landmarks: usize,
    ) -> Result<Arc<dyn Classifier>> {
        let _ = landmarks;
        self.train(view)
    }
}

impl<F: ClassifierFactory + ?Sized> ClassifierFactory for &F {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn train(&self, view: &TrainingView<'_>) -> Result<Arc<dyn Classifier>> {
        (**self).train(view)
    }

    fn train_warm(
        &self,
        view: &TrainingView<'_>,
        warm: Option<&WarmStartContext<'_>>,
    ) -> Result<Arc<dyn Classifier>> {
        (**self).train_warm(view, warm)
    }

    fn supports_screening(&self) -> bool {
        (**self).supports_screening()
    }

    fn train_screen(
        &self,
        view: &TrainingView<'_>,
        landmarks: usize,
    ) -> Result<Arc<dyn Classifier>> {
        (**self).train_screen(view, landmarks)
    }
}

/// The grid/lookup classifier backend (paper Sections 3.3 and 4.3).
///
/// Training instances are binned on a sparse grid over the normalised
/// measurement space; each cell accumulates good/bad votes.  A device is
/// classified by the net vote of its own cell, or — when the cell is empty or
/// tied — by the nearest occupied cell with a decisive vote.  Training is a
/// single pass over the data, which makes this backend far cheaper than the
/// SVM at a modest accuracy cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridBackend {
    cells_per_dim: usize,
}

impl GridBackend {
    /// A backend with the given grid resolution per feature dimension.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::InvalidConfig`] when `cells_per_dim < 2`.
    pub fn with_resolution(cells_per_dim: usize) -> Result<Self> {
        if cells_per_dim < 2 {
            return Err(CompactionError::InvalidConfig {
                parameter: "cells_per_dim",
                value: cells_per_dim as f64,
            });
        }
        Ok(GridBackend { cells_per_dim })
    }

    /// The grid resolution per feature dimension.
    pub fn cells_per_dim(&self) -> usize {
        self.cells_per_dim
    }
}

impl Default for GridBackend {
    /// A 12-cells-per-dimension grid, a good balance for the population sizes
    /// the paper uses.
    fn default() -> Self {
        GridBackend { cells_per_dim: 12 }
    }
}

impl ClassifierFactory for GridBackend {
    fn name(&self) -> &str {
        "grid"
    }

    fn train(&self, view: &TrainingView<'_>) -> Result<Arc<dyn Classifier>> {
        if view.is_empty() {
            return Err(CompactionError::InsufficientData {
                reason: "grid backend needs at least one training instance".to_string(),
            });
        }
        // One columnar pass: labels and grid cells are both derived from the
        // shared column storage without materialising per-instance rows.
        let labels = view.labels();
        let cell_columns: Vec<Vec<u16>> = (0..view.dimension())
            .map(|j| {
                view.shared_column(j)
                    .iter()
                    .map(|&value| grid_cell(value, self.cells_per_dim))
                    .collect()
            })
            .collect();
        let mut votes: HashMap<Vec<u16>, i64> = HashMap::new();
        let mut net = 0i64;
        for (i, label) in labels.into_iter().enumerate() {
            let vote = match label {
                DeviceLabel::Good => 1,
                DeviceLabel::Bad => -1,
            };
            let key: Vec<u16> = cell_columns.iter().map(|column| column[i]).collect();
            *votes.entry(key).or_insert(0) += vote;
            net += vote;
        }
        // Deterministic order for nearest-cell tie breaking.
        let mut cells: Vec<(Vec<u16>, i64)> =
            votes.into_iter().filter(|(_, vote)| *vote != 0).collect();
        cells.sort_unstable();
        Ok(Arc::new(GridClassifier {
            cells_per_dim: self.cells_per_dim,
            dimension: view.dimension(),
            cells,
            majority: if net >= 0 { 1.0 } else { -1.0 },
        }))
    }
}

/// Classifier trained by [`GridBackend`].
#[derive(Debug, Clone)]
struct GridClassifier {
    cells_per_dim: usize,
    dimension: usize,
    /// Occupied cells with a decisive net vote, sorted by cell key.
    cells: Vec<(Vec<u16>, i64)>,
    /// Fallback when no cell is decisive (single-class training data).
    majority: f64,
}

impl Classifier for GridClassifier {
    fn decision(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.dimension, "feature vector length mismatch");
        let key: Vec<u16> =
            features.iter().map(|&value| grid_cell(value, self.cells_per_dim)).collect();
        if let Ok(index) = self.cells.binary_search_by(|(cell, _)| cell.cmp(&key)) {
            return self.cells[index].1 as f64;
        }
        // Nearest decisive cell, scaled down with distance so far-away
        // fallbacks carry less confidence than direct hits.
        let mut best: Option<(u64, i64)> = None;
        for (cell, vote) in &self.cells {
            let distance: u64 = cell
                .iter()
                .zip(key.iter())
                .map(|(&a, &b)| {
                    let d = a as i64 - b as i64;
                    (d * d) as u64
                })
                .sum();
            if best.map(|(best_distance, _)| distance < best_distance).unwrap_or(true) {
                best = Some((distance, *vote));
            }
        }
        match best {
            Some((distance, vote)) => vote as f64 / (1.0 + distance as f64),
            None => self.majority,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Specification, SpecificationSet};

    fn band_set(dimension: usize) -> SpecificationSet {
        let specs = (0..dimension)
            .map(|i| Specification::new(&format!("s{i}"), "-", 0.0, -1.0, 1.0).unwrap())
            .collect();
        SpecificationSet::new(specs).unwrap()
    }

    fn linear_population() -> MeasurementSet {
        // Spec 1 mirrors spec 0; devices fail when either is above 1.
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                let x = -1.5 + 3.0 * (i as f64) / 199.0;
                vec![x, x * 0.9]
            })
            .collect();
        MeasurementSet::new(band_set(2), rows).unwrap()
    }

    #[test]
    fn view_validates_columns() {
        let data = linear_population();
        assert!(TrainingView::new(&data, &[], 0.0).is_err());
        assert!(TrainingView::new(&data, &[7], 0.0).is_err());
        let view = TrainingView::new(&data, &[1], 0.05).unwrap();
        assert_eq!(view.dimension(), 1);
        assert_eq!(view.len(), 200);
        assert_eq!(view.feature_rows().len(), 200);
        assert_eq!(view.class_labels().len(), 200);
        assert_eq!(view.kept(), &[1]);
        assert!(!view.is_empty());
        assert_eq!(view.label_margin(), 0.05);
    }

    #[test]
    fn columnar_accessors_match_the_row_major_view() {
        let data = linear_population();
        let view = TrainingView::new(&data, &[1, 0], 0.05).unwrap();
        let columns = view.feature_columns();
        let rows = view.feature_rows();
        assert_eq!(columns.len(), 2);
        for (i, row) in rows.iter().enumerate() {
            for (j, column) in columns.iter().enumerate() {
                assert_eq!(row[j], column[i], "instance {i} feature {j}");
            }
        }
        assert_eq!(view.raw_column(0), data.column(1));
        let labels = view.labels();
        for (i, &label) in labels.iter().enumerate() {
            assert_eq!(label, view.label(i));
        }
    }

    #[test]
    fn shared_columns_are_pointer_identical_across_views() {
        let data = linear_population();
        // Two different candidate views over the same set — different kept
        // sets, different margins — still share the normalized columns.
        let strict = TrainingView::new(&data, &[0, 1], 0.2).unwrap();
        let loose = TrainingView::new(&data, &[1], -0.2).unwrap();
        assert!(Arc::ptr_eq(&strict.shared_column(1), &loose.shared_column(0)));
        assert_eq!(strict.shared_column(0).as_ref(), strict.normalized_column(0).as_slice());
        let shared = strict.shared_feature_columns();
        let owned = strict.feature_columns();
        assert_eq!(shared.len(), owned.len());
        for (a, b) in shared.iter().zip(&owned) {
            assert_eq!(a.as_ref(), b.as_slice());
        }
    }

    #[test]
    fn margin_shifts_view_labels() {
        let data = linear_population();
        let plain = TrainingView::new(&data, &[0], 0.0).unwrap();
        let strict = TrainingView::new(&data, &[0], 0.2).unwrap();
        let plain_good = plain.class_labels().iter().filter(|&&l| l > 0.0).count();
        let strict_good = strict.class_labels().iter().filter(|&&l| l > 0.0).count();
        assert!(strict_good < plain_good, "{strict_good} vs {plain_good}");
    }

    #[test]
    fn grid_backend_learns_a_linear_boundary() {
        let data = linear_population();
        let view = TrainingView::new(&data, &[0], 0.0).unwrap();
        let model = GridBackend::default().train(&view).unwrap();
        // Normalised feature: 0.5 is the centre of the acceptability range.
        assert!(model.predict_good(&[0.5]));
        assert!(!model.predict_good(&[1.4]));
        assert!(!model.predict_good(&[-0.4]));
    }

    #[test]
    fn grid_backend_falls_back_to_nearest_cell() {
        let data = linear_population();
        let view = TrainingView::new(&data, &[0, 1], 0.0).unwrap();
        let model = GridBackend::default().train(&view).unwrap();
        // Far outside the training support: classified via the nearest cell.
        assert!(!model.predict_good(&[9.0, 9.0]));
        assert!(model.predict_good(&[0.5, 0.55]));
    }

    #[test]
    fn single_class_data_uses_the_majority_vote() {
        let rows = vec![vec![0.0, 0.0]; 30];
        let data = MeasurementSet::new(band_set(2), rows).unwrap();
        let view = TrainingView::new(&data, &[0], 0.0).unwrap();
        let model = GridBackend::default().train(&view).unwrap();
        assert!(model.predict_good(&[0.5]));
        assert!(model.predict_good(&[42.0]));
    }

    #[test]
    fn resolution_is_validated() {
        assert!(GridBackend::with_resolution(1).is_err());
        let backend = GridBackend::with_resolution(8).unwrap();
        assert_eq!(backend.cells_per_dim(), 8);
        assert_eq!(backend.name(), "grid");
    }
}
