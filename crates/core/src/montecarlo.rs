//! Monte-Carlo training-data generation (Figure 1 of the paper).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dataset::MeasurementSet;
use crate::device::DeviceUnderTest;
use crate::spec::SpecificationSet;
use crate::{CompactionError, Result};

/// Configuration of a Monte-Carlo data-generation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Number of device instances to simulate.
    pub instances: usize,
    /// Seed of the master random-number generator.
    pub seed: u64,
    /// Number of worker threads (1 = sequential).
    pub threads: usize,
    /// If `true`, instances whose simulation fails are skipped (and replaced
    /// by additional draws); if `false` the first failure aborts the run.
    pub skip_failures: bool,
    /// Quantiles used to calibrate acceptability ranges when the device does
    /// not define explicit ranges (see DESIGN.md on range calibration).
    pub calibration_quantiles: (f64, f64),
}

impl MonteCarloConfig {
    /// A sequential run with `instances` devices and the default seed.
    pub fn new(instances: usize) -> Self {
        MonteCarloConfig {
            instances,
            seed: 0x5eed,
            threads: 1,
            skip_failures: true,
            calibration_quantiles: (0.015, 0.985),
        }
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the range-calibration quantiles.
    pub fn with_calibration_quantiles(mut self, lower: f64, upper: f64) -> Self {
        self.calibration_quantiles = (lower, upper);
        self
    }

    /// Aborts instead of skipping when an instance fails to simulate.
    pub fn fail_fast(mut self) -> Self {
        self.skip_failures = false;
        self
    }
}

/// Raw Monte-Carlo output: measurement rows before ranges are attached.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloRun {
    /// Measurement rows, one per successfully simulated instance.
    pub rows: Vec<Vec<f64>>,
    /// Number of simulation attempts that failed and were skipped.
    pub skipped: usize,
}

/// Simulates `config.instances` perturbed devices and collects their
/// measurement rows (the Figure 1 loop: inject process disturbances, set up
/// and run the device simulation, take measurements, store).
///
/// # Errors
///
/// Returns [`CompactionError::SimulationFailed`] when `skip_failures` is off
/// and an instance fails, or when so many instances fail that the requested
/// count cannot be reached within a 2× attempt budget.
pub fn run_monte_carlo(
    device: &dyn DeviceUnderTest,
    config: &MonteCarloConfig,
) -> Result<MonteCarloRun> {
    if config.instances == 0 {
        return Err(CompactionError::InvalidConfig { parameter: "instances", value: 0.0 });
    }
    // Pre-draw one independent seed per attempt so results do not depend on
    // the number of threads.  The budget leaves generous room for devices
    // whose simulation occasionally fails under process variation.
    let attempt_budget = config.instances * 3 + 32;
    let mut master = StdRng::seed_from_u64(config.seed);
    let seeds: Vec<u64> = (0..attempt_budget).map(|_| master.gen()).collect();

    let results: Vec<(usize, std::result::Result<Vec<f64>, String>)> = if config.threads <= 1 {
        seeds
            .iter()
            .enumerate()
            .map(|(index, &seed)| {
                let mut rng = StdRng::seed_from_u64(seed);
                (index, device.simulate_instance(&mut rng))
            })
            .collect()
    } else {
        simulate_parallel(device, &seeds, config.threads)
    };

    let mut rows = Vec::with_capacity(config.instances);
    let mut skipped = 0usize;
    for (index, result) in results {
        if rows.len() == config.instances {
            break;
        }
        match result {
            Ok(row) => rows.push(row),
            Err(message) => {
                if config.skip_failures {
                    skipped += 1;
                } else {
                    return Err(CompactionError::SimulationFailed { instance: index, message });
                }
            }
        }
    }
    if rows.len() < config.instances {
        return Err(CompactionError::SimulationFailed {
            instance: rows.len(),
            message: format!(
                "only {} of {} instances could be simulated within a {attempt_budget}-attempt budget ({skipped} failures)",
                rows.len(),
                config.instances
            ),
        });
    }
    Ok(MonteCarloRun { rows, skipped })
}

/// Runs the simulations on `threads` worker threads, preserving attempt order.
fn simulate_parallel(
    device: &dyn DeviceUnderTest,
    seeds: &[u64],
    threads: usize,
) -> Vec<(usize, std::result::Result<Vec<f64>, String>)> {
    let mut results: Vec<(usize, std::result::Result<Vec<f64>, String>)> =
        Vec::with_capacity(seeds.len());
    std::thread::scope(|scope| {
        let chunk_size = seeds.len().div_ceil(threads);
        let handles: Vec<_> = seeds
            .chunks(chunk_size)
            .enumerate()
            .map(|(chunk_index, chunk)| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(offset, &seed)| {
                            let mut rng = StdRng::seed_from_u64(seed);
                            (chunk_index * chunk_size + offset, device.simulate_instance(&mut rng))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            results.extend(handle.join().expect("simulation worker panicked"));
        }
    });
    results.sort_by_key(|(index, _)| *index);
    results
}

/// Generates a labelled [`MeasurementSet`] for a device: runs the Monte-Carlo
/// loop and attaches acceptability ranges (either the device's own ranges or
/// ranges calibrated from the population quantiles).
///
/// # Errors
///
/// Propagates simulation and calibration errors.
pub fn generate_measurement_set(
    device: &dyn DeviceUnderTest,
    config: &MonteCarloConfig,
) -> Result<MeasurementSet> {
    let run = run_monte_carlo(device, config)?;
    let specs = match device.specification_set() {
        Some(specs) => specs,
        None => {
            let names = device.spec_names();
            let units = device.spec_units();
            let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let unit_refs: Vec<&str> = units.iter().map(String::as_str).collect();
            let nominals: Vec<f64> = (0..names.len())
                .map(|c| {
                    let mut values: Vec<f64> = run.rows.iter().map(|r| r[c]).collect();
                    values.sort_by(|a, b| a.partial_cmp(b).expect("finite measurements"));
                    values[values.len() / 2]
                })
                .collect();
            SpecificationSet::from_population_quantiles(
                &name_refs,
                &unit_refs,
                &nominals,
                &run.rows,
                config.calibration_quantiles.0,
                config.calibration_quantiles.1,
            )?
        }
    };
    MeasurementSet::new(specs, run.rows)
}

/// Generates a training set and an independent test set with different seed
/// streams but a *shared* specification set (ranges calibrated on the
/// training population only, as a real flow would).
///
/// # Errors
///
/// Propagates simulation and calibration errors.
pub fn generate_train_test(
    device: &dyn DeviceUnderTest,
    train_config: &MonteCarloConfig,
    test_instances: usize,
) -> Result<(MeasurementSet, MeasurementSet)> {
    let train = generate_measurement_set(device, train_config)?;
    let test_config = MonteCarloConfig {
        instances: test_instances,
        seed: train_config.seed.wrapping_add(0x9e3779b97f4a7c15),
        ..*train_config
    };
    let test_run = run_monte_carlo(device, &test_config)?;
    let test = MeasurementSet::new(train.specs().clone(), test_run.rows)?;
    Ok((train, test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SyntheticDevice;

    #[test]
    fn sequential_and_parallel_runs_agree() {
        let device = SyntheticDevice::new(3, 2.0, 0.3);
        let sequential = run_monte_carlo(&device, &MonteCarloConfig::new(50).with_seed(9)).unwrap();
        let parallel =
            run_monte_carlo(&device, &MonteCarloConfig::new(50).with_seed(9).with_threads(4))
                .unwrap();
        assert_eq!(sequential.rows, parallel.rows);
        assert_eq!(sequential.skipped, 0);
    }

    #[test]
    fn zero_instances_is_rejected() {
        let device = SyntheticDevice::new(2, 2.0, 0.0);
        assert!(run_monte_carlo(&device, &MonteCarloConfig::new(0)).is_err());
    }

    #[test]
    fn measurement_set_uses_device_ranges_when_available() {
        let device = SyntheticDevice::new(4, 1.5, 0.0);
        let set = generate_measurement_set(&device, &MonteCarloConfig::new(200)).unwrap();
        assert_eq!(set.specs().len(), 4);
        assert_eq!(set.specs().spec(2).upper(), 1.5);
        assert_eq!(set.len(), 200);
        // With ±1.5 sigma limits on 4 independent normals the yield is
        // roughly 0.866^4 ≈ 0.56.
        let yield_fraction = set.yield_fraction();
        assert!((yield_fraction - 0.56).abs() < 0.12, "yield {yield_fraction}");
    }

    #[test]
    fn train_and_test_sets_share_specs_but_not_rows() {
        let device = SyntheticDevice::new(3, 2.0, 0.2);
        let (train, test) =
            generate_train_test(&device, &MonteCarloConfig::new(100).with_seed(5), 60).unwrap();
        assert_eq!(train.len(), 100);
        assert_eq!(test.len(), 60);
        assert_eq!(train.specs(), test.specs());
        assert_ne!(train.row_values(0), test.row_values(0));
    }

    /// A device whose simulation fails half the time.
    struct FlakyDevice;

    impl DeviceUnderTest for FlakyDevice {
        fn name(&self) -> &str {
            "flaky"
        }
        fn spec_names(&self) -> Vec<String> {
            vec!["x".to_string()]
        }
        fn spec_units(&self) -> Vec<String> {
            vec!["-".to_string()]
        }
        fn simulate_instance(&self, rng: &mut StdRng) -> std::result::Result<Vec<f64>, String> {
            let value: f64 = rng.gen_range(-1.0..1.0);
            if value > 0.0 {
                Ok(vec![value])
            } else {
                Err("negative draw".to_string())
            }
        }
    }

    #[test]
    fn failures_are_skipped_or_fatal_depending_on_config() {
        let skipping = run_monte_carlo(&FlakyDevice, &MonteCarloConfig::new(20)).unwrap();
        assert_eq!(skipping.rows.len(), 20);
        assert!(skipping.skipped > 0);
        let strict = run_monte_carlo(&FlakyDevice, &MonteCarloConfig::new(20).fail_fast());
        assert!(matches!(strict, Err(CompactionError::SimulationFailed { .. })));
    }

    /// A device that always fails: even the skip budget cannot save it.
    struct BrokenDevice;

    impl DeviceUnderTest for BrokenDevice {
        fn name(&self) -> &str {
            "broken"
        }
        fn spec_names(&self) -> Vec<String> {
            vec!["x".to_string()]
        }
        fn spec_units(&self) -> Vec<String> {
            vec!["-".to_string()]
        }
        fn simulate_instance(&self, _rng: &mut StdRng) -> std::result::Result<Vec<f64>, String> {
            Err("always fails".to_string())
        }
    }

    #[test]
    fn exhausted_attempt_budget_is_an_error() {
        let result = run_monte_carlo(&BrokenDevice, &MonteCarloConfig::new(10));
        assert!(matches!(result, Err(CompactionError::SimulationFailed { .. })));
    }
}
