//! Plain-text report formatting used by the experiment harnesses.
//!
//! The bench binaries print the same rows/series the paper reports; this
//! module keeps the formatting in one place so tables look consistent across
//! experiments and EXPERIMENTS.md.

use crate::compaction::CompactionStep;
use crate::metrics::ErrorBreakdown;
use crate::spec::SpecificationSet;

/// Formats a fraction as a percentage with one decimal, e.g. `0.6%`.
pub fn percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Renders a simple aligned table: a header row plus data rows.
///
/// Columns are sized to their widest cell; the output ends with a newline.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let columns = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |row: &[String]| -> String {
        let cells: Vec<String> = row
            .iter()
            .enumerate()
            .take(columns)
            .map(|(i, cell)| format!("{:width$}", cell, width = widths[i]))
            .collect();
        cells.join("  ")
    };
    out.push_str(&render_row(header));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out
}

/// Renders a specification table in the layout of the paper's Table 1/2:
/// name, unit, nominal value and acceptability range.
pub fn render_specification_table(specs: &SpecificationSet) -> String {
    let header = vec![
        "Specification".to_string(),
        "Unit".to_string(),
        "Nominal".to_string(),
        "Range".to_string(),
    ];
    let rows: Vec<Vec<String>> = specs
        .iter()
        .map(|s| {
            vec![
                s.name().to_string(),
                s.unit().to_string(),
                format_value(s.nominal()),
                format!("{} - {}", format_value(s.lower()), format_value(s.upper())),
            ]
        })
        .collect();
    render_table(&header, &rows)
}

/// Renders the per-step output of an elimination sweep in the layout of the
/// paper's Figure 5: one row per cumulatively eliminated test with yield
/// loss, defect escape and guard-band percentages.
pub fn render_sweep(steps: &[CompactionStep]) -> String {
    let header = vec![
        "Eliminated test".to_string(),
        "Yield loss".to_string(),
        "Defect escape".to_string(),
        "In guard band".to_string(),
    ];
    let rows: Vec<Vec<String>> = steps
        .iter()
        .map(|step| {
            vec![
                step.spec_name.clone(),
                percent(step.breakdown.yield_loss()),
                percent(step.breakdown.defect_escape()),
                percent(step.breakdown.guard_band_fraction()),
            ]
        })
        .collect();
    render_table(&header, &rows)
}

/// Renders one error breakdown as a short single-line summary.
pub fn render_breakdown(label: &str, breakdown: &ErrorBreakdown) -> String {
    format!(
        "{label}: yield loss {}, defect escape {}, guard band {}, {} devices",
        percent(breakdown.yield_loss()),
        percent(breakdown.defect_escape()),
        percent(breakdown.guard_band_fraction()),
        breakdown.total
    )
}

/// Formats a number compactly: integers without decimals, small numbers in
/// scientific notation, everything else with three significant figures.
pub fn format_value(value: f64) -> String {
    if value == 0.0 {
        return "0".to_string();
    }
    let magnitude = value.abs();
    if !(1e-3..1e6).contains(&magnitude) {
        format!("{value:.2e}")
    } else if (value - value.round()).abs() < 1e-9 && magnitude < 1e6 {
        format!("{}", value.round() as i64)
    } else {
        format!("{value:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Specification;

    #[test]
    fn percent_formats_with_one_decimal() {
        assert_eq!(percent(0.006), "0.6%");
        assert_eq!(percent(0.0), "0.0%");
        assert_eq!(percent(0.5), "50.0%");
    }

    #[test]
    fn format_value_covers_magnitudes() {
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(14000.0), "14000");
        assert_eq!(format_value(0.44), "0.440");
        assert!(format_value(2.5e-7).contains('e'));
        assert!(format_value(2.1e9).contains('e'));
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let header = vec!["a".to_string(), "bbbb".to_string()];
        let rows = vec![
            vec!["xxxxx".to_string(), "1".to_string()],
            vec!["y".to_string(), "22".to_string()],
        ];
        let table = render_table(&header, &rows);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        // The second column starts at the same offset in every data row.
        assert_eq!(lines[2].find('1'), lines[3].find("22"));
        assert_eq!(lines[0].find("bbbb"), lines[2].find('1'));
    }

    #[test]
    fn specification_table_contains_every_spec() {
        let specs = SpecificationSet::new(vec![
            Specification::new("gain", "V/V", 14_000.0, 10_000.0, 20_000.0).unwrap(),
            Specification::new("slew rate", "V/us", 0.44, 0.35, 0.55).unwrap(),
        ])
        .unwrap();
        let table = render_specification_table(&specs);
        assert!(table.contains("gain"));
        assert!(table.contains("slew rate"));
        assert!(table.contains("0.350 - 0.550"));
    }

    #[test]
    fn breakdown_summary_mentions_all_metrics() {
        let breakdown = ErrorBreakdown {
            total: 100,
            yield_loss_count: 1,
            defect_escape_count: 2,
            guard_band_count: 3,
            true_good: 70,
            true_bad: 24,
        };
        let line = render_breakdown("test", &breakdown);
        assert!(line.contains("yield loss 1.0%"));
        assert!(line.contains("defect escape 2.0%"));
        assert!(line.contains("guard band 3.0%"));
        assert!(line.contains("100 devices"));
    }
}
