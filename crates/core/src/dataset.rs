//! Measurement datasets: the training/test data of the compaction flow.
//!
//! Since 0.3 the storage is column-major and `Arc`-shared: a
//! [`MeasurementMatrix`] holds one allocation per population, and every
//! derived set — train/test splits, truncations, training views — is a cheap
//! view (column subset + row range) over that allocation instead of a copy.
//! The greedy elimination loop re-slices the same population once per
//! candidate kept set, so this is the hot data structure of the whole flow.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::spec::SpecificationSet;
use crate::{CompactionError, Result};

/// Pass/fail status of one device instance against the full specification set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceLabel {
    /// Every specification value is inside its acceptability range.
    Good,
    /// At least one specification value is outside its range.
    Bad,
}

impl DeviceLabel {
    /// The `+1` / `-1` encoding used by the SVM classifier.
    pub fn to_class(self) -> f64 {
        match self {
            DeviceLabel::Good => 1.0,
            DeviceLabel::Bad => -1.0,
        }
    }

    /// Decodes a signed class value or decision value.
    ///
    /// Only the sign matters: strictly positive decodes to
    /// [`DeviceLabel::Good`], everything else — including exactly `0.0` — to
    /// [`DeviceLabel::Bad`].  Classifier decision functions output continuous
    /// values, and a device *on* the decision boundary has no evidence of
    /// passing, so the tie breaks to the conservative side (rejecting a good
    /// device costs yield; shipping a bad one costs a defect escape).
    ///
    /// ```
    /// use stc_core::DeviceLabel;
    /// assert_eq!(DeviceLabel::from_class(1.0), DeviceLabel::Good);
    /// assert_eq!(DeviceLabel::from_class(-1.0), DeviceLabel::Bad);
    /// // The boundary itself is Bad, by choice:
    /// assert_eq!(DeviceLabel::from_class(0.0), DeviceLabel::Bad);
    /// ```
    pub fn from_class(class: f64) -> Self {
        if class > 0.0 {
            DeviceLabel::Good
        } else {
            DeviceLabel::Bad
        }
    }
}

/// Column-major, `Arc`-shared measurement storage.
///
/// One allocation holds the whole population (`column count × allocation
/// rows` values, one contiguous run per column); a matrix value is a *view*
/// into that allocation — a row range over all columns.  Cloning a matrix or
/// taking a sub-view ([`MeasurementMatrix::rows_view`]) never copies
/// measurement data, so train/test splits and truncations share storage with
/// the population they came from.
///
/// ```
/// use stc_core::MeasurementMatrix;
///
/// # fn main() -> Result<(), stc_core::CompactionError> {
/// let matrix = MeasurementMatrix::from_rows(
///     vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]],
///     2,
/// )?;
/// assert_eq!(matrix.row_count(), 3);
/// assert_eq!(matrix.column(1), &[10.0, 20.0, 30.0]);
///
/// // A zero-copy view of the last two rows: same allocation, no clone of
/// // the measurement data.
/// let tail = matrix.rows_view(1, 2);
/// assert_eq!(tail.column(0), &[2.0, 3.0]);
/// assert!(tail.shares_allocation_with(&matrix));
/// # Ok(())
/// # }
/// ```
///
/// **Serialisation:** the hand-written serde impls describe the matrix as
/// `{columns, rows}` with `rows = to_rows()` — a view serialises only the
/// rows it exposes (never its parent allocation), and deserialisation
/// rebuilds a fresh allocation through the validating
/// [`MeasurementMatrix::from_rows`].
#[derive(Debug, Clone)]
pub struct MeasurementMatrix {
    /// Column-major values of the *full* allocation: column `c` occupies
    /// `values[c * alloc_rows .. (c + 1) * alloc_rows]`.
    values: Arc<[f64]>,
    /// Rows in the allocation (the stride between columns).
    alloc_rows: usize,
    columns: usize,
    /// First allocation row this view exposes.
    row_start: usize,
    /// Number of rows this view exposes.
    row_count: usize,
}

impl MeasurementMatrix {
    /// Builds a matrix from row-major data (one `Vec` per device instance).
    ///
    /// `columns` disambiguates the empty population (no rows still has a
    /// column count).
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::DimensionMismatch`] if any row does not
    /// have `columns` values.
    pub fn from_rows(rows: Vec<Vec<f64>>, columns: usize) -> Result<Self> {
        if let Some(bad) = rows.iter().find(|r| r.len() != columns) {
            return Err(CompactionError::DimensionMismatch { expected: columns, found: bad.len() });
        }
        let row_count = rows.len();
        let mut values = vec![0.0; columns * row_count];
        for (i, row) in rows.iter().enumerate() {
            for (c, &value) in row.iter().enumerate() {
                values[c * row_count + i] = value;
            }
        }
        Ok(MeasurementMatrix {
            values: values.into(),
            alloc_rows: row_count,
            columns,
            row_start: 0,
            row_count,
        })
    }

    /// Builds a matrix directly from its columns (no transpose needed).
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::EmptyTestSet`] for zero columns and
    /// [`CompactionError::DimensionMismatch`] for ragged column lengths.
    pub fn from_columns(columns: Vec<Vec<f64>>) -> Result<Self> {
        if columns.is_empty() {
            return Err(CompactionError::EmptyTestSet);
        }
        let row_count = columns[0].len();
        if let Some(bad) = columns.iter().find(|c| c.len() != row_count) {
            return Err(CompactionError::DimensionMismatch {
                expected: row_count,
                found: bad.len(),
            });
        }
        let column_count = columns.len();
        let mut values = Vec::with_capacity(column_count * row_count);
        for column in &columns {
            values.extend_from_slice(column);
        }
        Ok(MeasurementMatrix {
            values: values.into(),
            alloc_rows: row_count,
            columns: column_count,
            row_start: 0,
            row_count,
        })
    }

    /// Number of device instances (rows) this view exposes.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Number of measurement columns.
    pub fn column_count(&self) -> usize {
        self.columns
    }

    /// Whether the view holds no instances.
    pub fn is_empty(&self) -> bool {
        self.row_count == 0
    }

    /// The contiguous values of column `c` (restricted to this view's rows)
    /// — zero-copy.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn column(&self, c: usize) -> &[f64] {
        assert!(c < self.columns, "column {c} out of range ({} columns)", self.columns);
        let start = c * self.alloc_rows + self.row_start;
        &self.values[start..start + self.row_count]
    }

    /// Value of row `r`, column `c`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn value(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.row_count, "row {r} out of range ({} rows)", self.row_count);
        assert!(c < self.columns, "column {c} out of range ({} columns)", self.columns);
        self.values[c * self.alloc_rows + self.row_start + r]
    }

    /// Gathers row `r` into an owned vector (column-major storage has no
    /// contiguous rows).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_values(&self, r: usize) -> Vec<f64> {
        (0..self.columns).map(|c| self.value(r, c)).collect()
    }

    /// Materialises the view as row-major data (the pre-0.3 representation).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.row_count).map(|r| self.row_values(r)).collect()
    }

    /// A zero-copy view of `count` rows starting at `start`: the result
    /// shares this matrix's allocation.
    ///
    /// # Panics
    ///
    /// Panics if `start + count` exceeds the view's row count.
    pub fn rows_view(&self, start: usize, count: usize) -> MeasurementMatrix {
        assert!(
            start + count <= self.row_count,
            "row range {start}..{} out of bounds ({} rows)",
            start + count,
            self.row_count
        );
        MeasurementMatrix {
            values: Arc::clone(&self.values),
            alloc_rows: self.alloc_rows,
            columns: self.columns,
            row_start: self.row_start + start,
            row_count: count,
        }
    }

    /// Whether two matrices are views over the same allocation (diagnostic
    /// for the zero-copy contract; equality compares *values*, not storage).
    pub fn shares_allocation_with(&self, other: &MeasurementMatrix) -> bool {
        Arc::ptr_eq(&self.values, &other.values)
    }
}

impl Serialize for MeasurementMatrix {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut state = serializer.serialize_struct("MeasurementMatrix", 2)?;
        state.serialize_field("columns", &self.columns)?;
        state.serialize_field("rows", &self.to_rows())?;
        state.end()
    }
}

impl<'de> Deserialize<'de> for MeasurementMatrix {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        use serde::de::{Error as _, IgnoredAny, MapAccess, Visitor};
        struct MatrixVisitor;
        impl<'de> Visitor<'de> for MatrixVisitor {
            type Value = MeasurementMatrix;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a measurement matrix as {columns, rows}")
            }
            fn visit_map<A: MapAccess<'de>>(
                self,
                mut map: A,
            ) -> std::result::Result<MeasurementMatrix, A::Error> {
                let mut columns: Option<usize> = None;
                let mut rows: Option<Vec<Vec<f64>>> = None;
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "columns" => columns = Some(map.next_value()?),
                        "rows" => rows = Some(map.next_value()?),
                        _ => {
                            map.next_value::<IgnoredAny>()?;
                        }
                    }
                }
                let columns = columns.ok_or_else(|| A::Error::missing_field("columns"))?;
                let rows = rows.ok_or_else(|| A::Error::missing_field("rows"))?;
                MeasurementMatrix::from_rows(rows, columns)
                    .map_err(|error| A::Error::custom(format!("invalid matrix: {error}")))
            }
        }
        deserializer.deserialize_any(MatrixVisitor)
    }
}

impl PartialEq for MeasurementMatrix {
    /// Semantic equality: same shape and the same values, regardless of
    /// whether the two matrices share an allocation or where their views
    /// start.
    fn eq(&self, other: &Self) -> bool {
        self.row_count == other.row_count
            && self.columns == other.columns
            && (0..self.columns).all(|c| self.column(c) == other.column(c))
    }
}

/// Lazily filled per-column normalized values of a measurement set.
///
/// Normalization maps each measurement to its acceptability range (paper
/// Section 4.3) and depends only on the specification and the raw column —
/// not on the labelling margin and not on which columns a candidate kept set
/// retains.  One cache per measurement set therefore serves every
/// guard-banded strict/loose view and every candidate kept set of a
/// compaction run, and the `Arc` identity of each cached column lets
/// downstream consumers (the SVM kernel engine) recognise shared columns
/// across candidate datasets by pointer equality.
#[derive(Debug, Default)]
struct NormalizedColumns {
    columns: Vec<std::sync::OnceLock<Arc<[f64]>>>,
}

impl NormalizedColumns {
    fn with_capacity(count: usize) -> Arc<Self> {
        Arc::new(NormalizedColumns { columns: (0..count).map(|_| Default::default()).collect() })
    }
}

/// A set of measured device instances: one row of specification measurements
/// per instance, together with the specification set that defines pass/fail.
///
/// This is the "training data" produced by the Figure 1 flow and consumed by
/// the Figure 2 compaction loop.  Backed by a [`MeasurementMatrix`], so
/// cloning, [`MeasurementSet::split_at`] and [`MeasurementSet::truncated`]
/// are zero-copy views over the shared population allocation.
///
/// Equality and serialization cover the specifications and measurements
/// only; the internal normalized-column cache is an invisible accelerator.
#[derive(Debug, Clone)]
pub struct MeasurementSet {
    specs: SpecificationSet,
    matrix: MeasurementMatrix,
    /// Lazy normalized columns, shared by clones (identical rows) but not by
    /// derived views (different row ranges).
    normalized: Arc<NormalizedColumns>,
}

impl PartialEq for MeasurementSet {
    /// Semantic equality over specifications and measurements; the lazy
    /// normalization cache never participates.
    fn eq(&self, other: &Self) -> bool {
        self.specs == other.specs && self.matrix == other.matrix
    }
}

impl Serialize for MeasurementSet {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut state = serializer.serialize_struct("MeasurementSet", 2)?;
        state.serialize_field("specs", &self.specs)?;
        state.serialize_field("matrix", &self.matrix)?;
        state.end()
    }
}

impl<'de> Deserialize<'de> for MeasurementSet {
    /// Deserialises through [`MeasurementSet::from_matrix`], so a decoded set
    /// upholds the same column/specification invariant as a constructed one.
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        use serde::de::{Error as _, IgnoredAny, MapAccess, Visitor};
        struct SetVisitor;
        impl<'de> Visitor<'de> for SetVisitor {
            type Value = MeasurementSet;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a measurement set as {specs, matrix}")
            }
            fn visit_map<A: MapAccess<'de>>(
                self,
                mut map: A,
            ) -> std::result::Result<MeasurementSet, A::Error> {
                let mut specs: Option<SpecificationSet> = None;
                let mut matrix: Option<MeasurementMatrix> = None;
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "specs" => specs = Some(map.next_value()?),
                        "matrix" => matrix = Some(map.next_value()?),
                        _ => {
                            map.next_value::<IgnoredAny>()?;
                        }
                    }
                }
                let specs = specs.ok_or_else(|| A::Error::missing_field("specs"))?;
                let matrix = matrix.ok_or_else(|| A::Error::missing_field("matrix"))?;
                MeasurementSet::from_matrix(specs, matrix)
                    .map_err(|error| A::Error::custom(format!("invalid measurement set: {error}")))
            }
        }
        deserializer.deserialize_any(SetVisitor)
    }
}

impl MeasurementSet {
    /// Creates a measurement set from row-major data, validating row
    /// dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::DimensionMismatch`] if any row does not have
    /// one value per specification.
    pub fn new(specs: SpecificationSet, rows: Vec<Vec<f64>>) -> Result<Self> {
        let matrix = MeasurementMatrix::from_rows(rows, specs.len())?;
        MeasurementSet::from_matrix(specs, matrix)
    }

    /// Creates a measurement set over an existing (possibly shared) matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::DimensionMismatch`] if the matrix does not
    /// have one column per specification.
    pub fn from_matrix(specs: SpecificationSet, matrix: MeasurementMatrix) -> Result<Self> {
        if matrix.column_count() != specs.len() {
            return Err(CompactionError::DimensionMismatch {
                expected: specs.len(),
                found: matrix.column_count(),
            });
        }
        let normalized = NormalizedColumns::with_capacity(specs.len());
        Ok(MeasurementSet { specs, matrix, normalized })
    }

    /// The specification set describing the columns.
    pub fn specs(&self) -> &SpecificationSet {
        &self.specs
    }

    /// The underlying column-major measurement storage.
    pub fn matrix(&self) -> &MeasurementMatrix {
        &self.matrix
    }

    /// Number of device instances.
    pub fn len(&self) -> usize {
        self.matrix.row_count()
    }

    /// Whether the set holds no instances.
    pub fn is_empty(&self) -> bool {
        self.matrix.is_empty()
    }

    /// All measurements of specification `column`, one value per instance —
    /// zero-copy.
    ///
    /// # Panics
    ///
    /// Panics if `column` is out of bounds.
    pub fn column(&self, column: usize) -> &[f64] {
        self.matrix.column(column)
    }

    /// Measurement of instance `i` for specification `column`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn value(&self, i: usize, column: usize) -> f64 {
        self.matrix.value(i, column)
    }

    /// Measurement row of instance `i`, gathered into an owned vector
    /// (replaces the pre-0.3 `row()` borrow, which column-major storage
    /// cannot provide).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row_values(&self, i: usize) -> Vec<f64> {
        self.matrix.row_values(i)
    }

    /// Materialises all instances as row-major data (replaces the pre-0.3
    /// `rows()` borrow).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.matrix.to_rows()
    }

    /// Pass/fail label of instance `i` against the full specification set.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn label(&self, i: usize) -> DeviceLabel {
        self.label_with_margin(i, 0.0)
    }

    /// Pass/fail label of instance `i` with all ranges tightened/widened by a
    /// fraction of their width (used for guard-band labelling).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn label_with_margin(&self, i: usize, delta: f64) -> DeviceLabel {
        for (c, spec) in self.specs.iter().enumerate() {
            if !spec.passes_with_margin(self.matrix.value(i, c), delta) {
                return DeviceLabel::Bad;
            }
        }
        DeviceLabel::Good
    }

    /// Labels of every instance.
    pub fn labels(&self) -> Vec<DeviceLabel> {
        self.labels_with_margin(0.0)
    }

    /// Margin-adjusted labels of every instance, computed in one sequential
    /// pass per column (the batch counterpart of
    /// [`MeasurementSet::label_with_margin`]).
    pub fn labels_with_margin(&self, delta: f64) -> Vec<DeviceLabel> {
        let mut good = vec![true; self.len()];
        for (c, spec) in self.specs.iter().enumerate() {
            for (flag, &value) in good.iter_mut().zip(self.matrix.column(c)) {
                if *flag && !spec.passes_with_margin(value, delta) {
                    *flag = false;
                }
            }
        }
        good.into_iter()
            .map(|flag| if flag { DeviceLabel::Good } else { DeviceLabel::Bad })
            .collect()
    }

    /// Overall yield: fraction of instances that pass every specification.
    pub fn yield_fraction(&self) -> f64 {
        if self.is_empty() {
            return 1.0;
        }
        let good = self.labels().iter().filter(|&&l| l == DeviceLabel::Good).count();
        good as f64 / self.len() as f64
    }

    /// Fraction of instances that pass specification `column` alone.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::UnknownSpecification`] for a bad column.
    pub fn per_spec_yield(&self, column: usize) -> Result<f64> {
        if column >= self.specs.len() {
            return Err(CompactionError::UnknownSpecification {
                index: column,
                count: self.specs.len(),
            });
        }
        if self.is_empty() {
            return Ok(1.0);
        }
        let spec = self.specs.spec(column);
        let pass = self.matrix.column(column).iter().filter(|&&v| spec.passes(v)).count();
        Ok(pass as f64 / self.len() as f64)
    }

    /// Splits the instances into two measurement sets at `index`
    /// (first `index` rows, remaining rows).  Both halves are zero-copy views
    /// sharing this set's allocation.
    ///
    /// # Panics
    ///
    /// Panics if `index > len()`.
    pub fn split_at(&self, index: usize) -> (MeasurementSet, MeasurementSet) {
        // Derived views expose different row ranges, so each gets its own
        // (empty) normalization cache rather than sharing this set's.
        (
            MeasurementSet {
                specs: self.specs.clone(),
                matrix: self.matrix.rows_view(0, index),
                normalized: NormalizedColumns::with_capacity(self.specs.len()),
            },
            MeasurementSet {
                specs: self.specs.clone(),
                matrix: self.matrix.rows_view(index, self.len() - index),
                normalized: NormalizedColumns::with_capacity(self.specs.len()),
            },
        )
    }

    /// Returns a measurement set viewing the first `count` instances
    /// (or all of them when `count >= len()`), sharing this set's allocation.
    pub fn truncated(&self, count: usize) -> MeasurementSet {
        let count = count.min(self.len());
        MeasurementSet {
            specs: self.specs.clone(),
            matrix: self.matrix.rows_view(0, count),
            normalized: NormalizedColumns::with_capacity(self.specs.len()),
        }
    }

    /// Builds a borrowed training view over the kept columns with a labelling
    /// margin — the input classifier backends train on (see
    /// [`crate::classifier::TrainingView`]).
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::EmptyTestSet`] when `kept` is empty and
    /// [`CompactionError::UnknownSpecification`] for an out-of-range column.
    pub fn training_view<'a>(
        &'a self,
        kept: &'a [usize],
        label_margin: f64,
    ) -> Result<crate::classifier::TrainingView<'a>> {
        crate::classifier::TrainingView::new(self, kept, label_margin)
    }

    /// Normalised kept-column feature vector of instance `i` (the tester-side
    /// view of the measurements after compaction).
    ///
    /// # Panics
    ///
    /// Panics if `i` or any column index is out of bounds.
    pub fn features(&self, i: usize, kept: &[usize]) -> Vec<f64> {
        kept.iter().map(|&c| self.specs.spec(c).normalize(self.matrix.value(i, c))).collect()
    }

    /// The normalized values of specification `column`, one per instance, as
    /// a shared allocation.
    ///
    /// The column is normalized once per set and memoized; clones of this set
    /// (and every [`crate::classifier::TrainingView`] borrowed from it) hand
    /// out `Arc`s over the *same* allocation, so two candidate kept sets of
    /// one compaction run that both retain `column` see pointer-identical
    /// feature columns.  The SVM backend relies on that identity to assemble
    /// candidate kernel rows incrementally instead of from scratch.
    ///
    /// # Panics
    ///
    /// Panics if `column` is out of bounds.
    pub fn normalized_column_shared(&self, column: usize) -> Arc<[f64]> {
        let slot = &self.normalized.columns[column];
        Arc::clone(slot.get_or_init(|| {
            let spec = self.specs.spec(column);
            self.matrix.column(column).iter().map(|&v| spec.normalize(v)).collect()
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Specification;

    fn two_spec_set() -> SpecificationSet {
        SpecificationSet::new(vec![
            Specification::new("a", "-", 0.5, 0.0, 1.0).unwrap(),
            Specification::new("b", "-", 5.0, 0.0, 10.0).unwrap(),
        ])
        .unwrap()
    }

    fn sample_set() -> MeasurementSet {
        MeasurementSet::new(
            two_spec_set(),
            vec![
                vec![0.5, 5.0],  // good
                vec![0.9, 9.0],  // good
                vec![1.5, 5.0],  // bad (a out of range)
                vec![0.5, 12.0], // bad (b out of range)
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_dimensions() {
        let specs = two_spec_set();
        assert!(MeasurementSet::new(specs, vec![vec![1.0]]).is_err());
    }

    #[test]
    fn matrix_round_trips_rows_and_columns() {
        let rows = vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]];
        let matrix = MeasurementMatrix::from_rows(rows.clone(), 2).unwrap();
        assert_eq!(matrix.row_count(), 3);
        assert_eq!(matrix.column_count(), 2);
        assert_eq!(matrix.column(0), &[1.0, 2.0, 3.0]);
        assert_eq!(matrix.column(1), &[10.0, 20.0, 30.0]);
        assert_eq!(matrix.value(1, 1), 20.0);
        assert_eq!(matrix.row_values(2), vec![3.0, 30.0]);
        assert_eq!(matrix.to_rows(), rows);
        let from_columns =
            MeasurementMatrix::from_columns(vec![vec![1.0, 2.0, 3.0], vec![10.0, 20.0, 30.0]])
                .unwrap();
        assert_eq!(matrix, from_columns);
        assert!(!matrix.shares_allocation_with(&from_columns));
    }

    #[test]
    fn matrix_construction_validates_shapes() {
        assert!(MeasurementMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]], 1).is_err());
        assert!(MeasurementMatrix::from_columns(vec![]).is_err());
        assert!(MeasurementMatrix::from_columns(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        let empty = MeasurementMatrix::from_rows(vec![], 3).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.column_count(), 3);
        assert_eq!(empty.column(2), &[] as &[f64]);
    }

    #[test]
    fn rows_view_is_zero_copy_and_composes() {
        let matrix = MeasurementMatrix::from_rows(
            (0..10).map(|i| vec![i as f64, 100.0 + i as f64]).collect(),
            2,
        )
        .unwrap();
        let middle = matrix.rows_view(2, 6);
        assert!(middle.shares_allocation_with(&matrix));
        assert_eq!(middle.column(0), &[2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        // A view of a view stays anchored to the original allocation.
        let inner = middle.rows_view(1, 2);
        assert!(inner.shares_allocation_with(&matrix));
        assert_eq!(inner.column(1), &[103.0, 104.0]);
        assert_eq!(inner.row_values(0), vec![3.0, 103.0]);
        // Equality is semantic: a view equals its materialised copy.
        let copy = MeasurementMatrix::from_rows(inner.to_rows(), 2).unwrap();
        assert_eq!(inner, copy);
    }

    #[test]
    fn labels_and_yield() {
        let set = sample_set();
        assert_eq!(set.label(0), DeviceLabel::Good);
        assert_eq!(set.label(2), DeviceLabel::Bad);
        assert_eq!(set.yield_fraction(), 0.5);
        assert_eq!(set.labels().len(), 4);
        assert_eq!(DeviceLabel::Good.to_class(), 1.0);
        assert_eq!(DeviceLabel::from_class(-2.0), DeviceLabel::Bad);
    }

    #[test]
    fn from_class_boundary_is_bad() {
        // `to_class` only ever produces +1/-1, but `from_class` also decodes
        // raw decision values: the boundary itself must break to Bad.
        assert_eq!(DeviceLabel::from_class(0.0), DeviceLabel::Bad);
        assert_eq!(DeviceLabel::from_class(-0.0), DeviceLabel::Bad);
        assert_eq!(DeviceLabel::from_class(f64::MIN_POSITIVE), DeviceLabel::Good);
        assert_eq!(DeviceLabel::from_class(f64::NAN), DeviceLabel::Bad);
        // Round trip of the two canonical encodings.
        for label in [DeviceLabel::Good, DeviceLabel::Bad] {
            assert_eq!(DeviceLabel::from_class(label.to_class()), label);
        }
    }

    #[test]
    fn batch_labels_match_per_instance_labels() {
        let set = sample_set();
        for delta in [0.0, 0.15, -0.15] {
            let batch = set.labels_with_margin(delta);
            for (i, &label) in batch.iter().enumerate() {
                assert_eq!(label, set.label_with_margin(i, delta), "delta {delta} row {i}");
            }
        }
    }

    #[test]
    fn per_spec_yield_isolates_columns() {
        let set = sample_set();
        assert_eq!(set.per_spec_yield(0).unwrap(), 0.75);
        assert_eq!(set.per_spec_yield(1).unwrap(), 0.75);
        assert!(set.per_spec_yield(7).is_err());
    }

    #[test]
    fn margin_labelling_shrinks_the_good_region() {
        let set = sample_set();
        // Instance 1 is at 0.9/9.0 — inside the plain ranges but outside a
        // 15 % guard-banded (tightened) range.
        assert_eq!(set.label(1), DeviceLabel::Good);
        assert_eq!(set.label_with_margin(1, 0.15), DeviceLabel::Bad);
        // Widening never turns a good device bad.
        assert_eq!(set.label_with_margin(1, -0.15), DeviceLabel::Good);
    }

    #[test]
    fn split_and_truncate_share_the_allocation() {
        let set = sample_set();
        let (a, b) = set.split_at(1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 3);
        assert!(a.matrix().shares_allocation_with(set.matrix()));
        assert!(b.matrix().shares_allocation_with(set.matrix()));
        assert_eq!(b.value(0, 0), set.value(1, 0));
        let head = set.truncated(2);
        assert_eq!(head.len(), 2);
        assert!(head.matrix().shares_allocation_with(set.matrix()));
        assert_eq!(set.truncated(99).len(), 4);
    }

    #[test]
    fn from_matrix_validates_column_count() {
        let matrix = MeasurementMatrix::from_rows(vec![vec![1.0]], 1).unwrap();
        assert!(MeasurementSet::from_matrix(two_spec_set(), matrix).is_err());
        let matrix = MeasurementMatrix::from_rows(vec![vec![0.5, 5.0]], 2).unwrap();
        let set = MeasurementSet::from_matrix(two_spec_set(), matrix).unwrap();
        assert_eq!(set.label(0), DeviceLabel::Good);
    }

    #[test]
    fn training_view_uses_normalised_kept_columns() {
        let set = sample_set();
        let kept = [1usize];
        let view = set.training_view(&kept, 0.0).unwrap();
        assert_eq!(view.dimension(), 1);
        assert_eq!(view.len(), 4);
        // Column b of instance 0 is 5.0 in range [0, 10] -> 0.5.
        assert_eq!(view.features(0), &[0.5]);
        // Labels reflect the *overall* pass/fail, not just the kept column:
        // instance 2 passes spec b but fails spec a, so its label is bad.
        assert_eq!(view.label(2), DeviceLabel::Bad);
        assert!(set.training_view(&[], 0.0).is_err());
        assert!(set.training_view(&[9], 0.0).is_err());
    }

    #[test]
    fn features_match_training_view_rows() {
        let set = sample_set();
        let kept = [0usize, 1];
        let view = set.training_view(&kept, 0.0).unwrap();
        for i in 0..set.len() {
            assert_eq!(set.features(i, &[0, 1]), view.features(i));
        }
    }

    #[test]
    fn normalized_columns_are_memoized_and_shared_by_clones() {
        let set = sample_set();
        let first = set.normalized_column_shared(1);
        // Memoized: repeated access and clones return the same allocation.
        assert!(Arc::ptr_eq(&first, &set.normalized_column_shared(1)));
        assert!(Arc::ptr_eq(&first, &set.clone().normalized_column_shared(1)));
        // Values match the per-instance normalization path.
        for i in 0..set.len() {
            assert_eq!(first[i], set.features(i, &[1])[0]);
        }
        // Derived views cover different rows, so they build their own columns.
        let head = set.truncated(2);
        let head_col = head.normalized_column_shared(1);
        assert!(!Arc::ptr_eq(&first, &head_col));
        assert_eq!(&head_col[..], &first[..2]);
        // The cache is invisible to equality and serialization.
        assert_eq!(set, sample_set());
    }

    #[test]
    fn empty_set_has_full_yield() {
        let empty = MeasurementSet::new(two_spec_set(), vec![]).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.yield_fraction(), 1.0);
        assert_eq!(empty.per_spec_yield(0).unwrap(), 1.0);
    }
}
