//! Measurement datasets: the training/test data of the compaction flow.

use serde::{Deserialize, Serialize};

use crate::spec::SpecificationSet;
use crate::{CompactionError, Result};

/// Pass/fail status of one device instance against the full specification set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceLabel {
    /// Every specification value is inside its acceptability range.
    Good,
    /// At least one specification value is outside its range.
    Bad,
}

impl DeviceLabel {
    /// The `+1` / `-1` encoding used by the SVM classifier.
    pub fn to_class(self) -> f64 {
        match self {
            DeviceLabel::Good => 1.0,
            DeviceLabel::Bad => -1.0,
        }
    }

    /// Decodes the SVM class encoding.
    pub fn from_class(class: f64) -> Self {
        if class > 0.0 {
            DeviceLabel::Good
        } else {
            DeviceLabel::Bad
        }
    }
}

/// A set of measured device instances: one row of specification measurements
/// per instance, together with the specification set that defines pass/fail.
///
/// This is the "training data" produced by the Figure 1 flow and consumed by
/// the Figure 2 compaction loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasurementSet {
    specs: SpecificationSet,
    rows: Vec<Vec<f64>>,
}

impl MeasurementSet {
    /// Creates a measurement set, validating row dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::DimensionMismatch`] if any row does not have
    /// one value per specification.
    pub fn new(specs: SpecificationSet, rows: Vec<Vec<f64>>) -> Result<Self> {
        if let Some(bad) = rows.iter().find(|r| r.len() != specs.len()) {
            return Err(CompactionError::DimensionMismatch {
                expected: specs.len(),
                found: bad.len(),
            });
        }
        Ok(MeasurementSet { specs, rows })
    }

    /// The specification set describing the columns.
    pub fn specs(&self) -> &SpecificationSet {
        &self.specs
    }

    /// Number of device instances.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the set holds no instances.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The raw measurement rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Measurement row of instance `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// Pass/fail label of instance `i` against the full specification set.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn label(&self, i: usize) -> DeviceLabel {
        if self.specs.passes(&self.rows[i]) {
            DeviceLabel::Good
        } else {
            DeviceLabel::Bad
        }
    }

    /// Pass/fail label of instance `i` with all ranges tightened/widened by a
    /// fraction of their width (used for guard-band labelling).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn label_with_margin(&self, i: usize, delta: f64) -> DeviceLabel {
        if self.specs.passes_with_margin(&self.rows[i], delta) {
            DeviceLabel::Good
        } else {
            DeviceLabel::Bad
        }
    }

    /// Labels of every instance.
    pub fn labels(&self) -> Vec<DeviceLabel> {
        (0..self.len()).map(|i| self.label(i)).collect()
    }

    /// Overall yield: fraction of instances that pass every specification.
    pub fn yield_fraction(&self) -> f64 {
        if self.is_empty() {
            return 1.0;
        }
        let good = (0..self.len()).filter(|&i| self.label(i) == DeviceLabel::Good).count();
        good as f64 / self.len() as f64
    }

    /// Fraction of instances that pass specification `column` alone.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::UnknownSpecification`] for a bad column.
    pub fn per_spec_yield(&self, column: usize) -> Result<f64> {
        if column >= self.specs.len() {
            return Err(CompactionError::UnknownSpecification {
                index: column,
                count: self.specs.len(),
            });
        }
        if self.is_empty() {
            return Ok(1.0);
        }
        let spec = self.specs.spec(column);
        let pass = self.rows.iter().filter(|r| spec.passes(r[column])).count();
        Ok(pass as f64 / self.len() as f64)
    }

    /// Splits the instances into two measurement sets at `index`
    /// (first `index` rows, remaining rows).
    ///
    /// # Panics
    ///
    /// Panics if `index > len()`.
    pub fn split_at(&self, index: usize) -> (MeasurementSet, MeasurementSet) {
        let (first, second) = self.rows.split_at(index);
        (
            MeasurementSet { specs: self.specs.clone(), rows: first.to_vec() },
            MeasurementSet { specs: self.specs.clone(), rows: second.to_vec() },
        )
    }

    /// Returns a measurement set containing the first `count` instances
    /// (or all of them when `count >= len()`).
    pub fn truncated(&self, count: usize) -> MeasurementSet {
        MeasurementSet {
            specs: self.specs.clone(),
            rows: self.rows.iter().take(count).cloned().collect(),
        }
    }

    /// Builds a borrowed training view over the kept columns with a labelling
    /// margin — the input classifier backends train on (see
    /// [`crate::classifier::TrainingView`]).
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::EmptyTestSet`] when `kept` is empty and
    /// [`CompactionError::UnknownSpecification`] for an out-of-range column.
    pub fn training_view<'a>(
        &'a self,
        kept: &'a [usize],
        label_margin: f64,
    ) -> Result<crate::classifier::TrainingView<'a>> {
        crate::classifier::TrainingView::new(self, kept, label_margin)
    }

    /// Normalised kept-column feature vector of instance `i` (the tester-side
    /// view of the measurements after compaction).
    ///
    /// # Panics
    ///
    /// Panics if `i` or any column index is out of bounds.
    pub fn features(&self, i: usize, kept: &[usize]) -> Vec<f64> {
        kept.iter().map(|&c| self.specs.spec(c).normalize(self.rows[i][c])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Specification;

    fn two_spec_set() -> SpecificationSet {
        SpecificationSet::new(vec![
            Specification::new("a", "-", 0.5, 0.0, 1.0).unwrap(),
            Specification::new("b", "-", 5.0, 0.0, 10.0).unwrap(),
        ])
        .unwrap()
    }

    fn sample_set() -> MeasurementSet {
        MeasurementSet::new(
            two_spec_set(),
            vec![
                vec![0.5, 5.0],  // good
                vec![0.9, 9.0],  // good
                vec![1.5, 5.0],  // bad (a out of range)
                vec![0.5, 12.0], // bad (b out of range)
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_dimensions() {
        let specs = two_spec_set();
        assert!(MeasurementSet::new(specs, vec![vec![1.0]]).is_err());
    }

    #[test]
    fn labels_and_yield() {
        let set = sample_set();
        assert_eq!(set.label(0), DeviceLabel::Good);
        assert_eq!(set.label(2), DeviceLabel::Bad);
        assert_eq!(set.yield_fraction(), 0.5);
        assert_eq!(set.labels().len(), 4);
        assert_eq!(DeviceLabel::Good.to_class(), 1.0);
        assert_eq!(DeviceLabel::from_class(-2.0), DeviceLabel::Bad);
    }

    #[test]
    fn per_spec_yield_isolates_columns() {
        let set = sample_set();
        assert_eq!(set.per_spec_yield(0).unwrap(), 0.75);
        assert_eq!(set.per_spec_yield(1).unwrap(), 0.75);
        assert!(set.per_spec_yield(7).is_err());
    }

    #[test]
    fn margin_labelling_shrinks_the_good_region() {
        let set = sample_set();
        // Instance 1 is at 0.9/9.0 — inside the plain ranges but outside a
        // 15 % guard-banded (tightened) range.
        assert_eq!(set.label(1), DeviceLabel::Good);
        assert_eq!(set.label_with_margin(1, 0.15), DeviceLabel::Bad);
        // Widening never turns a good device bad.
        assert_eq!(set.label_with_margin(1, -0.15), DeviceLabel::Good);
    }

    #[test]
    fn split_and_truncate() {
        let set = sample_set();
        let (a, b) = set.split_at(1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 3);
        assert_eq!(set.truncated(2).len(), 2);
        assert_eq!(set.truncated(99).len(), 4);
    }

    #[test]
    fn training_view_uses_normalised_kept_columns() {
        let set = sample_set();
        let kept = [1usize];
        let view = set.training_view(&kept, 0.0).unwrap();
        assert_eq!(view.dimension(), 1);
        assert_eq!(view.len(), 4);
        // Column b of instance 0 is 5.0 in range [0, 10] -> 0.5.
        assert_eq!(view.features(0), &[0.5]);
        // Labels reflect the *overall* pass/fail, not just the kept column:
        // instance 2 passes spec b but fails spec a, so its label is bad.
        assert_eq!(view.label(2), DeviceLabel::Bad);
        assert!(set.training_view(&[], 0.0).is_err());
        assert!(set.training_view(&[9], 0.0).is_err());
    }

    #[test]
    fn features_match_training_view_rows() {
        let set = sample_set();
        let kept = [0usize, 1];
        let view = set.training_view(&kept, 0.0).unwrap();
        for i in 0..set.len() {
            assert_eq!(set.features(i, &[0, 1]), view.features(i));
        }
    }

    #[test]
    fn empty_set_has_full_yield() {
        let empty = MeasurementSet::new(two_spec_set(), vec![]).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.yield_fraction(), 1.0);
        assert_eq!(empty.per_spec_yield(0).unwrap(), 1.0);
    }
}
