//! Test-cost model (paper Section 6 lists an accurate cost model as future
//! work; this module provides a simple, configurable one so the "reduce test
//! cost by more than half" claim for the accelerometer can be quantified).

use serde::{Deserialize, Serialize};

use crate::{CompactionError, Result};

/// Per-specification test-cost description.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TestCostModel {
    /// Cost of applying each specification test, in arbitrary cost units
    /// (one entry per specification, in specification order).
    per_test: Vec<f64>,
    /// Fixed overhead per *insertion* (a group of tests sharing a setup, for
    /// example one temperature); keyed by an insertion label per test.
    insertion_of_test: Vec<usize>,
    /// Fixed cost of each insertion, incurred once if any of its tests runs.
    insertion_cost: Vec<f64>,
}

impl<'de> Deserialize<'de> for TestCostModel {
    /// Deserialises through [`TestCostModel::new`], so a decoded model
    /// upholds the same invariants (consistent lengths, non-negative finite
    /// costs, in-range insertion indices) as a constructed one.
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        use serde::de::{Error as _, IgnoredAny, MapAccess, Visitor};
        struct ModelVisitor;
        impl<'de> Visitor<'de> for ModelVisitor {
            type Value = TestCostModel;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a test-cost model as {per_test, insertion_of_test, insertion_cost}")
            }
            fn visit_map<A: MapAccess<'de>>(
                self,
                mut map: A,
            ) -> std::result::Result<TestCostModel, A::Error> {
                let mut per_test: Option<Vec<f64>> = None;
                let mut insertion_of_test: Option<Vec<usize>> = None;
                let mut insertion_cost: Option<Vec<f64>> = None;
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "per_test" => per_test = Some(map.next_value()?),
                        "insertion_of_test" => insertion_of_test = Some(map.next_value()?),
                        "insertion_cost" => insertion_cost = Some(map.next_value()?),
                        _ => {
                            map.next_value::<IgnoredAny>()?;
                        }
                    }
                }
                TestCostModel::new(
                    per_test.ok_or_else(|| A::Error::missing_field("per_test"))?,
                    insertion_of_test
                        .ok_or_else(|| A::Error::missing_field("insertion_of_test"))?,
                    insertion_cost.ok_or_else(|| A::Error::missing_field("insertion_cost"))?,
                )
                .map_err(|error| A::Error::custom(format!("invalid cost model: {error}")))
            }
        }
        deserializer.deserialize_any(ModelVisitor)
    }
}

impl TestCostModel {
    /// Builds a cost model.
    ///
    /// `per_test[i]` is the marginal cost of test `i`; `insertion_of_test[i]`
    /// names the insertion (setup group) test `i` belongs to, and
    /// `insertion_cost[g]` is charged once when any test of group `g` is
    /// applied — this captures the expensive thermal soak of the hot/cold
    /// accelerometer insertions.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::InvalidConfig`] for inconsistent lengths,
    /// negative costs or out-of-range insertion indices.
    pub fn new(
        per_test: Vec<f64>,
        insertion_of_test: Vec<usize>,
        insertion_cost: Vec<f64>,
    ) -> Result<Self> {
        if per_test.len() != insertion_of_test.len() {
            return Err(CompactionError::InvalidConfig {
                parameter: "insertion_of_test",
                value: insertion_of_test.len() as f64,
            });
        }
        if per_test.iter().any(|&c| c < 0.0 || !c.is_finite()) {
            return Err(CompactionError::InvalidConfig { parameter: "per_test", value: -1.0 });
        }
        if insertion_cost.iter().any(|&c| c < 0.0 || !c.is_finite()) {
            return Err(CompactionError::InvalidConfig {
                parameter: "insertion_cost",
                value: -1.0,
            });
        }
        if let Some(&bad) = insertion_of_test.iter().find(|&&g| g >= insertion_cost.len()) {
            return Err(CompactionError::InvalidConfig {
                parameter: "insertion_of_test",
                value: bad as f64,
            });
        }
        Ok(TestCostModel { per_test, insertion_of_test, insertion_cost })
    }

    /// A uniform model: every test costs 1, no insertion overhead.
    pub fn uniform(test_count: usize) -> Self {
        TestCostModel {
            per_test: vec![1.0; test_count],
            insertion_of_test: vec![0; test_count],
            insertion_cost: vec![0.0],
        }
    }

    /// Number of tests the model describes.
    pub fn test_count(&self) -> usize {
        self.per_test.len()
    }

    /// Total cost of applying exactly the *set* of tests in `kept`.
    ///
    /// `kept` is treated as a set: a test listed more than once is applied —
    /// and charged — once, exactly like its insertion overhead.  (Summing
    /// per occurrence used to double-count duplicates, which would hand
    /// cost-aware search strategies an inflated saving.)
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::UnknownSpecification`] for bad indices.
    pub fn cost_of(&self, kept: &[usize]) -> Result<f64> {
        if let Some(&bad) = kept.iter().find(|&&t| t >= self.per_test.len()) {
            return Err(CompactionError::UnknownSpecification {
                index: bad,
                count: self.per_test.len(),
            });
        }
        let mut applied = vec![false; self.per_test.len()];
        let mut cost = 0.0;
        for &test in kept {
            if !applied[test] {
                applied[test] = true;
                cost += self.per_test[test];
            }
        }
        for (group, &group_cost) in self.insertion_cost.iter().enumerate() {
            if kept.iter().any(|&t| self.insertion_of_test[t] == group) {
                cost += group_cost;
            }
        }
        Ok(cost)
    }

    /// Cost of the complete test set.
    pub fn full_cost(&self) -> f64 {
        let all: Vec<usize> = (0..self.per_test.len()).collect();
        self.cost_of(&all).expect("full set is always valid")
    }

    /// Relative cost reduction achieved by testing only `kept`
    /// (0 = no saving, 1 = everything free).
    ///
    /// # Errors
    ///
    /// Propagates index errors from [`TestCostModel::cost_of`].
    pub fn cost_reduction(&self, kept: &[usize]) -> Result<f64> {
        let full = self.full_cost();
        if full <= 0.0 {
            return Ok(0.0);
        }
        Ok(1.0 - self.cost_of(kept)? / full)
    }

    /// Orders `kept` cheapest-first by *incremental* cost: each position is
    /// filled with the remaining test whose marginal cost — per-test cost
    /// plus its insertion's setup cost if no earlier pick already opened
    /// that insertion — is smallest, ties broken by test index.  The
    /// default stage order of a sequential
    /// [`TestPlan`](crate::tester::TestPlan): devices that exit early skip
    /// the most expensive tail.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::UnknownSpecification`] for bad indices.
    pub fn cheapest_order(&self, kept: &[usize]) -> Result<Vec<usize>> {
        if let Some(&bad) = kept.iter().find(|&&t| t >= self.per_test.len()) {
            return Err(CompactionError::UnknownSpecification {
                index: bad,
                count: self.per_test.len(),
            });
        }
        let mut remaining: Vec<usize> = Vec::new();
        for &test in kept {
            if !remaining.contains(&test) {
                remaining.push(test);
            }
        }
        let mut opened = vec![false; self.insertion_cost.len()];
        let mut order = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let mut best = 0usize;
            let mut best_cost = f64::INFINITY;
            for (position, &test) in remaining.iter().enumerate() {
                let group = self.insertion_of_test[test];
                let setup = if opened[group] { 0.0 } else { self.insertion_cost[group] };
                let cost = self.per_test[test] + setup;
                if cost < best_cost || (cost == best_cost && test < remaining[best]) {
                    best = position;
                    best_cost = cost;
                }
            }
            let test = remaining.remove(best);
            opened[self.insertion_of_test[test]] = true;
            order.push(test);
        }
        Ok(order)
    }

    /// Expected measurement cost per device of walking `plan` sequentially
    /// over `population` — the mean, over the devices, of the cumulative
    /// cost of the stages each device actually needed before its session
    /// decided (see
    /// [`SequentialStats`](crate::tester::SequentialStats)).  Always at most
    /// the static kept-set cost, and strictly below it as soon as one
    /// device exits early on a strictly cheaper prefix.
    ///
    /// # Errors
    ///
    /// Propagates index errors and session errors (a detached program that
    /// must consult its model).
    pub fn expected_cost(
        &self,
        plan: &crate::tester::TestPlan<'_>,
        population: &crate::dataset::MeasurementSet,
    ) -> Result<f64> {
        crate::tester::SequentialStats::collect(plan, self, population)
            .map(|stats| stats.expected_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cost model mirroring the accelerometer: 12 tests in 3 insertions where
    /// the hot and cold insertions carry a large thermal-soak overhead.
    fn accelerometer_costs() -> TestCostModel {
        let per_test = vec![1.0; 12];
        let insertion_of_test = vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]; // cold, room, hot
        let insertion_cost = vec![12.0, 1.0, 10.0];
        TestCostModel::new(per_test, insertion_of_test, insertion_cost).unwrap()
    }

    #[test]
    fn removing_temperature_insertions_halves_the_cost() {
        let model = accelerometer_costs();
        let full = model.full_cost();
        // Keep only the room-temperature tests (indices 4..8).
        let kept: Vec<usize> = (4..8).collect();
        let reduced = model.cost_of(&kept).unwrap();
        assert!(reduced < full / 2.0, "cost {reduced} vs full {full}");
        let reduction = model.cost_reduction(&kept).unwrap();
        assert!(reduction > 0.5, "reduction {reduction}");
    }

    #[test]
    fn insertion_overhead_is_charged_once() {
        let model = accelerometer_costs();
        let one_cold = model.cost_of(&[0]).unwrap();
        let two_cold = model.cost_of(&[0, 1]).unwrap();
        assert_eq!(two_cold - one_cold, 1.0);
    }

    #[test]
    fn uniform_model_counts_tests() {
        let model = TestCostModel::uniform(11);
        assert_eq!(model.test_count(), 11);
        assert_eq!(model.full_cost(), 11.0);
        assert_eq!(model.cost_of(&[0, 1, 2, 3]).unwrap(), 4.0);
        assert!((model.cost_reduction(&[0, 1, 2, 3]).unwrap() - 7.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_indices_are_charged_once() {
        let model = accelerometer_costs();
        assert_eq!(model.cost_of(&[0, 0, 0]).unwrap(), model.cost_of(&[0]).unwrap());
        assert_eq!(model.cost_of(&[4, 5, 4]).unwrap(), model.cost_of(&[4, 5]).unwrap());
        let uniform = TestCostModel::uniform(4);
        assert_eq!(uniform.cost_of(&[1, 1, 2]).unwrap(), 2.0);
        assert_eq!(
            uniform.cost_reduction(&[1, 1, 2]).unwrap(),
            uniform.cost_reduction(&[1, 2]).unwrap()
        );
    }

    #[test]
    fn cheapest_order_defers_expensive_insertions() {
        let model = accelerometer_costs();
        // Room (1 + 1 setup) before hot (1 + 10) before cold (1 + 12).
        assert_eq!(model.cheapest_order(&[0, 4, 8]).unwrap(), vec![4, 8, 0]);
        // An opened insertion makes its siblings cheap; ties fall back to
        // the test index.
        assert_eq!(model.cheapest_order(&[0, 1, 4, 8]).unwrap(), vec![4, 8, 0, 1]);
        assert!(model.cheapest_order(&[99]).is_err());
    }

    #[test]
    fn invalid_models_and_indices_are_rejected() {
        assert!(TestCostModel::new(vec![1.0], vec![0, 0], vec![0.0]).is_err());
        assert!(TestCostModel::new(vec![-1.0], vec![0], vec![0.0]).is_err());
        assert!(TestCostModel::new(vec![1.0], vec![3], vec![0.0]).is_err());
        assert!(TestCostModel::new(vec![1.0], vec![0], vec![-2.0]).is_err());
        let model = TestCostModel::uniform(3);
        assert!(model.cost_of(&[7]).is_err());
    }
}
