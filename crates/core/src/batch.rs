//! Batched pipeline runs: one compaction configuration across many devices
//! and populations.
//!
//! A production test-development flow rarely compacts a single device: it
//! sweeps a device family (corners, variants, temperature splits) under one
//! methodology configuration and compares the outcomes.  [`PipelineBatch`]
//! runs one [`CompactionPipeline`] configuration across many
//! [`DeviceUnderTest`] entries, spreading the runs over a work-stealing
//! worker pool (each worker may additionally use the speculative
//! candidate-evaluation threads of
//! [`CompactionConfig::with_threads`](crate::CompactionConfig::with_threads))
//! and sharing one Monte-Carlo [`PopulationCache`] so repeated runs over the
//! same device + configuration never re-simulate.
//!
//! Results are deterministic and independent of the worker count: the batch
//! report equals the reports of the same pipelines run one by one.
//!
//! ```
//! use stc_core::batch::PipelineBatch;
//! use stc_core::{CompactionConfig, MonteCarloConfig, SyntheticDevice};
//!
//! # fn main() -> Result<(), stc_core::CompactionError> {
//! let loose = SyntheticDevice::new(4, 1.8, 0.9);
//! let tight = SyntheticDevice::new(4, 1.2, 0.9);
//! let report = PipelineBatch::new()
//!     .monte_carlo(MonteCarloConfig::new(200).with_seed(5))
//!     .compaction(CompactionConfig::paper_default().with_tolerance(0.05))
//!     .device_labelled("loose limits", &loose)
//!     .device_labelled("tight limits", &tight)
//!     .batch_threads(2)
//!     .run()?;
//! assert_eq!(report.runs.len(), 2);
//! assert_eq!(report.aggregate.devices, 2);
//! println!("{}", report.summary());
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::classifier::{ClassifierFactory, GridBackend};
use crate::compaction::CompactionConfig;
use crate::costmodel::TestCostModel;
use crate::dataset::MeasurementSet;
use crate::device::DeviceUnderTest;
use crate::guardband::GuardBandConfig;
use crate::metrics::ErrorBreakdown;
use crate::montecarlo::{generate_train_test, MonteCarloConfig};
use crate::pipeline::{CompactionPipeline, PipelineReport};
use crate::report::percent;
use crate::search::{
    GreedyBackward, ProgressObserver, ScreeningConfig, SearchBudget, SearchStrategy,
};
use crate::Result;

/// Cache key for one generated population: the batch entry label, a device
/// fingerprint and every configuration value that influences the simulated
/// data.  Quantiles are stored as bit patterns so the key can be hashed
/// exactly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PopulationKey {
    label: String,
    device_fingerprint: String,
    instances: usize,
    seed: u64,
    test_instances: usize,
    quantile_bits: (u64, u64),
    skip_failures: bool,
}

impl PopulationKey {
    fn new(
        label: &str,
        device: &dyn DeviceUnderTest,
        config: &MonteCarloConfig,
        test_instances: usize,
    ) -> Self {
        PopulationKey {
            label: label.to_string(),
            device_fingerprint: device.fingerprint(),
            instances: config.instances,
            seed: config.seed,
            test_instances,
            quantile_bits: (
                config.calibration_quantiles.0.to_bits(),
                config.calibration_quantiles.1.to_bits(),
            ),
            skip_failures: config.skip_failures,
        }
    }
}

/// Shared cache of Monte-Carlo populations keyed by batch-entry label +
/// generation configuration.
///
/// Simulating the population dominates every experiment on the real device
/// models (thousands of transistor-level simulations), so a batch generates
/// each population once and every later [`PipelineBatch::run`] against the
/// same cache reuses it.  Cached measurement sets are `Arc`-shared columnar
/// views, so a hit costs no measurement copies.
///
/// Entries are keyed by the entry *label* plus the device's
/// [`fingerprint`](DeviceUnderTest::fingerprint).  A cache shared across
/// batches therefore assumes equal labels + fingerprints mean the same
/// device model; implement `fingerprint` for device types whose simulation
/// depends on parameters the default fingerprint cannot see.
#[derive(Debug, Default)]
pub struct PopulationCache {
    populations: Mutex<HashMap<PopulationKey, Arc<(MeasurementSet, MeasurementSet)>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl PopulationCache {
    /// An empty cache, ready to be shared across batches via `Arc`.
    pub fn new() -> Self {
        PopulationCache::default()
    }

    /// Returns the cached population for the key, or generates, caches and
    /// returns it.
    fn get_or_generate(
        &self,
        label: &str,
        device: &dyn DeviceUnderTest,
        config: &MonteCarloConfig,
        test_instances: usize,
    ) -> Result<Arc<(MeasurementSet, MeasurementSet)>> {
        let key = PopulationKey::new(label, device, config, test_instances);
        if let Some(found) = self.populations.lock().expect("population cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(found));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Generate outside the lock so concurrent workers build *different*
        // populations in parallel; duplicate keys racing is harmless because
        // generation is deterministic for a fixed key.
        let population = Arc::new(generate_train_test(device, config, test_instances)?);
        self.populations
            .lock()
            .expect("population cache poisoned")
            .entry(key)
            .or_insert_with(|| Arc::clone(&population));
        Ok(population)
    }

    /// Hit/miss counters accumulated over the cache's lifetime.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// Hit/miss counters of a [`PopulationCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Populations served from the cache.
    pub hits: usize,
    /// Populations generated because the key was absent.
    pub misses: usize,
}

/// One device entry of a batch.
struct BatchEntry<'d> {
    label: String,
    device: &'d dyn DeviceUnderTest,
    /// Per-entry Monte-Carlo seed override (`None` = the shared seed), so one
    /// device model can contribute several independent populations.
    seed: Option<u64>,
}

/// Runs one [`CompactionPipeline`] configuration across many devices.
///
/// Builder methods mirror the single-device pipeline stages; devices are
/// appended with [`PipelineBatch::device`] (and friends) and the whole batch
/// executes with [`PipelineBatch::run`].  See the [module docs](self) for an
/// example.
pub struct PipelineBatch<'d> {
    entries: Vec<BatchEntry<'d>>,
    monte_carlo: MonteCarloConfig,
    test_instances: Option<usize>,
    compaction: CompactionConfig,
    guard_band: Option<GuardBandConfig>,
    budget: Option<SearchBudget>,
    screening: Option<ScreeningConfig>,
    cost_model: Option<TestCostModel>,
    classifier: Arc<dyn ClassifierFactory>,
    search: Arc<dyn SearchStrategy>,
    lookup_table: Option<usize>,
    batch_threads: usize,
    populations: Arc<PopulationCache>,
    observer: Option<Arc<dyn ProgressObserver>>,
    sequential: bool,
}

impl std::fmt::Debug for PipelineBatch<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineBatch")
            .field("devices", &self.entries.iter().map(|e| e.label.as_str()).collect::<Vec<_>>())
            .field("monte_carlo", &self.monte_carlo)
            .field("test_instances", &self.test_instances)
            .field("compaction", &self.compaction)
            .field("guard_band", &self.guard_band)
            .field("budget", &self.budget)
            .field("screening", &self.screening)
            .field("cost_model", &self.cost_model)
            .field("classifier", &self.classifier)
            .field("search", &self.search)
            .field("lookup_table", &self.lookup_table)
            .field("batch_threads", &self.batch_threads)
            .field("observer", &self.observer)
            .field("sequential", &self.sequential)
            .finish()
    }
}

impl Default for PipelineBatch<'_> {
    fn default() -> Self {
        PipelineBatch::new()
    }
}

impl<'d> PipelineBatch<'d> {
    /// An empty batch with the paper's default configuration and the built-in
    /// [`GridBackend`] classifier (mirrors
    /// [`CompactionPipeline::for_device`]).
    pub fn new() -> Self {
        PipelineBatch {
            entries: Vec::new(),
            monte_carlo: MonteCarloConfig::new(400),
            test_instances: None,
            compaction: CompactionConfig::paper_default(),
            guard_band: None,
            budget: None,
            screening: None,
            cost_model: None,
            classifier: Arc::new(GridBackend::default()),
            search: Arc::new(GreedyBackward),
            lookup_table: None,
            batch_threads: 1,
            populations: Arc::new(PopulationCache::new()),
            observer: None,
            sequential: true,
        }
    }

    /// Appends a device, labelled `"<device name>#<index>"`.
    pub fn device(self, device: &'d dyn DeviceUnderTest) -> Self {
        let label = format!("{}#{}", device.name(), self.entries.len());
        self.push(label, device, None)
    }

    /// Appends a device under an explicit label (the label keys the
    /// population cache and the per-run report).
    pub fn device_labelled(
        self,
        label: impl Into<String>,
        device: &'d dyn DeviceUnderTest,
    ) -> Self {
        self.push(label.into(), device, None)
    }

    /// Appends an independent *population* of an already-used device model:
    /// the entry runs with the given Monte-Carlo seed instead of the shared
    /// one, so N seeds of one device model behave like N devices.
    pub fn device_seeded(self, device: &'d dyn DeviceUnderTest, seed: u64) -> Self {
        let label = format!("{}#{}@{seed}", device.name(), self.entries.len());
        self.push(label, device, Some(seed))
    }

    fn push(mut self, label: String, device: &'d dyn DeviceUnderTest, seed: Option<u64>) -> Self {
        self.entries.push(BatchEntry { label, device, seed });
        self
    }

    /// Configures the shared Monte-Carlo stage (per-entry seeds from
    /// [`PipelineBatch::device_seeded`] override its seed).
    pub fn monte_carlo(mut self, config: MonteCarloConfig) -> Self {
        self.monte_carlo = config;
        self
    }

    /// Sets the held-out population size (defaults to half the training
    /// population).
    pub fn test_instances(mut self, instances: usize) -> Self {
        self.test_instances = Some(instances);
        self
    }

    /// Configures the greedy compaction stage.
    pub fn compaction(mut self, config: CompactionConfig) -> Self {
        self.compaction = config;
        self
    }

    /// Configures guard banding (see [`CompactionPipeline::guard_band`]).
    pub fn guard_band(mut self, config: GuardBandConfig) -> Self {
        self.guard_band = Some(config);
        self
    }

    /// Attaches a test-cost model shared by every entry.
    pub fn cost_model(mut self, model: TestCostModel) -> Self {
        self.cost_model = Some(model);
        self
    }

    /// Selects the classifier backend shared by every entry.
    pub fn classifier(mut self, factory: impl ClassifierFactory + 'static) -> Self {
        self.classifier = Arc::new(factory);
        self
    }

    /// Selects an already-shared classifier backend.
    pub fn classifier_arc(mut self, factory: Arc<dyn ClassifierFactory>) -> Self {
        self.classifier = factory;
        self
    }

    /// Selects the search strategy shared by every entry of the batch
    /// (defaults to the paper's greedy backward elimination; see
    /// [`crate::search`] for the bundled alternatives).
    pub fn search(mut self, strategy: impl SearchStrategy + 'static) -> Self {
        self.search = Arc::new(strategy);
        self
    }

    /// Selects an already-shared search strategy.
    pub fn search_arc(mut self, strategy: Arc<dyn SearchStrategy>) -> Self {
        self.search = strategy;
        self
    }

    /// Caps the training effort *each entry's* compaction search may spend
    /// (see [`CompactionPipeline::budget`]; the budget is per run, not
    /// shared across the batch, and overrides the budget embedded in the
    /// compaction configuration, so stages stay order-independent).
    pub fn budget(mut self, budget: SearchBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Configures screen-then-verify candidate evaluation for every entry
    /// (see [`CompactionPipeline::screening`]; overrides the screening
    /// embedded in the compaction configuration, so stages stay
    /// order-independent).
    pub fn screening(mut self, config: ScreeningConfig) -> Self {
        self.screening = Some(config);
        self
    }

    /// Deploys every final model as a lookup table with the given resolution.
    pub fn lookup_table(mut self, cells_per_dim: usize) -> Self {
        self.lookup_table = Some(cells_per_dim);
        self
    }

    /// Number of worker threads running whole pipelines concurrently
    /// (1 = sequential).  Workers steal the next unstarted device from a
    /// shared queue, so slow devices never serialise the batch behind them.
    pub fn batch_threads(mut self, threads: usize) -> Self {
        self.batch_threads = threads.max(1);
        self
    }

    /// Shares an external population cache (for example one cache across
    /// several batches sweeping classifier backends over the same devices).
    pub fn with_population_cache(mut self, cache: Arc<PopulationCache>) -> Self {
        self.populations = cache;
        self
    }

    /// The population cache this batch reads and fills.
    pub fn population_cache(&self) -> &Arc<PopulationCache> {
        &self.populations
    }

    /// Attaches a [`ProgressObserver`] shared by every entry's compaction
    /// stage (see [`CompactionPipeline::observer`]).  With several batch
    /// threads, events of different entries interleave; observers that need
    /// per-entry streams should run entries through per-entry batches (or
    /// pipelines) with distinct observers.
    pub fn observer(mut self, observer: Arc<dyn ProgressObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Enables or disables the staged sequential deploy accounting for every
    /// entry (see [`CompactionPipeline::sequential_deploy`]; default:
    /// enabled).
    pub fn sequential_deploy(mut self, enabled: bool) -> Self {
        self.sequential = enabled;
        self
    }

    /// The single-device pipeline for entry `index` — exactly what
    /// [`PipelineBatch::run`] executes for that entry.
    fn pipeline_for(&self, entry: &BatchEntry<'d>) -> (CompactionPipeline<'d>, MonteCarloConfig) {
        let mut monte_carlo = self.monte_carlo;
        if let Some(seed) = entry.seed {
            monte_carlo = monte_carlo.with_seed(seed);
        }
        let mut pipeline = CompactionPipeline::for_device(entry.device)
            .monte_carlo(monte_carlo)
            .compaction(self.compaction.clone())
            .classifier_arc(Arc::clone(&self.classifier))
            .search_arc(Arc::clone(&self.search));
        if let Some(instances) = self.test_instances {
            pipeline = pipeline.test_instances(instances);
        }
        if let Some(guard_band) = self.guard_band {
            pipeline = pipeline.guard_band(guard_band);
        }
        if let Some(budget) = self.budget {
            pipeline = pipeline.budget(budget);
        }
        if let Some(screening) = self.screening {
            pipeline = pipeline.screening(screening);
        }
        if let Some(cost_model) = &self.cost_model {
            pipeline = pipeline.cost_model(cost_model.clone());
        }
        if let Some(cells) = self.lookup_table {
            pipeline = pipeline.lookup_table(cells);
        }
        if let Some(observer) = &self.observer {
            pipeline = pipeline.observer(Arc::clone(observer));
        }
        pipeline = pipeline.sequential_deploy(self.sequential);
        (pipeline, monte_carlo)
    }

    /// Runs one entry: cached (or freshly generated) population, then the
    /// compaction pipeline stages.
    fn run_entry(&self, entry: &BatchEntry<'d>) -> Result<PipelineReport> {
        let (pipeline, monte_carlo) = self.pipeline_for(entry);
        let population = self.populations.get_or_generate(
            &entry.label,
            entry.device,
            &monte_carlo,
            pipeline.resolved_test_instances(),
        )?;
        pipeline.run_with_population(population.0.clone(), population.1.clone())
    }

    /// Runs every entry and aggregates the outcome.
    ///
    /// The result is identical for any [`PipelineBatch::batch_threads`]
    /// value: workers only decide *when* an entry runs, each entry's pipeline
    /// is deterministic for its seed.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::EmptyBatch`](crate::CompactionError) when
    /// no device was added and
    /// [`CompactionError::DuplicateBatchLabel`](crate::CompactionError) when
    /// two entries share a label (labels key the population cache, so a
    /// collision would silently run one entry on the other's population);
    /// propagates the first per-entry error in entry order.
    pub fn run(&self) -> Result<BatchReport> {
        if self.entries.is_empty() {
            return Err(crate::CompactionError::EmptyBatch);
        }
        for (i, entry) in self.entries.iter().enumerate() {
            if self.entries[..i].iter().any(|other| other.label == entry.label) {
                return Err(crate::CompactionError::DuplicateBatchLabel {
                    label: entry.label.clone(),
                });
            }
        }
        let workers = self.batch_threads.min(self.entries.len()).max(1);
        // An entry failure cancels the entries that have not *started* yet
        // (in-flight ones finish and are discarded) so the error path does
        // not pay for simulating the rest of the batch.
        let cancelled = AtomicBool::new(false);
        let run_one = |index: usize, entry: &BatchEntry<'d>| {
            let outcome = self.run_entry(entry);
            if outcome.is_err() {
                cancelled.store(true, Ordering::Relaxed);
            }
            (index, outcome)
        };
        let mut outcomes: Vec<(usize, Result<PipelineReport>)> = if workers <= 1 {
            let mut collected = Vec::with_capacity(self.entries.len());
            for (index, entry) in self.entries.iter().enumerate() {
                collected.push(run_one(index, entry));
                if cancelled.load(Ordering::Relaxed) {
                    break;
                }
            }
            collected
        } else {
            // Work stealing: each worker pulls the next unstarted entry from
            // a shared counter until the queue drains (or an error cancels
            // the remainder).
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        let cancelled = &cancelled;
                        let run_one = &run_one;
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            while !cancelled.load(Ordering::Relaxed) {
                                let index = next.fetch_add(1, Ordering::Relaxed);
                                let Some(entry) = self.entries.get(index) else { break };
                                local.push(run_one(index, entry));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|handle| handle.join().expect("batch worker panicked"))
                    .collect()
            })
        };
        outcomes.sort_by_key(|(index, _)| *index);

        // Propagate the lowest-index error that was collected.  When several
        // entries fail, cancellation timing decides which failures were
        // collected, so the *reported* error may vary with scheduling; the
        // success path is unaffected (all entries completed, in order).
        let mut runs = Vec::with_capacity(self.entries.len());
        for (index, outcome) in outcomes {
            runs.push(BatchRun { label: self.entries[index].label.clone(), report: outcome? });
        }
        debug_assert_eq!(runs.len(), self.entries.len(), "no entry may be skipped on success");
        let aggregate = BatchAggregate::from_runs(&runs);
        let population_cache = self.populations.stats();
        Ok(BatchReport {
            runs,
            aggregate,
            population_cache_hits: population_cache.hits,
            population_cache_misses: population_cache.misses,
        })
    }
}

/// One entry's outcome within a [`BatchReport`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchRun {
    /// The batch-entry label (defaults to `"<device name>#<index>"`).
    pub label: String,
    /// The full single-device pipeline report.
    pub report: PipelineReport,
}

/// Aggregate compaction/cost statistics over every run of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchAggregate {
    /// Number of device entries.
    pub devices: usize,
    /// Specification tests across all entries.
    pub total_tests: usize,
    /// Eliminated tests across all entries.
    pub total_eliminated: usize,
    /// Mean per-device compaction ratio.
    pub mean_compaction_ratio: f64,
    /// Mean per-device cost reduction.
    pub mean_cost_reduction: f64,
    /// Deployed-program error breakdown merged over every held-out
    /// population.
    pub deployed: ErrorBreakdown,
    /// Greedy-loop model-cache hits summed over all runs.
    pub model_cache_hits: usize,
    /// Greedy-loop model-cache misses summed over all runs.
    pub model_cache_misses: usize,
    /// Greedy-loop warm-start diagnostics summed over all runs (trainings
    /// and solver iterations, split warm versus cold).
    pub warm_start: crate::WarmStartStats,
    /// Screen-then-verify diagnostics summed over all runs (zero everywhere
    /// when screening is off).
    #[serde(default)]
    pub screening: crate::ScreeningStats,
    /// Runs whose guard band was co-optimized by a joint-mode search (zero
    /// for staged-default strategies; see
    /// [`JointGuardBand`](crate::search::JointGuardBand)).
    #[serde(default)]
    pub co_optimized_bands: usize,
}

impl BatchAggregate {
    /// Builds the aggregate from per-entry runs — public so services
    /// assembling a [`BatchReport`] from independently executed shards (for
    /// example a job queue dispatching one shard per device) produce the
    /// exact statistics [`PipelineBatch::run`] would.
    pub fn from_runs(runs: &[BatchRun]) -> Self {
        let devices = runs.len();
        let mut aggregate = BatchAggregate {
            devices,
            total_tests: 0,
            total_eliminated: 0,
            mean_compaction_ratio: 0.0,
            mean_cost_reduction: 0.0,
            deployed: ErrorBreakdown::default(),
            model_cache_hits: 0,
            model_cache_misses: 0,
            warm_start: crate::WarmStartStats::default(),
            screening: crate::ScreeningStats::default(),
            co_optimized_bands: 0,
        };
        for run in runs {
            let report = &run.report;
            aggregate.total_tests += report.kept().len() + report.eliminated().len();
            aggregate.total_eliminated += report.eliminated().len();
            aggregate.mean_compaction_ratio += report.compaction_ratio();
            aggregate.mean_cost_reduction += report.cost.reduction;
            aggregate.deployed.merge(&report.deployed);
            aggregate.model_cache_hits += report.compaction.cache.hits;
            aggregate.model_cache_misses += report.compaction.cache.misses;
            aggregate.warm_start.merge(&report.compaction.warm_start);
            aggregate.screening.merge(&report.compaction.screening);
            aggregate.co_optimized_bands +=
                usize::from(report.compaction.co_optimized_guard_band.is_some());
        }
        if devices > 0 {
            aggregate.mean_compaction_ratio /= devices as f64;
            aggregate.mean_cost_reduction /= devices as f64;
        }
        aggregate
    }
}

/// Everything one batch run produces: per-device reports plus aggregates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchReport {
    /// Per-entry outcomes, in the order the devices were added.
    pub runs: Vec<BatchRun>,
    /// Aggregate compaction/cost statistics.
    pub aggregate: BatchAggregate,
    /// Population-cache hits of the cache used for this run (lifetime
    /// counters when the cache is shared across batches).
    pub population_cache_hits: usize,
    /// Population-cache misses.
    pub population_cache_misses: usize,
}

impl BatchReport {
    /// The per-device pipeline reports, in entry order.
    pub fn reports(&self) -> impl Iterator<Item = &PipelineReport> {
        self.runs.iter().map(|run| &run.report)
    }

    /// Search-strategy name shared by every run of the batch, or `"mixed"`
    /// when per-run reports disagree (only possible for hand-assembled
    /// reports; [`PipelineBatch::run`] applies one strategy to all entries).
    pub fn search_strategy(&self) -> &str {
        let Some(first) = self.runs.first() else { return "none" };
        if self.runs.iter().all(|run| run.report.search == first.report.search) {
            &first.report.search
        } else {
            "mixed"
        }
    }

    /// Number of runs whose search budget was exhausted before the search
    /// finished on its own.
    pub fn budget_exhausted_runs(&self) -> usize {
        self.runs.iter().filter(|run| run.report.budget().exhausted).count()
    }

    /// One-paragraph human-readable summary of the batch.  Mirrors
    /// [`PipelineReport::summary`]: the search-strategy name is always named
    /// and budget exhaustion is called out explicitly with the number of
    /// truncated runs.
    pub fn summary(&self) -> String {
        let budget_note = match self.budget_exhausted_runs() {
            0 => String::new(),
            exhausted => format!(
                "; search budget exhausted in {exhausted} of {devices} runs",
                devices = self.aggregate.devices,
            ),
        };
        let band_note = match self.aggregate.co_optimized_bands {
            0 => String::new(),
            bands => format!(
                "; guard band co-optimized in {bands} of {devices} runs",
                devices = self.aggregate.devices,
            ),
        };
        format!(
            "{devices} devices [{search}]: eliminated {eliminated} of {total} tests \
             (mean compaction {ratio}, mean cost reduction {cost}; \
             aggregate yield loss {yl}, defect escape {de}; \
             model cache {hits} hits / {misses} misses){band_note}{budget_note}",
            devices = self.aggregate.devices,
            search = self.search_strategy(),
            eliminated = self.aggregate.total_eliminated,
            total = self.aggregate.total_tests,
            ratio = percent(self.aggregate.mean_compaction_ratio),
            cost = percent(self.aggregate.mean_cost_reduction),
            yl = percent(self.aggregate.deployed.yield_loss()),
            de = percent(self.aggregate.deployed.defect_escape()),
            hits = self.aggregate.model_cache_hits,
            misses = self.aggregate.model_cache_misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SyntheticDevice;

    fn batch(devices: &[SyntheticDevice]) -> PipelineBatch<'_> {
        let mut batch = PipelineBatch::new()
            .monte_carlo(MonteCarloConfig::new(200).with_seed(17))
            .test_instances(100)
            .compaction(CompactionConfig::paper_default().with_tolerance(0.05));
        for device in devices {
            batch = batch.device(device);
        }
        batch
    }

    #[test]
    fn sequential_deploy_knob_threads_through() {
        let devices = vec![SyntheticDevice::new(4, 1.8, 0.9)];
        let on = batch(&devices).run().unwrap();
        assert!(on.runs[0].report.sequential.is_some());
        let off = batch(&devices).sequential_deploy(false).run().unwrap();
        assert!(off.runs[0].report.sequential.is_none());
    }

    fn devices() -> Vec<SyntheticDevice> {
        (0..4).map(|i| SyntheticDevice::new(3 + i % 3, 1.8, 0.9)).collect()
    }

    #[test]
    fn empty_batches_are_rejected() {
        assert!(matches!(PipelineBatch::new().run(), Err(crate::CompactionError::EmptyBatch)));
    }

    #[test]
    fn entry_failures_propagate_and_cancel_the_remainder() {
        /// A device whose every simulation attempt fails.
        #[derive(Debug)]
        struct BrokenDevice;
        impl crate::device::DeviceUnderTest for BrokenDevice {
            fn name(&self) -> &str {
                "broken"
            }
            fn spec_names(&self) -> Vec<String> {
                vec!["x".to_string()]
            }
            fn spec_units(&self) -> Vec<String> {
                vec!["-".to_string()]
            }
            fn simulate_instance(
                &self,
                _rng: &mut rand::rngs::StdRng,
            ) -> std::result::Result<Vec<f64>, String> {
                Err("always fails".to_string())
            }
        }

        let broken = BrokenDevice;
        let good = SyntheticDevice::new(3, 1.8, 0.9);
        let result = PipelineBatch::new()
            .monte_carlo(MonteCarloConfig::new(50).with_seed(2))
            .test_instances(25)
            .device(&broken)
            .device(&good)
            .run();
        assert!(matches!(result, Err(crate::CompactionError::SimulationFailed { .. })));
    }

    #[test]
    fn shared_cache_distinguishes_devices_behind_one_label() {
        // Two *different* device models under the same label across two
        // batches: the device fingerprint keeps their populations apart.
        let a = SyntheticDevice::new(3, 1.8, 0.9);
        let b = SyntheticDevice::new(3, 1.2, 0.9);
        let cache = Arc::new(PopulationCache::new());
        let run = |device: &SyntheticDevice| {
            PipelineBatch::new()
                .monte_carlo(MonteCarloConfig::new(150).with_seed(9))
                .test_instances(80)
                .device_labelled("corner", device)
                .with_population_cache(Arc::clone(&cache))
                .run()
                .unwrap()
        };
        let first = run(&a);
        let second = run(&b);
        // The second batch must NOT reuse the first device's population.
        assert_eq!(second.population_cache_hits, 0);
        assert_eq!(second.population_cache_misses, 2);
        assert_ne!(first.runs[0].report.train_yield, second.runs[0].report.train_yield);
        // The same device under the same label does hit.
        let third = run(&a);
        assert_eq!(third.population_cache_hits, 1);
        // A device differing only in an *unobservable* parameter (the
        // correlation) is still distinguished, via the overridden
        // `DeviceUnderTest::fingerprint`.
        let c = SyntheticDevice::new(3, 1.8, 0.2);
        let fourth = run(&c);
        assert_eq!(fourth.population_cache_hits, 1);
        assert_eq!(fourth.population_cache_misses, 3);
    }

    #[test]
    fn duplicate_labels_are_rejected() {
        let a = SyntheticDevice::new(3, 1.8, 0.9);
        let b = SyntheticDevice::new(4, 1.5, 0.9);
        let result =
            PipelineBatch::new().device_labelled("corner", &a).device_labelled("corner", &b).run();
        assert!(matches!(
            result,
            Err(crate::CompactionError::DuplicateBatchLabel { ref label }) if label == "corner"
        ));
        // Auto-generated labels carry the entry index, so the same device
        // model added twice stays unambiguous.
        let ok = PipelineBatch::new()
            .monte_carlo(MonteCarloConfig::new(120).with_seed(3))
            .test_instances(60)
            .device(&a)
            .device(&a)
            .run()
            .unwrap();
        assert_eq!(ok.runs.len(), 2);
        assert_ne!(ok.runs[0].label, ok.runs[1].label);
    }

    #[test]
    fn batch_equals_independent_pipeline_runs() {
        let devices = devices();
        let report = batch(&devices).run().unwrap();
        assert_eq!(report.runs.len(), devices.len());
        for (run, device) in report.runs.iter().zip(devices.iter()) {
            let single = CompactionPipeline::for_device(device)
                .monte_carlo(MonteCarloConfig::new(200).with_seed(17))
                .test_instances(100)
                .compaction(CompactionConfig::paper_default().with_tolerance(0.05))
                .run()
                .unwrap();
            assert_eq!(run.report.compaction, single.compaction);
            assert_eq!(run.report.deployed, single.deployed);
            assert_eq!(run.report.cost, single.cost);
        }
    }

    #[test]
    fn worker_count_never_changes_the_outcome() {
        let devices = devices();
        let sequential = batch(&devices).run().unwrap();
        let parallel = batch(&devices).batch_threads(4).run().unwrap();
        assert_eq!(sequential.runs.len(), parallel.runs.len());
        for (a, b) in sequential.runs.iter().zip(parallel.runs.iter()) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.report.compaction, b.report.compaction);
            assert_eq!(a.report.deployed, b.report.deployed);
        }
        assert_eq!(sequential.aggregate, parallel.aggregate);
    }

    #[test]
    fn population_cache_hits_on_the_second_run() {
        let devices = devices();
        let batch = batch(&devices);
        let first = batch.run().unwrap();
        assert_eq!(first.population_cache_hits, 0);
        assert_eq!(first.population_cache_misses, devices.len());
        let second = batch.run().unwrap();
        assert_eq!(second.population_cache_hits, devices.len());
        assert_eq!(second.population_cache_misses, devices.len());
        // Cached populations reproduce the same reports.
        for (a, b) in first.runs.iter().zip(second.runs.iter()) {
            assert_eq!(a.report.compaction, b.report.compaction);
        }
    }

    #[test]
    fn seeded_entries_are_independent_populations() {
        let device = SyntheticDevice::new(4, 1.8, 0.9);
        let report = PipelineBatch::new()
            .monte_carlo(MonteCarloConfig::new(150))
            .test_instances(80)
            .compaction(CompactionConfig::paper_default().with_tolerance(0.05))
            .device_seeded(&device, 1)
            .device_seeded(&device, 2)
            .run()
            .unwrap();
        assert_eq!(report.runs.len(), 2);
        assert_ne!(report.runs[0].report.train_yield, report.runs[1].report.train_yield);
        assert!(report.runs[0].label.contains("@1"));
    }

    #[test]
    fn batch_carries_the_search_strategy_to_every_entry() {
        use crate::search::BeamSearch;

        let devices = devices();
        let report = batch(&devices).search(BeamSearch::new(1)).batch_threads(2).run().unwrap();
        for run in &report.runs {
            assert_eq!(run.report.search, "beam");
        }
        // A width-1 beam is the greedy loop: the batch equals the default.
        let default_report = batch(&devices).run().unwrap();
        for (a, b) in report.runs.iter().zip(default_report.runs.iter()) {
            assert_eq!(a.report.compaction, b.report.compaction);
        }
    }

    #[test]
    fn aggregate_sums_and_averages() {
        let devices = devices();
        let report = batch(&devices).run().unwrap();
        let total: usize = report.reports().map(|r| r.kept().len() + r.eliminated().len()).sum();
        assert_eq!(report.aggregate.total_tests, total);
        let mean: f64 =
            report.reports().map(|r| r.compaction_ratio()).sum::<f64>() / devices.len() as f64;
        assert!((report.aggregate.mean_compaction_ratio - mean).abs() < 1e-12);
        assert_eq!(
            report.aggregate.deployed.total,
            report.reports().map(|r| r.deployed.total).sum::<usize>()
        );
        assert!(report.summary().contains("4 devices"));
    }

    #[test]
    fn shared_caches_span_batches() {
        let devices = devices();
        let cache = Arc::new(PopulationCache::new());
        let first = batch(&devices).with_population_cache(Arc::clone(&cache)).run().unwrap();
        let second = batch(&devices).with_population_cache(Arc::clone(&cache)).run().unwrap();
        assert_eq!(first.population_cache_misses, devices.len());
        assert_eq!(second.population_cache_hits, devices.len());
    }
}
