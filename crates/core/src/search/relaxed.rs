//! Continuous relaxation of kept-set search: the objective seam behind the
//! population-based global strategies.
//!
//! The paper's search space is discrete — a specification is kept or
//! eliminated — which keeps gradient-free global optimizers (CMA-ES,
//! particle swarms) out of reach and forces the guard band to be tuned in a
//! separate, staged pass.  [`RelaxedObjective`] removes both restrictions:
//!
//! * every specification in the candidate pool gets a continuous
//!   *membership weight* in `[0, 1]` (≥ 0.5 keeps the test, < 0.5
//!   eliminates it), decoded deterministically with a top-k repair so the
//!   kept set is always valid (never empty, never over the
//!   [`SearchContext::max_eliminated`] cap),
//! * with a [`JointGuardBand`] mode attached, one extra coordinate maps
//!   onto a quantized guard-band fraction, and candidates are scored with
//!   the guard-banded breakdown of their *own* band through
//!   [`CandidateEvaluator::evaluate_banded_kept_sets`] — the band is
//!   co-optimized with the kept set instead of staged after it,
//! * decoding is memoized on the canonical (kept set, band) pair, so the
//!   many nearby points a population optimizer proposes collapse onto the
//!   evaluator's model cache instead of re-training.
//!
//! On top of the seam ship two seeded, budget-aware, thread-count-invariant
//! strategies, [`CmaEs`] and [`ParticleSwarm`].  Both run the same greedy
//! incumbent phase as [`GeneticSearch`](super::GeneticSearch) first and pin
//! their elitism to it, so they never finish with a worse frontier than
//! [`GreedyBackward`](super::GreedyBackward) under the same
//! [`SearchBudget`](super::SearchBudget).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use super::{
    sequential_incumbent, BandedSetKey, CandidateEvaluator, CandidateVerdict, FrontierProvenance,
    SearchContext, SearchOutcome, SearchStrategy,
};
use crate::costmodel::TestCostModel;
use crate::guardband::GuardBandConfig;
use crate::{CompactionError, Result};

/// Joint guard-band co-optimization: appends the guard-band fraction as one
/// extra search coordinate of a [`RelaxedObjective`].
///
/// The coordinate lives in `[0, 1]` and decodes onto a quantized fraction
/// grid over `[0, max_fraction]` (`steps` cells, so nearby points share
/// model-cache entries).  The grid cell containing the run's configured
/// fraction snaps onto it exactly, which keeps the greedy incumbent — always
/// trained at the configured band — a guaranteed cache hit.
///
/// Joint candidates are scored with their own band's guard-banded breakdown
/// and pay a *retest penalty*: every device the band sends to retest costs
/// the full suite again, so the fitness of a candidate is its kept-set cost
/// saving minus `guard-band fraction × full-suite cost`.  Feasibility is
/// additionally pinned to the incumbent's achieved error (not just the
/// tolerance), so a co-optimized band never ships a worse breakdown than
/// the staged default.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JointGuardBand {
    /// Upper end of the searched fraction range (the decoder clamps into
    /// `[0, max_fraction]`).
    pub max_fraction: f64,
    /// Number of quantization cells over the range (clamped to at least 1).
    pub steps: usize,
}

impl JointGuardBand {
    /// The default joint mode: fractions up to 20 % on a 32-cell grid.
    pub fn paper_default() -> Self {
        JointGuardBand { max_fraction: 0.2, steps: 32 }
    }

    /// A joint mode over `[0, max_fraction]` with the default grid.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::InvalidConfig`] unless
    /// `0 < max_fraction < 0.5` (the trainable band range).
    pub fn new(max_fraction: f64) -> Result<Self> {
        if !(max_fraction > 0.0 && max_fraction < 0.5) {
            return Err(CompactionError::InvalidConfig {
                parameter: "joint_guard_band_max_fraction",
                value: max_fraction,
            });
        }
        Ok(JointGuardBand { max_fraction, ..JointGuardBand::paper_default() })
    }

    /// Decodes a unit coordinate onto the quantized fraction grid, snapping
    /// the cell containing `default` onto it exactly.
    fn quantize(&self, unit: f64, default: f64) -> f64 {
        let steps = self.steps.max(1) as f64;
        let fraction = (unit.clamp(0.0, 1.0) * steps).round() / steps * self.max_fraction;
        let half_cell = self.max_fraction / (2.0 * steps);
        if (fraction - default).abs() <= half_cell {
            default
        } else {
            fraction
        }
    }
}

impl Default for JointGuardBand {
    fn default() -> Self {
        JointGuardBand::paper_default()
    }
}

/// One decoded point of the relaxation: a valid discrete kept set plus the
/// guard-band fraction it is scored with (joint mode only).
#[derive(Debug, Clone, PartialEq)]
pub struct RelaxedCandidate {
    /// Eliminated pool members, in pool (examination-preference) order.
    pub eliminated: Vec<usize>,
    /// The implied kept set, ascending — never empty, never over the
    /// elimination cap (the decoder repairs both).
    pub kept: Vec<usize>,
    /// The quantized guard-band fraction of a joint-mode point; `None`
    /// without a [`JointGuardBand`] (the run's configured band applies).
    pub guard_band: Option<f64>,
}

/// What scoring one decoded candidate produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RelaxedScore {
    /// The candidate meets the error ceiling; higher fitness is better
    /// (kept-set cost saving, minus the retest penalty in joint mode).
    Feasible {
        /// Cost saving of the candidate (joint mode subtracts the retest
        /// penalty `guard-band fraction × full-suite cost`).
        fitness: f64,
        /// Held-out prediction error of the candidate's model.
        error: f64,
    },
    /// Over the error ceiling, or the backend could not train the set.
    Infeasible,
    /// The evaluator's [`SearchBudget`](super::SearchBudget) is spent:
    /// strategies must stop and return their best committed frontier.
    Exhausted,
}

/// The continuous-relaxation objective: maps membership-weight vectors onto
/// memoized discrete kept-set evaluations.
///
/// Built per search from the evaluator and context (see the
/// [module docs](self)); strategies sample points in `[0, 1]^dims`, call
/// [`RelaxedObjective::score_batch`] and maximize the returned fitness.
/// Decoding and scoring are deterministic, all model training goes through
/// the evaluator's deterministic batch core, and scores are memoized per
/// (kept set, band) — so optimizers stay seed-deterministic and
/// thread-count-invariant for free.
#[derive(Debug)]
pub struct RelaxedObjective<'e, 'a> {
    eval: &'e CandidateEvaluator<'a>,
    pool: Vec<usize>,
    /// Whether the pool covers every specification (only then can a point
    /// decode to an empty kept set before repair).
    covers_all: bool,
    /// Feasibility ceiling on the held-out prediction error (the context
    /// tolerance, optionally tightened to the incumbent's error).
    error_ceiling: f64,
    max_eliminated: Option<usize>,
    cost_model: TestCostModel,
    full_cost: f64,
    joint: Option<JointGuardBand>,
    warm_parent: Option<Vec<usize>>,
    memo: HashMap<BandedSetKey, RelaxedScore>,
}

impl<'e, 'a> RelaxedObjective<'e, 'a> {
    /// An objective over the context's candidate pool, tolerance and
    /// elimination cap, without a joint guard band.
    pub fn new(eval: &'e CandidateEvaluator<'a>, ctx: &SearchContext<'_>) -> Self {
        let pool = ctx.candidate_pool();
        let covers_all = pool.len() == eval.spec_count();
        RelaxedObjective {
            eval,
            pool,
            covers_all,
            error_ceiling: ctx.tolerance(),
            max_eliminated: ctx.max_eliminated(),
            cost_model: ctx.cost_model().clone(),
            full_cost: ctx.cost_model().full_cost(),
            joint: None,
            warm_parent: None,
            memo: HashMap::new(),
        }
    }

    /// Appends the guard-band fraction as an extra search coordinate (see
    /// [`JointGuardBand`]).
    pub fn with_joint_guard_band(mut self, joint: JointGuardBand) -> Self {
        self.joint = Some(joint);
        self
    }

    /// Tightens the feasibility ceiling (it never loosens past the context
    /// tolerance): joint-mode strategies pin it to the incumbent's achieved
    /// error so a co-optimized band never ships a worse breakdown.
    pub fn with_error_ceiling(mut self, ceiling: f64) -> Self {
        self.error_ceiling = self.error_ceiling.min(ceiling);
        self
    }

    /// Names the kept set whose cached model warm-starts the scored
    /// trainings (typically the greedy incumbent's kept set).
    pub fn with_warm_parent(mut self, kept: Vec<usize>) -> Self {
        self.warm_parent = Some(kept);
        self
    }

    /// Dimensionality of the search space: one membership weight per pool
    /// candidate, plus the guard-band coordinate in joint mode.
    pub fn dims(&self) -> usize {
        self.pool.len() + usize::from(self.joint.is_some())
    }

    /// The candidate pool (the resolved order with duplicates removed).
    pub fn pool(&self) -> &[usize] {
        &self.pool
    }

    /// Embeds a committed eliminated set as a search point: eliminated
    /// members sit at 0.25, kept members at 0.75, and the joint coordinate
    /// (when present) at the run's configured fraction.
    pub fn point_of(&self, eliminated: &[usize]) -> Vec<f64> {
        let mut point: Vec<f64> = self
            .pool
            .iter()
            .map(|candidate| if eliminated.contains(candidate) { 0.25 } else { 0.75 })
            .collect();
        if let Some(joint) = &self.joint {
            let default = self.eval.guard_band().guard_band_fraction;
            point.push((default / self.max_fraction_of(joint)).clamp(0.0, 1.0));
        }
        point
    }

    fn max_fraction_of(&self, joint: &JointGuardBand) -> f64 {
        if joint.max_fraction > 0.0 {
            joint.max_fraction
        } else {
            1.0
        }
    }

    /// Decodes one point into a valid discrete candidate: weights are
    /// clamped into `[0, 1]`, weights below 0.5 eliminate their test, and
    /// two repairs keep the result valid — over the elimination cap only
    /// the lowest-weight (most confidently eliminated) candidates stay
    /// eliminated, and a fully-eliminated suite re-keeps its highest-weight
    /// member.
    ///
    /// # Panics
    ///
    /// Panics if the point's length is not [`RelaxedObjective::dims`].
    pub fn decode(&self, point: &[f64]) -> RelaxedCandidate {
        assert_eq!(point.len(), self.dims(), "point dimensionality mismatch");
        let weights: Vec<f64> =
            point[..self.pool.len()].iter().map(|w| w.clamp(0.0, 1.0)).collect();
        let mut positions: Vec<usize> =
            (0..self.pool.len()).filter(|&p| weights[p] < 0.5).collect();
        if let Some(max) = self.max_eliminated {
            if positions.len() > max {
                // Top-k repair: keep the k strongest elimination signals.
                positions.sort_by(|&a, &b| {
                    weights[a]
                        .partial_cmp(&weights[b])
                        .expect("clamped weights are comparable")
                        .then(a.cmp(&b))
                });
                positions.truncate(max);
                positions.sort_unstable();
            }
        }
        if self.covers_all && !self.pool.is_empty() && positions.len() == self.pool.len() {
            // Never eliminate the last test: re-keep the member the point
            // holds onto hardest (first maximum wins, deterministically).
            let mut rekept = 0;
            for p in 1..self.pool.len() {
                if weights[p] > weights[rekept] {
                    rekept = p;
                }
            }
            positions.retain(|&p| p != rekept);
        }
        let eliminated: Vec<usize> = positions.iter().map(|&p| self.pool[p]).collect();
        let kept: Vec<usize> =
            (0..self.eval.spec_count()).filter(|c| !eliminated.contains(c)).collect();
        let guard_band = self.joint.map(|joint| {
            joint.quantize(point[self.pool.len()], self.eval.guard_band().guard_band_fraction)
        });
        RelaxedCandidate { eliminated, kept, guard_band }
    }

    /// Scores the greedy incumbent at the run's configured band and seeds
    /// the memo with it — the elitism anchor of the population strategies.
    /// Costs no training: the incumbent's model is already cached (or the
    /// incumbent is the complete suite, whose error is zero by
    /// construction).
    ///
    /// # Errors
    ///
    /// Propagates cost-model errors.
    pub fn incumbent_score(
        &mut self,
        incumbent: &SearchOutcome,
    ) -> Result<(RelaxedCandidate, RelaxedScore)> {
        let kept: Vec<usize> =
            (0..self.eval.spec_count()).filter(|c| !incumbent.eliminated.contains(c)).collect();
        let mut fitness = self.full_cost - self.cost_model.cost_of(&kept)?;
        let mut error = 0.0;
        if let Some(entry) = self.eval.cache.peek(&kept, self.eval.guard_band()) {
            error = entry.1.prediction_error();
            if self.joint.is_some() {
                fitness -= entry.1.guard_band_fraction() * self.full_cost;
            }
        }
        let candidate =
            RelaxedCandidate { eliminated: incumbent.eliminated.clone(), kept, guard_band: None };
        let score = RelaxedScore::Feasible { fitness, error };
        self.memo.insert(self.memo_key(&candidate), score);
        Ok((candidate, score))
    }

    /// Decodes and scores a batch of points: distinct unmemoized
    /// (kept set, band) pairs are evaluated as one deterministically
    /// composed evaluator batch (speculative threads welcome), everything
    /// else is served from the memo.  An [`RelaxedScore::Exhausted`] entry
    /// means the budget is spent — stop searching.
    ///
    /// # Errors
    ///
    /// Propagates configuration, data and cost-model errors; per-candidate
    /// training failures surface as [`RelaxedScore::Infeasible`].
    pub fn score_batch(
        &mut self,
        points: &[Vec<f64>],
    ) -> Result<Vec<(RelaxedCandidate, RelaxedScore)>> {
        let decoded: Vec<RelaxedCandidate> = points.iter().map(|p| self.decode(p)).collect();
        let mut job_keys: Vec<BandedSetKey> = Vec::new();
        let mut jobs: Vec<(Vec<usize>, Option<GuardBandConfig>)> = Vec::new();
        for candidate in &decoded {
            let key = self.memo_key(candidate);
            if self.memo.contains_key(&key) || job_keys.contains(&key) {
                continue;
            }
            job_keys.push(key);
            jobs.push((candidate.kept.clone(), self.band_config(candidate)?));
        }
        let verdicts = self.eval.evaluate_banded_kept_sets(&jobs, self.warm_parent.as_deref())?;
        for ((key, (kept, _)), verdict) in job_keys.into_iter().zip(jobs.iter()).zip(verdicts) {
            let score = match verdict {
                CandidateVerdict::Scored(breakdown) => {
                    let error = breakdown.prediction_error();
                    if error <= self.error_ceiling {
                        let mut fitness = self.full_cost - self.cost_model.cost_of(kept)?;
                        if self.joint.is_some() {
                            fitness -= breakdown.guard_band_fraction() * self.full_cost;
                        }
                        RelaxedScore::Feasible { fitness, error }
                    } else {
                        RelaxedScore::Infeasible
                    }
                }
                CandidateVerdict::Exhausted => RelaxedScore::Exhausted,
                // LastTest is unreachable (the decoder repairs empty kept
                // sets); Untrainable and Screened both mean "no exact
                // breakdown for this candidate".
                _ => RelaxedScore::Infeasible,
            };
            self.memo.insert(key, score);
        }
        Ok(decoded
            .into_iter()
            .map(|candidate| {
                let score =
                    *self.memo.get(&self.memo_key(&candidate)).expect("batch scored every key");
                (candidate, score)
            })
            .collect())
    }

    /// Canonical memo key of a candidate: its (already ascending) kept set
    /// plus the bit pattern of the band it is scored with.
    fn memo_key(&self, candidate: &RelaxedCandidate) -> BandedSetKey {
        let fraction = candidate.guard_band.unwrap_or(self.eval.guard_band().guard_band_fraction);
        (candidate.kept.clone(), fraction.to_bits())
    }

    /// The per-candidate band override handed to the evaluator (`None` for
    /// non-joint candidates).
    fn band_config(&self, candidate: &RelaxedCandidate) -> Result<Option<GuardBandConfig>> {
        candidate
            .guard_band
            .map(|fraction| self.eval.guard_band().with_guard_band(fraction))
            .transpose()
    }
}

/// One standard normal draw (Box–Muller over the vendored uniform source);
/// every draw happens on the search thread, keeping strategies
/// thread-count-invariant.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]: never ln(0)
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Ranking fitness of a score: feasible candidates by fitness, everything
/// else below every feasible candidate.
fn ranking_fitness(score: &RelaxedScore) -> f64 {
    match score {
        RelaxedScore::Feasible { fitness, .. } => *fitness,
        _ => f64::NEG_INFINITY,
    }
}

/// Shared epilogue of the population strategies: assemble the outcome from
/// the elitism state.
fn population_outcome(
    incumbent: SearchOutcome,
    best: Option<(RelaxedCandidate, f64)>,
    exhausted: bool,
) -> SearchOutcome {
    match best {
        Some((candidate, _)) => {
            let provenance = if exhausted {
                FrontierProvenance::Truncated
            } else {
                FrontierProvenance::Completed
            };
            SearchOutcome {
                eliminated: candidate.eliminated,
                steps: incumbent.steps,
                provenance,
                guard_band: candidate.guard_band,
            }
        }
        None => SearchOutcome {
            eliminated: incumbent.eliminated,
            steps: incumbent.steps,
            provenance: if exhausted {
                FrontierProvenance::Truncated
            } else {
                FrontierProvenance::Incumbent
            },
            guard_band: None,
        },
    }
}

/// CMA-ES over the continuous relaxation: diagonal-covariance evolution
/// strategy with rank-μ updates and cumulative step-size adaptation —
/// ample for the ~10–30-dimensional spec spaces of this crate.
///
/// Phase 1 runs the same sequential greedy incumbent as
/// [`GeneticSearch`](super::GeneticSearch) under the same budget; phase 2
/// samples `population` points per generation around the adapted mean
/// (initialized at the incumbent's embedding), scores each generation as
/// one deterministic evaluator batch, and keeps the best feasible
/// candidate ever seen.  The incumbent anchors the elitism, so the
/// strategy **never finishes worse than greedy under the same budget**;
/// with no improvement the outcome carries
/// [`FrontierProvenance::Incumbent`].
///
/// With [`CmaEs::with_joint_guard_band`] the guard-band fraction joins the
/// search (see [`JointGuardBand`]) and the outcome reports the
/// co-optimized fraction through [`SearchOutcome::guard_band`].
///
/// Determinism mirrors the other population strategies: every random draw
/// happens on the search thread and batches are deterministically
/// composed, so results are byte-identical for a fixed seed across any
/// speculative thread count, budgeted or not.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmaEs {
    /// RNG seed driving the sampled generations.
    pub seed: u64,
    /// Samples per generation (λ, clamped to at least 4).
    pub population: usize,
    /// Number of sampled generations (`0` skips straight to the greedy
    /// incumbent).
    pub generations: usize,
    /// Initial step size in the unit cube (clamped to `[0.01, 1]`).
    pub sigma: f64,
    /// Optional joint guard-band co-optimization.
    pub joint_guard_band: Option<JointGuardBand>,
}

impl CmaEs {
    /// CMA-ES with the default population (12), generation count (16) and
    /// step size (0.3).
    pub fn new(seed: u64) -> Self {
        CmaEs { seed, population: 12, generations: 16, sigma: 0.3, joint_guard_band: None }
    }

    /// Enables joint guard-band co-optimization.
    pub fn with_joint_guard_band(mut self, joint: JointGuardBand) -> Self {
        self.joint_guard_band = Some(joint);
        self
    }
}

impl SearchStrategy for CmaEs {
    fn name(&self) -> &str {
        "cma-es"
    }

    fn search(
        &self,
        eval: &mut CandidateEvaluator<'_>,
        ctx: &SearchContext<'_>,
    ) -> Result<SearchOutcome> {
        // Phase 1: the greedy incumbent, under the same budget.  Its final
        // kept set's model is cached, seeding the sampled trainings.
        let incumbent = sequential_incumbent(eval, ctx)?;
        let pool = ctx.candidate_pool();
        if eval.budget_exhausted() || pool.is_empty() || self.generations == 0 {
            return Ok(incumbent);
        }
        let eval: &CandidateEvaluator<'_> = eval;
        let mut objective = RelaxedObjective::new(eval, ctx);
        if let Some(joint) = self.joint_guard_band {
            objective = objective.with_joint_guard_band(joint);
        }
        if !incumbent.eliminated.is_empty() {
            let kept: Vec<usize> =
                (0..eval.spec_count()).filter(|c| !incumbent.eliminated.contains(c)).collect();
            objective = objective.with_warm_parent(kept);
        }
        let (_, incumbent_score) = objective.incumbent_score(&incumbent)?;
        let RelaxedScore::Feasible { fitness: incumbent_fitness, error: incumbent_error } =
            incumbent_score
        else {
            unreachable!("the incumbent always scores feasible");
        };
        if self.joint_guard_band.is_some() {
            // A co-optimized band must never ship a worse breakdown than
            // the staged default.
            objective = objective.with_error_ceiling(incumbent_error);
        }

        let n = objective.dims();
        let lambda = self.population.max(4);
        let mu = lambda / 2;
        let raw: Vec<f64> =
            (0..mu).map(|i| (mu as f64 + 0.5).ln() - ((i + 1) as f64).ln()).collect();
        let total: f64 = raw.iter().sum();
        let weights: Vec<f64> = raw.iter().map(|w| w / total).collect();
        let mu_eff = 1.0 / weights.iter().map(|w| w * w).sum::<f64>();
        let dim = n as f64;
        let c_sigma = (mu_eff + 2.0) / (dim + mu_eff + 5.0);
        let d_sigma = 1.0 + c_sigma + 2.0 * ((mu_eff - 1.0) / (dim + 1.0)).max(0.0).sqrt();
        let c_mu = (2.0 * mu_eff / ((dim + 2.0) * (dim + 2.0) + mu_eff)).min(1.0);
        let chi_n = dim.sqrt() * (1.0 - 1.0 / (4.0 * dim) + 1.0 / (21.0 * dim * dim));

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut mean = objective.point_of(&incumbent.eliminated);
        let mut sigma = self.sigma.clamp(0.01, 1.0);
        let mut diag = vec![1.0f64; n];
        let mut p_sigma = vec![0.0f64; n];

        let mut best_fitness = incumbent_fitness;
        let mut best: Option<(RelaxedCandidate, f64)> = None;
        let mut exhausted = false;

        'generations: for _ in 0..self.generations {
            // Sample λ points around the mean — all draws on this thread.
            let mut zs: Vec<Vec<f64>> = Vec::with_capacity(lambda);
            let mut points: Vec<Vec<f64>> = Vec::with_capacity(lambda);
            for _ in 0..lambda {
                let z: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
                let x: Vec<f64> = (0..n).map(|i| mean[i] + sigma * diag[i].sqrt() * z[i]).collect();
                zs.push(z);
                points.push(x);
            }
            let scored = objective.score_batch(&points)?;
            // Elitism: adopt strictly better feasible candidates, in sample
            // order.
            for (candidate, score) in &scored {
                match score {
                    RelaxedScore::Exhausted => {
                        exhausted = true;
                    }
                    RelaxedScore::Feasible { fitness, .. } if *fitness > best_fitness => {
                        best_fitness = *fitness;
                        eval.notify_frontier(&candidate.eliminated);
                        best = Some((candidate.clone(), *fitness));
                    }
                    _ => {}
                }
            }
            if exhausted {
                break 'generations;
            }
            // Rank-μ update on the top-μ samples (ties break by sample
            // index, keeping the update deterministic).
            let mut ranked: Vec<usize> = (0..lambda).collect();
            ranked.sort_by(|&a, &b| {
                ranking_fitness(&scored[b].1)
                    .partial_cmp(&ranking_fitness(&scored[a].1))
                    .expect("ranking fitness is never NaN")
                    .then(a.cmp(&b))
            });
            let selected = &ranked[..mu];
            let mut z_mean = vec![0.0f64; n];
            let mut new_mean = vec![0.0f64; n];
            for (weight, &sample) in weights.iter().zip(selected) {
                for i in 0..n {
                    z_mean[i] += weight * zs[sample][i];
                    new_mean[i] += weight * points[sample][i];
                }
            }
            mean = new_mean;
            for (i, p) in p_sigma.iter_mut().enumerate() {
                *p = (1.0 - c_sigma) * *p + (c_sigma * (2.0 - c_sigma) * mu_eff).sqrt() * z_mean[i];
            }
            let p_norm = p_sigma.iter().map(|p| p * p).sum::<f64>().sqrt();
            sigma *= ((c_sigma / d_sigma) * (p_norm / chi_n - 1.0)).exp();
            sigma = sigma.clamp(1e-4, 1.0);
            for (i, c) in diag.iter_mut().enumerate() {
                let rank_mu: f64 =
                    weights.iter().zip(selected).map(|(w, &s)| w * zs[s][i] * zs[s][i]).sum();
                *c = (*c * ((1.0 - c_mu) + c_mu * rank_mu)).clamp(1e-6, 1e2);
            }
        }
        Ok(population_outcome(incumbent, best, exhausted || eval.budget_exhausted()))
    }
}

/// Particle-swarm optimization over the continuous relaxation: `particles`
/// positions in the unit cube, pulled toward their personal best and the
/// swarm's global best each iteration.
///
/// Shares the whole contract of [`CmaEs`]: greedy incumbent first (same
/// budget), elitism anchored to it (**never worse than greedy under the
/// same budget**), optional [`JointGuardBand`] co-optimization, and
/// seed-deterministic, thread-count-invariant results — every random draw
/// happens on the search thread and each iteration scores one
/// deterministically composed batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParticleSwarm {
    /// RNG seed driving initialization and the velocity updates.
    pub seed: u64,
    /// Swarm size (clamped to at least 2; particle 0 starts at the
    /// incumbent's embedding).
    pub particles: usize,
    /// Velocity/position update rounds after the initial scoring (`0`
    /// scores only the initial swarm).
    pub iterations: usize,
    /// Inertia weight of the velocity update (clamped to `[0, 1]`).
    pub inertia: f64,
    /// Optional joint guard-band co-optimization.
    pub joint_guard_band: Option<JointGuardBand>,
}

impl ParticleSwarm {
    /// A swarm with the default size (12), iteration count (16) and
    /// inertia (0.7).
    pub fn new(seed: u64) -> Self {
        ParticleSwarm { seed, particles: 12, iterations: 16, inertia: 0.7, joint_guard_band: None }
    }

    /// Enables joint guard-band co-optimization.
    pub fn with_joint_guard_band(mut self, joint: JointGuardBand) -> Self {
        self.joint_guard_band = Some(joint);
        self
    }
}

/// Cognitive and social acceleration of the velocity update.
const SWARM_ACCELERATION: f64 = 1.5;
/// Velocity clamp, keeping particles from tunnelling across the cube.
const SWARM_MAX_VELOCITY: f64 = 0.5;

impl SearchStrategy for ParticleSwarm {
    fn name(&self) -> &str {
        "particle-swarm"
    }

    fn search(
        &self,
        eval: &mut CandidateEvaluator<'_>,
        ctx: &SearchContext<'_>,
    ) -> Result<SearchOutcome> {
        let incumbent = sequential_incumbent(eval, ctx)?;
        let pool = ctx.candidate_pool();
        if eval.budget_exhausted() || pool.is_empty() {
            return Ok(incumbent);
        }
        let eval: &CandidateEvaluator<'_> = eval;
        let mut objective = RelaxedObjective::new(eval, ctx);
        if let Some(joint) = self.joint_guard_band {
            objective = objective.with_joint_guard_band(joint);
        }
        if !incumbent.eliminated.is_empty() {
            let kept: Vec<usize> =
                (0..eval.spec_count()).filter(|c| !incumbent.eliminated.contains(c)).collect();
            objective = objective.with_warm_parent(kept);
        }
        let (_, incumbent_score) = objective.incumbent_score(&incumbent)?;
        let RelaxedScore::Feasible { fitness: incumbent_fitness, error: incumbent_error } =
            incumbent_score
        else {
            unreachable!("the incumbent always scores feasible");
        };
        if self.joint_guard_band.is_some() {
            objective = objective.with_error_ceiling(incumbent_error);
        }

        let n = objective.dims();
        let swarm = self.particles.max(2);
        let inertia = self.inertia.clamp(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let incumbent_point = objective.point_of(&incumbent.eliminated);
        let mut positions: Vec<Vec<f64>> = (0..swarm)
            .map(|particle| {
                if particle == 0 {
                    incumbent_point.clone()
                } else {
                    (0..n).map(|_| rng.gen::<f64>()).collect()
                }
            })
            .collect();
        let mut velocities: Vec<Vec<f64>> =
            (0..swarm).map(|_| (0..n).map(|_| rng.gen_range(-0.25..=0.25)).collect()).collect();
        let mut personal_best = positions.clone();
        let mut personal_fitness = vec![f64::NEG_INFINITY; swarm];
        // The global best starts at the incumbent: the swarm can only
        // improve on it.
        let mut global_position = incumbent_point;
        let mut global_fitness = incumbent_fitness;
        let mut best: Option<(RelaxedCandidate, f64)> = None;
        let mut exhausted = false;

        'iterations: for round in 0..=self.iterations {
            if round > 0 {
                for particle in 0..swarm {
                    for i in 0..n {
                        let r1: f64 = rng.gen();
                        let r2: f64 = rng.gen();
                        let velocity = inertia * velocities[particle][i]
                            + SWARM_ACCELERATION
                                * r1
                                * (personal_best[particle][i] - positions[particle][i])
                            + SWARM_ACCELERATION
                                * r2
                                * (global_position[i] - positions[particle][i]);
                        velocities[particle][i] =
                            velocity.clamp(-SWARM_MAX_VELOCITY, SWARM_MAX_VELOCITY);
                        positions[particle][i] =
                            (positions[particle][i] + velocities[particle][i]).clamp(0.0, 1.0);
                    }
                }
            }
            let scored = objective.score_batch(&positions)?;
            for (particle, (candidate, score)) in scored.iter().enumerate() {
                match score {
                    RelaxedScore::Exhausted => {
                        exhausted = true;
                    }
                    RelaxedScore::Feasible { fitness, .. } => {
                        if *fitness > personal_fitness[particle] {
                            personal_fitness[particle] = *fitness;
                            personal_best[particle] = positions[particle].clone();
                        }
                        if *fitness > global_fitness {
                            global_fitness = *fitness;
                            global_position = positions[particle].clone();
                            eval.notify_frontier(&candidate.eliminated);
                            best = Some((candidate.clone(), *fitness));
                        }
                    }
                    RelaxedScore::Infeasible => {}
                }
            }
            if exhausted {
                break 'iterations;
            }
        }
        Ok(population_outcome(incumbent, best, exhausted || eval.budget_exhausted()))
    }
}

// Tests for the decoder/quantizer live here; the strategy contracts
// (determinism, incumbent pinning, joint-band plumbing) are covered by the
// parent module's tests and the crate-level `global_search` suite.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::GridBackend;
    use crate::device::SyntheticDevice;
    use crate::montecarlo::{generate_train_test, MonteCarloConfig};
    use crate::search::{ScreeningConfig, SearchBudget};

    fn population() -> (crate::dataset::MeasurementSet, crate::dataset::MeasurementSet) {
        let device = SyntheticDevice::new(5, 1.8, 0.92);
        generate_train_test(&device, &MonteCarloConfig::new(300).with_seed(31), 150).unwrap()
    }

    fn evaluator<'a>(
        train: &'a crate::dataset::MeasurementSet,
        test: &'a crate::dataset::MeasurementSet,
        backend: &'a GridBackend,
    ) -> CandidateEvaluator<'a> {
        CandidateEvaluator::with_settings(
            train,
            test,
            backend,
            crate::guardband::GuardBandConfig::paper_default(),
            1,
            true,
            SearchBudget::unlimited(),
            ScreeningConfig::default(),
            0.4,
        )
    }

    #[test]
    fn decode_thresholds_and_orders_eliminations() {
        let (train, test) = population();
        let backend = GridBackend::default();
        let eval = evaluator(&train, &test, &backend);
        let order: Vec<usize> = vec![4, 2, 0, 1, 3];
        let cost = TestCostModel::uniform(5);
        let ctx = SearchContext::new(&order, 0.4, None, &cost);
        let objective = RelaxedObjective::new(&eval, &ctx);
        assert_eq!(objective.dims(), 5);
        let candidate = objective.decode(&[0.2, 0.7, 0.49, 0.51, 0.5]);
        // Pool order is the examination order: 4 and 0 fall below 0.5.
        assert_eq!(candidate.eliminated, vec![4, 0]);
        assert_eq!(candidate.kept, vec![1, 2, 3]);
        assert_eq!(candidate.guard_band, None);
        // Out-of-range coordinates clamp instead of panicking.
        let clamped = objective.decode(&[-3.0, 9.0, 1.0, 1.0, 1.0]);
        assert_eq!(clamped.eliminated, vec![4]);
    }

    #[test]
    fn decode_repairs_empty_and_oversized_eliminations() {
        let (train, test) = population();
        let backend = GridBackend::default();
        let eval = evaluator(&train, &test, &backend);
        let order: Vec<usize> = vec![0, 1, 2, 3, 4];
        let cost = TestCostModel::uniform(5);
        // A fully-eliminated point re-keeps its highest-weight member.
        let ctx = SearchContext::new(&order, 0.4, None, &cost);
        let objective = RelaxedObjective::new(&eval, &ctx);
        let repaired = objective.decode(&[0.1, 0.3, 0.2, 0.1, 0.1]);
        assert_eq!(repaired.kept, vec![1]);
        assert_eq!(repaired.eliminated, vec![0, 2, 3, 4]);
        // An over-cap point keeps only the lowest-weight eliminations.
        let capped_ctx = SearchContext::new(&order, 0.4, Some(2), &cost);
        let capped = RelaxedObjective::new(&eval, &capped_ctx);
        let candidate = capped.decode(&[0.4, 0.1, 0.3, 0.6, 0.2]);
        assert_eq!(candidate.eliminated, vec![1, 4]);
        assert_eq!(candidate.kept, vec![0, 2, 3]);
    }

    #[test]
    fn joint_band_coordinate_quantizes_and_snaps_to_the_default() {
        let (train, test) = population();
        let backend = GridBackend::default();
        let eval = evaluator(&train, &test, &backend);
        let order: Vec<usize> = vec![0, 1, 2];
        let cost = TestCostModel::uniform(5);
        let ctx = SearchContext::new(&order, 0.4, None, &cost);
        let objective = RelaxedObjective::new(&eval, &ctx)
            .with_joint_guard_band(JointGuardBand::paper_default());
        assert_eq!(objective.dims(), 4);
        // The incumbent embedding decodes back onto the configured band.
        let incumbent_point = objective.point_of(&[1]);
        let incumbent = objective.decode(&incumbent_point);
        assert_eq!(incumbent.eliminated, vec![1]);
        assert_eq!(incumbent.guard_band, Some(0.05));
        // Other coordinates land on the quantization grid.
        let wide = objective.decode(&[0.75, 0.25, 0.75, 1.0]);
        assert_eq!(wide.guard_band, Some(0.2));
        let narrow = objective.decode(&[0.75, 0.25, 0.75, 0.0]);
        assert_eq!(narrow.guard_band, Some(0.0));
        // Nearby coordinates share a grid cell (and so a cache key).
        let a = objective.decode(&[0.75, 0.25, 0.75, 0.51]);
        let b = objective.decode(&[0.75, 0.25, 0.75, 0.515]);
        assert_eq!(a.guard_band, b.guard_band);
    }

    #[test]
    fn joint_band_limits_are_validated() {
        assert!(JointGuardBand::new(0.3).is_ok());
        assert!(JointGuardBand::new(0.0).is_err());
        assert!(JointGuardBand::new(0.5).is_err());
        assert!(JointGuardBand::new(f64::NAN).is_err());
    }

    #[test]
    fn score_batch_memoizes_repeated_points() {
        let (train, test) = population();
        let backend = GridBackend::default();
        let eval = evaluator(&train, &test, &backend);
        let order: Vec<usize> = vec![0, 1, 2, 3];
        let cost = TestCostModel::uniform(5);
        let ctx = SearchContext::new(&order, 0.4, None, &cost);
        let mut objective = RelaxedObjective::new(&eval, &ctx);
        let point = vec![0.2, 0.8, 0.8, 0.8];
        let first = objective.score_batch(&[point.clone(), point.clone()]).unwrap();
        assert_eq!(first[0], first[1]);
        let misses = eval.cache_stats().misses;
        // The same point again: memo hit, no further cache traffic.
        let again = objective.score_batch(&[point]).unwrap();
        assert_eq!(again[0], first[0]);
        assert_eq!(eval.cache_stats().misses, misses);
    }
}
