//! Specifications and acceptability ranges (paper Section 2.1).

use serde::{Deserialize, Serialize};

use crate::{CompactionError, Result};

/// One device specification: a named performance parameter with an
/// acceptability range.
///
/// A device is *good* when every measured specification value falls inside its
/// range and *bad* otherwise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Specification {
    name: String,
    unit: String,
    nominal: f64,
    lower: f64,
    upper: f64,
}

impl Specification {
    /// Creates a specification.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::InvalidSpecification`] for an empty name, a
    /// reversed/degenerate range or non-finite bounds.
    pub fn new(name: &str, unit: &str, nominal: f64, lower: f64, upper: f64) -> Result<Self> {
        if name.is_empty() {
            return Err(CompactionError::InvalidSpecification {
                name: name.to_string(),
                reason: "name must not be empty".to_string(),
            });
        }
        if !(upper > lower) || !lower.is_finite() || !upper.is_finite() {
            return Err(CompactionError::InvalidSpecification {
                name: name.to_string(),
                reason: format!("range [{lower}, {upper}] is not a proper interval"),
            });
        }
        Ok(Specification { name: name.to_string(), unit: unit.to_string(), nominal, lower, upper })
    }

    /// Specification name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Unit string used in reports.
    pub fn unit(&self) -> &str {
        &self.unit
    }

    /// Nominal (design-target) value.
    pub fn nominal(&self) -> f64 {
        self.nominal
    }

    /// Lower acceptability bound.
    pub fn lower(&self) -> f64 {
        self.lower
    }

    /// Upper acceptability bound.
    pub fn upper(&self) -> f64 {
        self.upper
    }

    /// Width of the acceptability range.
    pub fn range_width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Whether a measured value passes this specification.
    pub fn passes(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }

    /// Whether a value passes the range tightened (`delta > 0`) or widened
    /// (`delta < 0`) by `delta` expressed as a fraction of the range width.
    ///
    /// This is the primitive the guard-banding scheme of Section 4.2 uses:
    /// the strict labelling shrinks every range by the guard-band fraction,
    /// the loose labelling expands it.
    pub fn passes_with_margin(&self, value: f64, delta: f64) -> bool {
        let margin = delta * self.range_width();
        value >= self.lower + margin && value <= self.upper - margin
    }

    /// Normalises a value so the acceptability range maps to `[0, 1]`
    /// (paper Section 4.3).
    pub fn normalize(&self, value: f64) -> f64 {
        (value - self.lower) / self.range_width()
    }
}

/// An ordered set of specifications — the complete specification-based test
/// set `T` of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecificationSet {
    specs: Vec<Specification>,
}

impl SpecificationSet {
    /// Creates a set from a list of specifications.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::EmptyTestSet`] for an empty list and
    /// [`CompactionError::InvalidSpecification`] for duplicate names.
    pub fn new(specs: Vec<Specification>) -> Result<Self> {
        if specs.is_empty() {
            return Err(CompactionError::EmptyTestSet);
        }
        for (i, spec) in specs.iter().enumerate() {
            if specs[..i].iter().any(|other| other.name() == spec.name()) {
                return Err(CompactionError::InvalidSpecification {
                    name: spec.name().to_string(),
                    reason: "duplicate specification name".to_string(),
                });
            }
        }
        Ok(SpecificationSet { specs })
    }

    /// Number of specifications.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The specifications in order.
    pub fn specs(&self) -> &[Specification] {
        &self.specs
    }

    /// Specification at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn spec(&self, index: usize) -> &Specification {
        &self.specs[index]
    }

    /// Finds a specification index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.specs.iter().position(|s| s.name() == name)
    }

    /// Iterator over the specifications.
    pub fn iter(&self) -> std::slice::Iter<'_, Specification> {
        self.specs.iter()
    }

    /// Whether a full measurement vector passes every specification.
    ///
    /// # Panics
    ///
    /// Panics if the vector length does not match the set size.
    pub fn passes(&self, measurements: &[f64]) -> bool {
        assert_eq!(measurements.len(), self.len(), "measurement vector length mismatch");
        self.specs.iter().zip(measurements.iter()).all(|(s, &v)| s.passes(v))
    }

    /// Pass/fail with every range tightened (`delta > 0`) or widened
    /// (`delta < 0`) by a fraction of its width (see
    /// [`Specification::passes_with_margin`]).
    ///
    /// # Panics
    ///
    /// Panics if the vector length does not match the set size.
    pub fn passes_with_margin(&self, measurements: &[f64], delta: f64) -> bool {
        assert_eq!(measurements.len(), self.len(), "measurement vector length mismatch");
        self.specs.iter().zip(measurements.iter()).all(|(s, &v)| s.passes_with_margin(v, delta))
    }

    /// Normalises a full measurement vector (each value mapped so its range
    /// becomes `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if the vector length does not match the set size.
    pub fn normalize(&self, measurements: &[f64]) -> Vec<f64> {
        assert_eq!(measurements.len(), self.len(), "measurement vector length mismatch");
        self.specs.iter().zip(measurements.iter()).map(|(s, &v)| s.normalize(v)).collect()
    }

    /// Acceptability ranges as `(lower, upper)` pairs.
    pub fn ranges(&self) -> Vec<(f64, f64)> {
        self.specs.iter().map(|s| (s.lower(), s.upper())).collect()
    }

    /// Derives a specification set from a measured population by placing the
    /// acceptability bounds at the given lower/upper quantiles of each
    /// specification's empirical distribution.
    ///
    /// The scanned table of the paper does not give machine-readable ranges,
    /// so the reproduction calibrates ranges from the simulated population
    /// such that the resulting yield matches the paper's reported yield (see
    /// DESIGN.md).  `names`, `units` and `nominals` describe the columns of
    /// `rows`.
    ///
    /// # Errors
    ///
    /// Returns [`CompactionError::InsufficientData`] when `rows` is empty and
    /// [`CompactionError::InvalidConfig`] for quantiles outside `(0, 1)`.
    pub fn from_population_quantiles(
        names: &[&str],
        units: &[&str],
        nominals: &[f64],
        rows: &[Vec<f64>],
        lower_quantile: f64,
        upper_quantile: f64,
    ) -> Result<Self> {
        if rows.is_empty() {
            return Err(CompactionError::InsufficientData {
                reason: "population is empty".to_string(),
            });
        }
        if !(lower_quantile > 0.0 && upper_quantile < 1.0 && lower_quantile < upper_quantile) {
            return Err(CompactionError::InvalidConfig {
                parameter: "quantiles",
                value: lower_quantile,
            });
        }
        let dims = names.len();
        if units.len() != dims || nominals.len() != dims || rows.iter().any(|r| r.len() != dims) {
            return Err(CompactionError::DimensionMismatch {
                expected: dims,
                found: rows.first().map(|r| r.len()).unwrap_or(0),
            });
        }
        let mut specs = Vec::with_capacity(dims);
        for column in 0..dims {
            let mut values: Vec<f64> = rows.iter().map(|r| r[column]).collect();
            values.sort_by(|a, b| a.partial_cmp(b).expect("measurements are finite"));
            let lower = quantile(&values, lower_quantile);
            let mut upper = quantile(&values, upper_quantile);
            if upper <= lower {
                // Degenerate column (constant measurement): widen artificially.
                upper = lower + lower.abs().max(1e-12);
            }
            specs.push(Specification::new(
                names[column],
                units[column],
                nominals[column],
                lower,
                upper,
            )?);
        }
        SpecificationSet::new(specs)
    }
}

impl<'a> IntoIterator for &'a SpecificationSet {
    type Item = &'a Specification;
    type IntoIter = std::slice::Iter<'a, Specification>;

    fn into_iter(self) -> Self::IntoIter {
        self.specs.iter()
    }
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    let position = q * (sorted.len() - 1) as f64;
    let low = position.floor() as usize;
    let high = position.ceil() as usize;
    if low == high {
        sorted[low]
    } else {
        let fraction = position - low as f64;
        sorted[low] * (1.0 - fraction) + sorted[high] * fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gain_spec() -> Specification {
        Specification::new("gain", "V/V", 14_000.0, 10_000.0, 20_000.0).unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        assert!(Specification::new("", "V", 0.0, 0.0, 1.0).is_err());
        assert!(Specification::new("x", "V", 0.0, 1.0, 1.0).is_err());
        assert!(Specification::new("x", "V", 0.0, 2.0, 1.0).is_err());
        assert!(Specification::new("x", "V", 0.0, f64::NAN, 1.0).is_err());
        assert!(gain_spec().range_width() > 0.0);
    }

    #[test]
    fn pass_fail_and_margins() {
        let spec = gain_spec();
        assert!(spec.passes(15_000.0));
        assert!(spec.passes(10_000.0));
        assert!(!spec.passes(9_999.0));
        // 5 % guard band shrinks the range by 500 on each side.
        assert!(!spec.passes_with_margin(10_200.0, 0.05));
        assert!(spec.passes_with_margin(10_200.0, -0.05));
        assert!(spec.passes_with_margin(15_000.0, 0.05));
    }

    #[test]
    fn normalization_maps_range_to_unit_interval() {
        let spec = gain_spec();
        assert_eq!(spec.normalize(10_000.0), 0.0);
        assert_eq!(spec.normalize(20_000.0), 1.0);
        assert_eq!(spec.normalize(15_000.0), 0.5);
        assert!(spec.normalize(25_000.0) > 1.0);
    }

    #[test]
    fn set_rejects_duplicates_and_empties() {
        assert!(matches!(SpecificationSet::new(vec![]), Err(CompactionError::EmptyTestSet)));
        let duplicated = vec![gain_spec(), gain_spec()];
        assert!(SpecificationSet::new(duplicated).is_err());
    }

    #[test]
    fn set_pass_fail_uses_every_spec() {
        let set = SpecificationSet::new(vec![
            gain_spec(),
            Specification::new("slew", "V/us", 0.44, 0.35, 0.55).unwrap(),
        ])
        .unwrap();
        assert!(set.passes(&[15_000.0, 0.4]));
        assert!(!set.passes(&[15_000.0, 0.6]));
        assert!(!set.passes(&[9_000.0, 0.4]));
        assert_eq!(set.normalize(&[15_000.0, 0.45]), vec![0.5, 0.5]);
        assert_eq!(set.index_of("slew"), Some(1));
        assert_eq!(set.index_of("nope"), None);
        assert_eq!(set.ranges()[1], (0.35, 0.55));
        assert_eq!(set.iter().count(), 2);
        assert_eq!((&set).into_iter().count(), 2);
    }

    #[test]
    fn quantile_calibration_produces_requested_yield() {
        // A synthetic population of 1000 devices with two independent
        // uniform measurements; 5 %/95 % quantile ranges should give a yield
        // near 0.9 * 0.9 = 81 %.
        let rows: Vec<Vec<f64>> = (0..1000)
            .map(|i| {
                let a = (i % 100) as f64 / 100.0;
                let b = ((i * 7) % 100) as f64 / 100.0;
                vec![a, b]
            })
            .collect();
        let set = SpecificationSet::from_population_quantiles(
            &["a", "b"],
            &["-", "-"],
            &[0.5, 0.5],
            &rows,
            0.05,
            0.95,
        )
        .unwrap();
        let yield_fraction =
            rows.iter().filter(|r| set.passes(r)).count() as f64 / rows.len() as f64;
        assert!((yield_fraction - 0.81).abs() < 0.05, "yield {yield_fraction}");
    }

    #[test]
    fn quantile_calibration_validates_inputs() {
        let rows = vec![vec![1.0]];
        assert!(SpecificationSet::from_population_quantiles(
            &["a"],
            &["-"],
            &[1.0],
            &[],
            0.05,
            0.95
        )
        .is_err());
        assert!(SpecificationSet::from_population_quantiles(
            &["a"],
            &["-"],
            &[1.0],
            &rows,
            0.9,
            0.1
        )
        .is_err());
        assert!(SpecificationSet::from_population_quantiles(
            &["a", "b"],
            &["-"],
            &[1.0],
            &rows,
            0.05,
            0.95
        )
        .is_err());
    }
}
